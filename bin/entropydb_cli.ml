(* entropydb — command-line interface.

   Subcommands:
     generate    materialize a synthetic dataset as CSV
     build       compute a MaxEnt summary from a dataset and save it
                 (--shards k builds a partitioned summary in parallel;
                  `summarize` is the same command under the paper's name)
     query       answer SQL against a saved summary (optionally vs exact)
     info        inspect a saved summary
     ingest      append a batch CSV to a saved summary (incremental
                 statistics + warm-started solve, no full rebuild)
     serve       run the resident summary server (lib/server)
     client      talk to a running server
     check       run the correctness oracle battery over random cases
     experiment  regenerate one of the paper's figures

   The CLI works on the two built-in dataset families (flights, particles)
   so that every artifact of the paper can be produced end to end without
   writing OCaml. *)

open Cmdliner
open Edb_storage

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

(* ------------------------------------------------------------------ *)
(* Dataset plumbing                                                    *)
(* ------------------------------------------------------------------ *)

type dataset = Flights_coarse | Flights_fine | Particles

let dataset_conv =
  let parse = function
    | "flights-coarse" -> Ok Flights_coarse
    | "flights-fine" -> Ok Flights_fine
    | "particles" -> Ok Particles
    | s -> Error (`Msg (Printf.sprintf "unknown dataset %s" s))
  in
  let print ppf d =
    Fmt.string ppf
      (match d with
      | Flights_coarse -> "flights-coarse"
      | Flights_fine -> "flights-fine"
      | Particles -> "particles")
  in
  Arg.conv (parse, print)

let generate_relation dataset ~rows ~seed =
  match dataset with
  | Flights_coarse -> (Edb_datagen.Flights.generate ~rows ~seed ()).coarse
  | Flights_fine -> (Edb_datagen.Flights.generate ~rows ~seed ()).fine
  | Particles ->
      Edb_datagen.Particles.generate
        ~rows_per_snapshot:(max 1 (rows / 3))
        ~snapshots:3 ~seed ()

let schema_of_dataset = function
  | Flights_coarse -> Relation.schema (generate_relation Flights_coarse ~rows:1 ~seed:1)
  | Flights_fine -> Relation.schema (generate_relation Flights_fine ~rows:1 ~seed:1)
  | Particles -> Edb_datagen.Particles.schema ()

let load_relation dataset path =
  match Csv_io.load_indices (schema_of_dataset dataset) path with
  | Ok rel -> rel
  | Error e ->
      Fmt.epr "error loading %s: %a@." path Csv_io.pp_error e;
      exit 1

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let dataset_t =
  Arg.(
    required
    & opt (some dataset_conv) None
    & info [ "dataset" ] ~docv:"NAME"
        ~doc:"Dataset family: flights-coarse, flights-fine, or particles.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing for this run and write a Chrome trace_event \
           JSON file on completion (open in chrome://tracing or \
           ui.perfetto.dev).")

(* Tracing can also be forced on by EDB_TRACE=1; --trace-out additionally
   picks where the ring buffer's contents land when the command ends. *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
      Edb_obs.Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Edb_obs.Trace.write_file path;
          Printf.printf "trace written to %s (%d events%s)\n" path
            (List.length (Edb_obs.Trace.events ()))
            (let d = Edb_obs.Trace.dropped () in
             if d > 0 then Printf.sprintf ", %d dropped to wraparound" d
             else ""))
        f

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run verbose dataset rows seed output labels =
    setup_logs verbose;
    let rel = generate_relation dataset ~rows ~seed in
    if labels then Csv_io.save_labels rel output
    else Csv_io.save_indices rel output;
    Printf.printf "wrote %d rows to %s\n" (Relation.cardinality rel) output;
    0
  in
  let rows_t =
    Arg.(value & opt int 100_000 & info [ "rows" ] ~docv:"N" ~doc:"Row count.")
  in
  let output_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let labels_t =
    Arg.(
      value & flag
      & info [ "labels" ]
          ~doc:"Write human-readable labels instead of value indices \
                (not re-importable).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Materialize a synthetic dataset as CSV.")
    Term.(
      const run $ verbose_t $ dataset_t $ rows_t $ seed_t $ output_t $ labels_t)

(* ------------------------------------------------------------------ *)
(* build                                                               *)
(* ------------------------------------------------------------------ *)

let heuristic_conv =
  let parse = function
    | "large" -> Ok Edb_select.Heuristic.Large
    | "zero" -> Ok Edb_select.Heuristic.Zero
    | "composite" -> Ok Edb_select.Heuristic.Composite
    | s -> Error (`Msg (Printf.sprintf "unknown heuristic %s" s))
  in
  let print ppf k = Fmt.string ppf (Edb_select.Heuristic.kind_name k) in
  Arg.conv (parse, print)

let build_cmd_named cmd_name ~doc =
  let run verbose dataset input rows seed output pairs buckets heuristic
      sweeps shards shard_by format trace_out =
    setup_logs verbose;
    if shards < 1 then begin
      Fmt.epr "%s: --shards must be at least 1@." cmd_name;
      exit 2
    end;
    if format = "v3" && shards > 1 then begin
      Fmt.epr "%s: --format v3 is for flat (unsharded) summaries@." cmd_name;
      exit 2
    end;
    with_trace trace_out @@ fun () ->
    let rel =
      match input with
      | Some path -> load_relation dataset path
      | None -> generate_relation dataset ~rows ~seed
    in
    let chosen =
      Edb_select.Pairs.select ~strategy:Edb_select.Pairs.By_cover ~budget:pairs
        rel
    in
    let schema = Relation.schema rel in
    let joints =
      List.concat_map
        (fun (a, b) ->
          Printf.printf "2D statistics on (%s, %s): %d buckets (%s)\n%!"
            (Schema.attr_name schema a) (Schema.attr_name schema b) buckets
            (Edb_select.Heuristic.kind_name heuristic);
          Edb_select.Heuristic.select heuristic rel ~attr1:a ~attr2:b
            ~budget:buckets)
        chosen
    in
    let solver_config =
      { Entropydb_core.Solver.default_config with max_sweeps = sweeps }
    in
    if shards = 1 then begin
      (* A single shard is just the flat summary; save the flat format so
         older readers keep working. *)
      (* Verbose builds print the solver's convergence table live, one
         row per sweep, off the telemetry callback. *)
      let header_printed = ref false in
      let on_sweep (st : Entropydb_core.Solver.sweep_stat) =
        if not !header_printed then begin
          Printf.printf "%5s  %20s  %12s  %12s  %9s\n" "sweep" "dual"
            "max_rel_err" "max_step" "elapsed_s";
          header_printed := true
        end;
        Printf.printf "%5d  %20.13g  %12.3e  %12.3e  %9.3f\n%!" st.sweep
          st.dual st.sweep_max_rel_error st.max_step st.elapsed_s
      in
      let on_sweep = if verbose then Some on_sweep else None in
      let summary =
        Entropydb_core.Summary.build ~solver_config ?on_sweep rel ~joints
      in
      let report = Entropydb_core.Summary.solver_report summary in
      Printf.printf "solved in %d sweeps, %.1fs (max rel err %.2e)\n"
        report.sweeps report.seconds report.max_rel_error;
      if format = "v3" then begin
        Entropydb_core.Serialize.save_v3 summary output;
        Printf.printf "mmap-able v3 summary written to %s\n" output
      end
      else begin
        Entropydb_core.Serialize.save summary output;
        Printf.printf "summary written to %s\n" output
      end
    end
    else begin
      let strategy =
        match shard_by with
        | "rows" -> Edb_shard.Partition.Rows
        | name -> (
            match Schema.find schema name with
            | Some attr -> Edb_shard.Partition.By_attr attr
            | None ->
                Fmt.epr "%s: --shard-by %s: no such attribute (use \"rows\" \
                         or an attribute name)@."
                  cmd_name name;
                exit 2)
      in
      let solver_config =
        { solver_config with log_every = 0 } (* domains share stdout *)
      in
      let sharded, build_s =
        Edb_util.Timing.time (fun () ->
            Edb_shard.Builder.build ~solver_config rel ~shards ~strategy
              ~joints)
      in
      List.iteri
        (fun i (r : Entropydb_core.Solver.report) ->
          Printf.printf "shard %d: %d sweeps, %.1fs (max rel err %.2e)\n" i
            r.sweeps r.seconds r.max_rel_error)
        (Edb_shard.Sharded.solver_reports sharded);
      Printf.printf "built %d shards in %.1fs (%d domains)\n" shards build_s
        (Edb_util.Parallel.default_domains ());
      Edb_shard.Store.save sharded output;
      Printf.printf "sharded summary (%s) written to %s\n"
        (Edb_shard.Sharded.strategy sharded)
        output
    end;
    0
  in
  let input_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE"
          ~doc:"Input index CSV (from $(b,generate)); generates fresh data \
                when omitted.")
  in
  let rows_t =
    Arg.(
      value & opt int 100_000
      & info [ "rows" ] ~docv:"N" ~doc:"Rows when generating fresh data.")
  in
  let output_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Summary output path.")
  in
  let pairs_t =
    Arg.(
      value & opt int 2
      & info [ "pairs" ] ~docv:"BA" ~doc:"Number of 2D attribute pairs (Ba).")
  in
  let buckets_t =
    Arg.(
      value & opt int 200
      & info [ "buckets" ] ~docv:"BS" ~doc:"Buckets per pair (Bs).")
  in
  let heuristic_t =
    Arg.(
      value
      & opt heuristic_conv Edb_select.Heuristic.Composite
      & info [ "heuristic" ] ~docv:"KIND"
          ~doc:"Statistic heuristic: composite, large, or zero.")
  in
  let sweeps_t =
    Arg.(
      value & opt int 30
      & info [ "sweeps" ] ~docv:"N" ~doc:"Maximum solver sweeps.")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Partition the relation into $(docv) shards and build one \
             summary per shard, in parallel over OCaml domains \
             ($(b,EDB_DOMAINS)).  1 (the default) writes the flat format.")
  in
  let shard_by_t =
    Arg.(
      value & opt string "rows"
      & info [ "shard-by" ] ~docv:"ATTR|rows"
          ~doc:
            "Partitioning key: $(b,rows) (contiguous row ranges) or an \
             attribute name (hash of that attribute's value).")
  in
  let format_t =
    Arg.(
      value
      & opt (enum [ ("v2", "v2"); ("v3", "v3") ]) "v2"
      & info [ "format" ] ~docv:"v2|v3"
          ~doc:
            "On-disk format for flat summaries: $(b,v2) (the default, \
             portable) or $(b,v3) (page-aligned, mmap-able; the server \
             opens it zero-copy in O(1)).")
  in
  Cmd.v (Cmd.info cmd_name ~doc)
    Term.(
      const run $ verbose_t $ dataset_t $ input_t $ rows_t $ seed_t $ output_t
      $ pairs_t $ buckets_t $ heuristic_t $ sweeps_t $ shards_t $ shard_by_t
      $ format_t $ trace_out_t)

let build_cmd =
  build_cmd_named "build" ~doc:"Compute and save a MaxEnt summary."

let summarize_cmd =
  (* The paper's verb for the same operation; kept as a first-class alias
     so scripts can say `entropydb summarize --shards 4`. *)
  build_cmd_named "summarize"
    ~doc:"Compute and save a MaxEnt summary (alias of $(b,build))."

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let conjunctive_exn c =
  match Edb_query.Translate.conjunctive c with
  | Some p -> p
  | None -> failwith "OR predicates are not supported with SUM/AVG/GROUP BY"

let query_cmd =
  let run verbose summary_path sql exact_csv dataset trace_out =
    setup_logs verbose;
    with_trace trace_out @@ fun () ->
    (* Everything under here may raise (bad summary files, SUM/AVG over OR,
       categorical SUM via bin midpoints, >10 disjuncts in
       inclusion-exclusion): turn any of it into a one-line diagnostic and
       a non-zero exit instead of an uncaught exception. *)
    try
    (* Store.load sniffs the magic, so this accepts flat summaries and
       sharded manifests alike; a flat file is a single-shard view. *)
    let summary = Edb_shard.Store.load summary_path in
    let schema = Edb_shard.Sharded.schema summary in
    match Edb_query.Translate.compile_string schema sql with
    | Error e ->
        Fmt.epr "query error: %a@." Edb_query.Translate.pp_error e;
        1
    | Ok ({ aggregate = Edb_query.Translate.Sum attr; _ } as c) ->
        let predicate =
          conjunctive_exn c
        in
        let est = Edb_shard.Sharded.estimate_sum summary ~attr predicate in
        let sd =
          sqrt (Edb_shard.Sharded.variance_sum summary ~attr predicate)
        in
        Printf.printf "estimate: %.2f +/- %.2f\n" est sd;
        (match (exact_csv, dataset) with
        | Some path, Some ds ->
            let rel = load_relation ds path in
            Printf.printf "exact:    %.2f\n" (Exec.sum rel ~attr predicate)
        | _ -> ());
        0
    | Ok ({ aggregate = Edb_query.Translate.Avg attr; _ } as c) ->
        let predicate = conjunctive_exn c in
        (match Edb_shard.Sharded.estimate_avg summary ~attr predicate with
        | Some est -> Printf.printf "estimate: %.4f\n" est
        | None -> Printf.printf "estimate: undefined (expected count 0)\n");
        (match (exact_csv, dataset) with
        | Some path, Some ds -> (
            let rel = load_relation ds path in
            match Exec.avg rel ~attr predicate with
            | Some v -> Printf.printf "exact:    %.4f\n" v
            | None -> Printf.printf "exact:    undefined (no rows)\n")
        | _ -> ());
        0
    | Ok { disjuncts; group_attrs = []; _ } ->
        let est = Edb_shard.Sharded.estimate_disjuncts summary disjuncts in
        let sd = Edb_shard.Sharded.stddev_disjuncts summary disjuncts in
        Printf.printf "estimate: %.2f +/- %.2f\n" est sd;
        (match (exact_csv, dataset) with
        | Some path, Some ds ->
            let rel = load_relation ds path in
            Printf.printf "exact:    %d\n" (Exec.count_dnf rel disjuncts)
        | _ -> ());
        0
    | Ok ({ group_attrs; order; limit; _ } as c) ->
        let predicate = conjunctive_exn c in
        (* One batched evaluation yields estimates and stddevs for every
           group cell — no per-cell re-evaluation. *)
        let groups =
          Edb_shard.Sharded.estimate_groups_with_stddev summary
            ~attrs:group_attrs predicate
        in
        let groups =
          match order with
          | Some Edb_query.Ast.Asc ->
              List.sort
                (fun (ka, a, _) (kb, b, _) ->
                  let o = Float.compare a b in
                  if o <> 0 then o else Stdlib.compare ka kb)
                groups
          | _ ->
              List.sort
                (fun (ka, a, _) (kb, b, _) ->
                  let o = Float.compare b a in
                  if o <> 0 then o else Stdlib.compare ka kb)
                groups
        in
        let groups =
          match limit with
          | Some k -> List.filteri (fun i _ -> i < k) groups
          | None -> groups
        in
        List.iter
          (fun (values, est, sd) ->
            let labels =
              List.map2
                (fun attr v -> Domain.label (Schema.domain schema attr) v)
                group_attrs values
            in
            Printf.printf "%s: %.2f +/- %.2f\n" (String.concat ", " labels) est
              sd)
          groups;
        0
    with
    | Entropydb_core.Serialize.Format_error m ->
        Fmt.epr "query error: %s: %s@." summary_path m;
        1
    | Sys_error m | Failure m | Invalid_argument m ->
        Fmt.epr "query error: %s@." m;
        1
  in
  let summary_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "summary" ] ~docv:"FILE" ~doc:"Saved summary path.")
  in
  let sql_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"The query to answer.")
  in
  let exact_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "exact-csv" ] ~docv:"FILE"
          ~doc:"Also compute the exact answer from this index CSV.")
  in
  let dataset_opt_t =
    Arg.(
      value
      & opt (some dataset_conv) None
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:"Dataset family of $(b,--exact-csv).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer SQL against a saved summary.")
    Term.(
      const run $ verbose_t $ summary_t $ sql_t $ exact_t $ dataset_opt_t
      $ trace_out_t)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run verbose summary_path sql ci exact_csv dataset sample_rate =
    setup_logs verbose;
    let module P = Edb_plan.Plan in
    let module E = Edb_plan.Estimator in
    try
      let summary = Edb_shard.Store.load summary_path in
      let schema = Edb_shard.Sharded.schema summary in
      let target = P.target_of_string ci in
      match Edb_query.Translate.compile_string schema sql with
      | Error e ->
          Fmt.epr "explain error: %a@." Edb_query.Translate.pp_error e;
          1
      | Ok c -> (
          let shape =
            match Edb_query.Translate.conjunctive c with
            | None ->
                failwith "the planner supports conjunctive predicates only"
            | Some pred -> (
                match c with
                | { aggregate = Edb_query.Translate.Count; group_attrs = []; _ }
                  ->
                    P.Count pred
                | { aggregate = Edb_query.Translate.Sum attr;
                    group_attrs = [];
                    _;
                  } ->
                    P.Sum { attr; pred }
                | { aggregate = Edb_query.Translate.Count; group_attrs; _ } ->
                    P.Groups { attrs = group_attrs; pred }
                | _ ->
                    failwith
                      "the planner supports COUNT, SUM, and COUNT GROUP BY")
          in
          (* The summary route is always available; --exact-csv adds an
             exact scan plus a deterministic uniform sample of the base
             table, giving the planner real alternatives to rank. *)
          let estimators =
            match (exact_csv, dataset) with
            | Some path, Some ds ->
                let rel = load_relation ds path in
                let rng =
                  Edb_util.Prng.create ~seed:(Hashtbl.hash (path, sample_rate)) ()
                in
                [
                  E.of_sharded summary;
                  E.of_sample (Edb_sampling.Uniform.create rng ~rate:sample_rate rel);
                  E.of_relation rel;
                ]
            | None, _ -> [ E.of_sharded summary ]
            | Some _, None ->
                failwith "--exact-csv requires --dataset to supply the schema"
          in
          let d = P.choose_all ~target estimators shape in
          let truth =
            List.find_map
              (fun (cand : P.candidate) ->
                match (E.kind cand.P.estimator, cand.P.evaluation) with
                | E.Exact, Some ev when ev.P.groups = None ->
                    Some ev.P.answer.E.est
                | _ -> None)
              d.P.candidates
          in
          Edb_util.Table.print (Edb_plan.Explain.table ?truth d);
          let a = P.chosen_answer d in
          Printf.printf "route: %s (%s, %s)\n"
            (E.name d.P.chosen.P.estimator)
            (E.kind_name (E.kind d.P.chosen.P.estimator))
            d.P.reason;
          Printf.printf "answer: %.2f +/- %.2f\n" a.E.est
            (sqrt (Float.max 0. a.E.var));
          match P.chosen_groups d with
          | None -> 0
          | Some cells ->
              List.iter
                (fun (values, (ans : E.answer)) ->
                  let labels =
                    List.map2
                      (fun attr v ->
                        Domain.label (Schema.domain schema attr) v)
                      c.Edb_query.Translate.group_attrs values
                  in
                  Printf.printf "%s: %.2f +/- %.2f\n"
                    (String.concat ", " labels) ans.E.est
                    (sqrt (Float.max 0. ans.E.var)))
                cells;
              0)
    with
    | Entropydb_core.Serialize.Format_error m ->
        Fmt.epr "explain error: %s: %s@." summary_path m;
        1
    | Sys_error m | Failure m | Invalid_argument m ->
        Fmt.epr "explain error: %s@." m;
        1
  in
  let summary_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "summary" ] ~docv:"FILE" ~doc:"Saved summary path.")
  in
  let sql_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"The query to plan.")
  in
  let ci_t =
    Arg.(
      value & opt string "95:2"
      & info [ "ci" ] ~docv:"CONF:REL[:ABS]"
          ~doc:
            "Target interval: confidence (percent), relative half-width \
             (percent), optional absolute floor in rows.  Default 95:2.")
  in
  let exact_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "exact-csv" ] ~docv:"FILE"
          ~doc:
            "Register sample and exact-scan routes over this index CSV \
             (requires $(b,--dataset)).")
  in
  let dataset_opt_t =
    Arg.(
      value
      & opt (some dataset_conv) None
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:"Dataset family of $(b,--exact-csv).")
  in
  let rate_t =
    Arg.(
      value & opt float 0.01
      & info [ "sample-rate" ] ~docv:"R"
          ~doc:"Uniform sampling rate for the sample route (default 1%).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the planner's candidate table for a query and the route it \
          picks for a target confidence interval.")
    Term.(
      const run $ verbose_t $ summary_t $ sql_t $ ci_t $ exact_t
      $ dataset_opt_t $ rate_t)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run verbose summary_path =
    setup_logs verbose;
    try
      let summary = Edb_shard.Store.load summary_path in
      let schema = Edb_shard.Sharded.schema summary in
      let k = Edb_shard.Sharded.num_shards summary in
      let format = Entropydb_core.Serialize.detect summary_path in
      Printf.printf "format: %s\n"
        (match format with
        | Entropydb_core.Serialize.Flat -> "flat"
        | Entropydb_core.Serialize.Sharded -> "sharded manifest"
        | Entropydb_core.Serialize.MappedV3 -> "mmap v3");
      (* v3 files carry a section table the server maps zero-copy; list
         it so operators can see the layout the checksums cover. *)
      if format = Entropydb_core.Serialize.MappedV3 then begin
        let m = Entropydb_core.Serialize.v3_manifest_of summary_path in
        Printf.printf "sections: %d\n"
          (List.length m.Entropydb_core.Serialize.v3_sections);
        List.iter
          (fun (s : Entropydb_core.Serialize.v3_section) ->
            Printf.printf
              "  %-14s %-7s offset %8d  elems %8d  crc32 %08x\n" s.sec_name
              (if s.sec_float then "float64" else "int")
              s.sec_off s.sec_len s.sec_crc)
          m.Entropydb_core.Serialize.v3_sections
      end;
      Printf.printf "shards: %d (%s)\n" k (Edb_shard.Sharded.strategy summary);
      Printf.printf "cardinality: %d%s\n"
        (Edb_shard.Sharded.cardinality summary)
        (if k = 1 then ""
         else
           Printf.sprintf " (per shard: %s)"
             (String.concat ", "
                (List.map string_of_int
                   (Edb_shard.Sharded.cardinalities summary))));
      Fmt.pr "schema:@.%a@." Schema.pp schema;
      Fmt.pr "%a@." Entropydb_core.Summary.pp_size_report
        (Edb_shard.Sharded.size_report summary);
      List.iteri
        (fun i (report : Entropydb_core.Solver.report) ->
          Printf.printf
            "solver%s: %d sweeps, converged=%b, max rel err %.2e\n"
            (if k = 1 then "" else Printf.sprintf " (shard %d)" i)
            report.sweeps report.converged report.max_rel_error)
        (Edb_shard.Sharded.solver_reports summary);
      if k = 1 then
        Fmt.pr "lineage:@.%a@." Entropydb_core.Journal.pp
          (Entropydb_core.Summary.journal
             (Edb_shard.Sharded.shards summary).(0));
      0
    with
    | Entropydb_core.Serialize.Format_error m ->
        Fmt.epr "info error: %s: %s@." summary_path m;
        1
    | Sys_error m ->
        Fmt.epr "info error: %s@." m;
        1
  in
  let summary_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Saved summary path.")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Inspect a saved summary.")
    Term.(const run $ verbose_t $ summary_t)

(* ------------------------------------------------------------------ *)
(* ingest                                                              *)
(* ------------------------------------------------------------------ *)

let ingest_cmd =
  let run verbose summary_path batch_csv output sweeps =
    setup_logs verbose;
    try
      (match Entropydb_core.Serialize.detect summary_path with
      | Entropydb_core.Serialize.Flat | Entropydb_core.Serialize.MappedV3 -> ()
      | Entropydb_core.Serialize.Sharded ->
          Fmt.epr
            "ingest error: %s is a sharded manifest; ingest supports flat \
             summaries@."
            summary_path;
          exit 2);
      let summary = Entropydb_core.Serialize.load summary_path in
      let schema = Entropydb_core.Summary.schema summary in
      match Csv_io.load_indices schema batch_csv with
      | Error e ->
          Fmt.epr "ingest error: %s: %a@." batch_csv Csv_io.pp_error e;
          1
      | Ok batch ->
          (* Same live convergence table as `build -v`, so the warm
             start's few sweeps are directly visible. *)
          let header_printed = ref false in
          let on_sweep (st : Entropydb_core.Solver.sweep_stat) =
            if not !header_printed then begin
              Printf.printf "%5s  %20s  %12s  %12s  %9s\n" "sweep" "dual"
                "max_rel_err" "max_step" "elapsed_s";
              header_printed := true
            end;
            Printf.printf "%5d  %20.13g  %12.3e  %12.3e  %9.3f\n%!" st.sweep
              st.dual st.sweep_max_rel_error st.max_step st.elapsed_s
          in
          let on_sweep = if verbose then Some on_sweep else None in
          let solver_config =
            { Entropydb_core.Solver.default_config with max_sweeps = sweeps }
          in
          let summary', stats =
            Edb_ingest.Ingest.append_with_stats ~solver_config
              ~source:(Filename.basename batch_csv) ?on_sweep summary batch
          in
          let out = Option.value output ~default:summary_path in
          Edb_ingest.Ingest.save_atomic summary' out;
          Printf.printf
            "ingested %d rows in %.2fs (%d warm sweep%s, converged=%b)\n"
            stats.Edb_ingest.Ingest.batch_rows stats.Edb_ingest.Ingest.seconds
            stats.Edb_ingest.Ingest.sweeps
            (if stats.Edb_ingest.Ingest.sweeps = 1 then "" else "s")
            stats.Edb_ingest.Ingest.converged;
          Printf.printf "cardinality: %d\n" stats.Edb_ingest.Ingest.cardinality;
          Fmt.pr "lineage:@.%a@." Entropydb_core.Journal.pp
            (Entropydb_core.Summary.journal summary');
          Printf.printf "summary written to %s\n" out;
          0
    with
    | Entropydb_core.Serialize.Format_error m ->
        Fmt.epr "ingest error: %s: %s@." summary_path m;
        1
    | Sys_error m | Failure m | Invalid_argument m ->
        Fmt.epr "ingest error: %s@." m;
        1
  in
  let summary_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "summary" ] ~docv:"FILE"
          ~doc:"Saved (flat) summary to append to.")
  in
  let batch_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BATCH.csv"
          ~doc:"Index CSV of new rows, in the summary's schema.")
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Where to write the updated summary (default: atomically \
             replace the input file).")
  in
  let sweeps_t =
    Arg.(
      value
      & opt int Entropydb_core.Solver.default_config.max_sweeps
      & info [ "sweeps" ] ~docv:"N" ~doc:"Maximum warm re-solve sweeps.")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Append a batch of rows to a saved summary without a full rebuild \
          (incremental statistics + warm-started solve).")
    Term.(const run $ verbose_t $ summary_t $ batch_t $ output_t $ sweeps_t)

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let evaluate_cmd =
  let run verbose dataset rows seed pairs buckets rate hitters =
    setup_logs verbose;
    let rel = generate_relation dataset ~rows ~seed in
    let schema = Relation.schema rel in
    (* Methods: EntropyDB (COMPOSITE on cover-selected pairs) vs a uniform
       sample of the same configured rate. *)
    let chosen =
      Edb_select.Pairs.select ~strategy:Edb_select.Pairs.By_cover
        ~budget:pairs rel
    in
    let joints =
      List.concat_map
        (fun (a, b) ->
          Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
            ~attr1:a ~attr2:b ~budget:buckets)
        chosen
    in
    let summary, build_s =
      Edb_util.Timing.time (fun () ->
          Entropydb_core.Summary.build rel ~joints)
    in
    Printf.printf "summary built in %.1fs (%d joint statistics)\n%!" build_s
      (List.length joints);
    (* The sampler gets its own stream; workload streams are derived per
       attribute set inside [Runner.run_standard], so no state is shared
       between the baseline and the workloads (or between workloads). *)
    let sample_rng = Edb_util.Prng.create ~seed:(seed + 2) () in
    let methods =
      [
        Edb_workload.Methods.of_sample
          (Edb_sampling.Uniform.create sample_rng ~rate rel);
        Edb_workload.Methods.of_summary summary;
      ]
    in
    (* Workloads over each chosen pair's attributes. *)
    let table =
      Edb_util.Table.create ~title:"Accuracy evaluation"
        ~headers:
          [ "attributes"; "method"; "heavy err"; "light err"; "F measure" ]
        ~aligns:
          [ Edb_util.Table.Left; Edb_util.Table.Left; Edb_util.Table.Right;
            Edb_util.Table.Right; Edb_util.Table.Right ]
        ()
    in
    List.iter
      (fun (a, b) ->
        let attrs = [ a; b ] in
        let label =
          Printf.sprintf "%s,%s" (Schema.attr_name schema a)
            (Schema.attr_name schema b)
        in
        let report =
          Edb_workload.Runner.run_standard ~seed:(seed + 1) rel methods
            ~attrs ~num_hitters:hitters ~num_nulls:hitters
        in
        let heavy = report.Edb_workload.Runner.heavy in
        let light = report.Edb_workload.Runner.light in
        let fs = report.Edb_workload.Runner.f in
        List.iter2
          (fun ((h : Edb_workload.Runner.error_result),
                (l : Edb_workload.Runner.error_result))
               (f : Edb_workload.Runner.f_result) ->
            Edb_util.Table.add_row table
              [
                label;
                h.method_name;
                Edb_util.Table.cell_float h.avg_error;
                Edb_util.Table.cell_float l.avg_error;
                Edb_util.Table.cell_float f.f_measure;
              ])
          (List.combine heavy light)
          fs)
      chosen;
    Edb_util.Table.print table;
    0
  in
  let rows_t =
    Arg.(value & opt int 100_000 & info [ "rows" ] ~docv:"N" ~doc:"Row count.")
  in
  let pairs_t =
    Arg.(value & opt int 2 & info [ "pairs" ] ~docv:"BA" ~doc:"2D pairs.")
  in
  let buckets_t =
    Arg.(
      value & opt int 200 & info [ "buckets" ] ~docv:"BS" ~doc:"Buckets/pair.")
  in
  let rate_t =
    Arg.(
      value & opt float 0.01
      & info [ "sample-rate" ] ~docv:"R" ~doc:"Baseline sampling rate.")
  in
  let hitters_t =
    Arg.(
      value & opt int 50
      & info [ "hitters" ] ~docv:"K" ~doc:"Heavy/light hitters per workload.")
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Compare summary accuracy against uniform sampling on a \
             generated dataset.")
    Term.(
      const run $ verbose_t $ dataset_t $ rows_t $ seed_t $ pairs_t
      $ buckets_t $ rate_t $ hitters_t)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_host_t =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "tcp-host" ] ~docv:"HOST" ~doc:"TCP host (with --tcp-port).")

let tcp_port_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp-port" ] ~docv:"PORT" ~doc:"TCP port to listen/connect on.")

let serve_cmd =
  let run verbose socket tcp_host tcp_port workers queue domains batch_window
      max_inflight deadline idle catalog_capacity catalog_bytes cache_capacity
      preload =
    setup_logs verbose;
    let tcp = Option.map (fun p -> (tcp_host, p)) tcp_port in
    if socket = None && tcp = None then begin
      Fmt.epr "serve: need --socket and/or --tcp-port@.";
      2
    end
    else begin
      let config =
        {
          Edb_server.Server.unix_socket = socket;
          tcp;
          workers;
          queue_depth = queue;
          domains;
          batch_window;
          max_inflight;
          max_line_bytes = Edb_server.Server.default_config.max_line_bytes;
          request_deadline = deadline;
          idle_timeout = idle;
          catalog_capacity;
          catalog_bytes;
          cache_capacity;
        }
      in
      let server = Edb_server.Server.create config in
      let catalog = Edb_server.Server.catalog server in
      let bad_preload =
        List.filter_map
          (fun spec ->
            match String.index_opt spec '=' with
            | None -> Some (spec ^ ": expected NAME=PATH")
            | Some i -> (
                let name = String.sub spec 0 i in
                let path =
                  String.sub spec (i + 1) (String.length spec - i - 1)
                in
                match Edb_server.Catalog.load catalog ~name ~path with
                | Ok _ ->
                    Printf.printf "loaded %s from %s\n%!" name path;
                    None
                | Error m -> Some (name ^ ": " ^ m)))
          preload
      in
      match bad_preload with
      | _ :: _ ->
          List.iter (fun m -> Fmt.epr "serve: %s@." m) bad_preload;
          1
      | [] ->
          (* Blocks until SIGINT/SIGTERM, then drains and returns. *)
          Edb_server.Server.run server;
          0
    end
  in
  let workers_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let queue_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.queue_depth
      & info [ "queue" ] ~docv:"N"
          ~doc:"Pending connections beyond the workers before ERR busy.")
  in
  let domains_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.domains
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Executor domains (event loops); 0 = auto (EDB_DOMAINS, else \
             core count).")
  in
  let batch_window_t =
    Arg.(
      value & opt float Edb_server.Server.default_config.batch_window
      & info [ "batch-window" ] ~docv:"SECONDS"
          ~doc:
            "Linger this long topping up a request batch before executing \
             (coalescing window); 0 batches per readiness sweep.")
  in
  let max_inflight_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Per-connection pipeline window before backpressure.")
  in
  let deadline_t =
    Arg.(
      value & opt float Edb_server.Server.default_config.request_deadline
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request deadline; 0 disables.")
  in
  let idle_t =
    Arg.(
      value & opt float Edb_server.Server.default_config.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections quiet for this long.")
  in
  let catalog_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.catalog_capacity
      & info [ "catalog-capacity" ] ~docv:"N"
          ~doc:"Resident summaries (LRU beyond this).")
  in
  let catalog_bytes_t =
    Arg.(
      value
      & opt (some int) Edb_server.Server.default_config.catalog_bytes
      & info [ "catalog-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte budget over resident summaries' footprints (weighted LRU \
             beyond it; evicted names transparently reopen on use — O(1) for \
             mmap v3 files).  Unlimited by default.")
  in
  let cache_t =
    Arg.(
      value & opt int Edb_server.Server.default_config.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Per-summary query-cache entries.")
  in
  let preload_t =
    Arg.(
      value & opt_all string []
      & info [ "load" ] ~docv:"NAME=PATH"
          ~doc:"Preload a summary into the catalog (repeatable).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident summary server until SIGINT/SIGTERM (graceful \
          drain).")
    Term.(
      const run $ verbose_t $ socket_t $ tcp_host_t $ tcp_port_t $ workers_t
      $ queue_t $ domains_t $ batch_window_t $ max_inflight_t $ deadline_t
      $ idle_t $ catalog_t $ catalog_bytes_t $ cache_t $ preload_t)

let client_cmd =
  let run verbose socket tcp_host tcp_port timeout words =
    setup_logs verbose;
    let address =
      match (socket, tcp_port) with
      | Some path, _ -> Some (Edb_server.Client.Unix_socket path)
      | None, Some port -> Some (Edb_server.Client.Tcp (tcp_host, port))
      | None, None -> None
    in
    match address with
    | None ->
        Fmt.epr "client: need --socket or --tcp-port@.";
        2
    | Some address -> (
        match Edb_server.Client.connect ~timeout address with
        | Error m ->
            Fmt.epr "client: %s@." m;
            1
        | Ok conn ->
            let send line =
              match Edb_server.Protocol.parse_request line with
              | Error m ->
                  Fmt.epr "bad request: %s@." m;
                  (1, true)
              | Ok request -> (
                  match Edb_server.Client.request conn request with
                  | Error m ->
                      Fmt.epr "client: %s@." m;
                      (1, false)
                  | Ok (Edb_server.Protocol.Err { code; message }) ->
                      Fmt.epr "ERR %s %s@." code message;
                      (1, code <> Edb_server.Protocol.err_busy)
                  | Ok (Edb_server.Protocol.Ok payload) ->
                      List.iter print_endline payload;
                      (0, request <> Edb_server.Protocol.Quit))
            in
            let rc =
              match words with
              | _ :: _ -> fst (send (String.concat " " words))
              | [] ->
                  (* REPL: one request per stdin line until EOF or QUIT. *)
                  let rc = ref 0 in
                  (try
                     let continue = ref true in
                     while !continue do
                       let line = input_line stdin in
                       if String.trim line <> "" then begin
                         let code, keep = send line in
                         rc := max !rc code;
                         continue := keep
                       end
                     done
                   with End_of_file -> ());
                  !rc
            in
            Edb_server.Client.close conn;
            rc)
  in
  let timeout_t =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Receive timeout.")
  in
  let words_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Protocol request, e.g. $(b,QUERY flights SELECT COUNT( * ) \
             ...); reads requests from stdin when omitted.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send requests to a running summary server.")
    Term.(
      const run $ verbose_t $ socket_t $ tcp_host_t $ tcp_port_t $ timeout_t
      $ words_t)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  (* Sugar for `client STATS`: one request, print the key/value lines
     (server counters, latency quantiles, and the obs_* registry). *)
  let run verbose socket tcp_host tcp_port timeout =
    setup_logs verbose;
    let address =
      match (socket, tcp_port) with
      | Some path, _ -> Some (Edb_server.Client.Unix_socket path)
      | None, Some port -> Some (Edb_server.Client.Tcp (tcp_host, port))
      | None, None -> None
    in
    match address with
    | None ->
        Fmt.epr "stats: need --socket or --tcp-port@.";
        2
    | Some address -> (
        match Edb_server.Client.connect ~timeout address with
        | Error m ->
            Fmt.epr "stats: %s@." m;
            1
        | Ok conn ->
            let rc =
              match Edb_server.Client.request conn Edb_server.Protocol.Stats with
              | Error m ->
                  Fmt.epr "stats: %s@." m;
                  1
              | Ok (Edb_server.Protocol.Err { code; message }) ->
                  Fmt.epr "ERR %s %s@." code message;
                  1
              | Ok (Edb_server.Protocol.Ok payload) ->
                  List.iter print_endline payload;
                  0
            in
            Edb_server.Client.close conn;
            rc)
  in
  let timeout_t =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Receive timeout.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print a running server's metrics (counters, latency quantiles, \
          obs registry).")
    Term.(
      const run $ verbose_t $ socket_t $ tcp_host_t $ tcp_port_t $ timeout_t)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run verbose budget base_seed replay mutate =
    setup_logs verbose;
    (* The sweep spins a server per case; its connection chatter is noise
       here unless the user asked for it. *)
    if not verbose then Logs.set_level (Some Logs.Warning);
    (match mutate with
    | None -> ()
    | Some "clamp" ->
        (* Plant a known estimator bug: a positive cancellation floor.
           The sweep must then report findings (exit 1). *)
        Entropydb_core.Poly.set_cancellation_floor 0.05
    | Some other ->
        Fmt.epr "unknown mutation %s (available: clamp)@." other;
        exit 2);
    let config = { Edb_check.Oracle.default with server = true } in
    let outcome =
      match replay with
      | Some seed -> Edb_check.Sweep.replay ~config seed
      | None -> (
          match Edb_check.Sweep.budget_of_string budget with
          | Error m ->
              Fmt.epr "%s@." m;
              exit 2
          | Ok b -> Edb_check.Sweep.run ~config ~base_seed b)
    in
    Edb_check.Sweep.print_outcome outcome;
    if outcome.Edb_check.Sweep.findings = [] then 0 else 1
  in
  let budget_t =
    Arg.(
      value & opt string "default"
      & info [ "budget" ] ~docv:"LEVEL"
          ~doc:"Sweep size: smoke (12 cases), default (48), or deep (200).")
  in
  let base_seed_t =
    Arg.(
      value & opt int 1000
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed of the sweep.")
  in
  let replay_t =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Re-run the full oracle battery on one seed (the repro \
                line of a previous failure) instead of a sweep.")
  in
  let mutate_t =
    Arg.(
      value & opt (some string) None
      & info [ "mutate" ] ~docv:"NAME"
          ~doc:"Plant a known bug before checking (self-test of the \
                harness).  Available: $(b,clamp), a positive cancellation \
                floor in the polynomial evaluator.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Cross-check every answer path with the correctness oracle \
             battery (differential, metamorphic, and exact tiers).")
    Term.(
      const run $ verbose_t $ budget_t $ base_seed_t $ replay_t $ mutate_t)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let run verbose name scale =
    setup_logs verbose;
    let config =
      match scale with
      | "full" -> Edb_experiments.Config.full ()
      | _ -> Edb_experiments.Config.small ()
    in
    let tables =
      match name with
      | "fig2b" -> Edb_experiments.Figures.fig2b config
      | "fig3" -> Edb_experiments.Figures.fig3 config
      | "fig4" -> Edb_experiments.Figures.fig4 config
      | "fig7" -> Edb_experiments.Figures.fig7 config
      | "compression" -> Edb_experiments.Figures.compression config
      | "ablation" -> Edb_experiments.Figures.ablation config
      | "hierarchy" -> Edb_experiments.Figures.hierarchy config
      | "fig5" | "fig6" | "fig8" | "costs" ->
          let lab = Edb_experiments.Lab.flights_lab config in
          (match name with
          | "fig5" -> Edb_experiments.Figures.fig5 lab
          | "fig6" -> Edb_experiments.Figures.fig6 lab
          | "fig8" -> Edb_experiments.Figures.fig8 lab
          | _ -> Edb_experiments.Figures.build_costs lab)
      | other ->
          Fmt.epr "unknown experiment %s@." other;
          exit 1
    in
    List.iter (fun t -> Edb_util.Table.print t) tables;
    0
  in
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"fig2b, fig3, fig4, fig5, fig6, fig7, fig8, compression, \
                ablation, hierarchy, or costs.")
  in
  let scale_t =
    Arg.(
      value & opt string "small"
      & info [ "scale" ] ~docv:"SCALE" ~doc:"small or full.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's figures.")
    Term.(const run $ verbose_t $ name_t $ scale_t)

let () =
  let info =
    Cmd.info "entropydb" ~version:"1.0.0"
      ~doc:"Probabilistic database summarization for interactive data \
            exploration (EntropyDB, VLDB 2017)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; build_cmd; summarize_cmd; query_cmd; explain_cmd;
            info_cmd; ingest_cmd;
            serve_cmd; client_cmd; stats_cmd; evaluate_cmd; check_cmd;
            experiment_cmd;
          ]))
