(* Tests for the synthetic dataset generators: determinism, the paper's
   Fig. 3 active-domain sizes, schema consistency between coarse and fine
   flights, and — crucially — the correlation structure the experiments
   rely on. *)

open Edb_storage
module F = Edb_datagen.Flights
module P = Edb_datagen.Particles

let flights = lazy (F.generate ~rows:30_000 ~seed:5 ())
let particles = lazy (P.generate ~rows_per_snapshot:12_000 ~snapshots:3 ~seed:5 ())

let test_flights_domain_sizes () =
  let f = Lazy.force flights in
  let cs = Relation.schema f.coarse and fs = Relation.schema f.fine in
  (* Paper Fig. 3 (left). *)
  Alcotest.(check int) "fl_date" 307 (Schema.domain_size cs F.fl_date);
  Alcotest.(check int) "origin coarse" 54 (Schema.domain_size cs F.origin);
  Alcotest.(check int) "dest coarse" 54 (Schema.domain_size cs F.dest);
  Alcotest.(check int) "fl_time" 62 (Schema.domain_size cs F.fl_time);
  Alcotest.(check int) "distance" 81 (Schema.domain_size cs F.distance);
  Alcotest.(check int) "origin fine" 147 (Schema.domain_size fs F.origin);
  Alcotest.(check int) "dest fine" 147 (Schema.domain_size fs F.dest);
  Alcotest.(check bool) "coarse |Tup| ~ 4.5e9" true
    (let s = Schema.tuple_space_size cs in
     s > 4.4e9 && s < 4.6e9);
  Alcotest.(check bool) "fine |Tup| ~ 3.3e10" true
    (let s = Schema.tuple_space_size fs in
     s > 3.2e10 && s < 3.4e10)

let test_particles_domain_sizes () =
  let rel = Lazy.force particles in
  let s = Relation.schema rel in
  (* Paper Fig. 3 (right). *)
  List.iter2
    (fun attr expected ->
      Alcotest.(check int) (Schema.attr_name s attr) expected
        (Schema.domain_size s attr))
    [ P.density; P.mass; P.x; P.y; P.z; P.grp; P.ptype; P.snapshot ]
    [ 58; 52; 21; 21; 21; 2; 3; 3 ];
  Alcotest.(check bool) "|Tup| ~ 5.0e8" true
    (let sz = Schema.tuple_space_size s in
     sz > 4.9e8 && sz < 5.1e8)

let test_flights_deterministic () =
  let a = F.generate ~rows:2_000 ~seed:9 () in
  let b = F.generate ~rows:2_000 ~seed:9 () in
  Relation.iteri
    (fun r row ->
      Alcotest.(check (array int)) "same rows" row (Relation.row b.coarse r))
    a.coarse;
  let c = F.generate ~rows:2_000 ~seed:10 () in
  let differs = ref false in
  Relation.iteri
    (fun r row -> if row <> Relation.row c.coarse r then differs := true)
    a.coarse;
  Alcotest.(check bool) "different seed differs" true !differs

let test_flights_coarse_fine_consistent () =
  (* The coarse relation is the fine relation with cities mapped onto their
     states; dates, times, and distances must agree row by row. *)
  let f = Lazy.force flights in
  Relation.iteri
    (fun r fine_row ->
      let coarse_row = Relation.row f.coarse r in
      Alcotest.(check int) "date" fine_row.(F.fl_date) coarse_row.(F.fl_date);
      Alcotest.(check int) "time" fine_row.(F.fl_time) coarse_row.(F.fl_time);
      Alcotest.(check int) "distance" fine_row.(F.distance)
        coarse_row.(F.distance);
      Alcotest.(check int) "origin state" f.city_state.(fine_row.(F.origin))
        coarse_row.(F.origin);
      Alcotest.(check int) "dest state" f.city_state.(fine_row.(F.dest))
        coarse_row.(F.dest))
    f.fine

let test_flights_correlations () =
  (* The experiments need (fl_time, distance), (origin, distance), and
     (dest, distance) clearly more correlated than anything involving
     fl_date (Sec. 6.2's pair selection). *)
  let f = Lazy.force flights in
  let v a b = Edb_select.Correlation.cramers_v f.coarse ~attr1:a ~attr2:b in
  let time_dist = v F.fl_time F.distance in
  let origin_dist = v F.origin F.distance in
  let dest_dist = v F.dest F.distance in
  let date_dist = v F.fl_date F.distance in
  let date_origin = v F.fl_date F.origin in
  (* At 30k rows the 307-value date attribute picks up sparse-sample noise
     in Cramér's V, so compare with an additive margin rather than a
     ratio. *)
  Alcotest.(check bool) "time-dist strong" true (time_dist > 0.3);
  Alcotest.(check bool) "origin-dist > date pairs" true
    (origin_dist > date_dist +. 0.03);
  Alcotest.(check bool) "dest-dist > date pairs" true
    (dest_dist > date_origin +. 0.03)

let test_flights_city_labels () =
  (* City labels are unique, each city maps to a valid state, and each
     state keeps at least one city bucket. *)
  let f = Lazy.force flights in
  let fs = Relation.schema f.fine in
  let domain = Schema.domain fs F.origin in
  let labels = List.init F.n_cities (fun c -> Domain.label domain c) in
  Alcotest.(check int) "labels unique" F.n_cities
    (List.length (List.sort_uniq compare labels));
  Array.iter
    (fun s ->
      if s < 0 || s >= F.n_states then Alcotest.fail "invalid state mapping")
    f.city_state;
  let states_with_city = Array.make F.n_states false in
  Array.iter (fun s -> states_with_city.(s) <- true) f.city_state;
  Alcotest.(check bool) "every state has a city" true
    (Array.for_all Fun.id states_with_city)

let test_flights_date_near_uniform () =
  let f = Lazy.force flights in
  let dev =
    Edb_select.Correlation.uniformity_deviation f.coarse ~attr:F.fl_date
  in
  Alcotest.(check bool) "fl_date near uniform" true (dev < 0.15)

let test_particles_correlations () =
  let rel = Lazy.force particles in
  let v a b = Edb_select.Correlation.cramers_v rel ~attr1:a ~attr2:b in
  (* Density must separate clustered from background particles, and mass
     must track particle type — the correlations Sec. 6.3 stratifies and
     summarizes on. *)
  Alcotest.(check bool) "density-grp strong" true (v P.density P.grp > 0.3);
  Alcotest.(check bool) "mass-type strong" true (v P.mass P.ptype > 0.3);
  Alcotest.(check bool) "x-snapshot weak" true
    (v P.x P.snapshot < v P.density P.grp)

let test_particles_grp_fraction_grows () =
  (* Structure formation: the clustered fraction grows with snapshots. *)
  let rel = Lazy.force particles in
  let arity = Schema.arity (Relation.schema rel) in
  let frac snap =
    let in_snap =
      Exec.count rel (Predicate.point ~arity [ (P.snapshot, snap) ])
    in
    let clustered =
      Exec.count rel
        (Predicate.point ~arity [ (P.snapshot, snap); (P.grp, 1) ])
    in
    float_of_int clustered /. float_of_int in_snap
  in
  Alcotest.(check bool) "grows" true (frac 2 > frac 0)

let test_particles_snapshot_bounds () =
  (try
     ignore (P.generate ~rows_per_snapshot:10 ~snapshots:4 ~seed:1 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let rel = P.generate ~rows_per_snapshot:10 ~snapshots:1 ~seed:1 () in
  Alcotest.(check int) "one snapshot rows" 10 (Relation.cardinality rel)

let () =
  Alcotest.run "entropydb-datagen"
    [
      ( "flights",
        [
          Alcotest.test_case "Fig 3 domain sizes" `Quick
            test_flights_domain_sizes;
          Alcotest.test_case "deterministic" `Quick test_flights_deterministic;
          Alcotest.test_case "coarse/fine consistent" `Quick
            test_flights_coarse_fine_consistent;
          Alcotest.test_case "correlation structure" `Quick
            test_flights_correlations;
          Alcotest.test_case "fl_date near uniform" `Quick
            test_flights_date_near_uniform;
          Alcotest.test_case "city labels and state map" `Quick
            test_flights_city_labels;
        ] );
      ( "particles",
        [
          Alcotest.test_case "Fig 3 domain sizes" `Quick
            test_particles_domain_sizes;
          Alcotest.test_case "correlation structure" `Quick
            test_particles_correlations;
          Alcotest.test_case "clustering grows over time" `Quick
            test_particles_grp_fraction_grows;
          Alcotest.test_case "snapshot bounds" `Quick
            test_particles_snapshot_bounds;
        ] );
    ]
