(* Tests for the storage substrate: domains, schemas, relations,
   predicates, the exact query engine, histograms, and CSV I/O.  Exec and
   Predicate are checked against naive reference implementations under
   qcheck-generated relations and predicates. *)

open Edb_util
open Edb_storage

(* ------------------------------------------------------------------ *)
(* Domain                                                              *)
(* ------------------------------------------------------------------ *)

let test_domain_categorical () =
  let d = Domain.categorical [| "CA"; "NY"; "WA" |] in
  Alcotest.(check int) "size" 3 (Domain.size d);
  Alcotest.(check (option int)) "lookup" (Some 1) (Domain.index_of_label d "NY");
  Alcotest.(check (option int)) "missing" None (Domain.index_of_label d "TX");
  Alcotest.(check string) "label" "WA" (Domain.label d 2);
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Domain.of_spec: duplicate label CA") (fun () ->
      ignore (Domain.categorical [| "CA"; "CA" |]))

let test_domain_int_bins () =
  let d = Domain.int_bins ~lo:10 ~hi:29 ~width:5 in
  Alcotest.(check int) "size" 4 (Domain.size d);
  Alcotest.(check (option int)) "first bin" (Some 0) (Domain.index_of_int d 10);
  Alcotest.(check (option int)) "second bin" (Some 1) (Domain.index_of_int d 15);
  Alcotest.(check (option int)) "last bin" (Some 3) (Domain.index_of_int d 29);
  Alcotest.(check (option int)) "below" None (Domain.index_of_int d 9);
  Alcotest.(check (option int)) "above" None (Domain.index_of_int d 30)

let test_domain_float_bins () =
  let d = Domain.float_bins ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check int) "size" 4 (Domain.size d);
  Alcotest.(check (option int)) "0.0" (Some 0) (Domain.index_of_float d 0.0);
  Alcotest.(check (option int)) "0.49" (Some 1) (Domain.index_of_float d 0.49);
  (* The top boundary belongs to the last bin, not a phantom bin. *)
  Alcotest.(check (option int)) "1.0" (Some 3) (Domain.index_of_float d 1.0);
  Alcotest.(check (option int)) "outside" None (Domain.index_of_float d 1.5)

let test_domain_midpoints () =
  let d = Domain.int_bins ~lo:10 ~hi:29 ~width:5 in
  (* Bin 0 covers [10, 14]: midpoint 12. *)
  Alcotest.(check (float 1e-9)) "int bin" 12. (Domain.bin_midpoint d 0);
  let d1 = Domain.int_bins ~lo:0 ~hi:9 ~width:1 in
  Alcotest.(check (float 1e-9)) "unit bin is its value" 7.
    (Domain.bin_midpoint d1 7);
  let f = Domain.float_bins ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check (float 1e-9)) "float bin" 0.375 (Domain.bin_midpoint f 1);
  (try
     ignore (Domain.bin_midpoint (Domain.categorical [| "x" |]) 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_domain_kind_mismatch () =
  let d = Domain.categorical [| "x" |] in
  (try
     ignore (Domain.index_of_int d 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let schema3 () =
  Schema.create
    [
      Schema.attr "a" (Domain.int_bins ~lo:0 ~hi:4 ~width:1);
      Schema.attr "b" (Domain.int_bins ~lo:0 ~hi:3 ~width:1);
      Schema.attr "c" (Domain.int_bins ~lo:0 ~hi:2 ~width:1);
    ]

let test_schema_basics () =
  let s = schema3 () in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (option int)) "find b" (Some 1) (Schema.find s "b");
  Alcotest.(check (option int)) "find missing" None (Schema.find s "zz");
  Alcotest.(check int) "domain size" 4 (Schema.domain_size s 1);
  Alcotest.(check (float 1e-9)) "tuple space" 60. (Schema.tuple_space_size s);
  Alcotest.check_raises "duplicate attrs"
    (Invalid_argument "Schema.create: duplicate attribute x") (fun () ->
      ignore
        (Schema.create
           [
             Schema.attr "x" (Domain.categorical [| "1" |]);
             Schema.attr "x" (Domain.categorical [| "2" |]);
           ]))

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

let random_relation ?(rows = 300) seed =
  let schema = schema3 () in
  let rng = Prng.create ~seed () in
  let b = Relation.builder schema in
  for _ = 1 to rows do
    Relation.add_row b
      [| Prng.int rng 5; Prng.int rng 4; Prng.int rng 3 |]
  done;
  Relation.build b

let test_relation_builder () =
  let rel = random_relation 1 in
  Alcotest.(check int) "cardinality" 300 (Relation.cardinality rel);
  let row = Relation.row rel 17 in
  Alcotest.(check int) "consistent access" row.(1)
    (Relation.get rel ~row:17 ~attr:1)

let test_relation_validation () =
  let schema = schema3 () in
  let b = Relation.builder schema in
  (try
     Relation.add_row b [| 9; 0; 0 |];
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (try
     Relation.add_row b [| 0; 0 |];
     Alcotest.fail "expected arity error"
   with Invalid_argument _ -> ())

let test_relation_select_rows () =
  let rel = random_relation 2 in
  let sub = Relation.select_rows rel [| 5; 5; 10 |] in
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality sub);
  Alcotest.(check (array int)) "row copied" (Relation.row rel 5)
    (Relation.row sub 0);
  Alcotest.(check (array int)) "repetition allowed" (Relation.row rel 5)
    (Relation.row sub 1)

let test_relation_project () =
  let rel = random_relation 3 in
  let proj = Relation.project rel [ 2; 0 ] in
  Alcotest.(check int) "arity" 2 (Schema.arity (Relation.schema proj));
  Alcotest.(check string) "attr order" "c"
    (Schema.attr_name (Relation.schema proj) 0);
  for r = 0 to 10 do
    Alcotest.(check int) "values follow" (Relation.get rel ~row:r ~attr:2)
      (Relation.get proj ~row:r ~attr:0)
  done

(* ------------------------------------------------------------------ *)
(* Predicate + Exec vs naive reference                                 *)
(* ------------------------------------------------------------------ *)

let pred_gen =
  (* Random conjunctive predicate over schema3. *)
  QCheck.Gen.(
    let restriction size =
      oneof
        [
          return None;
          (pair (int_bound (size - 1)) (int_bound 2) >|= fun (lo, len) ->
           Some (Ranges.interval lo (min (size - 1) (lo + len))));
          (return (Some Ranges.empty));
        ]
    in
    triple (restriction 5) (restriction 4) (restriction 3) >|= fun (a, b, c) ->
    let pairs =
      List.filter_map
        (fun (i, r) -> Option.map (fun r -> (i, r)) r)
        [ (0, a); (1, b); (2, c) ]
    in
    Predicate.of_alist ~arity:3 pairs)

let pred_arb = QCheck.make ~print:(Fmt.str "%a" Predicate.pp) pred_gen

let naive_count rel pred =
  let c = ref 0 in
  Relation.iteri (fun _ row -> if Predicate.matches_row pred row then incr c) rel;
  !c

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb f)

let exec_props =
  let rel = random_relation 7 in
  [
    prop "count = naive scan" pred_arb (fun p ->
        Exec.count rel p = naive_count rel p);
    prop "count under conj <= both" QCheck.(pair pred_arb pred_arb)
      (fun (p, q) ->
        let c = Exec.count rel (Predicate.conj p q) in
        c <= Exec.count rel p && c <= Exec.count rel q);
    prop "group_count sums to count" pred_arb (fun p ->
        let total =
          List.fold_left
            (fun acc (_, c) -> acc + c)
            0
            (Exec.group_count ~pred:p rel ~attrs:[ 0; 2 ])
        in
        total = Exec.count rel p);
    prop "selectivity_count bounds" pred_arb (fun p ->
        let s = Predicate.selectivity_count p (Relation.schema rel) in
        s >= 0. && s <= 60.);
  ]

let test_predicate_basics () =
  let p = Predicate.point ~arity:3 [ (0, 2); (2, 1) ] in
  Alcotest.(check bool) "matches" true (Predicate.matches_row p [| 2; 3; 1 |]);
  Alcotest.(check bool) "fails" false (Predicate.matches_row p [| 2; 3; 2 |]);
  Alcotest.(check (list int)) "restricted attrs" [ 0; 2 ]
    (Predicate.restricted_attrs p);
  Alcotest.(check bool) "tautology matches" true
    (Predicate.matches_row (Predicate.tautology 3) [| 0; 0; 0 |]);
  let unsat = Predicate.restrict p 0 (Ranges.singleton 4) in
  Alcotest.(check bool) "unsat" true (Predicate.is_unsatisfiable unsat)

let test_predicate_conj_intersects () =
  let p = Predicate.of_alist ~arity:2 [ (0, Ranges.interval 0 3) ] in
  let q = Predicate.of_alist ~arity:2 [ (0, Ranges.interval 2 5) ] in
  let pq = Predicate.conj p q in
  match Predicate.restriction pq 0 with
  | Some r ->
      Alcotest.(check (list (pair int int))) "intersection" [ (2, 3) ]
        (Ranges.intervals r)
  | None -> Alcotest.fail "expected a restriction"

let test_sum_avg () =
  let rel = random_relation 19 in
  (* Attribute 0 has unit-width bins starting at 0, so midpoint = index
     and SUM over a predicate equals the sum of the column values. *)
  let pred = Predicate.of_alist ~arity:3 [ (1, Ranges.interval 0 1) ] in
  let reference = ref 0 and count = ref 0 in
  Relation.iteri
    (fun _ row ->
      if Predicate.matches_row pred row then begin
        reference := !reference + row.(0);
        incr count
      end)
    rel;
  Alcotest.(check (float 1e-9)) "sum" (float_of_int !reference)
    (Exec.sum rel ~attr:0 pred);
  (match Exec.avg rel ~attr:0 pred with
  | Some avg ->
      Alcotest.(check (float 1e-9)) "avg"
        (float_of_int !reference /. float_of_int !count)
        avg
  | None -> Alcotest.fail "avg undefined");
  (* Empty predicate: sum 0, avg undefined. *)
  let empty = Predicate.of_alist ~arity:3 [ (0, Edb_util.Ranges.empty) ] in
  Alcotest.(check (float 1e-9)) "empty sum" 0. (Exec.sum rel ~attr:0 empty);
  Alcotest.(check bool) "empty avg" true (Exec.avg rel ~attr:0 empty = None)

let test_group_by_and_topk () =
  let schema =
    Schema.create [ Schema.attr "g" (Domain.int_bins ~lo:0 ~hi:2 ~width:1) ]
  in
  let rel =
    Relation.of_rows schema
      (List.map (fun v -> [| v |]) [ 0; 0; 0; 1; 1; 2; 2; 2; 2 ])
  in
  let top = Exec.top_k rel ~attrs:[ 0 ] ~k:2 in
  Alcotest.(check (list (pair (list int) int)))
    "top 2"
    [ ([ 2 ], 4); ([ 0 ], 3) ]
    top;
  let bottom = Exec.bottom_k rel ~attrs:[ 0 ] ~k:1 in
  Alcotest.(check (list (pair (list int) int))) "bottom" [ ([ 1 ], 2) ] bottom

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histograms () =
  let rel = random_relation 11 in
  let h1 = Histogram.d1 rel ~attr:0 in
  Alcotest.(check int) "1D total" 300 (Array.fold_left ( + ) 0 h1);
  Array.iteri
    (fun v c ->
      Alcotest.(check int) "1D = point count" c
        (Exec.count rel (Predicate.point ~arity:3 [ (0, v) ])))
    h1;
  let h2 = Histogram.d2 rel ~attr1:0 ~attr2:1 in
  Alcotest.(check int) "2D total" 300 (Histogram.total h2);
  for i = 0 to 4 do
    for j = 0 to 3 do
      Alcotest.(check int) "2D cell = point count"
        (Exec.count rel (Predicate.point ~arity:3 [ (0, i); (1, j) ]))
        (Histogram.get h2 ~i ~j)
    done
  done;
  Alcotest.(check int) "rect_sum = range count"
    (Exec.count rel
       (Predicate.of_alist ~arity:3
          [ (0, Ranges.interval 1 3); (1, Ranges.interval 0 1) ]))
    (Histogram.rect_sum h2 ~i_lo:1 ~i_hi:3 ~j_lo:0 ~j_hi:1);
  let nz = Histogram.nonzero_cells h2 and z = Histogram.zero_cells h2 in
  Alcotest.(check int) "cells partition" 20 (List.length nz + List.length z)

(* ------------------------------------------------------------------ *)
(* Bitmap index                                                        *)
(* ------------------------------------------------------------------ *)

let bitmap_props =
  let rel = random_relation ~rows:500 23 in
  let index = Bitmap.create rel in
  [
    prop "bitmap count = scan count" pred_arb (fun p ->
        Bitmap.count index p = Exec.count rel p);
  ]

let test_bitmap_edge_sizes () =
  (* Row counts around the 63-bit word boundary. *)
  List.iter
    (fun rows ->
      let rel = random_relation ~rows 29 in
      let index = Bitmap.create rel in
      Alcotest.(check int)
        (Printf.sprintf "tautology at %d rows" rows)
        rows
        (Bitmap.count index (Predicate.tautology 3));
      let p = Predicate.point ~arity:3 [ (0, 1) ] in
      Alcotest.(check int)
        (Printf.sprintf "point at %d rows" rows)
        (Exec.count rel p) (Bitmap.count index p))
    [ 1; 62; 63; 64; 126; 127 ];
  let rel = random_relation ~rows:10 31 in
  let index = Bitmap.create rel in
  Alcotest.(check bool) "memory accounted" true (Bitmap.memory_words index > 0)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let rel = random_relation 13 in
  let path = Filename.temp_file "edb" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save_indices rel path;
      match Csv_io.load_indices (Relation.schema rel) path with
      | Error e -> Alcotest.failf "load failed: %a" Csv_io.pp_error e
      | Ok rel' ->
          Alcotest.(check int) "cardinality" (Relation.cardinality rel)
            (Relation.cardinality rel');
          Relation.iteri
            (fun r row ->
              Alcotest.(check (array int)) "row" row (Relation.row rel' r))
            rel)

let test_csv_bad_header () =
  let path = Filename.temp_file "edb" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "x,y,z\n1,2,3\n";
      close_out oc;
      match Csv_io.load_indices (schema3 ()) path with
      | Error { line = 1; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %a" Csv_io.pp_error e
      | Ok _ -> Alcotest.fail "expected header error")

let test_csv_bad_value () =
  let path = Filename.temp_file "edb" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "a,b,c\n1,2,2\n9,0,0\n";
      close_out oc;
      match Csv_io.load_indices (schema3 ()) path with
      | Error { line = 3; _ } -> ()
      | Error e -> Alcotest.failf "wrong error: %a" Csv_io.pp_error e
      | Ok _ -> Alcotest.fail "expected out-of-domain error")

let () =
  Alcotest.run "entropydb-storage"
    [
      ( "domain",
        [
          Alcotest.test_case "categorical" `Quick test_domain_categorical;
          Alcotest.test_case "int bins" `Quick test_domain_int_bins;
          Alcotest.test_case "float bins" `Quick test_domain_float_bins;
          Alcotest.test_case "bin midpoints" `Quick test_domain_midpoints;
          Alcotest.test_case "kind mismatch" `Quick test_domain_kind_mismatch;
        ] );
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema_basics ]);
      ( "relation",
        [
          Alcotest.test_case "builder" `Quick test_relation_builder;
          Alcotest.test_case "validation" `Quick test_relation_validation;
          Alcotest.test_case "select_rows" `Quick test_relation_select_rows;
          Alcotest.test_case "project" `Quick test_relation_project;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "basics" `Quick test_predicate_basics;
          Alcotest.test_case "conj intersects" `Quick
            test_predicate_conj_intersects;
        ] );
      ( "exec",
        Alcotest.test_case "group by / top-k" `Quick test_group_by_and_topk
        :: Alcotest.test_case "sum / avg" `Quick test_sum_avg
        :: exec_props );
      ("histogram", [ Alcotest.test_case "1D/2D/rects" `Quick test_histograms ]);
      ( "bitmap",
        Alcotest.test_case "word-boundary sizes" `Quick test_bitmap_edge_sizes
        :: bitmap_props );
      ( "csv",
        [
          Alcotest.test_case "round trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "bad header" `Quick test_csv_bad_header;
          Alcotest.test_case "bad value" `Quick test_csv_bad_value;
        ] );
    ]
