(* Tests for the sampling baselines: sizes and weights, stratified
   allocation invariants (qcheck), per-stratum coverage, and statistical
   unbiasedness of the Horvitz–Thompson estimators. *)

open Edb_util
open Edb_storage
open Edb_sampling

let schema2 () =
  Schema.create
    [
      Schema.attr "g" (Domain.int_bins ~lo:0 ~hi:4 ~width:1);
      Schema.attr "x" (Domain.int_bins ~lo:0 ~hi:9 ~width:1);
    ]

(* Skewed relation: stratum g has roughly 4^g rows, giving tiny and huge
   strata. *)
let skewed_relation rows seed =
  let rng = Prng.create ~seed () in
  let b = Relation.builder (schema2 ()) in
  let weights = Array.init 5 (fun g -> 4. ** float_of_int g) in
  let dist = Prng.Categorical.create weights in
  for _ = 1 to rows do
    Relation.add_row b [| Prng.Categorical.sample dist rng; Prng.int rng 10 |]
  done;
  Relation.build b

(* ------------------------------------------------------------------ *)
(* Uniform                                                             *)
(* ------------------------------------------------------------------ *)

let test_uniform_size_and_weight () =
  let rel = skewed_relation 10_000 1 in
  let s = Uniform.create (Prng.create ~seed:2 ()) ~rate:0.01 rel in
  Alcotest.(check int) "size" 100 (Sample.size s);
  Alcotest.(check int) "source" 10_000 (Sample.source_cardinality s);
  Alcotest.(check (float 1e-9)) "total weight = n" 10_000.
    (Sample.estimate_count s (Predicate.tautology 2))

let test_uniform_rejects_bad_rate () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Uniform.create: rate must be in (0, 1]") (fun () ->
      ignore (Uniform.create (Prng.create ()) ~rate:0. rel))

let test_uniform_unbiased () =
  (* Average of many independent sample estimates approaches the truth. *)
  let rel = skewed_relation 5_000 3 in
  let pred = Predicate.point ~arity:2 [ (0, 3) ] in
  let truth = float_of_int (Exec.count rel pred) in
  let rng = Prng.create ~seed:4 () in
  let reps = 300 in
  let estimates =
    Array.init reps (fun _ ->
        Sample.estimate_count (Uniform.create rng ~rate:0.02 rel) pred)
  in
  let mean = Floatx.mean estimates in
  (* 4-sigma tolerance on the mean of means. *)
  let se = Floatx.stddev estimates /. sqrt (float_of_int reps) in
  if Float.abs (mean -. truth) > (4. *. se) +. 1e-6 then
    Alcotest.failf "biased: mean %.2f vs truth %.2f (se %.2f)" mean truth se

(* ------------------------------------------------------------------ *)
(* Stratified allocation (qcheck invariants)                           *)
(* ------------------------------------------------------------------ *)

let sizes_arb =
  QCheck.(
    make
      ~print:Print.(pair (list int) (pair int int) |> fun p -> p)
      Gen.(
        pair
          (list_size (int_range 1 12) (int_range 1 500))
          (pair (int_range 1 300) (int_range 1 10))))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name sizes_arb f)

let allocation_props =
  [
    prop "never exceeds stratum size" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        Array.for_all2 (fun a s -> a <= s) alloc sizes);
    prop "never exceeds budget (when feasible)" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        (* The degraded floor guarantees at most one row per stratum even
           when budget < #strata; allow that slack. *)
        Array.fold_left ( + ) 0 alloc <= max budget (Array.length sizes));
    prop "non-negative" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        Array.for_all (fun a -> a >= 0) alloc);
    prop "small strata fully covered when budget allows"
      (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        let n = Array.length sizes in
        if n * floor_ <= budget then
          Array.for_all2 (fun a s -> a >= min s floor_) alloc sizes
        else true);
  ]

(* ------------------------------------------------------------------ *)
(* Stratified sampling                                                 *)
(* ------------------------------------------------------------------ *)

let test_stratified_covers_small_strata () =
  let rel = skewed_relation 10_000 5 in
  let s =
    Stratified.create (Prng.create ~seed:6 ()) ~rate:0.01 ~attrs:[ 0 ] rel
  in
  (* Every existing stratum value must appear in the sample — the whole
     point of stratification (a 1% uniform sample would likely miss
     stratum 0, which has ~30 rows). *)
  for g = 0 to 4 do
    let truth = Exec.count rel (Predicate.point ~arity:2 [ (0, g) ]) in
    if truth > 0 then begin
      let est =
        Sample.estimate_count s (Predicate.point ~arity:2 [ (0, g) ])
      in
      if est <= 0. then Alcotest.failf "stratum %d missing from sample" g
    end
  done

let test_stratified_per_stratum_totals () =
  (* Within each stratum, the weighted sample total equals the stratum size
     exactly (weights are size/alloc). *)
  let rel = skewed_relation 8_000 7 in
  let s =
    Stratified.create (Prng.create ~seed:8 ()) ~rate:0.02 ~attrs:[ 0 ] rel
  in
  for g = 0 to 4 do
    let pred = Predicate.point ~arity:2 [ (0, g) ] in
    let truth = float_of_int (Exec.count rel pred) in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "stratum %d total" g)
      truth
      (Sample.estimate_count s pred)
  done

let test_stratified_group_estimate () =
  let rel = skewed_relation 8_000 9 in
  let s =
    Stratified.create (Prng.create ~seed:10 ()) ~rate:0.02 ~attrs:[ 0 ] rel
  in
  let groups = Sample.estimate_group_count s ~attrs:[ 0 ] (Predicate.tautology 2) in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. groups in
  Alcotest.(check (float 1e-6)) "weighted group total = n" 8_000. total

let test_stratified_rejects_empty_attrs () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "no attrs"
    (Invalid_argument "Stratified.create: no stratification attrs") (fun () ->
      ignore (Stratified.create (Prng.create ()) ~rate:0.1 ~attrs:[] rel))

let test_sample_weights_length_guard () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Sample.create: weights/rows mismatch") (fun () ->
      ignore
        (Sample.create ~data:rel ~weights:[| 1. |] ~source_cardinality:100
           ~description:"bad"))

let () =
  Alcotest.run "entropydb-sampling"
    [
      ( "uniform",
        [
          Alcotest.test_case "size and weight" `Quick
            test_uniform_size_and_weight;
          Alcotest.test_case "rejects bad rate" `Quick
            test_uniform_rejects_bad_rate;
          Alcotest.test_case "unbiased (statistical)" `Slow
            test_uniform_unbiased;
        ] );
      ("allocation", allocation_props);
      ( "stratified",
        [
          Alcotest.test_case "covers small strata" `Quick
            test_stratified_covers_small_strata;
          Alcotest.test_case "per-stratum totals exact" `Quick
            test_stratified_per_stratum_totals;
          Alcotest.test_case "group estimates" `Quick
            test_stratified_group_estimate;
          Alcotest.test_case "rejects empty attrs" `Quick
            test_stratified_rejects_empty_attrs;
        ] );
      ( "sample",
        [
          Alcotest.test_case "weights length guard" `Quick
            test_sample_weights_length_guard;
        ] );
    ]
