test/test_util.ml: Alcotest Array Edb_util Float Floatx Fmt Fun List Parallel Printf Prng QCheck QCheck_alcotest Ranges String Table Timing
