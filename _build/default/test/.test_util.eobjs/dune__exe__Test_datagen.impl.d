test/test_datagen.ml: Alcotest Array Domain Edb_datagen Edb_select Edb_storage Exec Fun Lazy List Predicate Relation Schema
