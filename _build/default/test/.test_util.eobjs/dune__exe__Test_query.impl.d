test/test_query.ml: Alcotest Ast Domain Edb_query Edb_storage Edb_util Exec Fmt Lexer List Option Parser Predicate Prng Ranges Relation Schema String Translate
