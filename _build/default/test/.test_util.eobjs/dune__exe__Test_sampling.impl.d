test/test_sampling.ml: Alcotest Array Domain Edb_sampling Edb_storage Edb_util Exec Float Floatx Gen List Predicate Print Printf Prng QCheck QCheck_alcotest Relation Sample Schema Stratified Uniform
