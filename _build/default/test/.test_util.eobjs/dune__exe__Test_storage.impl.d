test/test_storage.ml: Alcotest Array Bitmap Csv_io Domain Edb_storage Edb_util Exec Filename Fmt Fun Histogram List Option Predicate Printf Prng QCheck QCheck_alcotest Ranges Relation Schema Sys
