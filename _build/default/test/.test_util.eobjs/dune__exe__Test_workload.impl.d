test/test_workload.ml: Alcotest Array Domain Edb_storage Edb_util Edb_workload Entropydb_core Exec Float Hitters List Methods Metrics Predicate Prng QCheck QCheck_alcotest Relation Runner Schema
