(* Tests for statistic selection (Sec. 4.3): chi-squared / Cramér's V,
   pair-selection strategies, the modified KD-tree (including the paper's
   Fig. 2a split example), and the three heuristics. *)

open Edb_util
open Edb_storage
open Edb_select

let schema2 sizes =
  Schema.create
    (List.mapi
       (fun i n ->
         Schema.attr
           (Printf.sprintf "a%d" i)
           (Domain.int_bins ~lo:0 ~hi:(n - 1) ~width:1))
       sizes)

(* ------------------------------------------------------------------ *)
(* Correlation                                                         *)
(* ------------------------------------------------------------------ *)

let test_cramers_v_independent () =
  (* Independent uniform attributes: V near 0. *)
  let rng = Prng.create ~seed:1 () in
  let schema = schema2 [ 6; 6 ] in
  let b = Relation.builder schema in
  for _ = 1 to 20_000 do
    Relation.add_row b [| Prng.int rng 6; Prng.int rng 6 |]
  done;
  let rel = Relation.build b in
  let v = Correlation.cramers_v rel ~attr1:0 ~attr2:1 in
  Alcotest.(check bool) (Printf.sprintf "V=%.3f small" v) true (v < 0.05)

let test_cramers_v_functional () =
  (* A deterministic dependency: V = 1. *)
  let rng = Prng.create ~seed:2 () in
  let schema = schema2 [ 6; 6 ] in
  let b = Relation.builder schema in
  for _ = 1 to 5_000 do
    let x = Prng.int rng 6 in
    Relation.add_row b [| x; (x + 1) mod 6 |]
  done;
  let rel = Relation.build b in
  Alcotest.(check (float 1e-6)) "V = 1" 1.
    (Correlation.cramers_v rel ~attr1:0 ~attr2:1)

let test_cramers_v_ordering () =
  (* Noisy dependency sits between independent and functional. *)
  let rng = Prng.create ~seed:3 () in
  let schema = schema2 [ 6; 6; 6 ] in
  let b = Relation.builder schema in
  for _ = 1 to 20_000 do
    let x = Prng.int rng 6 in
    let noisy = if Prng.unit_float rng < 0.5 then x else Prng.int rng 6 in
    Relation.add_row b [| x; noisy; Prng.int rng 6 |]
  done;
  let rel = Relation.build b in
  let v01 = Correlation.cramers_v rel ~attr1:0 ~attr2:1 in
  let v02 = Correlation.cramers_v rel ~attr1:0 ~attr2:2 in
  Alcotest.(check bool) "dependent > independent" true (v01 > (2. *. v02) +. 0.1)

let test_uniformity_deviation () =
  let schema = schema2 [ 4 ] in
  let uniform =
    Relation.of_rows schema
      (List.concat_map (fun v -> List.init 25 (fun _ -> [| v |])) [ 0; 1; 2; 3 ])
  in
  let skewed =
    Relation.of_rows schema
      (List.init 100 (fun i -> [| (if i < 97 then 0 else 1 + (i mod 3)) |]))
  in
  Alcotest.(check (float 1e-9)) "uniform = 0" 0.
    (Correlation.uniformity_deviation uniform ~attr:0);
  Alcotest.(check bool) "skewed > uniform" true
    (Correlation.uniformity_deviation skewed ~attr:0 > 0.5)

let test_rank_pairs_excludes () =
  let rng = Prng.create ~seed:4 () in
  let schema = schema2 [ 4; 4; 4 ] in
  let b = Relation.builder schema in
  for _ = 1 to 2_000 do
    Relation.add_row b [| Prng.int rng 4; Prng.int rng 4; Prng.int rng 4 |]
  done;
  let rel = Relation.build b in
  let ranked = Correlation.rank_pairs ~exclude:[ 1 ] rel in
  Alcotest.(check int) "only (0,2)" 1 (List.length ranked);
  Alcotest.(check bool) "pair is (0,2)" true (fst (List.hd ranked) = (0, 2))

(* ------------------------------------------------------------------ *)
(* Pair selection strategies                                           *)
(* ------------------------------------------------------------------ *)

(* Four attributes where correlation ranks BC > AB > CD > AD.  The paper's
   example: correlation-first picks BC then AB (sharing B); cover-first
   picks BC then AD to span all four attributes. *)
let corr_rel () =
  let rng = Prng.create ~seed:5 () in
  let schema = schema2 [ 5; 5; 5; 5 ] in
  let b = Relation.builder schema in
  let noisy x p = if Prng.unit_float rng < p then x else Prng.int rng 5 in
  for _ = 1 to 30_000 do
    let bv = Prng.int rng 5 in
    let cv = noisy bv 0.9 in
    let av = noisy bv 0.6 in
    let dv = noisy cv 0.3 in
    Relation.add_row b [| av; bv; cv; dv |]
  done;
  Relation.build b

let test_strategy_correlation () =
  let rel = corr_rel () in
  let pairs = Pairs.select ~strategy:Pairs.By_correlation ~budget:2 rel in
  (* Most correlated pair (1,2) first; second must add a new attribute. *)
  Alcotest.(check bool) "BC first" true (List.hd pairs = (1, 2));
  Alcotest.(check int) "two pairs" 2 (List.length pairs)

let test_strategy_cover () =
  let rel = corr_rel () in
  let pairs = Pairs.select ~strategy:Pairs.By_cover ~budget:2 rel in
  Alcotest.(check bool) "BC first" true (List.hd pairs = (1, 2));
  (* The second pair must cover the remaining attributes 0 and 3. *)
  Alcotest.(check bool) "covers A and D" true (List.nth pairs 1 = (0, 3))

let test_select_auto () =
  let rel = corr_rel () in
  let pairs = Pairs.select_auto rel in
  (* BC (V ~ 0.8) must survive; pure-noise pairs like AD-with-A must not
     push the count past the strong set; output is bounded. *)
  Alcotest.(check bool) "keeps the strongest pair" true
    (List.mem (1, 2) pairs);
  Alcotest.(check bool) "bounded" true (List.length pairs <= 4);
  (* On an all-independent relation nothing survives the absolute floor. *)
  let rng = Prng.create ~seed:44 () in
  let schema = schema2 [ 5; 5; 5 ] in
  let b = Relation.builder schema in
  for _ = 1 to 30_000 do
    Relation.add_row b [| Prng.int rng 5; Prng.int rng 5; Prng.int rng 5 |]
  done;
  let indep = Relation.build b in
  Alcotest.(check (list (pair int int))) "independent -> none" []
    (Pairs.select_auto indep)

let test_split_budget () =
  Alcotest.(check int) "even" 500 (Pairs.split_budget ~total:1500 ~pairs:3);
  Alcotest.(check int) "floor 1" 1 (Pairs.split_budget ~total:2 ~pairs:5)

(* ------------------------------------------------------------------ *)
(* KD-tree                                                             *)
(* ------------------------------------------------------------------ *)

(* The paper's Fig. 2a grid.  Cell counts (rows = u1'..u3', cols =
   u1..u4):
       2 10 10 10
       1 10 10 10
       1 12 10 10
   The min-SSE vertical split separates column u1 (counts 2,1,1) from the
   rest, whereas a median split would cut between u2 and u3. *)
let fig2a = [| [| 2; 10; 10; 10 |]; [| 1; 10; 10; 10 |]; [| 1; 12; 10; 10 |] |]

let test_fig2a_split () =
  let t = Kdtree.prepare (fun i j -> fig2a.(i).(j)) ~rows:3 ~cols:4 in
  let root = { Kdtree.i_lo = 0; i_hi = 2; j_lo = 0; j_hi = 3 } in
  match Kdtree.best_split t root ~dim:1 with
  | Some (_, cut, left, right) ->
      Alcotest.(check int) "cut after column u1" 0 cut;
      Alcotest.(check int) "left is one column" 0 left.Kdtree.j_hi;
      Alcotest.(check int) "right starts at u2" 1 right.Kdtree.j_lo
  | None -> Alcotest.fail "expected a split"

let rects_tile ~rows ~cols rects =
  (* Every cell covered exactly once. *)
  let covered = Array.make_matrix rows cols 0 in
  List.iter
    (fun (r : Kdtree.rect) ->
      for i = r.i_lo to r.i_hi do
        for j = r.j_lo to r.j_hi do
          covered.(i).(j) <- covered.(i).(j) + 1
        done
      done)
    rects;
  Array.for_all (fun row -> Array.for_all (fun c -> c = 1) row) covered

let kd_arb =
  QCheck.(
    make
      ~print:Print.(triple int int (list int))
      Gen.(
        triple (int_range 1 8) (int_range 1 8)
          (list_size (return 64) (int_bound 30))))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name kd_arb f)

let kd_props =
  [
    prop "partition tiles the grid" (fun (rows, cols, cells) ->
        let cells = Array.of_list cells in
        let get i j = cells.(((i * cols) + j) mod Array.length cells) in
        let rects = Kdtree.partition ~budget:6 get ~rows ~cols in
        rects_tile ~rows ~cols rects);
    prop "never exceeds budget" (fun (rows, cols, cells) ->
        let cells = Array.of_list cells in
        let get i j = cells.(((i * cols) + j) mod Array.length cells) in
        List.length (Kdtree.partition ~budget:5 get ~rows ~cols) <= 5);
    prop "budget 1 is the whole grid" (fun (rows, cols, cells) ->
        let cells = Array.of_list cells in
        let get i j = cells.(((i * cols) + j) mod Array.length cells) in
        match Kdtree.partition ~budget:1 get ~rows ~cols with
        | [ r ] ->
            r.Kdtree.i_lo = 0 && r.i_hi = rows - 1 && r.j_lo = 0
            && r.j_hi = cols - 1
        | _ -> false);
  ]

let test_kdtree_budget_saturation () =
  (* A fully heterogeneous grid can be split down to single cells. *)
  let rects =
    Kdtree.partition ~budget:100 (fun i j -> (i * 17) + (j * 31)) ~rows:4 ~cols:4
  in
  Alcotest.(check int) "16 single cells" 16 (List.length rects)

let test_kdtree_homogeneous_stops () =
  (* A constant grid has zero SSE everywhere: no split is useful. *)
  let rects = Kdtree.partition ~budget:10 (fun _ _ -> 5) ~rows:4 ~cols:4 in
  Alcotest.(check int) "single leaf" 1 (List.length rects)

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

let heuristic_rel () =
  let rng = Prng.create ~seed:7 () in
  let schema = schema2 [ 8; 8 ] in
  let b = Relation.builder schema in
  for _ = 1 to 4_000 do
    (* Mass concentrated in the top-left quadrant; bottom-right is empty. *)
    let x = Prng.int rng 5 and y = Prng.int rng 5 in
    Relation.add_row b [| x; y |]
  done;
  Relation.build b

let test_large_heuristic () =
  let rel = heuristic_rel () in
  let preds = Heuristic.select Heuristic.Large rel ~attr1:0 ~attr2:1 ~budget:5 in
  Alcotest.(check int) "budget respected" 5 (List.length preds);
  (* Each predicate is a single cell, and together they cover the top-5
     cells by count. *)
  let h = Histogram.d2 rel ~attr1:0 ~attr2:1 in
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare b a) (Histogram.nonzero_cells h)
  in
  let top5 = List.filteri (fun i _ -> i < 5) sorted |> List.map fst in
  List.iter
    (fun p ->
      match (Predicate.restriction p 0, Predicate.restriction p 1) with
      | Some r0, Some r1 ->
          Alcotest.(check int) "single cell" 1 (Ranges.cardinal r0);
          Alcotest.(check int) "single cell" 1 (Ranges.cardinal r1);
          let cell = (Ranges.min_elt r0, Ranges.min_elt r1) in
          Alcotest.(check bool) "is a top-5 cell" true (List.mem cell top5)
      | _ -> Alcotest.fail "missing restriction")
    preds

let test_zero_heuristic () =
  let rel = heuristic_rel () in
  let preds = Heuristic.select Heuristic.Zero rel ~attr1:0 ~attr2:1 ~budget:10 in
  Alcotest.(check int) "budget respected" 10 (List.length preds);
  (* All chosen cells must be empty (39 zero cells exist, more than the
     budget). *)
  List.iter
    (fun p -> Alcotest.(check int) "zero cell" 0 (Exec.count rel p))
    preds

let test_zero_heuristic_topup () =
  (* With a budget above the number of empty cells, ZERO tops up with heavy
     cells. *)
  let schema = schema2 [ 2; 2 ] in
  let rel =
    Relation.of_rows schema [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 0; 0 |] ]
  in
  (* Only (1,1) is empty. *)
  let preds = Heuristic.select Heuristic.Zero rel ~attr1:0 ~attr2:1 ~budget:3 in
  Alcotest.(check int) "3 statistics" 3 (List.length preds);
  let zero_count =
    List.length (List.filter (fun p -> Exec.count rel p = 0) preds)
  in
  Alcotest.(check int) "one zero cell" 1 zero_count

let test_composite_heuristic_disjoint () =
  let rel = heuristic_rel () in
  let preds =
    Heuristic.select Heuristic.Composite rel ~attr1:0 ~attr2:1 ~budget:12
  in
  Alcotest.(check bool) "within budget" true (List.length preds <= 12);
  (* Rectangles tile the grid: pairwise disjoint and total selectivity =
     64 cells. *)
  let total =
    List.fold_left
      (fun acc p ->
        acc +. Predicate.selectivity_count p (Relation.schema rel))
      0. preds
  in
  Alcotest.(check (float 1e-9)) "covers all 64 cells" 64. total;
  List.iteri
    (fun i p ->
      List.iteri
        (fun k q ->
          if i < k then
            Alcotest.(check bool) "disjoint" true
              (Predicate.is_unsatisfiable (Predicate.conj p q)))
        preds)
    preds

let test_heuristic_validation () =
  let rel = heuristic_rel () in
  (try
     ignore (Heuristic.select Heuristic.Large rel ~attr1:0 ~attr2:0 ~budget:5);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Heuristic.select Heuristic.Large rel ~attr1:0 ~attr2:1 ~budget:0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "entropydb-select"
    [
      ( "correlation",
        [
          Alcotest.test_case "independent ~ 0" `Quick test_cramers_v_independent;
          Alcotest.test_case "functional = 1" `Quick test_cramers_v_functional;
          Alcotest.test_case "ordering" `Quick test_cramers_v_ordering;
          Alcotest.test_case "uniformity deviation" `Quick
            test_uniformity_deviation;
          Alcotest.test_case "rank_pairs exclude" `Quick
            test_rank_pairs_excludes;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "correlation strategy" `Quick
            test_strategy_correlation;
          Alcotest.test_case "cover strategy" `Quick test_strategy_cover;
          Alcotest.test_case "automatic breadth" `Quick test_select_auto;
          Alcotest.test_case "split budget" `Quick test_split_budget;
        ] );
      ( "kdtree",
        Alcotest.test_case "paper Fig 2a split" `Quick test_fig2a_split
        :: Alcotest.test_case "saturates to single cells" `Quick
             test_kdtree_budget_saturation
        :: Alcotest.test_case "homogeneous grid stops" `Quick
             test_kdtree_homogeneous_stops
        :: kd_props );
      ( "heuristics",
        [
          Alcotest.test_case "LARGE picks top cells" `Quick test_large_heuristic;
          Alcotest.test_case "ZERO picks empty cells" `Quick test_zero_heuristic;
          Alcotest.test_case "ZERO tops up" `Quick test_zero_heuristic_topup;
          Alcotest.test_case "COMPOSITE tiles disjointly" `Quick
            test_composite_heuristic_disjoint;
          Alcotest.test_case "validation" `Quick test_heuristic_validation;
        ] );
    ]
