(* End-to-end integration tests: the full pipeline the README promises —
   generate data, choose statistics, build a summary, answer SQL — plus
   serialization through disk and the accuracy contracts that make the
   system useful (summary beats uniform sampling on rare values, exact
   statistics are reproduced, hierarchical drill-down works on flights). *)

open Edb_util
open Edb_storage
open Edb_workload
open Entropydb_core
module F = Edb_datagen.Flights

let quiet = { Solver.default_config with log_every = 0 }

(* Shared small flights pipeline: built once, used by several tests. *)
let pipeline =
  lazy
    (let flights = F.generate ~rows:40_000 ~seed:77 () in
     let rel = flights.coarse in
     let pairs =
       Edb_select.Pairs.select ~strategy:Edb_select.Pairs.By_cover ~budget:2 rel
     in
     let joints =
       List.concat_map
         (fun (a, b) ->
           Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
             ~attr1:a ~attr2:b ~budget:120)
         pairs
     in
     let summary = Summary.build ~solver_config:quiet rel ~joints in
     (flights, rel, summary))

let test_sql_pipeline () =
  let _, rel, summary = Lazy.force pipeline in
  let schema = Relation.schema rel in
  (* Every statistic the model was built on is reproduced through the SQL
     front end within solver tolerance. *)
  let sqls =
    [
      "SELECT COUNT(*) FROM flights WHERE origin_state = 'S07'";
      "SELECT COUNT(*) FROM flights WHERE fl_time IN [10, 30]";
      "SELECT COUNT(*) FROM flights WHERE dest_state = 'S03' AND distance IN [0, 40]";
      "SELECT COUNT(*) FROM flights WHERE origin_state = 'S01' OR origin_state = 'S02'";
    ]
  in
  List.iter
    (fun sql ->
      match Edb_query.Translate.compile_string schema sql with
      | Error e -> Alcotest.failf "%s: %a" sql Edb_query.Translate.pp_error e
      | Ok c ->
          let est = Disjunction.estimate summary c.disjuncts in
          let truth = float_of_int (Exec.count_dnf rel c.disjuncts) in
          let err = Metrics.rel_error ~truth ~est in
          if err > 0.35 then
            Alcotest.failf "%s: err %.3f (est %.1f truth %.1f)" sql err est
              truth)
    sqls

let test_sql_aggregates_pipeline () =
  let _, rel, summary = Lazy.force pipeline in
  let schema = Relation.schema rel in
  match
    Edb_query.Translate.compile_string schema
      "SELECT SUM(distance) FROM flights WHERE fl_time IN [0, 20]"
  with
  | Error e -> Alcotest.failf "compile: %a" Edb_query.Translate.pp_error e
  | Ok c -> (
      match (Edb_query.Translate.conjunctive c, c.aggregate) with
      | Some pred, Edb_query.Translate.Sum attr ->
          let est = Summary.estimate_sum summary ~attr pred in
          let truth = Exec.sum rel ~attr pred in
          let err = Metrics.rel_error ~truth ~est in
          if err > 0.1 then
            Alcotest.failf "SUM err %.3f (est %.1f truth %.1f)" err est truth
      | _ -> Alcotest.fail "expected a conjunctive SUM query")

let test_statistics_reproduced () =
  let _, _, summary = Lazy.force pipeline in
  let phi = Poly.phi (Summary.poly summary) in
  let n = float_of_int (Phi.n phi) in
  let worst = ref 0. in
  Array.iter
    (fun s ->
      let est = Summary.estimate summary (Statistic.pred s) in
      worst := Float.max !worst (Float.abs (est -. Statistic.target s) /. n))
    (Phi.stats phi);
  if !worst > 1e-2 then
    Alcotest.failf "statistic reproduction drifted: %.4f relative to n" !worst

let test_beats_uniform_on_rare_values () =
  let _, rel, summary = Lazy.force pipeline in
  let attrs = [ F.fl_time; F.distance ] in
  let arity = Schema.arity (Relation.schema rel) in
  let rng = Prng.create ~seed:99 () in
  let w = Hitters.standard rng rel ~attrs ~num_hitters:25 ~num_nulls:25 in
  let uni =
    Methods.of_sample (Edb_sampling.Uniform.create rng ~rate:0.01 rel)
  in
  let ent = Methods.of_summary summary in
  let fs = Runner.run_f_all [ uni; ent ] ~arity ~attrs ~light:w.light ~nulls:w.nulls in
  match fs with
  | [ f_uni; f_ent ] ->
      if f_ent.f_measure <= f_uni.f_measure then
        Alcotest.failf "EntropyDB F %.3f <= uniform F %.3f" f_ent.f_measure
          f_uni.f_measure
  | _ -> Alcotest.fail "wrong arity"

let test_serialize_through_disk () =
  let _, rel, summary = Lazy.force pipeline in
  let path = Filename.temp_file "edb_integration" ".summary" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save summary path;
      let summary' = Serialize.load path in
      let arity = Schema.arity (Relation.schema rel) in
      let rng = Prng.create ~seed:5 () in
      for _ = 1 to 25 do
        let q =
          Predicate.point ~arity
            [
              (F.origin, Prng.int rng F.n_states);
              (F.distance, Prng.int rng F.n_distances);
            ]
        in
        Alcotest.(check (float 1e-6))
          "estimates preserved"
          (Summary.estimate summary q)
          (Summary.estimate summary' q)
      done)

let test_csv_roundtrip_build () =
  (* generate -> CSV -> load -> build: the CLI's data path, in-process. *)
  let flights = F.generate ~rows:5_000 ~seed:13 () in
  let path = Filename.temp_file "edb_integration" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save_indices flights.coarse path;
      match Csv_io.load_indices (Relation.schema flights.coarse) path with
      | Error e -> Alcotest.failf "load: %a" Csv_io.pp_error e
      | Ok rel ->
          let summary = Summary.build ~solver_config:quiet rel ~joints:[] in
          Alcotest.(check int) "cardinality" 5_000
            (Summary.cardinality summary))

let test_hierarchy_on_flights () =
  (* Drill the fine city attribute: root at ~state granularity (coarse
     buckets of contiguous city ids), refine the busiest buckets. *)
  let flights = F.generate ~rows:30_000 ~seed:21 () in
  let rel = flights.fine in
  (* Bucket boundaries: every 10 city ids (contiguity is what the
     hierarchy coarsens over). *)
  let boundaries = Array.init 15 (fun i -> i * 10) in
  (* Refine exactly the buckets holding the five busiest cities, so point
     queries on those cities are answered by sub-summaries. *)
  let top = Exec.top_k rel ~attrs:[ F.origin ] ~k:5 in
  let refine_buckets =
    List.sort_uniq compare
      (List.map (fun (vs, _) -> List.hd vs / 10) top)
  in
  let h =
    Hierarchy.build ~solver_config:quiet rel ~attr:F.origin ~boundaries
      ~refine:(`Buckets refine_buckets)
  in
  Alcotest.(check int) "refined buckets" (List.length refine_buckets)
    (Hierarchy.num_refined h);
  let arity = Schema.arity (Relation.schema rel) in
  (* Aggregate consistency. *)
  Alcotest.(check (float 100.))
    "total mass" 30_000.
    (Hierarchy.estimate h (Predicate.tautology arity));
  (* Point queries inside refined buckets track the truth reasonably. *)
  List.iter
    (fun (vs, truth) ->
      let v = List.hd vs in
      let q = Predicate.point ~arity [ (F.origin, v) ] in
      let est = Hierarchy.estimate h q in
      let err = Metrics.rel_error ~truth:(float_of_int truth) ~est in
      if err > 0.35 then
        Alcotest.failf "origin city %d: err %.3f (est %.1f truth %d)" v err est
          truth)
    top

let test_worlds_roundtrip_statistics () =
  (* Sampling a world from the summary and re-measuring its marginals
     approximates the original statistics (law of large numbers check on a
     few heavy marginals). *)
  let _, rel, summary = Lazy.force pipeline in
  ignore rel;
  let sampler = Worlds.create summary in
  let world =
    Worlds.sample_instance ~rows:20_000 sampler (Prng.create ~seed:31 ())
  in
  let phi = Poly.phi (Summary.poly summary) in
  let n_orig = float_of_int (Phi.n phi) in
  let n_world = float_of_int (Relation.cardinality world) in
  let hist = Histogram.d1 world ~attr:F.distance in
  let worst = ref 0. in
  for v = 0 to F.n_distances - 1 do
    let target =
      Phi.target phi (Phi.marginal_id phi ~attr:F.distance ~value:v) /. n_orig
    in
    if target > 0.02 then begin
      let got = float_of_int hist.(v) /. n_world in
      worst := Float.max !worst (Float.abs (got -. target) /. target)
    end
  done;
  if !worst > 0.2 then
    Alcotest.failf "sampled world marginals drift %.3f" !worst

let () =
  Alcotest.run "entropydb-integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "SQL counts (incl. OR)" `Slow test_sql_pipeline;
          Alcotest.test_case "SQL aggregates" `Slow test_sql_aggregates_pipeline;
          Alcotest.test_case "statistics reproduced" `Slow
            test_statistics_reproduced;
          Alcotest.test_case "beats uniform on rare values" `Slow
            test_beats_uniform_on_rare_values;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "summary through disk" `Slow
            test_serialize_through_disk;
          Alcotest.test_case "CSV round trip + build" `Slow
            test_csv_roundtrip_build;
        ] );
      ( "hierarchy",
        [ Alcotest.test_case "flights drill-down" `Slow test_hierarchy_on_flights ] );
      ( "worlds",
        [
          Alcotest.test_case "sampled world reproduces marginals" `Slow
            test_worlds_roundtrip_statistics;
        ] );
    ]
