examples/quickstart.ml: Array Domain Edb_datagen Edb_query Edb_select Edb_storage Edb_util Entropydb_core Exec Fmt List Option Printf Relation Schema String Summary Worlds
