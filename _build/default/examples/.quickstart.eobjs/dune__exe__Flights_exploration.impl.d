examples/flights_exploration.ml: Edb_datagen Edb_sampling Edb_select Edb_storage Edb_util Edb_workload Entropydb_core Hitters List Methods Printf Prng Relation Runner Schema Sys Timing
