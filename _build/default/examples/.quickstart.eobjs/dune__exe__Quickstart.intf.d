examples/quickstart.mli:
