examples/selectivity_estimation.ml: Edb_datagen Edb_select Edb_storage Edb_util Edb_workload Entropydb_core Exec Float List Predicate Printf Ranges Relation Schema String
