examples/flights_exploration.mli:
