examples/particles_scalability.mli:
