examples/rare_values.mli:
