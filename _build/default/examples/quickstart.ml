(* Quickstart: summarize a dataset and explore it with SQL.

   Run with:  dune exec examples/quickstart.exe

   The flow is the paper's end-to-end story in miniature:
   1. load a relation (here: a generated flights dataset);
   2. choose 2D statistics automatically (correlated attribute pairs,
      COMPOSITE KD-tree rectangles);
   3. build the MaxEnt summary (offline step);
   4. answer exploratory SQL queries from the summary alone, and compare
      with exact answers. *)

open Edb_storage
open Entropydb_core

let queries =
  [
    "SELECT COUNT(*) FROM flights WHERE origin_state = 'S00'";
    "SELECT COUNT(*) FROM flights WHERE origin_state = 'S00' AND dest_state = 'S01'";
    "SELECT COUNT(*) FROM flights WHERE distance IN [40, 80]";
    "SELECT COUNT(*) FROM flights WHERE fl_time IN [0, 10] AND distance IN [60, 80]";
    "SELECT COUNT(*) FROM flights WHERE fl_date = 100 AND origin_state = 'S02'";
  ]

let () =
  Printf.printf "=== EntropyDB quickstart ===\n\n%!";

  (* 1. Data: 100k synthetic US flights at state granularity. *)
  let flights = Edb_datagen.Flights.generate ~rows:100_000 ~seed:42 () in
  let rel = flights.coarse in
  let schema = Relation.schema rel in
  Printf.printf "Relation: %d rows, %d attributes, |Tup| = %.3g\n\n"
    (Relation.cardinality rel) (Schema.arity schema)
    (Schema.tuple_space_size schema);

  (* 2. Statistics: two correlated attribute pairs, 150 KD-tree rectangles
        each. *)
  let pairs =
    Edb_select.Pairs.select ~strategy:Edb_select.Pairs.By_cover ~budget:2 rel
  in
  let joints =
    List.concat_map
      (fun (a, b) ->
        Printf.printf "2D statistics on (%s, %s)\n%!" (Schema.attr_name schema a)
          (Schema.attr_name schema b);
        Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel ~attr1:a
          ~attr2:b ~budget:150)
      pairs
  in

  (* 3. Summary: solve the MaxEnt model. *)
  Printf.printf "\nBuilding summary (%d joint statistics)...\n%!"
    (List.length joints);
  let summary = Summary.build rel ~joints in
  let report = Summary.solver_report summary in
  Printf.printf "Solved in %d sweeps, %.2fs (max rel err %.2e)\n"
    report.sweeps report.seconds report.max_rel_error;
  Fmt.pr "%a\n\n" Summary.pp_size_report (Summary.size_report summary);

  (* 4. Explore with SQL. *)
  Printf.printf "%-78s %10s %10s %8s\n" "query" "exact" "entropydb" "stddev";
  List.iter
    (fun sql ->
      match Edb_query.Translate.compile_string schema sql with
      | Error e -> Fmt.pr "%s -> error: %a\n" sql Edb_query.Translate.pp_error e
      | Ok c ->
          let predicate =
            Option.get (Edb_query.Translate.conjunctive c)
          in
          let exact = Exec.count rel predicate in
          let est = Summary.estimate summary predicate in
          let sd = Summary.stddev summary predicate in
          Printf.printf "%-78s %10d %10.1f %8.1f\n" sql exact est sd)
    queries;

  (* Bonus: the summary is a full probabilistic database — sample a
     possible world from it. *)
  let sampler = Worlds.create summary in
  let world =
    Worlds.sample_instance ~rows:5 sampler (Edb_util.Prng.create ~seed:7 ())
  in
  Printf.printf "\nFive tuples sampled from the model:\n";
  Relation.iteri
    (fun _ row ->
      let cells =
        Array.to_list
          (Array.mapi (fun i v -> Domain.label (Schema.domain schema i) v) row)
      in
      Printf.printf "  %s\n" (String.concat ", " cells))
    world
