(* Particles scalability: the paper's Sec. 6.3 scenario in miniature.

   Run with:  dune exec examples/particles_scalability.exe
   (expect several minutes: the EntAll summary chains five correlated
   attribute pairs into one statistic group, the expensive case the paper's
   day-long solver runs correspond to; set ROWS to shrink the data)

   Grows the astronomy-like dataset snapshot by snapshot, builds a
   no-2D-statistics summary and an "EntAll" summary (2D statistics over the
   most correlated pairs), and compares accuracy and per-query latency with
   uniform and (density, grp)-stratified samples on 4D selection queries. *)

open Edb_util
open Edb_storage
open Edb_workload
module P = Edb_datagen.Particles

let rows_per_snapshot =
  try int_of_string (Sys.getenv "ROWS") with Not_found -> 60_000

let () =
  List.iter
    (fun snapshots ->
      let rel = P.generate ~rows_per_snapshot ~snapshots ~seed:17 () in
      let schema = Relation.schema rel in
      let arity = Schema.arity schema in
      Printf.printf "\n=== %d snapshot(s): %d rows ===\n%!" snapshots
        (Relation.cardinality rel);

      (* EntAll: COMPOSITE statistics on the 5 most correlated pairs,
         excluding snapshot (Sec. 6.3). *)
      let pairs =
        Edb_select.Pairs.select ~exclude:[ P.snapshot ]
          ~strategy:Edb_select.Pairs.By_correlation ~budget:5 rel
      in
      (* 60 buckets per pair: five correlated pairs chain into one
         connected statistic group, whose compatible-set count grows
         quickly with the per-pair budget. *)
      let joints =
        List.concat_map
          (fun (a, b) ->
            Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
              ~attr1:a ~attr2:b ~budget:60)
          pairs
      in
      let solver_config =
        { Entropydb_core.Solver.default_config with max_sweeps = 30 }
      in
      let no2d, t_no2d =
        Timing.time (fun () ->
            Entropydb_core.Summary.build ~solver_config rel ~joints:[])
      in
      let entall, t_entall =
        Timing.time (fun () ->
            Entropydb_core.Summary.build ~solver_config rel ~joints)
      in
      Printf.printf "summaries built: No2D %.1fs, EntAll %.1fs (%d joints)\n%!"
        t_no2d t_entall (List.length joints);

      let rng = Prng.create ~seed:23 () in
      let methods =
        [
          Methods.of_sample ~name:"Uni"
            (Edb_sampling.Uniform.create rng ~rate:0.01 rel);
          Methods.of_sample ~name:"Strat"
            (Edb_sampling.Stratified.create rng ~rate:0.01
               ~attrs:[ P.density; P.grp ] rel);
          Methods.of_summary ~name:"EntNo2D" no2d;
          Methods.of_summary ~name:"EntAll" entall;
        ]
      in

      (* The paper's three 4D selection templates. *)
      let templates =
        [
          ("den,mass,grp,type", [ P.density; P.mass; P.grp; P.ptype ]);
          ("mass,x,y,z", [ P.mass; P.x; P.y; P.z ]);
          ("y,z,grp,type", [ P.y; P.z; P.grp; P.ptype ]);
        ]
      in
      let wrng = Prng.create ~seed:31 () in
      List.iter
        (fun (label, attrs) ->
          let w =
            Hitters.standard wrng rel ~attrs ~num_hitters:30 ~num_nulls:30
          in
          let heavy =
            Runner.run_errors_all methods ~arity ~attrs ~queries:w.heavy
          in
          let light =
            Runner.run_errors_all methods ~arity ~attrs ~queries:w.light
          in
          Printf.printf "\n-- %s --\n%-8s %11s %11s %12s\n" label "method"
            "heavy err" "light err" "avg ms/query";
          List.iter2
            (fun h l ->
              Printf.printf "%-8s %11.3f %11.3f %12.3f\n" h.Runner.method_name
                h.Runner.avg_error l.Runner.avg_error
                (1000. *. h.Runner.avg_seconds))
            heavy light)
        templates)
    [ 1; 2; 3 ]
