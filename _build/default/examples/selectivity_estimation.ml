(* Selectivity estimation: EntropyDB as a query-optimizer statistic.

   Run with:  dune exec examples/selectivity_estimation.exe

   The paper's closest relatives (Markl et al.'s consistent selectivity
   estimation, Re & Suciu's cardinality estimation — Sec. 8) use the same
   MaxEnt machinery for optimizer statistics.  This example turns the
   summary around and uses it that way: a toy optimizer must order the
   filters of a conjunctive scan most-selective-first, and asks the
   summary for every predicate's selectivity instead of scanning.

   Unlike independent per-column histograms, the summary's 2D statistics
   capture correlations, so conjunctive selectivities multiply out
   correctly where an attribute-independence assumption would not. *)

open Edb_util
open Edb_storage
module F = Edb_datagen.Flights

let () =
  let flights = F.generate ~rows:150_000 ~seed:3 () in
  let rel = flights.coarse in
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  let n = float_of_int (Relation.cardinality rel) in

  (* Summary with 2D statistics on the two most correlated pairs. *)
  let joints =
    List.concat_map
      (fun (a, b) ->
        Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
          ~attr1:a ~attr2:b ~budget:200)
      (Edb_select.Pairs.select ~strategy:Edb_select.Pairs.By_cover ~budget:2 rel)
  in
  let summary = Entropydb_core.Summary.build rel ~joints in

  (* The conjunctive filters of a hypothetical scan. *)
  let filters =
    [
      ("short-haul distance", Predicate.of_alist ~arity
          [ (F.distance, Ranges.interval 0 9) ]);
      ("morning departures", Predicate.of_alist ~arity
          [ (F.fl_time, Ranges.interval 0 15) ]);
      ("top-3 origin states", Predicate.of_alist ~arity
          [ (F.origin, Ranges.of_list [ 0; 1; 2 ]) ]);
      ("december dates", Predicate.of_alist ~arity
          [ (F.fl_date, Ranges.interval 276 306) ]);
    ]
  in

  Printf.printf "%-22s %14s %14s %10s\n" "filter" "est. sel." "true sel."
    "rel err";
  let estimated =
    List.map
      (fun (name, pred) ->
        let est = Entropydb_core.Summary.estimate summary pred /. n in
        let truth = float_of_int (Exec.count rel pred) /. n in
        Printf.printf "%-22s %14.4f %14.4f %10.3f\n" name est truth
          (Edb_workload.Metrics.rel_error ~truth ~est);
        (name, pred, est))
      filters
  in

  (* Optimizer decision: order filters by estimated selectivity.  Compare
     with the true optimal order. *)
  let by_estimate =
    List.sort (fun (_, _, a) (_, _, b) -> compare a b) estimated
    |> List.map (fun (name, _, _) -> name)
  in
  let by_truth =
    List.sort
      (fun (_, p1) (_, p2) ->
        compare (Exec.count rel p1) (Exec.count rel p2))
      filters
    |> List.map fst
  in
  Printf.printf "\nfilter order (estimated): %s\n"
    (String.concat " -> " by_estimate);
  Printf.printf "filter order (true):      %s\n" (String.concat " -> " by_truth);
  Printf.printf "optimizer picks the true order: %b\n" (by_estimate = by_truth);

  (* Correlation awareness: conjunctive selectivity of two correlated
     filters vs the independence assumption. *)
  let _, p_dist, _ = List.nth estimated 0 in
  let _, p_time, _ = List.nth estimated 1 in
  let conj = Predicate.conj p_dist p_time in
  let est_conj = Entropydb_core.Summary.estimate summary conj /. n in
  let true_conj = float_of_int (Exec.count rel conj) /. n in
  let independent =
    Entropydb_core.Summary.estimate summary p_dist /. n
    *. (Entropydb_core.Summary.estimate summary p_time /. n)
  in
  Printf.printf
    "\nconjunction (short-haul AND morning):\n\
    \  true selectivity          %.4f\n\
    \  EntropyDB (2D statistics) %.4f\n\
    \  independence assumption   %.4f\n"
    true_conj est_conj independent;
  Printf.printf "EntropyDB closer than independence: %b\n"
    (Float.abs (est_conj -. true_conj) < Float.abs (independent -. true_conj))
