(* Flights exploration: the paper's Sec. 6.2 scenario in miniature.

   Run with:  dune exec examples/flights_exploration.exe

   Builds the four MaxEnt summaries of the paper's Fig. 4 (No2D, Ent1&2,
   Ent3&4, Ent1&2&3) plus a 1% uniform sample and four stratified samples,
   then compares them on heavy-hitter and light-hitter point queries over
   several attribute combinations. *)

open Edb_util
open Edb_storage
open Edb_workload
module F = Edb_datagen.Flights

let rows = try int_of_string (Sys.getenv "ROWS") with Not_found -> 120_000
let budget_per_pair = 250
let num_hitters = 50

(* The paper's four correlated attribute pairs (Sec. 6.2). *)
let pair1 = (F.origin, F.distance)
let pair2 = (F.dest, F.distance)
let pair3 = (F.fl_time, F.distance)
let pair4 = (F.origin, F.dest)

let composite rel (a, b) ~budget =
  Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel ~attr1:a
    ~attr2:b ~budget

let () =
  let flights = F.generate ~rows ~seed:1 () in
  let rel = flights.coarse in
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  Printf.printf "FlightsCoarse: %d rows\n\nCorrelations (Cramer's V):\n%!"
    (Relation.cardinality rel);
  List.iter
    (fun ((a, b), v) ->
      Printf.printf "  %-14s %-14s %.3f\n" (Schema.attr_name schema a)
        (Schema.attr_name schema b) v)
    (Edb_select.Correlation.rank_pairs rel);

  (* MaxEnt methods per the paper's Fig. 4. *)
  let summarize name pairs =
    let joints =
      List.concat_map (fun p -> composite rel p ~budget:budget_per_pair) pairs
    in
    let summary, dt =
      Timing.time (fun () -> Entropydb_core.Summary.build rel ~joints)
    in
    Printf.printf "built %-10s (%4d joints) in %5.1fs\n%!" name
      (List.length joints) dt;
    Methods.of_summary ~name summary
  in
  Printf.printf "\n";
  let no2d = summarize "No2D" [] in
  let ent12 = summarize "Ent1&2" [ pair1; pair2 ] in
  let ent34 = summarize "Ent3&4" [ pair3; pair4 ] in
  let ent123 = summarize "Ent1&2&3" [ pair1; pair2; pair3 ] in

  (* Sampling baselines: 1% uniform + stratified on each pair. *)
  let rng = Prng.create ~seed:2 () in
  let uni =
    Methods.of_sample ~name:"Uni" (Edb_sampling.Uniform.create rng ~rate:0.01 rel)
  in
  let strat i (a, b) =
    Methods.of_sample
      ~name:(Printf.sprintf "Strat%d" i)
      (Edb_sampling.Stratified.create rng ~rate:0.01 ~attrs:[ a; b ] rel)
  in
  let methods =
    [
      uni; strat 1 pair1; strat 2 pair2; strat 3 pair3; strat 4 pair4;
      no2d; ent12; ent34; ent123;
    ]
  in

  (* Workloads: heavy and light hitters over three attribute sets. *)
  let templates =
    [
      ("time+dist", [ F.fl_time; F.distance ]);
      ("dest+dist", [ F.dest; F.distance ]);
      ("org+dest", [ F.origin; F.dest ]);
    ]
  in
  let wrng = Prng.create ~seed:3 () in
  List.iter
    (fun (label, attrs) ->
      let w =
        Hitters.standard wrng rel ~attrs ~num_hitters
          ~num_nulls:(2 * num_hitters)
      in
      let heavy = Runner.run_errors_all methods ~arity ~attrs ~queries:w.heavy in
      let light = Runner.run_errors_all methods ~arity ~attrs ~queries:w.light in
      let fs =
        Runner.run_f_all methods ~arity ~attrs ~light:w.light ~nulls:w.nulls
      in
      Printf.printf "\n-- %s --\n%-10s %12s %12s %10s\n" label "method"
        "heavy err" "light err" "F measure";
      List.iter2
        (fun (h, l) f ->
          Printf.printf "%-10s %12.3f %12.3f %10.3f\n" h.Runner.method_name
            h.Runner.avg_error l.Runner.avg_error f.Runner.f_measure)
        (List.combine heavy light)
        fs)
    templates
