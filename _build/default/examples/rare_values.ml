(* Rare vs nonexistent values: EntropyDB's headline qualitative advantage.

   Run with:  dune exec examples/rare_values.exe

   A sample that misses a rare combination cannot tell "rare" from "absent"
   — both estimate 0.  The MaxEnt summary infers something about *every*
   point of the tuple space, and its COMPOSITE statistics pin truly absent
   regions to zero, so it can separate the two cases.  This example prints
   the raw estimates side by side and the resulting F measures, then shows
   the model's uncertainty for a rare value. *)

open Edb_util
open Edb_storage
open Edb_workload
module F = Edb_datagen.Flights

let () =
  let flights = F.generate ~rows:80_000 ~seed:11 () in
  let rel = flights.coarse in
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  let attrs = [ F.fl_time; F.distance ] in

  (* EntropyDB with COMPOSITE rectangles on (fl_time, distance). *)
  let joints =
    Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
      ~attr1:F.fl_time ~attr2:F.distance ~budget:400
  in
  let summary = Entropydb_core.Summary.build rel ~joints in
  let ent = Methods.of_summary ~name:"EntropyDB" summary in
  let rng = Prng.create ~seed:5 () in
  let uni =
    Methods.of_sample ~name:"Uniform1%"
      (Edb_sampling.Uniform.create rng ~rate:0.01 rel)
  in

  let w = Hitters.standard rng rel ~attrs ~num_hitters:15 ~num_nulls:15 in
  Printf.printf "%-28s %8s %12s %12s\n" "(fl_time, distance)" "truth"
    "Uniform1%" "EntropyDB";
  let show tag values truth =
    let pred = Hitters.to_predicate ~arity ~attrs values in
    Printf.printf "%-28s %8d %12.1f %12.1f\n"
      (Printf.sprintf "%s (%s)" tag
         (String.concat ","
            (List.map2
               (fun a v -> Domain.label (Schema.domain schema a) v)
               attrs values)))
      truth (Methods.estimate uni pred) (Methods.estimate ent pred)
  in
  List.iteri (fun i (vs, c) -> if i < 8 then show "rare" vs c) w.light;
  List.iteri (fun i vs -> if i < 8 then show "absent" vs 0) w.nulls;

  let fs =
    Runner.run_f_all [ uni; ent ] ~arity ~attrs ~light:w.light ~nulls:w.nulls
  in
  Printf.printf "\n%-12s %10s %10s %10s\n" "method" "precision" "recall" "F";
  List.iter
    (fun r ->
      Printf.printf "%-12s %10.3f %10.3f %10.3f\n" r.Runner.f_method
        r.f_precision r.f_recall r.f_measure)
    fs;

  (* Estimates come with uncertainty: report a 95% interval for one rare
     value. *)
  match w.light with
  | (vs, c) :: _ ->
      let pred = Hitters.to_predicate ~arity ~attrs vs in
      let e = Entropydb_core.Summary.estimate summary pred in
      let sd = Entropydb_core.Summary.stddev summary pred in
      Printf.printf
        "\nModel belief for the first rare value: %.2f +/- %.2f (true %d)\n" e
        (1.96 *. sd) c
  | [] -> ()
