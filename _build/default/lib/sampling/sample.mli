(** Weighted samples with Horvitz–Thompson count estimation — the common
    representation of the paper's uniform and stratified baselines. *)

open Edb_storage

type t

val create :
  data:Relation.t ->
  weights:float array ->
  source_cardinality:int ->
  description:string ->
  t
(** Raises [Invalid_argument] if weights and rows disagree in length. *)

val data : t -> Relation.t
val description : t -> string
val size : t -> int
val source_cardinality : t -> int

val estimate_count : t -> Predicate.t -> float
(** Sum of matching rows' weights: unbiased when each source row's inclusion
    probability is the inverse of its weight. *)

val estimate_group_count :
  t -> attrs:int list -> Predicate.t -> (int list * float) list
(** Weighted GROUP BY estimate; groups absent from the sample are absent
    from the result (samples cannot distinguish rare from nonexistent — the
    contrast at the heart of the paper's F-measure experiment). *)
