(** Uniform sampling without replacement — the paper's "Uni" baseline. *)

open Edb_util
open Edb_storage

val create : Prng.t -> rate:float -> Relation.t -> Sample.t
(** [create rng ~rate rel] draws [round (rate * n)] rows uniformly without
    replacement; every row carries weight [n/k].  Raises on rates outside
    (0, 1]. *)
