(* Weighted samples and Horvitz–Thompson estimation.

   Both baselines of the paper's evaluation — a uniform sample and
   stratified samples over attribute pairs (Sec. 6.1) — reduce to a bag of
   sampled rows with a per-row scale-up weight.  A count query is estimated
   as the sum of the weights of the matching sampled rows, which is unbiased
   whenever every source row's inclusion probability is the inverse of its
   weight. *)

open Edb_util
open Edb_storage

type t = {
  data : Relation.t;
  weights : float array; (* scale-up weight of each sampled row *)
  source_cardinality : int;
  description : string;
}

let create ~data ~weights ~source_cardinality ~description =
  if Array.length weights <> Relation.cardinality data then
    invalid_arg "Sample.create: weights/rows mismatch";
  { data; weights; source_cardinality; description }

let data t = t.data
let description t = t.description
let size t = Relation.cardinality t.data
let source_cardinality t = t.source_cardinality

let estimate_count t pred =
  if Predicate.is_unsatisfiable pred then 0.
  else
    let restricted =
      List.map
        (fun i ->
          match Predicate.restriction pred i with
          | Some r -> (Relation.column t.data i, r)
          | None -> assert false)
        (Predicate.restricted_attrs pred)
    in
    let acc = ref 0. in
    for row = 0 to Relation.cardinality t.data - 1 do
      if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted then
        acc := !acc +. t.weights.(row)
    done;
    !acc

let estimate_group_count t ~attrs pred =
  let schema = Relation.schema t.data in
  let sizes = List.map (fun i -> Schema.domain_size schema i) attrs in
  let cols = List.map (fun i -> Relation.column t.data i) attrs in
  let restricted =
    List.map
      (fun i ->
        match Predicate.restriction pred i with
        | Some r -> (Relation.column t.data i, r)
        | None -> assert false)
      (Predicate.restricted_attrs pred)
  in
  let tbl = Hashtbl.create 256 in
  for row = 0 to Relation.cardinality t.data - 1 do
    if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted then begin
      let key =
        List.fold_left2 (fun acc col size -> (acc * size) + col.(row)) 0 cols sizes
      in
      let cur = Option.value (Hashtbl.find_opt tbl key) ~default:0. in
      Hashtbl.replace tbl key (cur +. t.weights.(row))
    end
  done;
  let decode key =
    let rev_sizes = List.rev sizes in
    let rec go key = function
      | [] -> []
      | size :: rest -> (key mod size) :: go (key / size) rest
    in
    List.rev (go key rev_sizes)
  in
  Hashtbl.fold (fun key w acc -> (decode key, w) :: acc) tbl []
