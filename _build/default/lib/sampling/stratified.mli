(** Stratified sampling over attribute subsets — the paper's "StratN"
    baselines.  Strata are distinct value combinations of the given
    attributes; every stratum is guaranteed [floor_per_stratum] rows (or its
    full size) before the rest of the budget is spread proportionally. *)

open Edb_util
open Edb_storage

val allocate : budget:int -> floor_per_stratum:int -> int array -> int array
(** Exposed for testing: per-stratum sample counts given stratum sizes.
    Never allocates more than a stratum's size; degrades the floor when the
    guarantee alone exceeds the budget. *)

val create :
  Prng.t -> rate:float -> attrs:int list -> ?floor_per_stratum:int ->
  Relation.t -> Sample.t
(** Raises on rates outside (0, 1] or an empty attribute list. *)
