lib/sampling/stratified.mli: Edb_storage Edb_util Prng Relation Sample
