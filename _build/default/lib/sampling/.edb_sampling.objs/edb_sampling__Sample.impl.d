lib/sampling/sample.ml: Array Edb_storage Edb_util Hashtbl List Option Predicate Ranges Relation Schema
