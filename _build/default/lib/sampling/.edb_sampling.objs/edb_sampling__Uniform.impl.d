lib/sampling/uniform.ml: Array Edb_storage Edb_util Float Printf Prng Relation Sample
