lib/sampling/sample.mli: Edb_storage Predicate Relation
