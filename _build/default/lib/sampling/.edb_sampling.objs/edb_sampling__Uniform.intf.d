lib/sampling/uniform.mli: Edb_storage Edb_util Prng Relation Sample
