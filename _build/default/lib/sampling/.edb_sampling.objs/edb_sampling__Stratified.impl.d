lib/sampling/stratified.ml: Array Edb_storage Edb_util Float Hashtbl List Printf Prng Relation Sample Schema String
