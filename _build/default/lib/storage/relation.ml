(* In-memory columnar relations.

   Rows store the *domain index* of each attribute value (see {!Domain}),
   one int array per column.  This is the ground-truth store the paper
   summarizes: statistics are computed from it and query accuracy is
   measured against it.  Cardinalities in the reproduction are a few
   hundred thousand to a few million rows, for which dense int arrays and
   sequential scans are fast and simple. *)

type t = {
  schema : Schema.t;
  columns : int array array; (* columns.(attr).(row) = value index *)
  cardinality : int;
}

type builder = {
  b_schema : Schema.t;
  mutable buffers : int array array;
  mutable len : int;
  mutable cap : int;
}

let builder ?(capacity = 1024) schema =
  let m = Schema.arity schema in
  let cap = max capacity 16 in
  {
    b_schema = schema;
    buffers = Array.init m (fun _ -> Array.make cap 0);
    len = 0;
    cap;
  }

let grow b =
  let cap' = 2 * b.cap in
  b.buffers <-
    Array.map
      (fun col ->
        let col' = Array.make cap' 0 in
        Array.blit col 0 col' 0 b.len;
        col')
      b.buffers;
  b.cap <- cap'

let add_row b row =
  let m = Schema.arity b.b_schema in
  if Array.length row <> m then invalid_arg "Relation.add_row: arity mismatch";
  Array.iteri
    (fun i v ->
      if v < 0 || v >= Schema.domain_size b.b_schema i then
        invalid_arg
          (Printf.sprintf "Relation.add_row: value %d out of domain for %s" v
             (Schema.attr_name b.b_schema i)))
    row;
  if b.len = b.cap then grow b;
  Array.iteri (fun i v -> b.buffers.(i).(b.len) <- v) row;
  b.len <- b.len + 1

let build b =
  {
    schema = b.b_schema;
    columns = Array.map (fun col -> Array.sub col 0 b.len) b.buffers;
    cardinality = b.len;
  }

let of_rows schema rows =
  let b = builder ~capacity:(max 16 (List.length rows)) schema in
  List.iter (add_row b) rows;
  build b

let schema t = t.schema
let cardinality t = t.cardinality
let column t i = t.columns.(i)
let get t ~row ~attr = t.columns.(attr).(row)
let row t r = Array.map (fun col -> col.(r)) t.columns

let iteri f t =
  for r = 0 to t.cardinality - 1 do
    f r (row t r)
  done

(* Restriction to a subset of rows, used by the samplers. *)
let select_rows t rows =
  let k = Array.length rows in
  {
    schema = t.schema;
    columns =
      Array.map (fun col -> Array.init k (fun i -> col.(rows.(i)))) t.columns;
    cardinality = k;
  }

(* Projection onto a subset of attributes (used by Fig. 2b's three-attribute
   flights restriction). *)
let project t attrs =
  let attr_list =
    List.map
      (fun i -> Schema.attr (Schema.attr_name t.schema i) (Schema.domain t.schema i))
      attrs
  in
  {
    schema = Schema.create attr_list;
    columns = Array.of_list (List.map (fun i -> Array.copy t.columns.(i)) attrs);
    cardinality = t.cardinality;
  }

let pp ppf t =
  Fmt.pf ppf "relation(%d rows, %d attrs)" t.cardinality (Schema.arity t.schema)
