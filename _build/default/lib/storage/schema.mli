(** Relation schemas: an ordered list of named attributes with active
    domains.  Attributes are referred to by dense index everywhere in the
    engine; [find] translates names to indices at the query boundary. *)

type attr = { name : string; domain : Domain.t }
type t

val create : attr list -> t
(** Raises [Invalid_argument] on an empty list or duplicate names. *)

val attr : string -> Domain.t -> attr
val arity : t -> int
val attr_name : t -> int -> string
val domain : t -> int -> Domain.t
val domain_size : t -> int -> int
val find : t -> string -> int option
val find_exn : t -> string -> int
val attributes : t -> attr list
val names : t -> string list

val tuple_space_size : t -> float
(** |Tup| = Π N_i, returned as float (it exceeds 2^63 for realistic
    schemas). *)

val pp : Format.formatter -> t -> unit
