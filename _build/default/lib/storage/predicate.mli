(** Conjunctive per-attribute predicates over domain value indices.

    A predicate constrains each attribute independently to a set of values
    (union of ranges); [None] leaves the attribute unconstrained.  This is
    exactly the query class of the paper (Eq. 16) and the statistic class of
    Sec. 4.1. *)

open Edb_util

type t

val tautology : int -> t
(** The always-true predicate of the given arity. *)

val of_alist : arity:int -> (int * Ranges.t) list -> t
(** Conjunction of attribute restrictions; repeated attributes intersect. *)

val point : arity:int -> (int * int) list -> t
(** Point predicate [A_{i1} = v1 AND ...]. *)

val arity : t -> int
val restriction : t -> int -> Ranges.t option

val restricted_attrs : t -> int list
(** Indices of attributes with a restriction, ascending. *)

val restrict : t -> int -> Ranges.t -> t
(** Intersect one more restriction onto an attribute. *)

val conj : t -> t -> t
(** Conjunction (per-attribute intersection).  Raises on arity mismatch. *)

val is_unsatisfiable : t -> bool
(** True if some attribute's restriction is the empty set. *)

val matches_row : t -> int array -> bool

val implies_on_attr : t -> attr:int -> value:int -> bool
(** Whether the 1D statistic [A_attr = value] logically implies this
    predicate's restriction on [attr] (Sec. 4.2's [pi_j => rho] test). *)

val selectivity_count : t -> Schema.t -> float
(** Number of tuples of the cross-product space satisfying the predicate. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
