(* Bitmap indexes over columns.

   One bitset per (attribute, value): bit r is set iff row r holds that
   value.  Conjunctive counting queries then reduce to OR-ing each
   restricted attribute's value bitmaps and AND-ing across attributes,
   with a popcount at the end — the classic bitmap-index evaluation, used
   here to accelerate the exact ground-truth engine on the workloads'
   thousands of point queries (the paper's Sec. 5 similarly leans on
   bitmaps for the variable/statistic association). *)

open Edb_util

type bits = int array (* 63 rows per word (OCaml int), little-endian *)

type t = {
  rows : int;
  words : int;
  per_attr : bits array array; (* attr -> value -> bitset *)
}

let bits_per_word = 63

let create rel =
  let schema = Relation.schema rel in
  let m = Schema.arity schema in
  let rows = Relation.cardinality rel in
  let words = (rows + bits_per_word - 1) / bits_per_word in
  let per_attr =
    Array.init m (fun i ->
        Array.init (Schema.domain_size schema i) (fun _ -> Array.make words 0))
  in
  for i = 0 to m - 1 do
    let col = Relation.column rel i in
    let value_bits = per_attr.(i) in
    for r = 0 to rows - 1 do
      let b = value_bits.(col.(r)) in
      b.(r / bits_per_word) <-
        b.(r / bits_per_word) lor (1 lsl (r mod bits_per_word))
    done
  done;
  { rows; words; per_attr }

(* Portable popcount via a 16-bit lookup table. *)
let pop_table =
  lazy
    (let t = Bytes.create 65536 in
     for i = 0 to 65535 do
       let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
       Bytes.set t i (Char.chr (count i 0))
     done;
     t)

let popcount w =
  let t = Lazy.force pop_table in
  let b x = Char.code (Bytes.get t (x land 0xffff)) in
  b w + b (w lsr 16) + b (w lsr 32) + b (w lsr 48)

(* Bitset for one attribute's restriction: OR of its value bitmaps. *)
let restriction_bits t ~attr r =
  let out = Array.make t.words 0 in
  Ranges.iter
    (fun v ->
      let b = t.per_attr.(attr).(v) in
      for w = 0 to t.words - 1 do
        out.(w) <- out.(w) lor b.(w)
      done)
    r;
  out

let count t pred =
  if Predicate.is_unsatisfiable pred then 0
  else
    match Predicate.restricted_attrs pred with
    | [] -> t.rows
    | attrs ->
        let combined =
          List.fold_left
            (fun acc i ->
              let r =
                match Predicate.restriction pred i with
                | Some r -> r
                | None -> assert false
              in
              let bits = restriction_bits t ~attr:i r in
              match acc with
              | None -> Some bits
              | Some acc_bits ->
                  for w = 0 to t.words - 1 do
                    acc_bits.(w) <- acc_bits.(w) land bits.(w)
                  done;
                  Some acc_bits)
            None attrs
        in
        (match combined with
        | None -> t.rows
        | Some bits -> Array.fold_left (fun acc w -> acc + popcount w) 0 bits)

let memory_words t =
  Array.fold_left
    (fun acc per_value -> acc + (Array.length per_value * t.words))
    0 t.per_attr
