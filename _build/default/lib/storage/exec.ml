(* Exact query execution over columnar relations.

   This is the ground-truth engine: COUNT under a conjunctive predicate,
   GROUP BY counts over attribute subsets, and top-k variants.  All
   operators are sequential column scans; at reproduction scale (<= a few
   million rows) a scan is a few milliseconds, which also gives the "exact
   query on the full data" timing baseline of Fig. 7. *)

open Edb_util

let count rel pred =
  if Predicate.is_unsatisfiable pred then 0
  else
    let n = Relation.cardinality rel in
    (* Scan restricted attributes only, cheapest-first would be an
       optimization; predicates here have <= 4 restricted attributes. *)
    let restricted =
      List.map
        (fun i ->
          match Predicate.restriction pred i with
          | Some r -> (Relation.column rel i, r)
          | None -> assert false)
        (Predicate.restricted_attrs pred)
    in
    match restricted with
    | [] -> n
    | _ ->
        let c = ref 0 in
        for row = 0 to n - 1 do
          if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted
          then incr c
        done;
        !c

(* Count of rows satisfying at least one of the predicates (a DNF query):
   single scan, first-match semantics per row. *)
let count_dnf rel preds =
  let preds = List.filter (fun p -> not (Predicate.is_unsatisfiable p)) preds in
  match preds with
  | [] -> 0
  | _ ->
      let c = ref 0 in
      Relation.iteri
        (fun _ row ->
          if List.exists (fun p -> Predicate.matches_row p row) preds then
            incr c)
        rel;
      !c

(* SUM over a binned attribute's midpoints, under a predicate — the exact
   counterpart of the summary's aggregate estimation (each row contributes
   its bin's representative value). *)
let sum rel ~attr pred =
  let schema = Relation.schema rel in
  let domain = Schema.domain schema attr in
  let midpoints =
    Array.init (Schema.domain_size schema attr) (fun v ->
        Domain.bin_midpoint domain v)
  in
  if Predicate.is_unsatisfiable pred then 0.
  else begin
    let restricted =
      List.map
        (fun i ->
          match Predicate.restriction pred i with
          | Some r -> (Relation.column rel i, r)
          | None -> assert false)
        (Predicate.restricted_attrs pred)
    in
    let col = Relation.column rel attr in
    let acc = ref 0. in
    for row = 0 to Relation.cardinality rel - 1 do
      if List.for_all (fun (c, r) -> Ranges.mem c.(row) r) restricted then
        acc := !acc +. midpoints.(col.(row))
    done;
    !acc
  end

(* AVG over a binned attribute; [None] when no row matches. *)
let avg rel ~attr pred =
  let c = count rel pred in
  if c = 0 then None else Some (sum rel ~attr pred /. float_of_int c)

(* GROUP BY attrs -> count, under an optional predicate.  Group keys are
   encoded as a single int by mixed-radix packing over the attrs' domain
   sizes, which keeps the hash table small and allocation-free per row. *)
let group_count ?pred rel ~attrs =
  let schema = Relation.schema rel in
  let sizes = List.map (fun i -> Schema.domain_size schema i) attrs in
  let cols = List.map (fun i -> Relation.column rel i) attrs in
  let pred_check =
    match pred with
    | None -> fun _ -> true
    | Some p ->
        let restricted =
          List.map
            (fun i ->
              match Predicate.restriction p i with
              | Some r -> (Relation.column rel i, r)
              | None -> assert false)
            (Predicate.restricted_attrs p)
        in
        fun row ->
          List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted
  in
  let tbl = Hashtbl.create 1024 in
  let n = Relation.cardinality rel in
  for row = 0 to n - 1 do
    if pred_check row then begin
      let key =
        List.fold_left2 (fun acc col size -> (acc * size) + col.(row)) 0 cols sizes
      in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl key (ref 1)
    end
  done;
  (* Decode keys back to value-index vectors. *)
  let decode key =
    let rev_sizes = List.rev sizes in
    let rec go key = function
      | [] -> []
      | size :: rest -> (key mod size) :: go (key / size) rest
    in
    List.rev (go key rev_sizes)
  in
  Hashtbl.fold (fun key r acc -> (decode key, !r) :: acc) tbl []

let top_k ?pred rel ~attrs ~k =
  let groups = group_count ?pred rel ~attrs in
  let sorted =
    List.sort (fun (_, c1) (_, c2) -> compare (c2, []) (c1, [])) groups
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k sorted

let bottom_k ?pred rel ~attrs ~k =
  let groups = group_count ?pred rel ~attrs in
  let sorted = List.sort (fun (_, c1) (_, c2) -> compare c1 c2) groups in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k sorted
