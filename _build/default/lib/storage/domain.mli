(** Active domains: discrete, ordered, finite value sets per attribute.

    Continuous attributes are bucketized into equi-width bins (paper
    Sec. 6.1); categorical attributes enumerate explicit labels.  Domains
    map raw values to dense indices [\[0, size)], the representation used by
    columns, statistics, and the MaxEnt polynomial. *)

type spec =
  | Categorical of string array
  | Int_bins of { lo : int; hi : int; width : int }
  | Float_bins of { lo : float; hi : float; bins : int }

type t

val of_spec : spec -> t
(** Raises [Invalid_argument] on empty/duplicate categorical labels or
    degenerate bin parameters. *)

val categorical : string array -> t
val int_bins : lo:int -> hi:int -> width:int -> t
val float_bins : lo:float -> hi:float -> bins:int -> t

val size : t -> int
(** Number of distinct active-domain values (bins). *)

val spec : t -> spec

val index_of_label : t -> string -> int option
(** Categorical lookup; raises on non-categorical domains. *)

val index_of_int : t -> int -> int option
(** Bin index of a raw integer, [None] if outside [\[lo, hi\]].  Raises on
    non-integer domains. *)

val index_of_float : t -> float -> int option

val label : t -> int -> string
(** Human-readable label of a bin. *)

val bin_midpoint : t -> int -> float
(** Representative numeric value of a bin (its midpoint), for SUM/AVG
    estimation.  Raises on categorical domains and out-of-range bins. *)

val pp : Format.formatter -> t -> unit
