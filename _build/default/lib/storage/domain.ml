(* Active domains.

   EntropyDB requires every attribute to have a discrete, ordered, finite
   active domain (Sec. 3.1): categorical attributes enumerate their labels,
   continuous attributes are bucketized into equi-width bins (the paper's
   footnote 1 and Sec. 6.1).  A domain maps raw values to dense indices
   [0 .. size), which is the representation used by columns, statistics,
   and the polynomial. *)

type spec =
  | Categorical of string array
  | Int_bins of { lo : int; hi : int; width : int }
  | Float_bins of { lo : float; hi : float; bins : int }

type t = {
  spec : spec;
  size : int;
  label_index : (string, int) Hashtbl.t option; (* categorical lookup *)
}

let of_spec spec =
  match spec with
  | Categorical labels ->
      let n = Array.length labels in
      if n = 0 then invalid_arg "Domain.of_spec: empty categorical domain";
      let tbl = Hashtbl.create (2 * n) in
      Array.iteri
        (fun i l ->
          if Hashtbl.mem tbl l then
            invalid_arg ("Domain.of_spec: duplicate label " ^ l);
          Hashtbl.add tbl l i)
        labels;
      { spec; size = n; label_index = Some tbl }
  | Int_bins { lo; hi; width } ->
      if width <= 0 then invalid_arg "Domain.of_spec: non-positive bin width";
      if hi < lo then invalid_arg "Domain.of_spec: hi < lo";
      let size = ((hi - lo) / width) + 1 in
      { spec; size; label_index = None }
  | Float_bins { lo; hi; bins } ->
      if bins <= 0 then invalid_arg "Domain.of_spec: non-positive bin count";
      if not (hi > lo) then invalid_arg "Domain.of_spec: hi <= lo";
      { spec; size = bins; label_index = None }

let categorical labels = of_spec (Categorical labels)
let int_bins ~lo ~hi ~width = of_spec (Int_bins { lo; hi; width })
let float_bins ~lo ~hi ~bins = of_spec (Float_bins { lo; hi; bins })
let size t = t.size
let spec t = t.spec

let index_of_label t l =
  match t.label_index with
  | None -> invalid_arg "Domain.index_of_label: not a categorical domain"
  | Some tbl -> Hashtbl.find_opt tbl l

let index_of_int t v =
  match t.spec with
  | Int_bins { lo; hi; width } ->
      if v < lo || v > hi then None else Some ((v - lo) / width)
  | Categorical _ | Float_bins _ ->
      invalid_arg "Domain.index_of_int: not an integer-binned domain"

let index_of_float t v =
  match t.spec with
  | Float_bins { lo; hi; bins } ->
      if v < lo || v > hi then None
      else
        let w = (hi -. lo) /. float_of_int bins in
        Some (min (bins - 1) (int_of_float ((v -. lo) /. w)))
  | Categorical _ | Int_bins _ ->
      invalid_arg "Domain.index_of_float: not a float-binned domain"

let label t i =
  if i < 0 || i >= t.size then invalid_arg "Domain.label: index out of range";
  match t.spec with
  | Categorical labels -> labels.(i)
  | Int_bins { lo; width; _ } ->
      if width = 1 then string_of_int (lo + (i * width))
      else
        Printf.sprintf "[%d,%d]" (lo + (i * width)) (lo + ((i + 1) * width) - 1)
  | Float_bins { lo; hi; bins } ->
      let w = (hi -. lo) /. float_of_int bins in
      Printf.sprintf "[%.4g,%.4g)" (lo +. (float_of_int i *. w))
        (lo +. (float_of_int (i + 1) *. w))

(* Representative numeric value of a bin, used by SUM/AVG estimation: the
   bin midpoint for binned domains.  Categorical domains have no numeric
   reading. *)
let bin_midpoint t i =
  if i < 0 || i >= t.size then
    invalid_arg "Domain.bin_midpoint: index out of range";
  match t.spec with
  | Categorical _ ->
      invalid_arg "Domain.bin_midpoint: categorical domain has no numeric value"
  | Int_bins { lo; width; _ } ->
      float_of_int (lo + (i * width)) +. (float_of_int (width - 1) /. 2.)
  | Float_bins { lo; hi; bins } ->
      let w = (hi -. lo) /. float_of_int bins in
      lo +. ((float_of_int i +. 0.5) *. w)

let pp ppf t =
  match t.spec with
  | Categorical labels ->
      Fmt.pf ppf "categorical(%d values)" (Array.length labels)
  | Int_bins { lo; hi; width } ->
      Fmt.pf ppf "int[%d..%d]/%d (%d bins)" lo hi width t.size
  | Float_bins { lo; hi; bins } ->
      Fmt.pf ppf "float[%g..%g] (%d bins)" lo hi bins
