(** In-memory columnar relations over binned domains.

    Each cell stores the domain index of its value (see {!Domain}).  This
    store provides the exact counts that EntropyDB summarizes and that the
    evaluation harness uses as ground truth. *)

type t

(** {1 Construction} *)

type builder

val builder : ?capacity:int -> Schema.t -> builder

val add_row : builder -> int array -> unit
(** Raises [Invalid_argument] on arity mismatch or out-of-domain values. *)

val build : builder -> t
val of_rows : Schema.t -> int array list -> t

(** {1 Access} *)

val schema : t -> Schema.t
val cardinality : t -> int

val column : t -> int -> int array
(** The raw column array; callers must not mutate it. *)

val get : t -> row:int -> attr:int -> int
val row : t -> int -> int array
val iteri : (int -> int array -> unit) -> t -> unit

val select_rows : t -> int array -> t
(** New relation containing exactly the given row indices (with
    repetition allowed), in order. *)

val project : t -> int list -> t
(** Projection onto the given attribute indices (bag semantics: no
    deduplication, per the paper's ordered-bag instances). *)

val pp : Format.formatter -> t -> unit
