(** Exact query execution (ground truth) over columnar relations. *)

val count : Relation.t -> Predicate.t -> int
(** [COUNT WHERE pred] by a sequential scan of the restricted columns. *)

val count_dnf : Relation.t -> Predicate.t list -> int
(** Rows satisfying at least one of the predicates (OR semantics). *)

val sum : Relation.t -> attr:int -> Predicate.t -> float
(** [SUM(attr) WHERE pred] over bin midpoints ({!Domain.bin_midpoint});
    raises on categorical attributes. *)

val avg : Relation.t -> attr:int -> Predicate.t -> float option
(** [AVG(attr) WHERE pred]; [None] when no row matches. *)

val group_count :
  ?pred:Predicate.t -> Relation.t -> attrs:int list -> (int list * int) list
(** [GROUP BY attrs] counts, optionally filtered.  Each result pairs the
    group's value indices (in [attrs] order) with its count.  Groups with
    zero rows are absent. *)

val top_k :
  ?pred:Predicate.t -> Relation.t -> attrs:int list -> k:int ->
  (int list * int) list
(** The [k] most frequent groups, descending count. *)

val bottom_k :
  ?pred:Predicate.t -> Relation.t -> attrs:int list -> k:int ->
  (int list * int) list
(** The [k] least frequent {e existing} groups, ascending count. *)
