(* Conjunctive per-attribute predicates.

   The paper's statistics and queries (Sec. 4.1 assumptions, Eq. 16) are
   conjunctions pi = rho_1 AND ... AND rho_m where each rho_i constrains one
   attribute to a set of domain values (a range, a point, or any union of
   ranges).  We represent rho_i as a {!Edb_util.Ranges.t} over value
   indices, with [None] meaning the attribute is unconstrained.  The same
   type drives exact evaluation, statistic definitions, and the summary's
   variable-zeroing query evaluation. *)

open Edb_util

type t = { arity : int; restrictions : Ranges.t option array }

let tautology arity = { arity; restrictions = Array.make arity None }

let of_alist ~arity pairs =
  let p = tautology arity in
  let restrictions = Array.copy p.restrictions in
  List.iter
    (fun (i, r) ->
      if i < 0 || i >= arity then
        invalid_arg "Predicate.of_alist: attribute index out of range";
      restrictions.(i) <-
        (match restrictions.(i) with
        | None -> Some r
        | Some r0 -> Some (Ranges.inter r0 r)))
    pairs;
  { arity; restrictions }

let point ~arity pairs =
  of_alist ~arity (List.map (fun (i, v) -> (i, Ranges.singleton v)) pairs)

let arity t = t.arity
let restriction t i = t.restrictions.(i)

let restricted_attrs t =
  let acc = ref [] in
  for i = t.arity - 1 downto 0 do
    if t.restrictions.(i) <> None then acc := i :: !acc
  done;
  !acc

let restrict t i r =
  let restrictions = Array.copy t.restrictions in
  restrictions.(i) <-
    (match restrictions.(i) with
    | None -> Some r
    | Some r0 -> Some (Ranges.inter r0 r));
  { t with restrictions }

let conj a b =
  if a.arity <> b.arity then invalid_arg "Predicate.conj: arity mismatch";
  let restrictions =
    Array.init a.arity (fun i ->
        match (a.restrictions.(i), b.restrictions.(i)) with
        | None, r | r, None -> r
        | Some ra, Some rb -> Some (Ranges.inter ra rb))
  in
  { arity = a.arity; restrictions }

let is_unsatisfiable t =
  Array.exists
    (function Some r -> Ranges.is_empty r | None -> false)
    t.restrictions

let matches_row t row =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < t.arity do
    (match t.restrictions.(!i) with
    | Some r when not (Ranges.mem row.(!i) r) -> ok := false
    | _ -> ());
    incr i
  done;
  !ok

(* The logical implication pi_j => rho used by the query-evaluation formula
   (Sec. 4.2): a 1D point statistic on value [v] of attribute [i] implies
   the query's restriction on [i] iff [v] is inside it. *)
let implies_on_attr t ~attr ~value =
  match t.restrictions.(attr) with None -> true | Some r -> Ranges.mem value r

(* Number of tuples of the full cross-product space satisfying the
   predicate; float because the space can exceed 2^63. *)
let selectivity_count t schema =
  let acc = ref 1. in
  for i = 0 to t.arity - 1 do
    let n =
      match t.restrictions.(i) with
      | None -> Schema.domain_size schema i
      | Some r -> Ranges.cardinal r
    in
    acc := !acc *. float_of_int n
  done;
  !acc

let equal a b =
  a.arity = b.arity
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some rx, Some ry -> Ranges.equal rx ry
         | _ -> false)
       a.restrictions b.restrictions

let pp ppf t =
  let parts =
    List.filter_map
      (fun i ->
        match t.restrictions.(i) with
        | None -> None
        | Some r -> Some (Fmt.str "A%d in %a" i Ranges.pp r))
      (List.init t.arity (fun i -> i))
  in
  if parts = [] then Fmt.string ppf "true"
  else Fmt.string ppf (String.concat " AND " parts)
