(* CSV import/export for relations.

   Two formats:
   - index CSV: header of attribute names, then one row of value indices per
     tuple.  Lossless round-trip for a known schema; used by the CLI to
     materialize generated datasets.
   - label CSV: the same rows rendered through [Domain.label] for human
     inspection; not re-importable for binned domains (labels are ranges). *)

let save_indices rel path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Relation.schema rel in
      output_string oc (String.concat "," (Schema.names schema));
      output_char oc '\n';
      Relation.iteri
        (fun _ row ->
          output_string oc
            (String.concat "," (Array.to_list (Array.map string_of_int row)));
          output_char oc '\n')
        rel)

let save_labels rel path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Relation.schema rel in
      output_string oc (String.concat "," (Schema.names schema));
      output_char oc '\n';
      Relation.iteri
        (fun _ row ->
          let cells =
            Array.to_list
              (Array.mapi (fun i v -> Domain.label (Schema.domain schema i) v) row)
          in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        rel)

type error = { line : int; message : string }

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

let load_indices schema path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = Schema.arity schema in
      let err line message = Error { line; message } in
      match In_channel.input_line ic with
      | None -> err 1 "empty file"
      | Some header ->
          let names = String.split_on_char ',' header in
          if names <> Schema.names schema then
            err 1 "header does not match schema attribute names"
          else begin
            let b = Relation.builder schema in
            let line = ref 1 in
            let result = ref (Ok ()) in
            (try
               while !result = Ok () do
                 match In_channel.input_line ic with
                 | None -> raise Exit
                 | Some s when String.trim s = "" -> incr line
                 | Some s -> (
                     incr line;
                     let cells = String.split_on_char ',' s in
                     if List.length cells <> m then
                       result := err !line "wrong number of fields"
                     else
                       match
                         List.map
                           (fun c ->
                             match int_of_string_opt (String.trim c) with
                             | Some v -> v
                             | None -> raise Not_found)
                           cells
                       with
                       | values -> (
                           try Relation.add_row b (Array.of_list values)
                           with Invalid_argument msg -> result := err !line msg)
                       | exception Not_found ->
                           result := err !line "non-integer field")
               done
             with Exit -> ());
            match !result with
            | Ok () -> Ok (Relation.build b)
            | Error e -> Error e
          end)
