(** Dense 1D/2D histograms over domain indices; the source of EntropyDB's
    1D statistics and of the 2D-statistic selection heuristics. *)

type d2

val d1 : Relation.t -> attr:int -> int array
(** Per-value counts for one attribute; length = domain size. *)

val d2 : Relation.t -> attr1:int -> attr2:int -> d2
val get : d2 -> i:int -> j:int -> int
val rows : d2 -> int
val cols : d2 -> int
val total : d2 -> int

val rect_sum : d2 -> i_lo:int -> i_hi:int -> j_lo:int -> j_hi:int -> int
(** Count inside an inclusive rectangle (clamped to the histogram bounds):
    the target value [s_j] of a 2D range statistic. *)

val nonzero_cells : d2 -> ((int * int) * int) list
(** Cells with positive count, row-major order. *)

val zero_cells : d2 -> (int * int) list
(** Cells with zero count, row-major order (the ZERO heuristic's targets). *)
