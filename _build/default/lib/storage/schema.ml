(* Relation schemas: named attributes, each with an active domain. *)

type attr = { name : string; domain : Domain.t }

type t = { attrs : attr array; by_name : (string, int) Hashtbl.t }

let create attrs_list =
  let attrs = Array.of_list attrs_list in
  if Array.length attrs = 0 then invalid_arg "Schema.create: no attributes";
  let by_name = Hashtbl.create 16 in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem by_name a.name then
        invalid_arg ("Schema.create: duplicate attribute " ^ a.name);
      Hashtbl.add by_name a.name i)
    attrs;
  { attrs; by_name }

let attr name domain = { name; domain }
let arity t = Array.length t.attrs
let attr_name t i = t.attrs.(i).name
let domain t i = t.attrs.(i).domain
let domain_size t i = Domain.size t.attrs.(i).domain
let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with
  | Some i -> i
  | None -> invalid_arg ("Schema.find_exn: no attribute named " ^ name)

let attributes t = Array.to_list t.attrs
let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)

(* Number of possible tuples |Tup| = prod_i N_i, as a float since it
   overflows 63 bits for realistic schemas (paper Fig. 3: up to 3.3e10). *)
let tuple_space_size t =
  Array.fold_left (fun acc a -> acc *. float_of_int (Domain.size a.domain)) 1. t.attrs

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      array ~sep:cut (fun ppf a ->
          Fmt.pf ppf "%s : %a (%d values)" a.name Domain.pp a.domain
            (Domain.size a.domain)))
    t.attrs
