(** CSV import/export for relations. *)

val save_indices : Relation.t -> string -> unit
(** Lossless export: header of attribute names, rows of value indices. *)

val save_labels : Relation.t -> string -> unit
(** Human-readable export via {!Domain.label}. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val load_indices : Schema.t -> string -> (Relation.t, error) result
(** Re-import an index CSV; validates the header against the schema and every
    value against its domain. *)
