lib/storage/csv_io.mli: Format Relation Schema
