lib/storage/bitmap.ml: Array Bytes Char Edb_util Lazy List Predicate Ranges Relation Schema
