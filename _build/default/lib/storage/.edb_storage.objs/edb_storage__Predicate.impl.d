lib/storage/predicate.ml: Array Edb_util Fmt List Ranges Schema String
