lib/storage/relation.mli: Format Schema
