lib/storage/exec.mli: Predicate Relation
