lib/storage/relation.ml: Array Fmt List Printf Schema
