lib/storage/histogram.mli: Relation
