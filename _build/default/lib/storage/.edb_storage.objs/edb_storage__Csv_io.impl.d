lib/storage/csv_io.ml: Array Domain Fmt Fun In_channel List Relation Schema String
