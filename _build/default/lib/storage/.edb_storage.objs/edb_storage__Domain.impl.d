lib/storage/domain.ml: Array Fmt Hashtbl Printf
