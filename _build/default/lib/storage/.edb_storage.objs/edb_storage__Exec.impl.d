lib/storage/exec.ml: Array Domain Edb_util Hashtbl List Predicate Ranges Relation Schema
