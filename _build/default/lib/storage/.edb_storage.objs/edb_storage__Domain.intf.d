lib/storage/domain.mli: Format
