lib/storage/histogram.ml: Array Relation Schema
