lib/storage/schema.ml: Array Domain Fmt Hashtbl
