lib/storage/schema.mli: Domain Format
