lib/storage/bitmap.mli: Predicate Relation
