lib/storage/predicate.mli: Edb_util Format Ranges Schema
