(** Bitmap indexes: one bitset per (attribute, value), answering
    conjunctive counting queries by OR within attributes, AND across
    attributes, and a final popcount.  Accelerates the exact ground-truth
    engine on point-query workloads. *)

type t

val create : Relation.t -> t
(** Builds all bitmaps in one pass per column; memory is
    [#rows × Σ N_i / 63] words. *)

val count : t -> Predicate.t -> int
(** Same result as {!Exec.count}, evaluated on the index. *)

val memory_words : t -> int
(** Words held by the index (for reporting). *)
