(* Dense 1D and 2D histograms over domain indices.

   The complete 1D statistics that every EntropyDB summary carries
   (Sec. 3.1) and the 2D cell counts consumed by the statistic-selection
   heuristics (Sec. 4.3) are exactly these histograms. *)

type d2 = { rows : int; cols : int; counts : int array (* row-major *) }

let d1 rel ~attr =
  let schema = Relation.schema rel in
  let size = Schema.domain_size schema attr in
  let counts = Array.make size 0 in
  let col = Relation.column rel attr in
  Array.iter (fun v -> counts.(v) <- counts.(v) + 1) col;
  counts

let d2 rel ~attr1 ~attr2 =
  let schema = Relation.schema rel in
  let rows = Schema.domain_size schema attr1 in
  let cols = Schema.domain_size schema attr2 in
  let counts = Array.make (rows * cols) 0 in
  let c1 = Relation.column rel attr1 and c2 = Relation.column rel attr2 in
  let n = Relation.cardinality rel in
  for r = 0 to n - 1 do
    let idx = (c1.(r) * cols) + c2.(r) in
    counts.(idx) <- counts.(idx) + 1
  done;
  { rows; cols; counts }

let get h ~i ~j =
  if i < 0 || i >= h.rows || j < 0 || j >= h.cols then
    invalid_arg "Histogram.get: out of bounds";
  h.counts.((i * h.cols) + j)

let rows h = h.rows
let cols h = h.cols
let total h = Array.fold_left ( + ) 0 h.counts

(* Sum of counts inside an inclusive rectangle — the value s_j of a 2D range
   statistic. *)
let rect_sum h ~i_lo ~i_hi ~j_lo ~j_hi =
  let acc = ref 0 in
  for i = max 0 i_lo to min (h.rows - 1) i_hi do
    for j = max 0 j_lo to min (h.cols - 1) j_hi do
      acc := !acc + h.counts.((i * h.cols) + j)
    done
  done;
  !acc

let nonzero_cells h =
  let acc = ref [] in
  for i = h.rows - 1 downto 0 do
    for j = h.cols - 1 downto 0 do
      let c = h.counts.((i * h.cols) + j) in
      if c > 0 then acc := ((i, j), c) :: !acc
    done
  done;
  !acc

let zero_cells h =
  let acc = ref [] in
  for i = h.rows - 1 downto 0 do
    for j = h.cols - 1 downto 0 do
      if h.counts.((i * h.cols) + j) = 0 then acc := (i, j) :: !acc
    done
  done;
  !acc
