(** Synthetic N-body-particles-like dataset.

    Substitutes the paper's 210 GB astronomy simulation data with a seeded
    Gaussian-mixture particle cloud: same Fig. 3 domain sizes, density/grp
    and mass/type correlations, and snapshots that evolve gradually. *)

open Edb_storage

(** {1 Attribute indices} *)

val density : int
val mass : int
val x : int
val y : int
val z : int
val grp : int
val ptype : int
val snapshot : int

(** {1 Domain sizes (paper Fig. 3)} *)

val n_density : int
val n_mass : int
val n_pos : int
val n_grp : int
val n_type : int
val n_snapshot : int

val schema : unit -> Schema.t

val generate :
  ?rows_per_snapshot:int -> ?snapshots:int -> seed:int -> unit -> Relation.t
(** Deterministic in [seed].  [snapshots] must be in [\[1, 3\]]; rows default
    to 150k per snapshot. *)
