(* Synthetic N-body-particles-like dataset.

   Substitutes the paper's 210 GB ChaNGa astronomy simulation data
   (Sec. 6.1, [15]).  What the scalability and accuracy experiments of
   Fig. 7 depend on is:

   - the Fig. 3 active-domain sizes (density 58, mass 52, x/y/z 21, grp 2,
     type 3, snapshot 3);
   - particles clustered in space, with [grp] flagging cluster membership
     and density strongly correlated with it (so (density, grp) is a useful
     stratification), and mass correlated with particle type;
   - snapshots that shift the distribution gradually (simulated time
     evolution), so adding snapshots grows the data without changing its
     character.

   Particles are drawn from a mixture: a fraction from 3D Gaussian clusters
   around drifting centers (grp = 1), the rest from a uniform background
   (grp = 0). *)

open Edb_util
open Edb_storage

let density = 0
let mass = 1
let x = 2
let y = 3
let z = 4
let grp = 5
let ptype = 6
let snapshot = 7

let n_density = 58
let n_mass = 52
let n_pos = 21
let n_grp = 2
let n_type = 3
let n_snapshot = 3

let schema () =
  Schema.create
    [
      Schema.attr "density" (Domain.int_bins ~lo:0 ~hi:(n_density - 1) ~width:1);
      Schema.attr "mass" (Domain.int_bins ~lo:0 ~hi:(n_mass - 1) ~width:1);
      Schema.attr "x" (Domain.int_bins ~lo:0 ~hi:(n_pos - 1) ~width:1);
      Schema.attr "y" (Domain.int_bins ~lo:0 ~hi:(n_pos - 1) ~width:1);
      Schema.attr "z" (Domain.int_bins ~lo:0 ~hi:(n_pos - 1) ~width:1);
      Schema.attr "grp" (Domain.int_bins ~lo:0 ~hi:(n_grp - 1) ~width:1);
      Schema.attr "type" (Domain.int_bins ~lo:0 ~hi:(n_type - 1) ~width:1);
      Schema.attr "snapshot" (Domain.int_bins ~lo:0 ~hi:(n_snapshot - 1) ~width:1);
    ]

let n_clusters = 12

let generate ?(rows_per_snapshot = 150_000) ?(snapshots = 3) ~seed () =
  if snapshots < 1 || snapshots > n_snapshot then
    invalid_arg "Particles.generate: snapshots must be in [1, 3]";
  let rng = Prng.create ~seed () in
  let geo = Prng.split rng in
  (* Cluster centers in the unit cube, with a per-snapshot drift velocity
     and per-snapshot density growth (structure formation). *)
  let cx = Array.init n_clusters (fun _ -> Prng.unit_float geo) in
  let cy = Array.init n_clusters (fun _ -> Prng.unit_float geo) in
  let cz = Array.init n_clusters (fun _ -> Prng.unit_float geo) in
  let vx = Array.init n_clusters (fun _ -> Prng.float geo 0.06 -. 0.03) in
  let vy = Array.init n_clusters (fun _ -> Prng.float geo 0.06 -. 0.03) in
  let vz = Array.init n_clusters (fun _ -> Prng.float geo 0.06 -. 0.03) in
  let cluster_sigma = Array.init n_clusters (fun _ -> 0.02 +. Prng.float geo 0.05) in
  let cluster_weight = Prng.zipf_weights ~n:n_clusters ~s:0.8 in
  let cluster_dist = Prng.Categorical.create cluster_weight in
  (* Type mix: 0 = gas, 1 = dark matter, 2 = star.  Stars live mostly in
     clusters; dark matter dominates the background. *)
  let type_in_cluster = Prng.Categorical.create [| 0.35; 0.40; 0.25 |] in
  let type_background = Prng.Categorical.create [| 0.25; 0.72; 0.03 |] in
  (* Mass scale per type (log-space), giving the mass/type correlation. *)
  let mass_mean = [| 18.; 34.; 26. |] and mass_sd = [| 4.; 6.; 5. |] in
  let sc = schema () in
  let b = Relation.builder ~capacity:(rows_per_snapshot * snapshots) sc in
  let clamp_bin ~n v = max 0 (min (n - 1) v) in
  let wrap01 v = v -. Float.of_int (int_of_float (Float.floor v)) in
  for snap = 0 to snapshots - 1 do
    let t = float_of_int snap in
    let cluster_fraction = 0.55 +. (0.08 *. t) in
    for _ = 1 to rows_per_snapshot do
      let in_cluster = Prng.unit_float rng < cluster_fraction in
      let px, py, pz, dens_raw, ty =
        if in_cluster then begin
          let c = Prng.Categorical.sample cluster_dist rng in
          let sigma = cluster_sigma.(c) in
          let px = Prng.gaussian rng ~mean:(wrap01 (cx.(c) +. (vx.(c) *. t))) ~stddev:sigma in
          let py = Prng.gaussian rng ~mean:(wrap01 (cy.(c) +. (vy.(c) *. t))) ~stddev:sigma in
          let pz = Prng.gaussian rng ~mean:(wrap01 (cz.(c) +. (vz.(c) *. t))) ~stddev:sigma in
          (* Density grows toward cluster centers and over time. *)
          let dens =
            35. +. (6. *. t) +. Prng.gaussian rng ~mean:10. ~stddev:6.
            -. (120. *. sigma *. Prng.unit_float rng)
          in
          (wrap01 px, wrap01 py, wrap01 pz, dens, Prng.Categorical.sample type_in_cluster rng)
        end
        else
          ( Prng.unit_float rng,
            Prng.unit_float rng,
            Prng.unit_float rng,
            Float.max 0. (Prng.gaussian rng ~mean:8. ~stddev:5.),
            Prng.Categorical.sample type_background rng )
      in
      let mass_raw =
        Float.max 0. (Prng.gaussian rng ~mean:mass_mean.(ty) ~stddev:mass_sd.(ty))
      in
      let row =
        [|
          clamp_bin ~n:n_density (int_of_float dens_raw);
          clamp_bin ~n:n_mass (int_of_float mass_raw);
          clamp_bin ~n:n_pos (int_of_float (px *. float_of_int n_pos));
          clamp_bin ~n:n_pos (int_of_float (py *. float_of_int n_pos));
          clamp_bin ~n:n_pos (int_of_float (pz *. float_of_int n_pos));
          (if in_cluster then 1 else 0);
          ty;
          snap;
        |]
      in
      Relation.add_row b row
    done
  done;
  Relation.build b
