(* Synthetic US-flights-like dataset.

   Substitutes the paper's 5 GB BTS on-time-performance data (Sec. 6.1).
   The reproduction needs the *correlation structure* the paper reports,
   not the actual flights:

   - active-domain sizes match the paper's Fig. 3: fl_date 307,
     origin/dest 54 (coarse, "states") or 147 (fine, "cities"),
     fl_time 62, distance 81;
   - (origin, distance), (dest, distance), (fl_time, distance), and
     (origin, dest) are the most correlated attribute pairs — distance is a
     deterministic function of the route geometry plus noise, flight time is
     distance over speed plus noise, and routes follow a gravity model
     (popularity times exponential distance decay), so origin and dest are
     correlated beyond independence;
   - fl_date is nearly uniform (mild weekly seasonality), which is why the
     paper's summaries carry no 2D statistic on it.

   Coarse and fine relations contain the same flights: flights are generated
   at city granularity, and the coarse relation projects cities onto their
   states. *)

open Edb_util
open Edb_storage

(* Attribute indices, identical for the coarse and fine relations. *)
let fl_date = 0
let origin = 1
let dest = 2
let fl_time = 3
let distance = 4

let n_dates = 307
let n_states = 54
let n_cities = 147
let n_times = 62
let n_distances = 81

type t = {
  coarse : Relation.t;
  fine : Relation.t;
  city_state : int array; (* city index -> state index *)
}

let state_labels =
  Array.init n_states (fun i -> Printf.sprintf "S%02d" i)

(* Distribute the 147 fine cities over the 54 states: popular states get
   more distinct cities (the paper separates each state's two most popular
   cities and pools the rest into an 'Other' bucket). *)
let make_cities rng =
  let extra = n_cities - n_states in
  (* Every state has at least one city bucket; hand out the remaining
     buckets Zipf-weighted toward popular (low-index) states. *)
  let per_state = Array.make n_states 1 in
  let weights = Prng.zipf_weights ~n:n_states ~s:1.0 in
  let dist = Prng.Categorical.create weights in
  let remaining = ref extra in
  while !remaining > 0 do
    let s = Prng.Categorical.sample dist rng in
    if per_state.(s) < 4 then begin
      per_state.(s) <- per_state.(s) + 1;
      decr remaining
    end
  done;
  let city_state = Array.make n_cities 0 in
  let labels = Array.make n_cities "" in
  let c = ref 0 in
  for s = 0 to n_states - 1 do
    for k = 0 to per_state.(s) - 1 do
      city_state.(!c) <- s;
      labels.(!c) <-
        (if k = per_state.(s) - 1 then Printf.sprintf "S%02d_Other" s
         else Printf.sprintf "S%02d_C%d" s k);
      incr c
    done
  done;
  assert (!c = n_cities);
  (city_state, labels)

let coarse_schema () =
  Schema.create
    [
      Schema.attr "fl_date" (Domain.int_bins ~lo:0 ~hi:(n_dates - 1) ~width:1);
      Schema.attr "origin_state" (Domain.categorical state_labels);
      Schema.attr "dest_state" (Domain.categorical state_labels);
      Schema.attr "fl_time" (Domain.int_bins ~lo:0 ~hi:(n_times - 1) ~width:1);
      Schema.attr "distance" (Domain.int_bins ~lo:0 ~hi:(n_distances - 1) ~width:1);
    ]

let fine_schema city_labels =
  Schema.create
    [
      Schema.attr "fl_date" (Domain.int_bins ~lo:0 ~hi:(n_dates - 1) ~width:1);
      Schema.attr "origin_city" (Domain.categorical city_labels);
      Schema.attr "dest_city" (Domain.categorical city_labels);
      Schema.attr "fl_time" (Domain.int_bins ~lo:0 ~hi:(n_times - 1) ~width:1);
      Schema.attr "distance" (Domain.int_bins ~lo:0 ~hi:(n_distances - 1) ~width:1);
    ]

let generate ?(rows = 400_000) ~seed () =
  let rng = Prng.create ~seed () in
  let geo_rng = Prng.split rng in
  (* State geometry: positions on a 3000 x 1500 "mile" map, so route
     distances fall in [0, ~3350]. *)
  let state_x = Array.init n_states (fun _ -> Prng.float geo_rng 3000.) in
  let state_y = Array.init n_states (fun _ -> Prng.float geo_rng 1500.) in
  let city_state, city_labels = make_cities geo_rng in
  (* City jitter keeps fine-grained distances distinct within a state. *)
  let city_dx = Array.init n_cities (fun _ -> Prng.float geo_rng 120. -. 60.) in
  let city_dy = Array.init n_cities (fun _ -> Prng.float geo_rng 120. -. 60.) in
  (* City popularity: Zipf over cities, reshuffled so popularity does not
     simply follow the state index. *)
  let perm = Array.init n_cities (fun i -> i) in
  Prng.shuffle geo_rng perm;
  let city_pop =
    let z = Prng.zipf_weights ~n:n_cities ~s:1.05 in
    Array.init n_cities (fun c -> z.(perm.(c)))
  in
  (* Gravity-model destination choice: popularity times distance decay, with
     a long-haul floor so cross-country routes exist. *)
  let city_xy c =
    let s = city_state.(c) in
    (state_x.(s) +. city_dx.(c), state_y.(s) +. city_dy.(c))
  in
  let route_miles o d =
    let ox, oy = city_xy o and dx_, dy_ = city_xy d in
    sqrt (((ox -. dx_) ** 2.) +. ((oy -. dy_) ** 2.))
  in
  let origin_dist = Prng.Categorical.create city_pop in
  (* Precompute per-origin destination distributions lazily; 147 origins so
     the table is small. *)
  let dest_dist = Array.make n_cities None in
  let dest_for o =
    match dest_dist.(o) with
    | Some d -> d
    | None ->
        let w =
          Array.init n_cities (fun d ->
              if d = o then 0.
              else
                let miles = route_miles o d in
                city_pop.(d) *. (exp (-.miles /. 900.) +. 0.08))
        in
        let dist = Prng.Categorical.create w in
        dest_dist.(o) <- Some dist;
        dist
  in
  let coarse_sc = coarse_schema () in
  let fine_sc = fine_schema city_labels in
  let bc = Relation.builder ~capacity:rows coarse_sc in
  let bf = Relation.builder ~capacity:rows fine_sc in
  (* Weekly seasonality on dates: weekdays ~15% busier than weekends. *)
  let date_w =
    Array.init n_dates (fun d -> if d mod 7 < 5 then 1.15 else 1.0)
  in
  let date_dist = Prng.Categorical.create date_w in
  let max_miles = 3400. in
  for _ = 1 to rows do
    let date = Prng.Categorical.sample date_dist rng in
    let o = Prng.Categorical.sample origin_dist rng in
    let d = Prng.Categorical.sample (dest_for o) rng in
    let miles =
      Float.max 50.
        (route_miles o d +. Prng.gaussian rng ~mean:0. ~stddev:30.)
    in
    let dist_bin =
      min (n_distances - 1)
        (int_of_float (miles /. max_miles *. float_of_int n_distances))
    in
    (* Block time: ~30 min overhead plus cruise at ~460 mph, in 15-minute
       buckets capped at the domain. *)
    let minutes =
      30. +. (miles /. 460. *. 60.) +. Prng.gaussian rng ~mean:0. ~stddev:12.
    in
    let time_bin =
      Floatx.clamp ~lo:0. ~hi:(float_of_int (n_times - 1)) (minutes /. 15.)
      |> int_of_float
    in
    Relation.add_row bf [| date; o; d; time_bin; dist_bin |];
    Relation.add_row bc
      [| date; city_state.(o); city_state.(d); time_bin; dist_bin |]
  done;
  { coarse = Relation.build bc; fine = Relation.build bf; city_state }
