(** Synthetic US-flights-like dataset.

    Substitutes the paper's 5 GB BTS flights data: same schema and
    active-domain sizes (Fig. 3) and the same correlation ranking —
    (origin,distance), (dest,distance), (fl_time,distance), (origin,dest)
    strongly correlated, fl_date near-uniform.  Coarse (54 states) and fine
    (147 cities) relations contain the same generated flights. *)

open Edb_storage

(** {1 Attribute indices (both relations)} *)

val fl_date : int
val origin : int
val dest : int
val fl_time : int
val distance : int

(** {1 Domain sizes (paper Fig. 3)} *)

val n_dates : int
val n_states : int
val n_cities : int
val n_times : int
val n_distances : int

type t = {
  coarse : Relation.t;  (** FlightsCoarse: origin/dest at state granularity *)
  fine : Relation.t;  (** FlightsFine: origin/dest at city granularity *)
  city_state : int array;  (** city index -> state index *)
}

val generate : ?rows:int -> seed:int -> unit -> t
(** Deterministic in [seed].  Default 400k rows. *)
