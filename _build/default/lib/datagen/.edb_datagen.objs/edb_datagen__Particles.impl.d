lib/datagen/particles.ml: Array Domain Edb_storage Edb_util Float Prng Relation Schema
