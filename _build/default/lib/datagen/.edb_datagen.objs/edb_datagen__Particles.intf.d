lib/datagen/particles.mli: Edb_storage Relation Schema
