lib/datagen/flights.mli: Edb_storage Relation
