lib/datagen/flights.ml: Array Domain Edb_storage Edb_util Float Floatx Printf Prng Relation Schema
