(** Translation of parsed queries into engine form: schema-resolved
    predicates and grouping attribute indices. *)

open Edb_storage

type error = { message : string }

val pp_error : Format.formatter -> error -> unit

type aggregate = Count | Sum of int | Avg of int

type compiled = {
  disjuncts : Predicate.t list;
      (** non-empty; a single tautology when there is no WHERE *)
  aggregate : aggregate;
  group_attrs : int list;
  order : Ast.order option;
  limit : int option;
}

val conjunctive : compiled -> Predicate.t option
(** The predicate of a non-OR query; [None] when the query has multiple
    disjuncts. *)

val compile : Schema.t -> Ast.t -> (compiled, error) result
(** Values outside the active domain compile to empty restrictions (the
    query is valid and counts 0); unknown attributes and type mismatches
    are errors. *)

val compile_string : Schema.t -> string -> (compiled, error) result
(** Parse + compile in one step. *)
