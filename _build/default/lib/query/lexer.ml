(* Hand-written lexer for the query language.

   Keywords are case-insensitive; identifiers keep their case.  Strings use
   single quotes with '' as the escape for a literal quote.  Numbers are
   ints or floats.  Position tracking is per-character offset, surfaced in
   parse errors. *)

type token =
  | SELECT
  | COUNT
  | SUM
  | AVG
  | FROM
  | WHERE
  | GROUP
  | BY
  | ORDER
  | LIMIT
  | AND
  | OR
  | IN
  | BETWEEN
  | NEQ
  | DESC
  | ASC
  | STAR
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EOF

type error = { pos : int; message : string }

let pp_token ppf = function
  | SELECT -> Fmt.string ppf "SELECT"
  | COUNT -> Fmt.string ppf "COUNT"
  | SUM -> Fmt.string ppf "SUM"
  | AVG -> Fmt.string ppf "AVG"
  | FROM -> Fmt.string ppf "FROM"
  | WHERE -> Fmt.string ppf "WHERE"
  | GROUP -> Fmt.string ppf "GROUP"
  | BY -> Fmt.string ppf "BY"
  | ORDER -> Fmt.string ppf "ORDER"
  | LIMIT -> Fmt.string ppf "LIMIT"
  | AND -> Fmt.string ppf "AND"
  | OR -> Fmt.string ppf "OR"
  | IN -> Fmt.string ppf "IN"
  | BETWEEN -> Fmt.string ppf "BETWEEN"
  | NEQ -> Fmt.string ppf "<>"
  | DESC -> Fmt.string ppf "DESC"
  | ASC -> Fmt.string ppf "ASC"
  | STAR -> Fmt.string ppf "*"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | COMMA -> Fmt.string ppf ","
  | EQUALS -> Fmt.string ppf "="
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string '%s'" s
  | EOF -> Fmt.string ppf "end of input"

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some SELECT
  | "COUNT" -> Some COUNT
  | "SUM" -> Some SUM
  | "AVG" -> Some AVG
  | "FROM" -> Some FROM
  | "WHERE" -> Some WHERE
  | "GROUP" -> Some GROUP
  | "BY" -> Some BY
  | "ORDER" -> Some ORDER
  | "LIMIT" -> Some LIMIT
  | "AND" -> Some AND
  | "OR" -> Some OR
  | "IN" -> Some IN
  | "BETWEEN" -> Some BETWEEN
  | "DESC" -> Some DESC
  | "ASC" -> Some ASC
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize the whole input; each token is paired with its start offset. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error = ref None in
  let pos = ref 0 in
  let emit tok start = tokens := (tok, start) :: !tokens in
  (try
     while !pos < n && !error = None do
       let c = input.[!pos] in
       let start = !pos in
       if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
       else if is_ident_start c then begin
         let e = ref !pos in
         while !e < n && is_ident_char input.[!e] do incr e done;
         let word = String.sub input !pos (!e - !pos) in
         pos := !e;
         match keyword_of_string word with
         | Some kw -> emit kw start
         | None -> emit (IDENT word) start
       end
       else if is_digit c || (c = '-' && !pos + 1 < n && is_digit input.[!pos + 1])
       then begin
         let e = ref (!pos + 1) in
         let seen_dot = ref false in
         while
           !e < n
           && (is_digit input.[!e] || (input.[!e] = '.' && not !seen_dot))
         do
           if input.[!e] = '.' then seen_dot := true;
           incr e
         done;
         let text = String.sub input !pos (!e - !pos) in
         pos := !e;
         if !seen_dot then emit (FLOAT (float_of_string text)) start
         else emit (INT (int_of_string text)) start
       end
       else if c = '\'' then begin
         let buf = Buffer.create 16 in
         incr pos;
         let closed = ref false in
         while (not !closed) && !error = None do
           if !pos >= n then
             error := Some { pos = start; message = "unterminated string" }
           else if input.[!pos] = '\'' then
             if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
               Buffer.add_char buf '\'';
               pos := !pos + 2
             end
             else begin
               closed := true;
               incr pos
             end
           else begin
             Buffer.add_char buf input.[!pos];
             incr pos
           end
         done;
         if !closed then emit (STRING (Buffer.contents buf)) start
       end
       else begin
         (match c with
         | '<' when !pos + 1 < n && input.[!pos + 1] = '>' ->
             incr pos;
             emit NEQ start
         | '*' -> emit STAR start
         | '(' -> emit LPAREN start
         | ')' -> emit RPAREN start
         | '[' -> emit LBRACKET start
         | ']' -> emit RBRACKET start
         | ',' -> emit COMMA start
         | '=' -> emit EQUALS start
         | _ ->
             error :=
               Some
                 {
                   pos = start;
                   message = Printf.sprintf "unexpected character %C" c;
                 });
         incr pos
       end
     done
   with Failure msg -> error := Some { pos = !pos; message = msg });
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev ((EOF, n) :: !tokens))
