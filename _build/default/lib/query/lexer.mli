(** Lexer for the query language: case-insensitive keywords,
    single-quoted strings (with [''] escapes), integer and float literals. *)

type token =
  | SELECT
  | COUNT
  | SUM
  | AVG
  | FROM
  | WHERE
  | GROUP
  | BY
  | ORDER
  | LIMIT
  | AND
  | OR
  | IN
  | BETWEEN
  | NEQ
  | DESC
  | ASC
  | STAR
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EOF

type error = { pos : int; message : string }

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> ((token * int) list, error) result
(** Tokens paired with their character offsets; always ends with [EOF]. *)
