(** Abstract syntax of the supported SQL fragment: conjunctive counting
    queries with optional GROUP BY / ORDER BY count / LIMIT. *)

type value = Vint of int | Vfloat of float | Vstr of string

type condition =
  | Eq of string * value
  | Neq of string * value
  | Between of string * value * value  (** inclusive range *)
  | In_set of string * value list

type order = Desc | Asc

type agg = Count | Sum of string | Avg of string
(** COUNT supports GROUP BY; SUM/AVG are plain aggregates over one binned
    attribute. *)

type t = {
  table : string;
  agg : agg;
  group_by : string list;
  where : condition list list;
      (** disjunctive normal form: OR of conjunctions; [] = no WHERE *)
  order : order option;
  limit : int option;
}

val count_query : ?table:string -> condition list -> t
(** Plain conjunctive count. *)

val pp_agg : Format.formatter -> agg -> unit
val pp_value : Format.formatter -> value -> unit
val pp_condition : Format.formatter -> condition -> unit
val pp : Format.formatter -> t -> unit
