(** Recursive-descent parser for the query language. *)

type error = { pos : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result
(** Parses e.g.
    [SELECT COUNT( * ) FROM R WHERE origin = 'CA' AND distance IN [5, 10]]
    and
    [SELECT a, b, COUNT( * ) FROM R GROUP BY a, b ORDER BY cnt DESC LIMIT 10]. *)
