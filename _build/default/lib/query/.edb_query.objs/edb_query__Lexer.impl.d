lib/query/lexer.ml: Buffer Fmt List Printf String
