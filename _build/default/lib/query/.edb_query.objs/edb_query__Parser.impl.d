lib/query/parser.ml: Ast Fmt Lexer List
