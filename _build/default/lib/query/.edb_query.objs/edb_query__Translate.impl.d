lib/query/translate.ml: Ast Domain Edb_storage Edb_util Fmt List Option Parser Predicate Ranges Result Schema
