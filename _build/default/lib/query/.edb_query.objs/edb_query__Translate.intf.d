lib/query/translate.mli: Ast Edb_storage Format Predicate Schema
