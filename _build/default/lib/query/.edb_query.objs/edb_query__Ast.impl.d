lib/query/ast.ml: Fmt String
