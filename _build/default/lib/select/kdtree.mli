(** The modified KD-tree of the COMPOSITE heuristic (Sec. 4.3): partitions
    a 2D histogram into [budget] disjoint rectangles, splitting the
    highest-variance leaf at the cut that minimizes the children's summed
    squared deviation from their mean cell counts (not the median). *)

type rect = { i_lo : int; i_hi : int; j_lo : int; j_hi : int }

val partition :
  budget:int -> (int -> int -> int) -> rows:int -> cols:int -> rect list
(** [partition ~budget get ~rows ~cols] splits the grid whose cell counts
    are [get i j].  Returns at most [budget] rectangles that exactly tile
    the grid (fewer when every leaf becomes a single cell or perfectly
    homogeneous).  Raises on budgets below 1. *)

val of_histogram : budget:int -> Edb_storage.Histogram.d2 -> rect list

(** {2 Exposed for testing} *)

type t
(** Prefix-sum state over a grid. *)

val prepare : (int -> int -> int) -> rows:int -> cols:int -> t

val best_split : t -> rect -> dim:int -> (float * int * rect * rect) option
(** [best_split t r ~dim] is the minimum-SSE cut of [r] along [dim]
    (0 = rows, 1 = cols) as [(cost, cut, left, right)]; [None] when the
    dimension has a single value.  This is the paper's Fig. 2a splitting
    rule. *)
