(* Attribute correlation measurement (Sec. 4.3).

   The statistic chooser ranks attribute pairs by correlation and skips
   near-uniform attributes; the paper uses the chi-squared coefficient for
   both.  We report the chi-squared statistic of independence per pair and
   normalize it to Cramér's V so pairs with different domain sizes are
   comparable. *)

open Edb_storage

(* Chi-squared statistic of independence for an attribute pair: compares
   the 2D histogram with the product of the marginals. *)
let chi2_pair rel ~attr1 ~attr2 =
  let h = Histogram.d2 rel ~attr1 ~attr2 in
  let rows = Histogram.rows h and cols = Histogram.cols h in
  let row_sum = Array.make rows 0 and col_sum = Array.make cols 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let c = Histogram.get h ~i ~j in
      row_sum.(i) <- row_sum.(i) + c;
      col_sum.(j) <- col_sum.(j) + c
    done
  done;
  let n = float_of_int (Relation.cardinality rel) in
  let acc = ref 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let expected = float_of_int row_sum.(i) *. float_of_int col_sum.(j) /. n in
      if expected > 0. then begin
        let obs = float_of_int (Histogram.get h ~i ~j) in
        acc := !acc +. (((obs -. expected) ** 2.) /. expected)
      end
    done
  done;
  !acc

(* Cramér's V in [0, 1]: chi-squared normalized by n * (min(r,c) - 1).
   Only non-empty rows/columns count toward the degrees of freedom, so
   sparse active domains do not deflate the score. *)
let cramers_v rel ~attr1 ~attr2 =
  let h = Histogram.d2 rel ~attr1 ~attr2 in
  let rows = Histogram.rows h and cols = Histogram.cols h in
  let nonempty_rows = ref 0 and nonempty_cols = ref 0 in
  for i = 0 to rows - 1 do
    let any = ref false in
    for j = 0 to cols - 1 do
      if Histogram.get h ~i ~j > 0 then any := true
    done;
    if !any then incr nonempty_rows
  done;
  for j = 0 to cols - 1 do
    let any = ref false in
    for i = 0 to rows - 1 do
      if Histogram.get h ~i ~j > 0 then any := true
    done;
    if !any then incr nonempty_cols
  done;
  let k = min !nonempty_rows !nonempty_cols in
  if k <= 1 then 0.
  else
    let chi2 = chi2_pair rel ~attr1 ~attr2 in
    let n = float_of_int (Relation.cardinality rel) in
    sqrt (chi2 /. (n *. float_of_int (k - 1)))

(* Chi-squared against the uniform distribution for one attribute,
   normalized to [0, 1] like Cramér's V: 0 means uniform.  The paper skips
   2D statistics on near-uniform attributes (fl_date). *)
let uniformity_deviation rel ~attr =
  let hist = Histogram.d1 rel ~attr in
  let size = Array.length hist in
  if size <= 1 then 0.
  else begin
    let n = float_of_int (Relation.cardinality rel) in
    let expected = n /. float_of_int size in
    let chi2 =
      Array.fold_left
        (fun acc c ->
          acc +. (((float_of_int c -. expected) ** 2.) /. expected))
        0. hist
    in
    sqrt (chi2 /. (n *. float_of_int (size - 1)))
  end

(* Rank all attribute pairs by Cramér's V, descending. *)
let rank_pairs ?(exclude = []) rel =
  let schema = Relation.schema rel in
  let m = Schema.arity schema in
  let pairs = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if not (List.mem i exclude || List.mem j exclude) then
        pairs := ((i, j), cramers_v rel ~attr1:i ~attr2:j) :: !pairs
    done
  done;
  List.sort (fun (_, a) (_, b) -> compare b a) !pairs
