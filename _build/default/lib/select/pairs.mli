(** Attribute-pair selection under a breadth budget Ba (Sec. 4.3):
    correlation-first vs attribute-cover-first strategies. *)

open Edb_storage

type strategy = By_correlation | By_cover

val strategy_name : strategy -> string

val select :
  ?exclude:int list -> strategy:strategy -> budget:int -> Relation.t ->
  (int * int) list
(** Up to [budget] attribute pairs, most useful first.  [exclude] removes
    attributes (e.g. near-uniform ones like fl_date) from consideration.
    Raises on non-positive budgets. *)

val split_budget : total:int -> pairs:int -> int
(** Bs = total / pairs (at least 1): buckets per chosen pair. *)

val select_auto :
  ?exclude:int list ->
  ?min_v:float ->
  ?rel_v:float ->
  ?max_pairs:int ->
  Relation.t ->
  (int * int) list
(** Automatic breadth (Ba) selection — the paper leaves Ba manual and
    lists automation as future work.  Keeps pairs with Cramér's V at least
    [min_v] (default 0.05) and at least [rel_v] (default 0.25) of the
    strongest pair's, applies the cover strategy among them, and returns at
    most [max_pairs] (default 4). *)
