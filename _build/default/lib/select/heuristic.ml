(* The three 2D-statistic selection heuristics of Sec. 4.3.

   Given an attribute pair and a per-pair budget Bs, each heuristic returns
   disjoint 2D predicates over the pair:

   - LARGE single cell: the Bs most frequent cells, as point predicates;
   - ZERO single cell: up to Bs empty cells (point predicates), topping up
     with frequent cells if the pair has fewer empty cells than budget —
     targets the MaxEnt model's "phantom tuple" false positives;
   - COMPOSITE: a modified-KD-tree partition into Bs rectangles. *)

open Edb_util
open Edb_storage

type kind = Large | Zero | Composite

let kind_name = function
  | Large -> "LARGE"
  | Zero -> "ZERO"
  | Composite -> "COMPOSITE"

let cell_predicate ~arity ~attr1 ~attr2 (i, j) =
  Predicate.point ~arity [ (attr1, i); (attr2, j) ]

let large rel ~attr1 ~attr2 ~budget =
  let arity = Schema.arity (Relation.schema rel) in
  let h = Histogram.d2 rel ~attr1 ~attr2 in
  let cells = Histogram.nonzero_cells h in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) cells in
  List.filteri (fun k _ -> k < budget) sorted
  |> List.map (fun (cell, _) -> cell_predicate ~arity ~attr1 ~attr2 cell)

let zero rel ~attr1 ~attr2 ~budget =
  let arity = Schema.arity (Relation.schema rel) in
  let h = Histogram.d2 rel ~attr1 ~attr2 in
  let zeros = Histogram.zero_cells h in
  let chosen = List.filteri (fun k _ -> k < budget) zeros in
  let deficit = budget - List.length chosen in
  let filler =
    if deficit <= 0 then []
    else
      Histogram.nonzero_cells h
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun k _ -> k < deficit)
      |> List.map fst
  in
  List.map (cell_predicate ~arity ~attr1 ~attr2) (chosen @ filler)

let composite rel ~attr1 ~attr2 ~budget =
  let arity = Schema.arity (Relation.schema rel) in
  let h = Histogram.d2 rel ~attr1 ~attr2 in
  Kdtree.of_histogram ~budget h
  |> List.map (fun (r : Kdtree.rect) ->
         Predicate.of_alist ~arity
           [
             (attr1, Ranges.interval r.i_lo r.i_hi);
             (attr2, Ranges.interval r.j_lo r.j_hi);
           ])

let select kind rel ~attr1 ~attr2 ~budget =
  if budget < 1 then invalid_arg "Heuristic.select: budget must be >= 1";
  if attr1 = attr2 then invalid_arg "Heuristic.select: attributes must differ";
  match kind with
  | Large -> large rel ~attr1 ~attr2 ~budget
  | Zero -> zero rel ~attr1 ~attr2 ~budget
  | Composite -> composite rel ~attr1 ~attr2 ~budget
