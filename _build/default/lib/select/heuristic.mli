(** The 2D-statistic selection heuristics of Sec. 4.3: LARGE single cell,
    ZERO single cell, and COMPOSITE (modified KD-tree). *)

open Edb_storage

type kind = Large | Zero | Composite

val kind_name : kind -> string

val select :
  kind -> Relation.t -> attr1:int -> attr2:int -> budget:int ->
  Predicate.t list
(** Up to [budget] pairwise-disjoint 2D predicates over the attribute pair,
    ready to feed to {!Entropydb_core.Phi.of_relation}.  Raises on
    non-positive budgets or equal attributes. *)
