lib/select/correlation.mli: Edb_storage Relation
