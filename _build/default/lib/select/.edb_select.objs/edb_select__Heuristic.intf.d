lib/select/heuristic.mli: Edb_storage Predicate Relation
