lib/select/correlation.ml: Array Edb_storage Histogram List Relation Schema
