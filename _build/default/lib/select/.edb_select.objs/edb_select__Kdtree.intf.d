lib/select/kdtree.mli: Edb_storage
