lib/select/kdtree.ml: Array Edb_storage Float List
