lib/select/pairs.mli: Edb_storage Relation
