lib/select/pairs.ml: Array Correlation Edb_storage Float List Relation Schema
