lib/select/heuristic.ml: Edb_storage Edb_util Histogram Kdtree List Predicate Ranges Relation Schema
