(* The modified KD-tree behind the COMPOSITE heuristic (Sec. 4.3).

   Partitions a 2D histogram into a budgeted number of disjoint rectangles.
   Differences from a textbook KD-tree, per the paper:

   - the split position is not the median: it is the boundary minimizing
     the total within-half sum of squared deviations from the half's mean
     cell count ("the value that has the lowest sum squared average value
     difference"), so the leaves track regions of homogeneous density;
   - splitting alternates between the two dimensions by node depth;
   - growth stops when the leaf budget Bs is exhausted (we always split the
     leaf with the largest current SSE next, so the budget goes where the
     data is least homogeneous).

   All rectangle aggregates come from 2D prefix sums over counts and
   squared counts, making each candidate split O(1) to score. *)

type rect = { i_lo : int; i_hi : int; j_lo : int; j_hi : int }

type leaf = { rect : rect; depth : int; sse : float }

type t = {
  rows : int;
  cols : int;
  (* prefix.(i).(j) = sum of counts in [0,i) x [0,j); likewise squares. *)
  prefix : float array array;
  prefix_sq : float array array;
  leaves : rect list;
}

let build_prefix get rows cols =
  let p = Array.make_matrix (rows + 1) (cols + 1) 0. in
  for i = 1 to rows do
    for j = 1 to cols do
      p.(i).(j) <-
        get (i - 1) (j - 1) +. p.(i - 1).(j) +. p.(i).(j - 1)
        -. p.(i - 1).(j - 1)
    done
  done;
  p

let rect_sum prefix r =
  prefix.(r.i_hi + 1).(r.j_hi + 1)
  -. prefix.(r.i_lo).(r.j_hi + 1)
  -. prefix.(r.i_hi + 1).(r.j_lo)
  +. prefix.(r.i_lo).(r.j_lo)

let cells r = (r.i_hi - r.i_lo + 1) * (r.j_hi - r.j_lo + 1)

(* Within-rectangle sum of squared deviations from the mean cell count:
   sum c^2 - (sum c)^2 / #cells. *)
let sse t r =
  let s = rect_sum t.prefix r and s2 = rect_sum t.prefix_sq r in
  Float.max 0. (s2 -. (s *. s /. float_of_int (cells r)))

(* Best split of [r] along dimension [dim] (0 = rows/i, 1 = cols/j):
   the cut minimizing children's combined SSE.  None if the dimension has a
   single value. *)
let best_split t r ~dim =
  let lo, hi = if dim = 0 then (r.i_lo, r.i_hi) else (r.j_lo, r.j_hi) in
  if lo >= hi then None
  else begin
    let best = ref None in
    for cut = lo to hi - 1 do
      let left, right =
        if dim = 0 then
          ({ r with i_hi = cut }, { r with i_lo = cut + 1 })
        else ({ r with j_hi = cut }, { r with j_lo = cut + 1 })
      in
      let cost = sse t left +. sse t right in
      match !best with
      | Some (c, _, _, _) when c <= cost -> ()
      | _ -> best := Some (cost, cut, left, right)
    done;
    !best
  end

let prepare get_count ~rows ~cols =
  let getf i j = float_of_int (get_count i j) in
  {
    rows;
    cols;
    prefix = build_prefix getf rows cols;
    prefix_sq = build_prefix (fun i j -> getf i j ** 2.) rows cols;
    leaves = [];
  }

let partition ~budget get_count ~rows ~cols =
  if budget < 1 then invalid_arg "Kdtree.partition: budget must be >= 1";
  let t = prepare get_count ~rows ~cols in
  let root =
    { rect = { i_lo = 0; i_hi = rows - 1; j_lo = 0; j_hi = cols - 1 };
      depth = 0;
      sse = 0. }
  in
  let root = { root with sse = sse t root.rect } in
  (* Leaves kept as a list; budgets are at most a few thousand, so a linear
     scan for the max-SSE leaf per split is fine. *)
  let leaves = ref [ root ] in
  let num = ref 1 in
  let continue = ref true in
  while !num < budget && !continue do
    (* Pick the splittable leaf with the largest SSE. *)
    let candidate =
      List.fold_left
        (fun acc leaf ->
          if cells leaf.rect <= 1 || leaf.sse <= 0. then acc
          else
            match acc with
            | Some best when best.sse >= leaf.sse -> acc
            | _ -> Some leaf)
        None !leaves
    in
    match candidate with
    | None -> continue := false
    | Some leaf ->
        (* Alternate dimensions by depth, falling back to the other
           dimension when the preferred one is unsplittable. *)
        let preferred = leaf.depth mod 2 in
        let split =
          match best_split t leaf.rect ~dim:preferred with
          | Some s -> Some s
          | None -> best_split t leaf.rect ~dim:(1 - preferred)
        in
        (match split with
        | None ->
            (* Unsplittable after all: mark it final by zeroing its SSE. *)
            leaves :=
              List.map
                (fun l -> if l == leaf then { l with sse = 0. } else l)
                !leaves
        | Some (_, _, left, right) ->
            let mk r = { rect = r; depth = leaf.depth + 1; sse = sse t r } in
            leaves :=
              mk left :: mk right :: List.filter (fun l -> l != leaf) !leaves;
            incr num)
  done;
  List.map (fun l -> l.rect) !leaves

let of_histogram ~budget h =
  partition ~budget
    (fun i j -> Edb_storage.Histogram.get h ~i ~j)
    ~rows:(Edb_storage.Histogram.rows h)
    ~cols:(Edb_storage.Histogram.cols h)
