(* Attribute-pair selection under a breadth budget Ba (Sec. 4.3).

   Two strategies from the paper's discussion:

   - correlation-first: walk pairs in decreasing correlation, accepting a
     pair only if it brings at least one attribute not already covered by a
     more correlated accepted pair;
   - cover-first: prefer pairs that extend attribute coverage the most
     (two new attributes beat one, which beats zero), breaking ties by
     correlation — the paper's example of choosing AB and CD over AB and
     BC, and the strategy its Sec. 6.4 experiments favor. *)

open Edb_storage

type strategy = By_correlation | By_cover

let strategy_name = function
  | By_correlation -> "correlation"
  | By_cover -> "cover"

let select ?(exclude = []) ~strategy ~budget rel =
  if budget < 1 then invalid_arg "Pairs.select: budget must be >= 1";
  let ranked = Correlation.rank_pairs ~exclude rel in
  let m = Schema.arity (Relation.schema rel) in
  let covered = Array.make m false in
  let chosen = ref [] and count = ref 0 in
  let accept ((a, b), _) =
    chosen := (a, b) :: !chosen;
    covered.(a) <- true;
    covered.(b) <- true;
    incr count
  in
  (match strategy with
  | By_correlation ->
      List.iter
        (fun ((a, b), v) ->
          if !count < budget && (not (covered.(a) && covered.(b))) && v > 0.
          then accept ((a, b), v))
        ranked
  | By_cover ->
      (* Pass 1: pairs introducing two new attributes; pass 2: one new
         attribute; pass 3: fill by correlation alone. *)
      List.iter
        (fun ((a, b), v) ->
          if !count < budget && (not covered.(a)) && (not covered.(b)) && v > 0.
          then accept ((a, b), v))
        ranked;
      List.iter
        (fun ((a, b), v) ->
          if !count < budget && not (covered.(a) && covered.(b)) && v > 0. then
            accept ((a, b), v))
        ranked;
      List.iter
        (fun ((a, b), v) ->
          if !count < budget && (not (List.mem (a, b) !chosen)) && v > 0. then
            accept ((a, b), v))
        ranked);
  List.rev !chosen

(* Divide a total budget B into Ba pairs x Bs buckets-per-pair. *)
let split_budget ~total ~pairs =
  if pairs < 1 then invalid_arg "Pairs.split_budget: pairs must be >= 1";
  max 1 (total / pairs)

(* Automatic breadth selection (the paper's Sec. 4.3 leaves Ba manual and
   lists automation as future work).  Heuristic: keep pairs whose
   correlation is both absolutely meaningful (>= min_v) and within a
   factor of the strongest pair (>= rel_v * V_max) — the elbow of the
   ranked correlation curve — then apply the cover strategy among the
   survivors. *)
let select_auto ?(exclude = []) ?(min_v = 0.05) ?(rel_v = 0.25)
    ?(max_pairs = 4) rel =
  let ranked = Correlation.rank_pairs ~exclude rel in
  match ranked with
  | [] -> []
  | (_, v_max) :: _ when v_max <= 0. -> []
  | (_, v_max) :: _ ->
      let cutoff = Float.max min_v (rel_v *. v_max) in
      let strong = List.filter (fun (_, v) -> v >= cutoff) ranked in
      let budget = min max_pairs (List.length strong) in
      if budget = 0 then []
      else begin
        (* Re-run the cover strategy restricted to the strong pairs by
           excluding nothing and simply filtering its output. *)
        let strong_set = List.map fst strong in
        let chosen = select ~exclude ~strategy:By_cover ~budget:(List.length strong_set) rel in
        List.filter (fun p -> List.mem p strong_set) chosen
        |> List.filteri (fun i _ -> i < budget)
      end
