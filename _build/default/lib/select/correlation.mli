(** Attribute correlation for statistic selection (Sec. 4.3): chi-squared
    independence scores normalized to Cramér's V, and per-attribute
    uniformity checks. *)

open Edb_storage

val chi2_pair : Relation.t -> attr1:int -> attr2:int -> float
(** Chi-squared statistic of independence over the pair's 2D histogram. *)

val cramers_v : Relation.t -> attr1:int -> attr2:int -> float
(** Cramér's V in [\[0, 1\]]; 0 = independent.  Degrees of freedom count
    only non-empty rows/columns. *)

val uniformity_deviation : Relation.t -> attr:int -> float
(** Normalized chi-squared distance of an attribute's histogram from
    uniform; near 0 means the MaxEnt uniformity assumption already fits. *)

val rank_pairs : ?exclude:int list -> Relation.t -> ((int * int) * float) list
(** All attribute pairs ranked by Cramér's V, descending, skipping pairs
    that touch an excluded attribute. *)
