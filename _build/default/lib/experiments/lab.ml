(* Shared experiment setup: datasets, summaries, and baseline methods.

   Figs. 5, 6, and 8 all compare the same nine methods over the same two
   flights relations; this module builds them once.  The four MaxEnt
   configurations follow the paper's Fig. 4:

     No2D      no 2D statistics
     Ent1&2    pairs 1 = (origin, distance), 2 = (dest, distance)
     Ent3&4    pairs 3 = (fl_time, distance), 4 = (origin, dest)
     Ent1&2&3  pairs 1, 2, 3

   with the total budget B split evenly across a summary's pairs, and the
   sampling baselines are a uniform sample plus one stratified sample per
   pair, all at the same rate. *)

open Edb_util
open Edb_storage
open Edb_workload
module F = Edb_datagen.Flights
module P = Edb_datagen.Particles

let src = Logs.Src.create "entropydb.experiments" ~doc:"experiment harness"

module Log = (val Logs.src_log src : Logs.LOG)

let pair1 = (F.origin, F.distance)
let pair2 = (F.dest, F.distance)
let pair3 = (F.fl_time, F.distance)
let pair4 = (F.origin, F.dest)

let pair_label (a, b) =
  let name i =
    match i with
    | _ when i = F.fl_date -> "FL"
    | _ when i = F.origin -> "OB"
    | _ when i = F.dest -> "DB"
    | _ when i = F.fl_time -> "ET"
    | _ when i = F.distance -> "DT"
    | _ -> "?"
  in
  name a ^ "&" ^ name b

let composite rel (a, b) ~budget =
  Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel ~attr1:a
    ~attr2:b ~budget

(* Build a summary, halving the per-pair budget if the attribute topology
   makes the compatible-set enumeration exceed the term cap. *)
let rec build_summary ?(term_cap = 2_000_000) (config : Config.t) rel ~pairs
    ~budget_per_pair =
  let joints =
    List.concat_map (fun p -> composite rel p ~budget:budget_per_pair) pairs
  in
  match
    Entropydb_core.Summary.build ~solver_config:config.solver ~term_cap rel
      ~joints
  with
  | summary -> summary
  | exception Entropydb_core.Poly.Too_many_terms _ when budget_per_pair > 8 ->
      Log.warn (fun m ->
          m "term cap exceeded at %d buckets/pair; retrying with %d"
            budget_per_pair (budget_per_pair / 2));
      build_summary ~term_cap config rel ~pairs
        ~budget_per_pair:(budget_per_pair / 2)

type flights_method = {
  fm_name : string;
  fm_method : Methods.t;
  fm_summary : Entropydb_core.Summary.t option;
  fm_build_seconds : float;
}

type flights_lab = {
  config : Config.t;
  data : F.t;
  coarse_methods : flights_method list;
  fine_methods : flights_method list;
}

let maxent_configs (config : Config.t) =
  let b = config.budget_total in
  [
    ("No2D", []);
    ("Ent1&2", [ pair1; pair2 ]);
    ("Ent3&4", [ pair3; pair4 ]);
    ("Ent1&2&3", [ pair1; pair2; pair3 ]);
  ]
  |> List.map (fun (name, pairs) ->
         let budget_per_pair =
           match pairs with [] -> 0 | _ -> b / List.length pairs
         in
         (name, pairs, budget_per_pair))

let build_flights_methods (config : Config.t) rel ~tag =
  let rng = Prng.create ~seed:(config.seed + 100) () in
  let samples =
    let uni =
      let s = Edb_sampling.Uniform.create rng ~rate:config.sample_rate rel in
      {
        fm_name = "Uni";
        fm_method = Methods.of_sample ~name:"Uni" s;
        fm_summary = None;
        fm_build_seconds = 0.;
      }
    in
    let strat i (a, b) =
      let s =
        Edb_sampling.Stratified.create rng ~rate:config.sample_rate
          ~attrs:[ a; b ] rel
      in
      let name = Printf.sprintf "Strat%d" i in
      {
        fm_name = name;
        fm_method = Methods.of_sample ~name s;
        fm_summary = None;
        fm_build_seconds = 0.;
      }
    in
    [ uni; strat 1 pair1; strat 2 pair2; strat 3 pair3; strat 4 pair4 ]
  in
  let summaries =
    List.map
      (fun (name, pairs, budget_per_pair) ->
        Log.info (fun m -> m "building %s summary %s..." tag name);
        let summary, dt =
          Timing.time (fun () ->
              build_summary config rel ~pairs ~budget_per_pair)
        in
        Log.info (fun m -> m "built %s %s in %.1fs" tag name dt);
        {
          fm_name = name;
          fm_method = Methods.of_summary ~name summary;
          fm_summary = Some summary;
          fm_build_seconds = dt;
        })
      (maxent_configs config)
  in
  samples @ summaries

let flights_lab (config : Config.t) =
  let data = F.generate ~rows:config.flights_rows ~seed:config.seed () in
  {
    config;
    data;
    coarse_methods = build_flights_methods config data.coarse ~tag:"coarse";
    fine_methods = build_flights_methods config data.fine ~tag:"fine";
  }

let find_method lab_methods name =
  match List.find_opt (fun m -> m.fm_name = name) lab_methods with
  | Some m -> m
  | None -> invalid_arg ("Lab.find_method: no method " ^ name)

(* ------------------------------------------------------------------ *)
(* Particles (Fig. 7)                                                  *)
(* ------------------------------------------------------------------ *)

type particles_lab = {
  p_rel : Relation.t;
  p_methods : flights_method list; (* Uni, Strat, EntNo2D, EntAll *)
  p_snapshots : int;
}

let particles_lab (config : Config.t) ~snapshots =
  let rel =
    P.generate ~rows_per_snapshot:config.particles_rows_per_snapshot
      ~snapshots ~seed:(config.seed + 7) ()
  in
  let rng = Prng.create ~seed:(config.seed + 200) () in
  let uni =
    let s = Edb_sampling.Uniform.create rng ~rate:config.sample_rate rel in
    {
      fm_name = "Uni";
      fm_method = Methods.of_sample ~name:"Uni" s;
      fm_summary = None;
      fm_build_seconds = 0.;
    }
  in
  let strat =
    (* The paper stratifies on (density, grp). *)
    let s =
      Edb_sampling.Stratified.create rng ~rate:config.sample_rate
        ~attrs:[ P.density; P.grp ] rel
    in
    {
      fm_name = "Strat";
      fm_method = Methods.of_sample ~name:"Strat" s;
      fm_summary = None;
      fm_build_seconds = 0.;
    }
  in
  let no2d, t_no2d =
    Timing.time (fun () ->
        Entropydb_core.Summary.build ~solver_config:config.solver rel
          ~joints:[])
  in
  (* EntAll: 2D statistics over the 5 most correlated pairs, excluding
     snapshot (Sec. 6.3). *)
  let pairs =
    Edb_select.Pairs.select ~exclude:[ P.snapshot ]
      ~strategy:Edb_select.Pairs.By_correlation ~budget:5 rel
  in
  let entall, t_entall =
    Timing.time (fun () ->
        build_summary config rel ~pairs
          ~budget_per_pair:config.fig7_pair_budget)
  in
  {
    p_rel = rel;
    p_methods =
      [
        uni;
        strat;
        {
          fm_name = "EntNo2D";
          fm_method = Methods.of_summary ~name:"EntNo2D" no2d;
          fm_summary = Some no2d;
          fm_build_seconds = t_no2d;
        };
        {
          fm_name = "EntAll";
          fm_method = Methods.of_summary ~name:"EntAll" entall;
          fm_summary = Some entall;
          fm_build_seconds = t_entall;
        };
      ];
    p_snapshots = snapshots;
  }
