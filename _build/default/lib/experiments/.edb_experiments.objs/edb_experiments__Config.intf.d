lib/experiments/config.mli: Entropydb_core
