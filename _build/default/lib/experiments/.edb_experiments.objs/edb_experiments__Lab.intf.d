lib/experiments/lab.mli: Config Edb_datagen Edb_storage Edb_workload Entropydb_core Methods Relation
