lib/experiments/config.ml: Entropydb_core Printf Sys
