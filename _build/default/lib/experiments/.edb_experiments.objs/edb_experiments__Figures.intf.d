lib/experiments/figures.mli: Config Edb_util Lab Table
