lib/experiments/lab.ml: Config Edb_datagen Edb_sampling Edb_select Edb_storage Edb_util Edb_workload Entropydb_core List Logs Methods Printf Prng Relation Timing
