(* Experiment scaling.

   The paper's experiments ran on a 120-CPU / 1 TB machine against 5 GB and
   210 GB datasets with statistic budgets up to 3,000 and a solver that
   took up to a day.  The reproduction's default scale keeps every
   experiment's *shape* (who wins, where, by roughly what factor) while
   finishing the whole suite in minutes on a laptop; [Full] approaches the
   paper's budgets at the cost of a much longer run.  Select with the SCALE
   environment variable (small | full). *)

type scale = Small | Full

type t = {
  scale : scale;
  seed : int;
  flights_rows : int;
  particles_rows_per_snapshot : int;
  budget_total : int; (* the paper's B: total 2D buckets per summary *)
  fig2b_budgets : int list; (* per-pair budgets swept in Fig. 2b *)
  fig7_pair_budget : int; (* buckets per pair for the particles EntAll *)
  num_hitters : int; (* heavy/light hitter count (paper: 100) *)
  num_nulls : int; (* nonexistent-value count (paper: 200) *)
  sample_rate : float; (* baseline sampling rate (paper: 1%) *)
  solver : Entropydb_core.Solver.config;
}

let small ?(seed = 1) () =
  {
    scale = Small;
    seed;
    flights_rows = 120_000;
    particles_rows_per_snapshot = 150_000;
    budget_total = 900;
    fig2b_budgets = [ 150; 300; 600 ];
    fig7_pair_budget = 60;
    num_hitters = 50;
    num_nulls = 100;
    sample_rate = 0.01;
    solver = { Entropydb_core.Solver.default_config with max_sweeps = 30; log_every = 0 };
  }

let full ?(seed = 1) () =
  {
    scale = Full;
    seed;
    flights_rows = 500_000;
    particles_rows_per_snapshot = 200_000;
    budget_total = 3_000;
    fig2b_budgets = [ 500; 1_000; 2_000 ];
    fig7_pair_budget = 100;
    num_hitters = 100;
    num_nulls = 200;
    sample_rate = 0.01;
    solver = { Entropydb_core.Solver.default_config with max_sweeps = 30; log_every = 0 };
  }

let of_env () =
  match Sys.getenv_opt "SCALE" with
  | Some "full" -> full ()
  | Some "small" | None -> small ()
  | Some other ->
      invalid_arg (Printf.sprintf "SCALE=%s (expected small or full)" other)

let scale_name t = match t.scale with Small -> "small" | Full -> "full"
