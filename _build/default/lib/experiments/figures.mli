(** Regeneration of every evaluation table and figure of the paper.  Each
    function returns printable tables; figures sharing the nine-method
    flights setup (5, 6, 8, build costs) take a pre-built lab. *)

open Edb_util

val fig2b : Config.t -> Table.t list
(** Heuristic (ZERO / LARGE / COMPOSITE) average error vs budget on
    (fl_time, distance), for heavy hitters, nonexistent values, and light
    hitters. *)

val fig3 : Config.t -> Table.t list
(** Active-domain sizes of the flights (coarse/fine) and particles
    schemas. *)

val fig4 : Config.t -> Table.t list
(** The four MaxEnt summary configurations and their per-pair budgets. *)

val fig5 : Lab.flights_lab -> Table.t list
(** Per-template average error difference vs Ent1&2&3 on FlightsCoarse,
    heavy and light hitters. *)

val fig6 : Lab.flights_lab -> Table.t list
(** Average F measure over fifteen 2–3D templates, coarse and fine. *)

val fig7 : Config.t -> Table.t list
(** Particles: error and latency for three 4D templates over 1–3
    snapshots. *)

val fig8 : Lab.flights_lab -> Table.t list
(** Heavy-hitter error (a) and F measure (b) across the four MaxEnt
    configurations, coarse and fine. *)

val compression : Config.t -> Table.t list
(** Compressed-vs-uncompressed polynomial size per budget (Sec. 4.3's
    closing numbers). *)

val hierarchy : Config.t -> Table.t list
(** Sec. 7 extension (not a paper figure): flat vs root-only vs refined
    hierarchical summaries on city-level point queries. *)

val ablation : Config.t -> Table.t list
(** Design-choice ablation (not a paper figure): coordinate solves vs
    entropic mirror descent, marginal vs uniform initialization. *)

val build_costs : Lab.flights_lab -> Table.t list
(** Statistics, term counts, and build seconds per summary (Sec. 5). *)
