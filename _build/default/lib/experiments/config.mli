(** Experiment scaling: laptop-sized defaults preserving the paper's
    comparative shapes, and a [Full] mode approaching the paper's budgets. *)

type scale = Small | Full

type t = {
  scale : scale;
  seed : int;
  flights_rows : int;
  particles_rows_per_snapshot : int;
  budget_total : int;
  fig2b_budgets : int list;
  fig7_pair_budget : int;
  num_hitters : int;
  num_nulls : int;
  sample_rate : float;
  solver : Entropydb_core.Solver.config;
}

val small : ?seed:int -> unit -> t
val full : ?seed:int -> unit -> t

val of_env : unit -> t
(** Reads [SCALE] (small | full, default small). *)

val scale_name : t -> string
