(* Regeneration of every table and figure in the paper's evaluation
   (Sec. 4.3 Fig. 2b and Secs. 6.1–6.4 Figs. 3–8), at reproduction scale.

   Each function returns plain-text tables; the bench binary prints them.
   Figures that share the expensive nine-method flights setup (5, 6, 8)
   take a pre-built {!Lab.flights_lab}. *)

open Edb_util
open Edb_storage
open Edb_workload
module F = Edb_datagen.Flights
module P = Edb_datagen.Particles

(* ------------------------------------------------------------------ *)
(* Fig. 2b: statistic-selection heuristics vs budget                   *)
(* ------------------------------------------------------------------ *)

(* The paper restricts flights to (fl_date, fl_time, distance), gathers 2D
   statistics on (fl_time, distance) with each heuristic and budget, and
   measures average error on 100 heavy hitters, 200 nonexistent values, and
   100 light hitters of the (fl_time, distance) group-by. *)
let fig2b (config : Config.t) =
  let data = F.generate ~rows:config.flights_rows ~seed:config.seed () in
  let rel = Relation.project data.coarse [ F.fl_date; F.fl_time; F.distance ] in
  let arity = Schema.arity (Relation.schema rel) in
  let time_attr = 1 and dist_attr = 2 in
  let attrs = [ time_attr; dist_attr ] in
  let rng = Prng.create ~seed:(config.seed + 11) () in
  let w =
    Hitters.standard rng rel ~attrs ~num_hitters:config.num_hitters
      ~num_nulls:config.num_nulls
  in
  let table =
    Table.create
      ~title:
        "Fig 2b: query error vs budget for 2D-statistic heuristics on \
         (fl_time, distance)"
      ~headers:
        [ "heuristic"; "budget"; "heavy err"; "nonexistent err"; "light err" ]
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun budget ->
      List.iter
        (fun kind ->
          let joints =
            Edb_select.Heuristic.select kind rel ~attr1:time_attr
              ~attr2:dist_attr ~budget
          in
          let summary =
            Entropydb_core.Summary.build ~solver_config:config.solver rel
              ~joints
          in
          let m = Methods.of_summary summary in
          let heavy = Runner.run_errors m ~arity ~attrs ~queries:w.heavy in
          let light = Runner.run_errors m ~arity ~attrs ~queries:w.light in
          let nulls =
            Runner.run_errors m ~arity ~attrs
              ~queries:(List.map (fun vs -> (vs, 0)) w.nulls)
          in
          Table.add_row table
            [
              Edb_select.Heuristic.kind_name kind;
              Table.cell_int budget;
              Table.cell_float heavy.avg_error;
              Table.cell_float nulls.avg_error;
              Table.cell_float light.avg_error;
            ])
        [ Edb_select.Heuristic.Zero; Edb_select.Heuristic.Large;
          Edb_select.Heuristic.Composite ])
    config.fig2b_budgets;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: active domain sizes                                         *)
(* ------------------------------------------------------------------ *)

let fig3 (config : Config.t) =
  let flights = F.generate ~rows:10_000 ~seed:config.seed () in
  let particles = P.generate ~rows_per_snapshot:5_000 ~snapshots:3 ~seed:config.seed () in
  let flights_table =
    Table.create ~title:"Fig 3 (left): flights active domain sizes"
      ~headers:[ "attribute"; "coarse"; "fine" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let cs = Relation.schema flights.coarse and fs = Relation.schema flights.fine in
  List.iteri
    (fun i _ ->
      Table.add_row flights_table
        [
          Schema.attr_name cs i ^ "/" ^ Schema.attr_name fs i;
          Table.cell_int (Schema.domain_size cs i);
          Table.cell_int (Schema.domain_size fs i);
        ])
    (Schema.names cs);
  Table.add_row flights_table
    [
      "# possible tuples";
      Table.addf_cell "%.2g" (Schema.tuple_space_size cs);
      Table.addf_cell "%.2g" (Schema.tuple_space_size fs);
    ];
  let particles_table =
    Table.create ~title:"Fig 3 (right): particles active domain sizes"
      ~headers:[ "attribute"; "size" ]
      ~aligns:[ Table.Left; Right ]
      ()
  in
  let ps = Relation.schema particles in
  List.iteri
    (fun i _ ->
      Table.add_row particles_table
        [ Schema.attr_name ps i; Table.cell_int (Schema.domain_size ps i) ])
    (Schema.names ps);
  Table.add_row particles_table
    [ "# possible tuples"; Table.addf_cell "%.2g" (Schema.tuple_space_size ps) ];
  [ flights_table; particles_table ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: the MaxEnt summary configurations                           *)
(* ------------------------------------------------------------------ *)

let fig4 (config : Config.t) =
  let table =
    Table.create ~title:"Fig 4: 2D statistics included in each MaxEnt summary"
      ~headers:[ "pair"; "No2D"; "Ent1&2"; "Ent3&4"; "Ent1&2&3" ]
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      ()
  in
  let configs = Lab.maxent_configs config in
  let all_pairs =
    [ (1, Lab.pair1); (2, Lab.pair2); (3, Lab.pair3); (4, Lab.pair4) ]
  in
  List.iter
    (fun (idx, pair) ->
      let row =
        List.map
          (fun (_, pairs, budget) ->
            if List.mem pair pairs then Printf.sprintf "%d bkts" budget
            else "-")
          configs
      in
      Table.add_row table
        (Printf.sprintf "Pair %d %s" idx (Lab.pair_label pair) :: row))
    all_pairs;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: error difference vs Ent1&2&3 on FlightsCoarse               *)
(* ------------------------------------------------------------------ *)

(* The paper's query templates: attribute sets chosen to show a query whose
   pair is missing from Ent1&2&3 (org+dest), one covered by two of its
   statistics (dest+time+dist), and one mixing a uniform attribute in
   (date+dest+dist). *)
let fig5_heavy_templates =
  [
    ("ET&DT (Pair 3)", [ F.fl_time; F.distance ]);
    ("DB&DT (Pair 2)", [ F.dest; F.distance ]);
    ("FL&DB&DT (Pair 2)", [ F.fl_date; F.dest; F.distance ]);
  ]

let fig5_light_templates =
  [
    ("OB&DB (Pair 4)", [ F.origin; F.dest ]);
    ("DB&ET&DT (Pair 2&3)", [ F.dest; F.fl_time; F.distance ]);
    ("FL&DB&DT (Pair 2)", [ F.fl_date; F.dest; F.distance ]);
  ]

let fig5 (lab : Lab.flights_lab) =
  let config = lab.config in
  let rel = lab.data.coarse in
  let arity = Schema.arity (Relation.schema rel) in
  let methods = List.map (fun m -> m.Lab.fm_method) lab.coarse_methods in
  let run ~which templates =
    let table =
      Table.create
        ~title:
          (Printf.sprintf
             "Fig 5 (%s): avg error difference vs Ent1&2&3 on FlightsCoarse \
              (positive = Ent1&2&3 better)"
             which)
        ~headers:
          ("method"
          :: List.map (fun (label, _) -> label) templates)
        ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) templates)
        ()
    in
    let diffs_per_template =
      List.map
        (fun (_, attrs) ->
          let rng = Prng.create ~seed:(config.seed + 31) () in
          let w =
            Hitters.standard rng rel ~attrs ~num_hitters:config.num_hitters
              ~num_nulls:10
          in
          let queries = if which = "heavy hitters" then w.heavy else w.light in
          let results = Runner.run_errors_all methods ~arity ~attrs ~queries in
          Runner.error_differences ~reference:"Ent1&2&3" results)
        templates
    in
    let method_names =
      List.filter_map
        (fun m ->
          let n = Methods.name m.Lab.fm_method in
          if n = "Ent1&2&3" then None else Some n)
        (List.map (fun m -> m) lab.coarse_methods)
    in
    List.iter
      (fun name ->
        let row =
          List.map
            (fun diffs ->
              match List.assoc_opt name diffs with
              | Some d -> Table.addf_cell "%+.3f" d
              | None -> "-")
            diffs_per_template
        in
        Table.add_row table (name :: row))
      method_names;
    table
  in
  [ run ~which:"heavy hitters" fig5_heavy_templates;
    run ~which:"light hitters" fig5_light_templates ]

(* ------------------------------------------------------------------ *)
(* Fig. 6: F measure over light hitters and nulls, all methods         *)
(* ------------------------------------------------------------------ *)

(* Fifteen 2- and 3-dimensional attribute sets (Sec. 6.2): all six pairs of
   the four correlated attributes, all four of their triples, and five
   sets mixing fl_date in. *)
let fig6_attr_sets =
  let base = [ F.origin; F.dest; F.fl_time; F.distance ] in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if a < b then Some [ a; b ] else None) base)
      base
  in
  let triples =
    [
      [ F.origin; F.dest; F.fl_time ];
      [ F.origin; F.dest; F.distance ];
      [ F.origin; F.fl_time; F.distance ];
      [ F.dest; F.fl_time; F.distance ];
    ]
  in
  let with_date =
    [
      [ F.fl_date; F.origin ];
      [ F.fl_date; F.dest ];
      [ F.fl_date; F.distance ];
      [ F.fl_date; F.origin; F.distance ];
      [ F.fl_date; F.dest; F.distance ];
    ]
  in
  pairs @ triples @ with_date

let average_f config rel methods =
  let arity = Schema.arity (Relation.schema rel) in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun attrs ->
      let rng = Prng.create ~seed:(Config.(config.seed) + 41) () in
      let w =
        Hitters.standard rng rel ~attrs ~num_hitters:config.Config.num_hitters
          ~num_nulls:config.Config.num_hitters
      in
      let fs =
        Runner.run_f_all methods ~arity ~attrs ~light:w.light ~nulls:w.nulls
      in
      List.iter
        (fun r ->
          let cur =
            Option.value (Hashtbl.find_opt totals r.Runner.f_method) ~default:(0., 0)
          in
          Hashtbl.replace totals r.f_method
            (fst cur +. r.f_measure, snd cur + 1))
        fs)
    fig6_attr_sets;
  fun name ->
    match Hashtbl.find_opt totals name with
    | Some (sum, n) -> sum /. float_of_int n
    | None -> nan

let fig6 (lab : Lab.flights_lab) =
  let table =
    Table.create
      ~title:
        "Fig 6: avg F measure (light hitters vs nulls) over fifteen 2-3D \
         templates"
      ~headers:[ "method"; "coarse"; "fine" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let coarse_f =
    average_f lab.config lab.data.coarse
      (List.map (fun m -> m.Lab.fm_method) lab.coarse_methods)
  in
  let fine_f =
    average_f lab.config lab.data.fine
      (List.map (fun m -> m.Lab.fm_method) lab.fine_methods)
  in
  List.iter
    (fun m ->
      let name = m.Lab.fm_name in
      Table.add_row table
        [ name; Table.cell_float (coarse_f name); Table.cell_float (fine_f name) ])
    lab.coarse_methods;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Fig. 7: particles accuracy and runtime vs snapshots                 *)
(* ------------------------------------------------------------------ *)

let fig7_templates =
  [
    ("den&mass&grp&type", [ P.density; P.mass; P.grp; P.ptype ]);
    ("mass&x&y&z", [ P.mass; P.x; P.y; P.z ]);
    ("y&z&grp&type", [ P.y; P.z; P.grp; P.ptype ]);
  ]

let fig7 (config : Config.t) =
  let tables = ref [] in
  List.iter
    (fun snapshots ->
      let lab = Lab.particles_lab config ~snapshots in
      let rel = lab.p_rel in
      let arity = Schema.arity (Relation.schema rel) in
      let methods = List.map (fun m -> m.Lab.fm_method) lab.p_methods in
      let table =
        Table.create
          ~title:
            (Printf.sprintf
               "Fig 7: particles, %d snapshot(s) (%d rows): avg error and \
                runtime"
               snapshots (Relation.cardinality rel))
          ~headers:
            [ "query"; "method"; "heavy err"; "light err"; "avg ms"; "max ms" ]
          ~aligns:[ Table.Left; Table.Left; Right; Right; Right; Right ]
          ()
      in
      List.iter
        (fun (label, attrs) ->
          let rng = Prng.create ~seed:(config.seed + 53) () in
          let w =
            Hitters.standard rng rel ~attrs ~num_hitters:config.num_hitters
              ~num_nulls:10
          in
          let heavy = Runner.run_errors_all methods ~arity ~attrs ~queries:w.heavy in
          let light = Runner.run_errors_all methods ~arity ~attrs ~queries:w.light in
          List.iter2
            (fun (h : Runner.error_result) (l : Runner.error_result) ->
              Table.add_row table
                [
                  label;
                  h.method_name;
                  Table.cell_float h.avg_error;
                  Table.cell_float l.avg_error;
                  Table.cell_float ~prec:2 (1000. *. h.avg_seconds);
                  Table.cell_float ~prec:2 (1000. *. h.max_seconds);
                ])
            heavy light)
        fig7_templates;
      tables := table :: !tables)
    [ 1; 2; 3 ];
  List.rev !tables

(* ------------------------------------------------------------------ *)
(* Fig. 8: heavy-hitter error and F measure across MaxEnt methods      *)
(* ------------------------------------------------------------------ *)

(* Six two-attribute templates: all pairs of origin, dest, time, distance
   (Sec. 6.4). *)
let fig8_attr_sets =
  let base = [ F.origin; F.dest; F.fl_time; F.distance ] in
  List.concat_map
    (fun a ->
      List.filter_map (fun b -> if a < b then Some [ a; b ] else None) base)
    base

let fig8 (lab : Lab.flights_lab) =
  let config = lab.config in
  let maxent_names = [ "No2D"; "Ent1&2"; "Ent3&4"; "Ent1&2&3" ] in
  let run rel methods =
    let arity = Schema.arity (Relation.schema rel) in
    let err_totals = Hashtbl.create 8 and f_totals = Hashtbl.create 8 in
    List.iter
      (fun attrs ->
        let rng = Prng.create ~seed:(config.seed + 61) () in
        let w =
          Hitters.standard rng rel ~attrs ~num_hitters:config.num_hitters
            ~num_nulls:config.num_nulls
        in
        let heavy = Runner.run_errors_all methods ~arity ~attrs ~queries:w.heavy in
        let fs =
          Runner.run_f_all methods ~arity ~attrs ~light:w.light ~nulls:w.nulls
        in
        List.iter
          (fun (r : Runner.error_result) ->
            let cur =
              Option.value (Hashtbl.find_opt err_totals r.method_name)
                ~default:(0., 0)
            in
            Hashtbl.replace err_totals r.method_name
              (fst cur +. r.avg_error, snd cur + 1))
          heavy;
        List.iter
          (fun (r : Runner.f_result) ->
            let cur =
              Option.value (Hashtbl.find_opt f_totals r.f_method)
                ~default:(0., 0)
            in
            Hashtbl.replace f_totals r.f_method
              (fst cur +. r.f_measure, snd cur + 1))
          fs)
      fig8_attr_sets;
    let get tbl name =
      match Hashtbl.find_opt tbl name with
      | Some (sum, n) -> sum /. float_of_int n
      | None -> nan
    in
    (get err_totals, get f_totals)
  in
  let pick methods =
    List.filter_map
      (fun m ->
        if List.mem m.Lab.fm_name maxent_names then Some m.Lab.fm_method
        else None)
      methods
  in
  let coarse_err, coarse_f = run lab.data.coarse (pick lab.coarse_methods) in
  let fine_err, fine_f = run lab.data.fine (pick lab.fine_methods) in
  let err_table =
    Table.create
      ~title:"Fig 8a: avg heavy-hitter error over six 2D templates"
      ~headers:[ "method"; "coarse"; "fine" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  let f_table =
    Table.create
      ~title:"Fig 8b: avg F measure (light hitters + nulls) over six 2D templates"
      ~headers:[ "method"; "coarse"; "fine" ]
      ~aligns:[ Table.Left; Right; Right ]
      ()
  in
  List.iter
    (fun name ->
      Table.add_row err_table
        [ name; Table.cell_float (coarse_err name); Table.cell_float (fine_err name) ];
      Table.add_row f_table
        [ name; Table.cell_float (coarse_f name); Table.cell_float (fine_f name) ])
    maxent_names;
  [ err_table; f_table ]

(* ------------------------------------------------------------------ *)
(* Compression accounting (Sec. 4.3's closing discussion)              *)
(* ------------------------------------------------------------------ *)

let compression (config : Config.t) =
  let data = F.generate ~rows:config.flights_rows ~seed:config.seed () in
  let rel = Relation.project data.coarse [ F.fl_date; F.fl_time; F.distance ] in
  let table =
    Table.create
      ~title:
        "Compression: compressed terms vs uncompressed monomials \
         ((fl_date, fl_time, distance) schema, COMPOSITE on \
         (fl_time, distance))"
      ~headers:
        [ "budget"; "statistics"; "terms"; "uncompressed"; "ratio" ]
      ()
  in
  List.iter
    (fun budget ->
      let joints =
        Edb_select.Heuristic.select Edb_select.Heuristic.Composite rel
          ~attr1:1 ~attr2:2 ~budget
      in
      let phi = Entropydb_core.Phi.of_relation rel ~joints in
      let poly = Entropydb_core.Poly.create phi in
      let terms = Entropydb_core.Poly.num_terms poly in
      let un = Entropydb_core.Poly.uncompressed_monomials poly in
      Table.add_row table
        [
          Table.cell_int budget;
          Table.cell_int (Entropydb_core.Phi.num_stats phi);
          Table.cell_int terms;
          Table.addf_cell "%.3g" un;
          Table.addf_cell "%.0fx" (un /. float_of_int terms);
        ])
    config.fig2b_budgets;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Ablation: solver algorithm and initialization (design choices)      *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: quantifies two design choices DESIGN.md calls out —
   Algorithm 1's coordinate solves vs plain entropic mirror descent, and
   marginal-seeded vs uniform initialization — on one mid-size flights
   summary.  Reported: sweeps used, wall time, and the residual after a
   fixed sweep budget. *)
let ablation (config : Config.t) =
  let data = F.generate ~rows:config.flights_rows ~seed:config.seed () in
  let rel = data.coarse in
  let joints =
    Lab.composite rel Lab.pair3 ~budget:(config.budget_total / 3)
    @ Lab.composite rel Lab.pair4 ~budget:(config.budget_total / 3)
  in
  let phi = Entropydb_core.Phi.of_relation rel ~joints in
  let table =
    Table.create
      ~title:
        "Ablation: solver algorithm x initialization (flights coarse, \
         pairs 3&4)"
      ~headers:
        [ "algorithm"; "init"; "sweeps"; "seconds"; "final max rel err" ]
      ~aligns:[ Table.Left; Table.Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (alg_name, algorithm, max_sweeps) ->
      List.iter
        (fun (init_name, init) ->
          let poly = Entropydb_core.Poly.create phi in
          Entropydb_core.Poly.reinit poly init;
          let report =
            Entropydb_core.Solver.solve
              ~config:
                {
                  Entropydb_core.Solver.algorithm;
                  max_sweeps;
                  tolerance = config.solver.tolerance;
                  log_every = 0;
                }
              poly
          in
          Table.add_row table
            [
              alg_name;
              init_name;
              Table.cell_int report.sweeps;
              Table.cell_float ~prec:1 report.seconds;
              Table.addf_cell "%.2e" report.max_rel_error;
            ])
        [ ("marginals", `Marginals); ("uniform", `Uniform) ])
    [
      ("coordinate (Alg. 1)", Entropydb_core.Solver.Coordinate,
       config.solver.max_sweeps);
      ("mirror descent", Entropydb_core.Solver.Multiplicative,
       10 * config.solver.max_sweeps);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* Hierarchical summaries (Sec. 7 extension, not a paper figure)       *)
(* ------------------------------------------------------------------ *)

(* Compares three ways of answering city-level point queries on
   FlightsFine: a flat summary at full city granularity, a root-only
   summary over coarse city buckets (uniformity within buckets), and the
   two-level hierarchy with the busiest buckets refined. *)
let hierarchy (config : Config.t) =
  let data = F.generate ~rows:config.flights_rows ~seed:config.seed () in
  let rel = data.fine in
  let arity = Schema.arity (Relation.schema rel) in
  let boundaries = Array.init 21 (fun i -> i * 7) in
  let quiet = config.solver in
  let flat, t_flat =
    Timing.time (fun () ->
        Entropydb_core.Summary.build ~solver_config:quiet rel ~joints:[])
  in
  let root_only, t_root =
    Timing.time (fun () ->
        Entropydb_core.Hierarchy.build ~solver_config:quiet rel ~attr:F.origin
          ~boundaries ~refine:(`Buckets []))
  in
  let refined, t_refined =
    Timing.time (fun () ->
        Entropydb_core.Hierarchy.build ~solver_config:quiet rel ~attr:F.origin
          ~boundaries ~refine:(`Top_k 6))
  in
  (* Workload: heavy + light origin-city point queries (all 147 cities
     exist, so there is no nonexistent-value component here). *)
  let heavy_q = Hitters.heavy rel ~attrs:[ F.origin ] ~k:config.num_hitters in
  let light_q = Hitters.light rel ~attrs:[ F.origin ] ~k:config.num_hitters in
  let methods =
    [
      ("flat fine summary",
       Methods.of_fn ~name:"flat" (Entropydb_core.Summary.estimate flat),
       t_flat);
      ("root only (coarse buckets)",
       Methods.of_fn ~name:"root" (Entropydb_core.Hierarchy.estimate root_only),
       t_root);
      ("hierarchy (6 refined)",
       Methods.of_fn ~name:"hier" (Entropydb_core.Hierarchy.estimate refined),
       t_refined);
    ]
  in
  let table =
    Table.create
      ~title:
        "Hierarchical summaries (Sec. 7 extension): origin-city point \
         queries on FlightsFine"
      ~headers:[ "method"; "heavy err"; "light err"; "build s" ]
      ~aligns:[ Table.Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (label, m, dt) ->
      let heavy =
        Runner.run_errors m ~arity ~attrs:[ F.origin ] ~queries:heavy_q
      in
      let light =
        Runner.run_errors m ~arity ~attrs:[ F.origin ] ~queries:light_q
      in
      Table.add_row table
        [
          label;
          Table.cell_float heavy.avg_error;
          Table.cell_float light.avg_error;
          Table.cell_float ~prec:1 dt;
        ])
    methods;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Summary-build cost accounting (Sec. 5 / 6.1)                        *)
(* ------------------------------------------------------------------ *)

let build_costs (lab : Lab.flights_lab) =
  let table =
    Table.create
      ~title:"Summary build cost (paper Sec. 6.1: under 1 day at 120 CPUs)"
      ~headers:[ "summary"; "relation"; "statistics"; "terms"; "build s" ]
      ~aligns:[ Table.Left; Table.Left; Right; Right; Right ]
      ()
  in
  let add tag methods =
    List.iter
      (fun m ->
        match m.Lab.fm_summary with
        | None -> ()
        | Some s ->
            let r = Entropydb_core.Summary.size_report s in
            Table.add_row table
              [
                m.Lab.fm_name;
                tag;
                Table.cell_int r.num_statistics;
                Table.cell_int r.num_terms;
                Table.cell_float ~prec:1 m.Lab.fm_build_seconds;
              ])
      methods
  in
  add "coarse" lab.coarse_methods;
  add "fine" lab.fine_methods;
  [ table ]
