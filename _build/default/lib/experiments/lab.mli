(** Shared experiment setup: the flights and particles datasets, the four
    MaxEnt summaries of the paper's Fig. 4, and the sampling baselines. *)

open Edb_storage
open Edb_workload

val pair1 : int * int
(** (origin, distance) *)

val pair2 : int * int
(** (dest, distance) *)

val pair3 : int * int
(** (fl_time, distance) *)

val pair4 : int * int
(** (origin, dest) *)

val pair_label : int * int -> string
(** Paper-style label, e.g. "ET&DT". *)

val composite :
  Relation.t -> int * int -> budget:int -> Edb_storage.Predicate.t list
(** COMPOSITE statistics for one pair. *)

val build_summary :
  ?term_cap:int ->
  Config.t ->
  Relation.t ->
  pairs:(int * int) list ->
  budget_per_pair:int ->
  Entropydb_core.Summary.t
(** Build with COMPOSITE statistics on each pair, halving the per-pair
    budget on {!Entropydb_core.Poly.Too_many_terms}. *)

type flights_method = {
  fm_name : string;
  fm_method : Methods.t;
  fm_summary : Entropydb_core.Summary.t option;  (** None for samples *)
  fm_build_seconds : float;
}

type flights_lab = {
  config : Config.t;
  data : Edb_datagen.Flights.t;
  coarse_methods : flights_method list;
  fine_methods : flights_method list;
}

val maxent_configs : Config.t -> (string * (int * int) list * int) list
(** The Fig. 4 summary configurations: name, pairs, buckets per pair. *)

val flights_lab : Config.t -> flights_lab
(** Builds all nine methods on both flights relations (the expensive shared
    setup for Figs. 5, 6, 8). *)

val find_method : flights_method list -> string -> flights_method

type particles_lab = {
  p_rel : Relation.t;
  p_methods : flights_method list;
  p_snapshots : int;
}

val particles_lab : Config.t -> snapshots:int -> particles_lab
(** Uni, Strat(density,grp), EntNo2D, EntAll over the given number of
    snapshots (Fig. 7 setup). *)
