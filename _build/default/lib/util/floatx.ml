(* Small numeric helpers shared across the solver, estimators, and metrics. *)

let approx_eq ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let safe_div ?(default = 0.) num den = if den = 0. then default else num /. den

(* Kahan compensated summation: the polynomial evaluator and the metric
   aggregators sum many values of mixed magnitude. *)
let ksum arr =
  let sum = ref 0. and c = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !sum +. y in
      c := t -. !sum -. y;
      sum := t)
    arr;
  !sum

let mean arr =
  let n = Array.length arr in
  if n = 0 then 0. else ksum arr /. float_of_int n

let variance arr =
  let n = Array.length arr in
  if n < 2 then 0.
  else
    let m = mean arr in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. arr in
    acc /. float_of_int (n - 1)

let stddev arr = sqrt (variance arr)

let quantile arr q =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Floatx.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Floatx.quantile: q outside [0,1]";
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  let frac = pos -. float_of_int i in
  if i + 1 >= n then sorted.(n - 1)
  else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let median arr = quantile arr 0.5
