(* Wall-clock timing for the experiment harness. *)

let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let result = f () in
  (result, now_s () -. t0)

type stopwatch = { mutable started : float; mutable accumulated : float }

let stopwatch () = { started = nan; accumulated = 0. }

let start sw = sw.started <- now_s ()

let stop sw =
  if Float.is_nan sw.started then invalid_arg "Timing.stop: not started";
  sw.accumulated <- sw.accumulated +. (now_s () -. sw.started);
  sw.started <- nan

let elapsed sw =
  if Float.is_nan sw.started then sw.accumulated
  else sw.accumulated +. (now_s () -. sw.started)
