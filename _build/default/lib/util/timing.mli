(** Wall-clock timing used by the experiment harness (Fig. 7 runtimes). *)

val now_s : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)

type stopwatch

val stopwatch : unit -> stopwatch
val start : stopwatch -> unit

val stop : stopwatch -> unit
(** Accumulates the time since the matching [start].  Raises if not
    running. *)

val elapsed : stopwatch -> float
(** Total accumulated seconds (including the currently running interval). *)
