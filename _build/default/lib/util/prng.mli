(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of EntropyDB (data generation, sampling,
    workload selection) takes an explicit generator so that experiments are
    reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy at the current stream position. *)

val split : t -> t
(** [split t] derives a statistically independent child stream and advances
    [t] by one step. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform on [\[0, 1)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
(** One Box–Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] returns [k] distinct indices drawn
    uniformly from [\[0, n)], sorted ascending. *)

(** O(1) categorical sampling via Walker's alias method. *)
module Categorical : sig
  type dist

  val create : float array -> dist
  (** Build from non-negative weights (not necessarily normalized).  Raises
      [Invalid_argument] on an empty or all-zero weight vector. *)

  val sample : dist -> t -> int
end

val zipf_weights : n:int -> s:float -> float array
(** Unnormalized Zipf weights [1/i^s] for ranks [1..n]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s]. *)
