(** Numeric helpers: tolerant comparison, compensated summation, and basic
    descriptive statistics used by the solver and the evaluation harness. *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** Symmetric relative/absolute tolerance comparison. *)

val clamp : lo:float -> hi:float -> float -> float

val safe_div : ?default:float -> float -> float -> float
(** [safe_div num den] is [num /. den], or [default] when [den = 0.]. *)

val ksum : float array -> float
(** Kahan compensated sum. *)

val mean : float array -> float
(** Arithmetic mean; [0.] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] for fewer than two elements. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** Linear-interpolation quantile of an unsorted array.  Raises on an empty
    array or a quantile outside [\[0, 1\]]. *)

val median : float array -> float
