(* Deterministic pseudo-random number generation.

   All randomness in EntropyDB flows through this module so that dataset
   generation, sampling, and workload selection are reproducible from a
   single integer seed.  The generator is SplitMix64 (Steele, Lea & Flood,
   OOPSLA 2014): a tiny, fast, well-distributed 64-bit generator whose
   streams can be split deterministically, which we use to give every
   subsystem an independent stream derived from the master seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create ?(seed = 0x1234_5678) () = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let split t =
  (* Derive an independent stream: the child is seeded from the parent's
     output so advancing one does not perturb the other. *)
  { state = next_int64 t }

let bits53 t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)

(* [int t bound] is uniform on [0, bound).  Uses rejection to avoid modulo
   bias; for the bounds used here (domain sizes, row counts) the rejection
   probability is negligible. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then go ()
    else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound = bits53 t /. 9007199254740992.0 *. bound
let unit_float t = bits53 t /. 9007199254740992.0
let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  (* Box–Muller; one value per call keeps the stream position predictable. *)
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  (* Reservoir sampling keeps memory at O(k) even for large [n]. *)
  let res = Array.init k (fun i -> i) in
  for i = k to n - 1 do
    let j = int t (i + 1) in
    if j < k then res.(j) <- i
  done;
  Array.sort compare res;
  res

(* Categorical distribution sampled in O(1) via Walker's alias method. *)
module Categorical = struct
  type dist = {
    prob : float array; (* acceptance probability per bucket *)
    alias : int array;  (* fallback bucket *)
    n : int;
  }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Categorical.create: empty";
    let total = Array.fold_left ( +. ) 0. weights in
    if not (total > 0.) then invalid_arg "Categorical.create: zero total weight";
    let scaled = Array.map (fun w -> w /. total *. float_of_int n) weights in
    let prob = Array.make n 0. and alias = Array.make n 0 in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri
      (fun i p -> if p < 1. then Queue.add i small else Queue.add i large)
      scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      if scaled.(l) < 1. then Queue.add l small else Queue.add l large
    done;
    Queue.iter (fun i -> prob.(i) <- 1.) small;
    Queue.iter (fun i -> prob.(i) <- 1.) large;
    { prob; alias; n }

  let sample d t =
    let i = int t d.n in
    if unit_float t < d.prob.(i) then i else d.alias.(i)
end

let zipf_weights ~n ~s = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s))

let zipf t ~n ~s =
  (* Direct inverse-CDF sampling; adequate for the small [n] used by the
     data generators.  For hot loops build a [Categorical.dist] instead. *)
  let w = zipf_weights ~n ~s in
  let total = Array.fold_left ( +. ) 0. w in
  let x = float t total in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.
