lib/util/timing.mli:
