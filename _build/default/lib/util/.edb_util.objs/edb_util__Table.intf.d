lib/util/table.mli:
