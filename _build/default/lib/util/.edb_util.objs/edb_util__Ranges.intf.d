lib/util/ranges.mli: Format
