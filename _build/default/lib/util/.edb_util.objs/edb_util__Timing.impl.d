lib/util/timing.ml: Float Unix
