lib/util/floatx.mli:
