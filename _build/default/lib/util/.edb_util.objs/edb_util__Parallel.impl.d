lib/util/parallel.ml: Domain List Sys
