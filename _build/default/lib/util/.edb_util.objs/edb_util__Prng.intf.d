lib/util/prng.mli:
