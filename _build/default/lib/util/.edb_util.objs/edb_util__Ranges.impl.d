lib/util/ranges.ml: Array Fmt List
