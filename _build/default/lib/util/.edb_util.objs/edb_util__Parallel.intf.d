lib/util/parallel.mli:
