(** Summary persistence: one versioned binary file per summary, sized
    O(#statistics).  The compressed polynomial is rebuilt on load. *)

exception Format_error of string

val save : Summary.t -> string -> unit

val load : ?term_cap:int -> string -> Summary.t
(** Raises {!Format_error} on bad magic, version, or payload shape, and
    like {!Poly.create} if the rebuilt polynomial exceeds [term_cap]. *)
