(* Hierarchical summaries — the paper's Sec. 7 roadmap item:

     "These polynomials will start with coarse buckets (like states), and
      build separate polynomials for buckets that require more detail."

   One attribute — the "drill attribute" — gets a two-level treatment:

   - the ROOT summary sees the relation with the drill attribute coarsened
     into contiguous buckets (e.g. 147 cities -> 18 regions), keeping the
     root polynomial small;
   - selected heavy buckets are REFINED: each gets its own summary built
     over exactly the rows that fall in the bucket, at full granularity
     (its own complete marginals and, optionally, its own 2D statistics).

   Query answering decomposes the drill attribute's restriction by bucket:

   - a refined bucket answers from its sub-summary (whose cardinality is
     the bucket's true row count, so no rescaling is needed);
   - an unrefined bucket answers from the root with the bucket-level
     restriction; when the query covers the bucket only partially, the
     estimate is scaled by the covered fraction of the bucket — exactly
     the MaxEnt uniformity assumption, now applied only *within* a coarse
     bucket instead of across the whole domain.

   The estimates remain linear queries, so everything composes by
   addition. *)

open Edb_util
open Edb_storage

type bucket = {
  b_values : Ranges.t; (* drill-attribute values of this bucket *)
  b_sub : Summary.t option; (* the refinement, if this bucket has one *)
}

type t = {
  root : Summary.t;
  drill_attr : int;
  schema : Schema.t; (* the original, fine-grained schema *)
  buckets : bucket array;
  bucket_of_value : int array; (* drill value -> bucket index *)
  n : int;
}

let coarsened_schema schema ~attr ~num_buckets =
  Schema.create
    (List.mapi
       (fun i (a : Schema.attr) ->
         if i = attr then
           Schema.attr a.name (Domain.int_bins ~lo:0 ~hi:(num_buckets - 1) ~width:1)
         else a)
       (Schema.attributes schema))

let build ?(solver_config = Solver.default_config) ?term_cap
    ?(joints_root = fun _ -> []) ?(joints_sub = fun _ -> []) rel ~attr
    ~boundaries ~refine =
  let schema = Relation.schema rel in
  let size = Schema.domain_size schema attr in
  (* Validate boundaries: sorted bucket start values beginning at 0. *)
  if Array.length boundaries = 0 || boundaries.(0) <> 0 then
    invalid_arg "Hierarchy.build: boundaries must start at 0";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= boundaries.(i - 1) then
        invalid_arg "Hierarchy.build: boundaries must be strictly increasing";
      if b >= size then
        invalid_arg "Hierarchy.build: boundary outside the drill domain")
    boundaries;
  let num_buckets = Array.length boundaries in
  let bucket_range b =
    let lo = boundaries.(b) in
    let hi = if b + 1 < num_buckets then boundaries.(b + 1) - 1 else size - 1 in
    Ranges.interval lo hi
  in
  let bucket_of_value = Array.make size 0 in
  for b = 0 to num_buckets - 1 do
    Ranges.iter (fun v -> bucket_of_value.(v) <- b) (bucket_range b)
  done;
  (* Coarsened copy of the relation for the root summary. *)
  let coarse_schema = coarsened_schema schema ~attr ~num_buckets in
  let cb = Relation.builder ~capacity:(Relation.cardinality rel) coarse_schema in
  Relation.iteri
    (fun _ row ->
      let row' = Array.copy row in
      row'.(attr) <- bucket_of_value.(row.(attr));
      Relation.add_row cb row')
    rel;
  let coarse_rel = Relation.build cb in
  let root =
    Summary.build ~solver_config ?term_cap coarse_rel
      ~joints:(joints_root coarse_rel)
  in
  (* Which buckets to refine. *)
  let bucket_counts = Histogram.d1 coarse_rel ~attr in
  let refined =
    match refine with
    | `Buckets bs ->
        List.iter
          (fun b ->
            if b < 0 || b >= num_buckets then
              invalid_arg "Hierarchy.build: refine bucket out of range")
          bs;
        bs
    | `Top_k k ->
        Array.to_list (Array.mapi (fun b c -> (b, c)) bucket_counts)
        |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1)
        |> List.filteri (fun i _ -> i < k)
        |> List.map fst
  in
  let buckets =
    Array.init num_buckets (fun b ->
        let values = bucket_range b in
        let sub =
          if List.mem b refined && bucket_counts.(b) > 0 then begin
            let rows = ref [] in
            Relation.iteri
              (fun r row ->
                if Ranges.mem row.(attr) values then rows := r :: !rows)
              rel;
            let sub_rel =
              Relation.select_rows rel (Array.of_list (List.rev !rows))
            in
            Some
              (Summary.build ~solver_config ?term_cap sub_rel
                 ~joints:(joints_sub sub_rel))
          end
          else None
        in
        { b_values = values; b_sub = sub })
  in
  {
    root;
    drill_attr = attr;
    schema;
    buckets;
    bucket_of_value;
    n = Relation.cardinality rel;
  }

let cardinality t = t.n
let root t = t.root
let num_refined t =
  Array.fold_left
    (fun acc b -> if b.b_sub = None then acc else acc + 1)
    0 t.buckets

(* Translate a fine-grained predicate to the root's coarse schema, with the
   drill attribute restricted to one bucket. *)
let root_query t pred ~bucket =
  let arity = Schema.arity t.schema in
  let coarse =
    List.fold_left
      (fun q i ->
        if i = t.drill_attr then q
        else
          match Predicate.restriction pred i with
          | Some r -> Predicate.restrict q i r
          | None -> q)
      (Predicate.tautology arity)
      (List.init arity Fun.id)
  in
  Predicate.restrict coarse t.drill_attr (Ranges.singleton bucket)

let estimate t pred =
  let drill_restriction =
    match Predicate.restriction pred t.drill_attr with
    | Some r -> r
    | None ->
        Ranges.interval 0 (Schema.domain_size t.schema t.drill_attr - 1)
  in
  let acc = ref 0. in
  Array.iteri
    (fun b_idx bucket ->
      let covered = Ranges.inter drill_restriction bucket.b_values in
      if not (Ranges.is_empty covered) then
        match bucket.b_sub with
        | Some sub ->
            (* Refined: the sub-summary sees the original granularity. *)
            let q =
              Predicate.restrict pred t.drill_attr covered
            in
            acc := !acc +. Summary.estimate sub q
        | None ->
            (* Unrefined: root estimate for the whole bucket, scaled by the
               covered fraction (uniformity within the bucket). *)
            let fraction =
              float_of_int (Ranges.cardinal covered)
              /. float_of_int (Ranges.cardinal bucket.b_values)
            in
            let e = Summary.estimate t.root (root_query t pred ~bucket:b_idx) in
            acc := !acc +. (e *. fraction))
    t.buckets;
  !acc

let estimate_rounded t pred =
  let e = estimate t pred in
  if e < 0.5 then 0. else e

type size_report = {
  root_terms : int;
  refined_buckets : int;
  sub_terms_total : int;
}

let size_report t =
  let root_terms = (Summary.size_report t.root).Summary.num_terms in
  let sub_terms_total =
    Array.fold_left
      (fun acc b ->
        match b.b_sub with
        | None -> acc
        | Some s -> acc + (Summary.size_report s).Summary.num_terms)
      0 t.buckets
  in
  { root_terms; refined_buckets = num_refined t; sub_terms_total }
