(* Reference implementation of the MaxEnt polynomial by explicit
   enumeration of the tuple space (Eq. 5 literally).

   Only usable when |Tup| = prod N_i is small, which is exactly the point:
   property-based tests check that the compressed {!Poly} representation
   and this one agree on P, on derivatives, on expectations, and on
   restricted evaluations, for randomly generated schemas and statistic
   sets. *)

open Edb_storage

type t = {
  phi : Phi.t;
  schema : Schema.t;
  tuples : int array array; (* all d tuples of the cross-product space *)
  memberships : int list array; (* tuple index -> ids of satisfied stats *)
}

let max_tuples = 2_000_000

let create phi =
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  let d_f = Schema.tuple_space_size schema in
  if d_f > float_of_int max_tuples then
    invalid_arg "Bruteforce.create: tuple space too large";
  let d = int_of_float d_f in
  let sizes = Array.init m (fun i -> Schema.domain_size schema i) in
  let tuples =
    Array.init d (fun idx ->
        let tuple = Array.make m 0 in
        let rest = ref idx in
        for i = m - 1 downto 0 do
          tuple.(i) <- !rest mod sizes.(i);
          rest := !rest / sizes.(i)
        done;
        tuple)
  in
  let stats = Phi.stats phi in
  let memberships =
    Array.map
      (fun tuple ->
        Array.to_list stats
        |> List.filter_map (fun s ->
               if Predicate.matches_row (Statistic.pred s) tuple then
                 Some (Statistic.id s)
               else None))
      tuples
  in
  { phi; schema; tuples; memberships }

(* The monomial of tuple t: prod over satisfied statistics of alpha_j
   (every <c_j, t_i> is 0 or 1 by construction). *)
let monomial t alpha idx =
  List.fold_left (fun acc j -> acc *. alpha.(j)) 1. t.memberships.(idx)

let p t alpha =
  let acc = ref 0. in
  for idx = 0 to Array.length t.tuples - 1 do
    acc := !acc +. monomial t alpha idx
  done;
  !acc

let partial t alpha j =
  (* dP/dalpha_j = sum of monomials containing alpha_j, divided by it —
     computed by re-multiplying without j to avoid division by zero. *)
  let acc = ref 0. in
  Array.iter
    (fun members ->
      if List.mem j members then
        acc :=
          !acc
          +. List.fold_left
               (fun m j' -> if j' = j then m else m *. alpha.(j'))
               1. members)
    t.memberships;
  !acc

let expected t alpha j =
  float_of_int (Phi.n t.phi) *. alpha.(j) *. partial t alpha j /. p t alpha

let eval_restricted t alpha query =
  let acc = ref 0. in
  Array.iteri
    (fun idx tuple ->
      if Predicate.matches_row query tuple then
        acc := !acc +. monomial t alpha idx)
    t.tuples;
  !acc

let estimate t alpha query =
  float_of_int (Phi.n t.phi) *. eval_restricted t alpha query /. p t alpha

let eval_weighted t alpha query ~weights =
  let weight_of tuple =
    List.fold_left (fun acc (attr, w) -> acc *. w tuple.(attr)) 1. weights
  in
  let acc = ref 0. in
  Array.iteri
    (fun idx tuple ->
      if Predicate.matches_row query tuple then
        acc := !acc +. (weight_of tuple *. monomial t alpha idx))
    t.tuples;
  !acc

let num_tuples t = Array.length t.tuples

(* The exact tuple distribution Pr(t) = monomial_t / P, used to validate
   the possible-world sampler. *)
let tuple_probabilities t alpha =
  let total = p t alpha in
  Array.init (Array.length t.tuples) (fun idx -> monomial t alpha idx /. total)

let tuple t idx = t.tuples.(idx)
