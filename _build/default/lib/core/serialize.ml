(* Summary persistence.

   The paper stores its polynomial variables in Postgres and the
   factorization in a text file (Sec. 5); here a summary is one versioned
   binary file.  The payload is the statistic set (schema, n, all targets)
   plus the solved variable vector and the solver report.  The compressed
   polynomial itself is *rebuilt* on load — it is deterministic from Φ —
   which keeps the file at O(#statistics) instead of O(#terms) and avoids
   deserializing mutable cached state. *)

open Edb_storage

let magic = "ENTROPYDB\x01"
let version = 1

exception Format_error of string

type payload = {
  p_schema : Schema.t;
  p_n : int;
  p_marginal_targets : float array array;
  p_joints : (Predicate.t * float) list;
  p_alpha : float array;
  p_report : Solver.report;
}

let save summary path =
  let poly = Summary.poly summary in
  let phi = Poly.phi poly in
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  let marginal_targets =
    Array.init m (fun i ->
        Array.init (Schema.domain_size schema i) (fun v ->
            Phi.target phi (Phi.marginal_id phi ~attr:i ~value:v)))
  in
  let joints =
    List.map
      (fun j ->
        let s = Phi.stat phi j in
        (Statistic.pred s, Statistic.target s))
      (Phi.joint_ids phi)
  in
  let payload =
    {
      p_schema = schema;
      p_n = Phi.n phi;
      p_marginal_targets = marginal_targets;
      p_joints = joints;
      p_alpha = Array.init (Phi.num_stats phi) (fun j -> Poly.alpha poly j);
      p_report = Summary.solver_report summary;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc payload [])

let load ?term_cap path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf =
        try really_input_string ic (String.length magic)
        with End_of_file -> raise (Format_error "truncated file")
      in
      if buf <> magic then raise (Format_error "bad magic");
      let v = try input_binary_int ic with End_of_file -> raise (Format_error "truncated header") in
      if v <> version then
        raise (Format_error (Printf.sprintf "unsupported version %d" v));
      let payload : payload =
        (* Marshal surfaces corruption as Failure or End_of_file; normalize
           to Format_error so callers have one error type. *)
        try Marshal.from_channel ic with
        | Failure msg -> raise (Format_error ("corrupt payload: " ^ msg))
        | End_of_file -> raise (Format_error "truncated payload")
      in
      let phi =
        Phi.of_targets payload.p_schema ~n:payload.p_n
          ~marginal_targets:payload.p_marginal_targets ~joints:payload.p_joints
      in
      if Array.length payload.p_alpha <> Phi.num_stats phi then
        raise (Format_error "alpha vector length mismatch");
      let poly = Poly.create ?term_cap phi in
      Array.iteri (fun j a -> Poly.set_alpha poly j a) payload.p_alpha;
      Poly.refresh poly;
      Summary.of_solved_poly ~poly ~report:payload.p_report)
