(* The EntropyDB summary: the public face of the library.

   A summary bundles the solved polynomial with everything needed to answer
   queries: build it once offline (Sec. 3.3), then ask for expected counts
   of any conjunctive counting query (Sec. 4.2), group-by estimates, or
   uncertainty (closed-form variance — the paper's Sec. 7 roadmap item,
   which falls out of the multinomial reading of the fixed-size MaxEnt
   model). *)

open Edb_storage

type t = {
  poly : Poly.t;
  schema : Schema.t;
  n : int;
  report : Solver.report;
}

let build ?(solver_config = Solver.default_config) ?term_cap rel ~joints =
  let phi = Phi.of_relation rel ~joints in
  let poly = Poly.create ?term_cap phi in
  let report = Solver.solve ~config:solver_config poly in
  { poly; schema = Relation.schema rel; n = Relation.cardinality rel; report }

let of_phi ?(solver_config = Solver.default_config) ?term_cap phi =
  let poly = Poly.create ?term_cap phi in
  let report = Solver.solve ~config:solver_config poly in
  { poly; schema = Phi.schema phi; n = Phi.n phi; report }

let of_solved_poly ~poly ~report =
  {
    poly;
    schema = Phi.schema (Poly.phi poly);
    n = Phi.n (Poly.phi poly);
    report;
  }

let schema t = t.schema
let cardinality t = t.n
let poly t = t.poly
let solver_report t = t.report

let estimate t query = Poly.estimate t.poly query

(* The paper rounds estimates below 0.5 to 0 when distinguishing rare from
   nonexistent values (Sec. 4.3 discussion of Fig. 2b). *)
let estimate_rounded t query =
  let e = estimate t query in
  if e < 0.5 then 0. else e

(* Multinomial view (Sec. 3.1's slotted worlds of fixed cardinality n):
   each of the n slots holds tuple u with probability p_u = monomial_u / P
   independently, so a counting query's answer is Binomial(n, p) with
   p = P[zeroed]/P; hence Var = n p (1-p). *)
let variance t query =
  let p_total = Poly.p t.poly in
  if p_total <= 0. then 0.
  else
    let p_q = Poly.eval_restricted t.poly query /. p_total in
    let p_q = Edb_util.Floatx.clamp ~lo:0. ~hi:1. p_q in
    float_of_int t.n *. p_q *. (1. -. p_q)

let stddev t query = sqrt (variance t query)

(* Aggregate queries beyond COUNT: SUM and AVG over a binned attribute,
   answered as weighted linear queries (each row contributes its bin's
   midpoint).  The paper's theory covers all linear queries; its prototype
   stopped at counting (Sec. 7 "limited query support") — this closes that
   gap for the product-form subclass. *)
let midpoint_weights t ~attr =
  let domain = Schema.domain t.schema attr in
  let table =
    Array.init (Schema.domain_size t.schema attr) (fun v ->
        Domain.bin_midpoint domain v)
  in
  fun v -> table.(v)

let estimate_sum t ~attr ?weights query =
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  Poly.estimate_weighted t.poly query ~weights:[ (attr, w) ]

let estimate_avg t ~attr query =
  let count = estimate t query in
  if count <= 0. then None else Some (estimate_sum t ~attr query /. count)

(* Var[Σ_t w_t X_t] for the multinomial model: n (Σ w² p − (Σ w p)²). *)
let variance_sum t ~attr ?weights query =
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  let p_total = Poly.p t.poly in
  if p_total <= 0. then 0.
  else
    let mean_w =
      Poly.eval_weighted t.poly query ~weights:[ (attr, w) ] /. p_total
    in
    let mean_w2 =
      Poly.eval_weighted t.poly query ~weights:[ (attr, fun v -> w v ** 2.) ]
      /. p_total
    in
    Float.max 0. (float_of_int t.n *. (mean_w2 -. (mean_w ** 2.)))

(* GROUP BY estimation: one linear query per group (the paper's Sec. 3.1
   reading of GROUP BY + ORDER BY ... LIMIT).  Enumerates the cross product
   of the grouping attributes' (restricted) domains; intended for the small
   group-bys of interactive exploration. *)
let estimate_groups t ~attrs query =
  let rec go chosen = function
    | [] ->
        let chosen = List.rev chosen in
        let q =
          List.fold_left
            (fun q (i, v) ->
              Predicate.restrict q i (Edb_util.Ranges.singleton v))
            query chosen
        in
        [ (List.map snd chosen, estimate t q) ]
    | attr :: rest ->
        let size = Schema.domain_size t.schema attr in
        let candidates =
          match Predicate.restriction query attr with
          | None -> List.init size Fun.id
          | Some r -> Edb_util.Ranges.to_list r
        in
        List.concat_map
          (fun v -> go ((attr, v) :: chosen) rest)
          candidates
  in
  go [] attrs

let top_k_groups t ~attrs ~k query =
  let groups = estimate_groups t ~attrs query in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) groups in
  List.filteri (fun i _ -> i < k) sorted

type size_report = {
  num_statistics : int;
  num_marginals : int;
  num_terms : int;
  num_groups : int;
  uncompressed_monomials : float;
}

let size_report t =
  let phi = Poly.phi t.poly in
  {
    num_statistics = Phi.num_stats phi;
    num_marginals = Phi.num_marginals phi;
    num_terms = Poly.num_terms t.poly;
    num_groups = Poly.num_groups t.poly;
    uncompressed_monomials = Poly.uncompressed_monomials t.poly;
  }

let pp_size_report ppf r =
  Fmt.pf ppf
    "@[<v>statistics: %d (%d marginals, %d joints)@,\
     compressed terms: %d in %d group(s)@,\
     uncompressed monomials: %.3g@,\
     compression ratio: %.3gx@]"
    r.num_statistics r.num_marginals
    (r.num_statistics - r.num_marginals)
    r.num_terms r.num_groups r.uncompressed_monomials
    (r.uncompressed_monomials /. float_of_int (max 1 r.num_terms))
