(** Reference MaxEnt polynomial by explicit tuple-space enumeration
    (Eq. 5 literally); used to validate {!Poly} on small schemas. *)

open Edb_storage

type t

val create : Phi.t -> t
(** Raises [Invalid_argument] when |Tup| exceeds 2,000,000. *)

val p : t -> float array -> float
(** P evaluated at the given variable vector (indexed by stat id). *)

val partial : t -> float array -> int -> float
val expected : t -> float array -> int -> float
val eval_restricted : t -> float array -> Predicate.t -> float
val estimate : t -> float array -> Predicate.t -> float

val eval_weighted :
  t ->
  float array ->
  Predicate.t ->
  weights:(int * (int -> float)) list ->
  float
(** Reference for {!Poly.eval_weighted}: explicit weighted sum over
    tuples. *)

val num_tuples : t -> int

val tuple_probabilities : t -> float array -> float array
(** Exact tuple distribution Pr(t) = monomial_t / P. *)

val tuple : t -> int -> int array
