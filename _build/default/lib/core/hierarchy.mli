(** Hierarchical summaries — the paper's Sec. 7 roadmap item: a root
    summary over a coarsened drill attribute plus per-bucket refinement
    summaries at full granularity, composed additively at query time. *)

open Edb_storage

type t

val build :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?joints_root:(Relation.t -> Predicate.t list) ->
  ?joints_sub:(Relation.t -> Predicate.t list) ->
  Relation.t ->
  attr:int ->
  boundaries:int array ->
  refine:[ `Top_k of int | `Buckets of int list ] ->
  t
(** [build rel ~attr ~boundaries ~refine] coarsens [attr] into contiguous
    buckets whose start values are [boundaries] (must begin at 0, strictly
    increasing, within the domain), builds the root summary over the
    coarsened relation, and refines the selected buckets ([`Top_k k]
    refines the k most populous) with sub-summaries over their rows.
    [joints_root]/[joints_sub] choose each level's 2D statistics from its
    own relation (default: marginals only). *)

val estimate : t -> Predicate.t -> float
(** E[⟨q,I⟩]: refined buckets answer from their sub-summary; unrefined
    buckets answer from the root, scaled by the covered fraction of the
    bucket (uniformity within buckets). *)

val estimate_rounded : t -> Predicate.t -> float
val cardinality : t -> int
val root : t -> Summary.t
val num_refined : t -> int

type size_report = {
  root_terms : int;
  refined_buckets : int;
  sub_terms_total : int;
}

val size_report : t -> size_report
