(** Possible-world sampling from a solved summary.

    Draws tuples from Pr(u) = monomial_u / P: free attributes exactly from
    their marginal variables, statistic groups by within-group Gibbs
    sampling.  Materializing n draws yields a synthetic instance matching
    the summary's statistics in expectation. *)

open Edb_util
open Edb_storage

type t

val create : Summary.t -> t

val sample_tuple : ?sweeps:int -> t -> Prng.t -> int array
(** One tuple (value indices per attribute).  [sweeps] (default 8) is the
    number of Gibbs passes per statistic group. *)

val sample_instance : ?sweeps:int -> ?rows:int -> t -> Prng.t -> Relation.t
(** A possible world; [rows] defaults to the summarized relation's
    cardinality. *)
