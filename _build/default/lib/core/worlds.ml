(* Possible-world sampling from the MaxEnt model.

   The solved summary defines a distribution over tuples,
   Pr(u) = monomial_u / P, and a possible world of cardinality n is n
   independent draws (the multinomial reading of the slotted semantics of
   Sec. 2.1).  Sampling lets a user materialize a *synthetic instance* that
   matches all the summary's statistics in expectation — a probabilistic-
   database capability beyond the paper's query answering.

   The tuple distribution factorizes exactly like the polynomial: free
   attributes are independent with Pr(v) = alpha_v / A_i; each statistic
   group is an independent joint distribution over its own attributes.
   Within a group we draw by Gibbs sampling: the conditional of one
   attribute given the others is computable in O(N_i + statistics touching
   the attribute), since only statistics whose other projections already
   match can contribute their delta weight. *)

open Edb_util
open Edb_storage

type t = {
  summary : Summary.t;
  schema : Schema.t;
  phi : Phi.t;
  (* Per statistic-group sampling state. *)
  groups : group_sampler array;
  free_attrs : int list;
}

and group_sampler = {
  attrs : int array;
  stats : (int * (int * Ranges.t) list) array;
      (* (stat id, per-attr projections) for each joint stat in the group *)
  mutable state : int array; (* current Gibbs state, parallel to attrs *)
}

let marginal_weights phi summary attr =
  let size = Schema.domain_size (Summary.schema summary) attr in
  Array.init size (fun v ->
      Poly.alpha (Summary.poly summary) (Phi.marginal_id phi ~attr ~value:v))

let create summary =
  let phi = Poly.phi (Summary.poly summary) in
  let schema = Summary.schema summary in
  let m = Schema.arity schema in
  (* Rebuild the attribute grouping from the statistics (same union-find
     criterion as the polynomial). *)
  let joint_ids = Phi.joint_ids phi in
  let covered = Array.make m false in
  let adj : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let attrs = Statistic.attrs (Phi.stat phi j) in
      List.iter (fun a -> covered.(a) <- true) attrs;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <> b then
                match Hashtbl.find_opt adj a with
                | Some l -> l := b :: !l
                | None -> Hashtbl.add adj a (ref [ b ]))
            attrs)
        attrs)
    joint_ids;
  (* Connected components over covered attributes. *)
  let comp = Array.make m (-1) in
  let next_comp = ref 0 in
  for a = 0 to m - 1 do
    if covered.(a) && comp.(a) = -1 then begin
      let c = !next_comp in
      incr next_comp;
      let stack = ref [ a ] in
      while !stack <> [] do
        let x = List.hd !stack in
        stack := List.tl !stack;
        if comp.(x) = -1 then begin
          comp.(x) <- c;
          match Hashtbl.find_opt adj x with
          | Some l -> List.iter (fun y -> if comp.(y) = -1 then stack := y :: !stack) !l
          | None -> ()
        end
      done
    end
  done;
  let groups =
    Array.init !next_comp (fun c ->
        let attrs =
          List.filter (fun a -> comp.(a) = c) (List.init m Fun.id)
          |> Array.of_list
        in
        let stats =
          List.filter_map
            (fun j ->
              let s = Phi.stat phi j in
              let sa = Statistic.attrs s in
              if comp.(List.hd sa) = c then
                Some
                  ( j,
                    List.map
                      (fun i ->
                        match Predicate.restriction (Statistic.pred s) i with
                        | Some r -> (i, r)
                        | None -> assert false)
                      sa )
              else None)
            joint_ids
          |> Array.of_list
        in
        { attrs; stats; state = Array.map (fun _ -> 0) attrs })
  in
  let free_attrs =
    List.filter (fun a -> not covered.(a)) (List.init m Fun.id)
  in
  { summary; schema; phi; groups; free_attrs }

let sample_categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then None
  else begin
    let x = Prng.float rng total in
    let acc = ref 0. and result = ref (Array.length weights - 1) in
    (try
       Array.iteri
         (fun v w ->
           acc := !acc +. w;
           if x < !acc then begin
             result := v;
             raise Exit
           end)
         weights
     with Exit -> ());
    Some !result
  end

(* Conditional weights of [attr] given the rest of the group state. *)
let conditional_weights t g ~local =
  let attr = g.attrs.(local) in
  let w = marginal_weights t.phi t.summary attr in
  let w = Array.copy w in
  Array.iter
    (fun (j, projections) ->
      match List.assoc_opt attr projections with
      | None -> () (* statistic does not touch this attribute *)
      | Some own_proj ->
          let others_match =
            List.for_all
              (fun (i, r) ->
                i = attr
                ||
                let li = ref (-1) in
                Array.iteri (fun k a -> if a = i then li := k) g.attrs;
                Ranges.mem g.state.(!li) r)
              projections
          in
          if others_match then begin
            let delta = Poly.alpha (Summary.poly t.summary) j in
            Ranges.iter (fun v -> w.(v) <- w.(v) *. delta) own_proj
          end)
    g.stats;
  w

let gibbs_sweep t g rng =
  Array.iteri
    (fun local _ ->
      let w = conditional_weights t g ~local in
      match sample_categorical rng w with
      | Some v -> g.state.(local) <- v
      | None -> (
          (* All conditional mass vanished (possible when many marginals are
             zero); fall back to the marginal distribution. *)
          let mw = marginal_weights t.phi t.summary g.attrs.(local) in
          match sample_categorical rng mw with
          | Some v -> g.state.(local) <- v
          | None -> ()))
    g.attrs

let init_group t g rng =
  Array.iteri
    (fun local attr ->
      match sample_categorical rng (marginal_weights t.phi t.summary attr) with
      | Some v -> g.state.(local) <- v
      | None -> ())
    g.attrs

let sample_tuple ?(sweeps = 8) t rng =
  let m = Schema.arity t.schema in
  let tuple = Array.make m 0 in
  List.iter
    (fun attr ->
      match sample_categorical rng (marginal_weights t.phi t.summary attr) with
      | Some v -> tuple.(attr) <- v
      | None -> ())
    t.free_attrs;
  Array.iter
    (fun g ->
      init_group t g rng;
      for _ = 1 to sweeps do
        gibbs_sweep t g rng
      done;
      Array.iteri (fun local attr -> tuple.(attr) <- g.state.(local)) g.attrs)
    t.groups;
  tuple

let sample_instance ?(sweeps = 8) ?rows t rng =
  let n = Option.value rows ~default:(Summary.cardinality t.summary) in
  let b = Relation.builder ~capacity:n t.schema in
  for _ = 1 to n do
    Relation.add_row b (sample_tuple ~sweeps t rng)
  done;
  Relation.build b
