(* Disjunctive queries by inclusion–exclusion.

   The paper's model answers any linear query; conjunctive predicates are
   the primitive the zeroing trick (Sec. 4.2) evaluates directly.  A
   disjunction q = pi_1 OR ... OR pi_d of conjunctive predicates is still a
   linear (counting) query, and since the conjunction of two conjunctive
   predicates is again conjunctive (per-attribute range intersection),
   inclusion–exclusion reduces the disjunction to 2^d - 1 primitive calls:

       E[q] = sum over non-empty S of (-1)^(|S|+1) E[AND of S].

   d is capped (default 10) — beyond that the caller should rewrite the
   query; unsatisfiable intersections (and all their supersets) are pruned
   early, so the typical cost is far below 2^d. *)

open Edb_storage

let max_disjuncts = 10

let check_disjuncts preds =
  let d = List.length preds in
  if d = 0 then invalid_arg "Disjunction: empty disjunction";
  if d > max_disjuncts then
    invalid_arg
      (Printf.sprintf "Disjunction: %d disjuncts exceed the cap of %d" d
         max_disjuncts)

(* Fold inclusion–exclusion over all non-empty satisfiable intersections.
   DFS over disjuncts, carrying the intersection so far: unsatisfiable
   prefixes prune their whole subtree (any superset is unsatisfiable
   too). *)
let fold_intersections preds ~f ~init =
  let preds = Array.of_list preds in
  let d = Array.length preds in
  let acc = ref init in
  let rec go i current size =
    if i = d then begin
      if size > 0 then acc := f !acc ~intersection:current ~size
    end
    else begin
      (* Skip disjunct i. *)
      go (i + 1) current size;
      (* Include disjunct i. *)
      let next = Predicate.conj current preds.(i) in
      if not (Predicate.is_unsatisfiable next) then go (i + 1) next (size + 1)
    end
  in
  (match preds with
  | [||] -> ()
  | _ -> go 0 (Predicate.tautology (Predicate.arity preds.(0))) 0);
  !acc

let sign size = if size mod 2 = 1 then 1. else -1.

let estimate summary preds =
  check_disjuncts preds;
  fold_intersections preds ~init:0. ~f:(fun acc ~intersection ~size ->
      acc +. (sign size *. Summary.estimate summary intersection))

(* Pr[a random tuple from the model satisfies the disjunction], by the same
   expansion over P[zeroed]/P. *)
let probability summary preds =
  check_disjuncts preds;
  let poly = Summary.poly summary in
  let p_total = Poly.p poly in
  if p_total <= 0. then 0.
  else
    let mass =
      fold_intersections preds ~init:0. ~f:(fun acc ~intersection ~size ->
          acc +. (sign size *. Poly.eval_restricted poly intersection))
    in
    Edb_util.Floatx.clamp ~lo:0. ~hi:1. (mass /. p_total)

(* Binomial variance of the disjunction count, as for conjunctions. *)
let variance summary preds =
  let p = probability summary preds in
  float_of_int (Summary.cardinality summary) *. p *. (1. -. p)

let stddev summary preds = sqrt (variance summary preds)
