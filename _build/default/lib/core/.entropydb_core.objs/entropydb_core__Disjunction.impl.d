lib/core/disjunction.ml: Array Edb_storage Edb_util List Poly Predicate Printf Summary
