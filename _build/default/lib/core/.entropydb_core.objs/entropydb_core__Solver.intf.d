lib/core/solver.mli: Poly
