lib/core/phi.ml: Array Edb_storage Edb_util Exec Floatx Fmt Hashtbl Histogram List Option Predicate Ranges Relation Schema Statistic
