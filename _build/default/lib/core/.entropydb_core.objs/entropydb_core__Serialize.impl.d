lib/core/serialize.ml: Array Edb_storage Fun List Marshal Phi Poly Predicate Printf Schema Solver Statistic String Summary
