lib/core/poly.mli: Edb_storage Phi Predicate
