lib/core/phi.mli: Edb_storage Predicate Relation Schema Statistic
