lib/core/hierarchy.mli: Edb_storage Predicate Relation Solver Summary
