lib/core/worlds.ml: Array Edb_storage Edb_util Fun Hashtbl List Option Phi Poly Predicate Prng Ranges Relation Schema Statistic Summary
