lib/core/cache.ml: Edb_storage Edb_util Hashtbl List Predicate Summary
