lib/core/statistic.mli: Edb_storage Format Predicate
