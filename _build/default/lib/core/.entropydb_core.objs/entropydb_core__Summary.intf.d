lib/core/summary.mli: Edb_storage Format Phi Poly Predicate Relation Schema Solver
