lib/core/bruteforce.mli: Edb_storage Phi Predicate
