lib/core/disjunction.mli: Edb_storage Predicate Summary
