lib/core/bruteforce.ml: Array Edb_storage List Phi Predicate Schema Statistic
