lib/core/solver.ml: Array Edb_util Float List Logs Phi Poly
