lib/core/statistic.ml: Edb_storage Fmt Predicate
