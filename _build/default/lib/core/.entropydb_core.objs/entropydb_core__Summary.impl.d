lib/core/summary.ml: Array Domain Edb_storage Edb_util Float Fmt Fun List Phi Poly Predicate Relation Schema Solver
