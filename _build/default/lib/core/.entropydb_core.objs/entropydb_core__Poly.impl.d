lib/core/poly.ml: Array Edb_storage Edb_util Float Fun Hashtbl List Option Parallel Phi Predicate Ranges Schema Statistic
