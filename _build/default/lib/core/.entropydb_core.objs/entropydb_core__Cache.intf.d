lib/core/cache.mli: Edb_storage Predicate Summary
