lib/core/serialize.mli: Summary
