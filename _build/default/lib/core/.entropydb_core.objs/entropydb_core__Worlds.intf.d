lib/core/worlds.mli: Edb_storage Edb_util Prng Relation Summary
