lib/core/hierarchy.ml: Array Domain Edb_storage Edb_util Fun Histogram List Predicate Ranges Relation Schema Solver Summary
