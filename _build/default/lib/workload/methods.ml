(* A uniform "approximate answerer" interface over everything the
   evaluation compares: exact scans, uniform and stratified samples, and
   EntropyDB summaries.  The runner treats all of them identically and
   measures per-query latency. *)

open Edb_storage
open Entropydb_core

type t = { name : string; estimate : Predicate.t -> float }

let name t = t.name
let estimate t pred = t.estimate pred

let exact rel =
  { name = "Exact"; estimate = (fun p -> float_of_int (Exec.count rel p)) }

let of_sample ?name (sample : Edb_sampling.Sample.t) =
  {
    name = Option.value name ~default:(Edb_sampling.Sample.description sample);
    estimate = (fun p -> Edb_sampling.Sample.estimate_count sample p);
  }

(* Summaries answer with the paper's rounding policy (estimates below 0.5
   count as 0) so the F-measure comparison matches Sec. 6.2. *)
let of_summary ?name summary =
  {
    name = Option.value name ~default:"EntropyDB";
    estimate = (fun p -> Summary.estimate_rounded summary p);
  }

let of_fn ~name estimate = { name; estimate }
