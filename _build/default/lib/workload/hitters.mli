(** Workload value selection (Sec. 6.2): heavy hitters, light hitters, and
    nonexistent value combinations for a chosen attribute set. *)

open Edb_util
open Edb_storage

val to_predicate : arity:int -> attrs:int list -> int list -> Predicate.t
(** Point counting query for one value combination. *)

val heavy : Relation.t -> attrs:int list -> k:int -> (int list * int) list
(** The [k] most frequent combinations with their true counts. *)

val light : Relation.t -> attrs:int list -> k:int -> (int list * int) list
(** The [k] least frequent {e existing} combinations. *)

val nonexistent : Prng.t -> Relation.t -> attrs:int list -> k:int -> int list list
(** [k] distinct absent combinations drawn uniformly.  Raises if the cross
    product has fewer than [k] empty cells. *)

type workload = {
  attrs : int list;
  heavy : (int list * int) list;
  light : (int list * int) list;
  nulls : int list list;
}

val standard :
  Prng.t -> Relation.t -> attrs:int list -> num_hitters:int -> num_nulls:int ->
  workload
(** The paper's standard mix: top [num_hitters], bottom [num_hitters], and
    [num_nulls] absent combinations. *)
