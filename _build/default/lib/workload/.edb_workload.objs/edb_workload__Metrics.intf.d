lib/workload/metrics.mli:
