lib/workload/methods.mli: Edb_sampling Edb_storage Entropydb_core Predicate Relation
