lib/workload/methods.ml: Edb_sampling Edb_storage Entropydb_core Exec Option Predicate Summary
