lib/workload/runner.mli: Methods
