lib/workload/hitters.ml: Edb_storage Edb_util Exec Hashtbl List Predicate Prng Relation Schema
