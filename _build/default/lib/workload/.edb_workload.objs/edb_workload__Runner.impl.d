lib/workload/runner.ml: Array Edb_util Float Floatx Hitters List Methods Metrics Timing
