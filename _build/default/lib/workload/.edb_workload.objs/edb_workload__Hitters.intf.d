lib/workload/hitters.mli: Edb_storage Edb_util Predicate Prng Relation
