lib/workload/metrics.ml: Float List
