(* Query-value selection for the evaluation workloads (Sec. 6.2).

   Every accuracy experiment in the paper selects, for a chosen attribute
   set, the value combinations with the largest counts (heavy hitters), the
   smallest non-zero counts (light hitters), and combinations that do not
   occur at all (nonexistent/null values), then turns each into a point
   counting query. *)

open Edb_util
open Edb_storage

let to_predicate ~arity ~attrs values =
  Predicate.point ~arity (List.combine attrs values)

let heavy rel ~attrs ~k =
  Exec.top_k rel ~attrs ~k |> List.map (fun (vs, c) -> (vs, c))

let light rel ~attrs ~k = Exec.bottom_k rel ~attrs ~k

(* Random value combinations with a zero true count.  Draws combinations
   uniformly from the cross product and keeps the absent ones; requires the
   cross product to actually contain empty cells (true for all the paper's
   workloads, where existing combinations are a small fraction). *)
let nonexistent rng rel ~attrs ~k =
  let schema = Relation.schema rel in
  let sizes = List.map (fun i -> Schema.domain_size schema i) attrs in
  let existing = Hashtbl.create 1024 in
  List.iter
    (fun (vs, _) -> Hashtbl.replace existing vs ())
    (Exec.group_count rel ~attrs);
  let space =
    List.fold_left (fun acc s -> acc *. float_of_int s) 1. sizes
  in
  let distinct = float_of_int (Hashtbl.length existing) in
  if space -. distinct < float_of_int k then
    invalid_arg "Hitters.nonexistent: not enough empty combinations";
  let chosen = Hashtbl.create (2 * k) in
  let out = ref [] and found = ref 0 in
  while !found < k do
    let vs = List.map (fun s -> Prng.int rng s) sizes in
    if (not (Hashtbl.mem existing vs)) && not (Hashtbl.mem chosen vs) then begin
      Hashtbl.add chosen vs ();
      out := vs :: !out;
      incr found
    end
  done;
  List.rev !out

type workload = {
  attrs : int list;
  heavy : (int list * int) list; (* values with true counts *)
  light : (int list * int) list;
  nulls : int list list;
}

let standard rng rel ~attrs ~num_hitters ~num_nulls =
  {
    attrs;
    heavy = heavy rel ~attrs ~k:num_hitters;
    light = light rel ~attrs ~k:num_hitters;
    nulls = nonexistent rng rel ~attrs ~k:num_nulls;
  }
