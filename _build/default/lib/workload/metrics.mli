(** Accuracy metrics from Sec. 6.2: symmetric relative error and the
    F measure separating rare from nonexistent values. *)

val rel_error : truth:float -> est:float -> float
(** |true − est| / (true + est); 0 when both are 0, 1 when exactly one is. *)

val avg_rel_error : (float * float) list -> float
(** Mean relative error over (truth, estimate) pairs; 0 on []. *)

type classification = {
  light_positive : int;
  light_total : int;
  null_positive : int;
  null_total : int;
}

val classify :
  light_estimates:float list -> null_estimates:float list -> classification
(** Positive = estimate strictly above 0 (summaries apply their own
    rounding before this). *)

val precision : classification -> float
val recall : classification -> float
val f_measure : classification -> float
