(* Accuracy metrics from Sec. 6.2.

   - Relative error |true - est| / (true + est): symmetric, bounded by 1,
     and equal to 1 whenever exactly one side is zero (a missed value or a
     phantom value scores maximally).  0/0 is a perfect answer, hence 0.
   - F measure for distinguishing rare from nonexistent values:
       precision = #{est > 0 on light hitters}
                   / #{est > 0 on light hitters or nulls}
       recall    = #{est > 0 on light hitters} / #light hitters
       F         = 2 P R / (P + R). *)

let rel_error ~truth ~est =
  let t = Float.abs truth and e = Float.abs est in
  if t +. e = 0. then 0. else Float.abs (truth -. est) /. (t +. e)

let avg_rel_error pairs =
  match pairs with
  | [] -> 0.
  | _ ->
      let acc =
        List.fold_left
          (fun acc (truth, est) -> acc +. rel_error ~truth ~est)
          0. pairs
      in
      acc /. float_of_int (List.length pairs)

type classification = {
  light_positive : int; (* light hitters with positive estimate *)
  light_total : int;
  null_positive : int; (* nulls wrongly estimated positive: phantoms *)
  null_total : int;
}

let classify ~light_estimates ~null_estimates =
  {
    light_positive = List.length (List.filter (fun e -> e > 0.) light_estimates);
    light_total = List.length light_estimates;
    null_positive = List.length (List.filter (fun e -> e > 0.) null_estimates);
    null_total = List.length null_estimates;
  }

let precision c =
  let positives = c.light_positive + c.null_positive in
  if positives = 0 then 0.
  else float_of_int c.light_positive /. float_of_int positives

let recall c =
  if c.light_total = 0 then 0.
  else float_of_int c.light_positive /. float_of_int c.light_total

let f_measure c =
  let p = precision c and r = recall c in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)
