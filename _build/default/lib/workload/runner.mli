(** Experiment runner: per-method average relative error, F measure, and
    latency over a workload — the quantities the paper's figures plot. *)

type error_result = {
  method_name : string;
  avg_error : float;
  errors : float array;
  avg_seconds : float;
  max_seconds : float;
}

val run_errors :
  Methods.t -> arity:int -> attrs:int list -> queries:(int list * int) list ->
  error_result
(** [queries] pairs value combinations with their true counts. *)

val run_errors_all :
  Methods.t list -> arity:int -> attrs:int list ->
  queries:(int list * int) list -> error_result list

type f_result = {
  f_method : string;
  f_measure : float;
  f_precision : float;
  f_recall : float;
}

val run_f :
  Methods.t -> arity:int -> attrs:int list ->
  light:(int list * int) list -> nulls:int list list -> f_result

val run_f_all :
  Methods.t list -> arity:int -> attrs:int list ->
  light:(int list * int) list -> nulls:int list list -> f_result list

val error_differences :
  reference:string -> error_result list -> (string * float) list
(** Per-method [avg_error − reference's avg_error], as in Fig. 5 (positive
    = reference wins).  Raises if the reference method is absent. *)
