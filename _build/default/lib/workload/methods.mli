(** The uniform estimator interface the evaluation harness compares:
    exact scans, samples, and summaries. *)

open Edb_storage

type t

val name : t -> string
val estimate : t -> Predicate.t -> float
val exact : Relation.t -> t

val of_sample : ?name:string -> Edb_sampling.Sample.t -> t

val of_summary : ?name:string -> Entropydb_core.Summary.t -> t
(** Applies the paper's rounding policy (< 0.5 → 0). *)

val of_fn : name:string -> (Predicate.t -> float) -> t
