(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus a bechamel latency microbenchmark backing the paper's
   query-runtime claims (Sec. 5: ~500 ms average, < 1 s max, on their
   hardware; orders of magnitude faster here because the polynomial stays
   in cache).

   Usage:
     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- fig5 fig6  # selected experiments
     SCALE=full dune exec bench/main.exe    # paper-sized budgets

   Experiments: fig2b fig3 fig4 fig5 fig6 fig7 fig8 compression ablation
   hierarchy costs latency. *)

open Edb_util
open Edb_experiments

let print_tables tables =
  List.iter
    (fun t ->
      print_newline ();
      Table.print t)
    tables

(* The flights lab (nine methods on two relations) is shared by fig5, fig6,
   fig8, and costs; build it at most once. *)
let lab_cache = ref None

let get_lab config =
  match !lab_cache with
  | Some lab -> lab
  | None ->
      Printf.printf
        "\n[setup] building the shared flights lab (4 summaries x 2 \
         relations + 5 samples)...\n%!";
      let lab, dt = Timing.time (fun () -> Lab.flights_lab config) in
      Printf.printf "[setup] flights lab ready in %.1fs\n%!" dt;
      lab_cache := Some lab;
      lab

(* ------------------------------------------------------------------ *)
(* Latency microbenchmark (bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let latency config =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let lab = get_lab config in
  let rel = lab.Lab.data.coarse in
  let schema = Edb_storage.Relation.schema rel in
  let arity = Edb_storage.Schema.arity schema in
  let module F = Edb_datagen.Flights in
  let summary =
    match (Lab.find_method lab.Lab.coarse_methods "Ent1&2&3").Lab.fm_summary with
    | Some s -> s
    | None -> assert false
  in
  let uni = Lab.find_method lab.Lab.coarse_methods "Uni" in
  let strat = Lab.find_method lab.Lab.coarse_methods "Strat3" in
  let point =
    Edb_storage.Predicate.point ~arity [ (F.origin, 3); (F.distance, 20) ]
  in
  let range =
    Edb_storage.Predicate.of_alist ~arity
      [
        (F.fl_time, Ranges.interval 5 25);
        (F.distance, Ranges.interval 10 40);
        (F.origin, Ranges.interval 0 20);
      ]
  in
  let tests =
    [
      Test.make ~name:"entropydb/point"
        (Staged.stage (fun () ->
             Entropydb_core.Summary.estimate summary point));
      Test.make ~name:"entropydb/range"
        (Staged.stage (fun () ->
             Entropydb_core.Summary.estimate summary range));
      Test.make ~name:"uniform-sample/point"
        (Staged.stage (fun () ->
             Edb_workload.Methods.estimate uni.Lab.fm_method point));
      Test.make ~name:"stratified-sample/point"
        (Staged.stage (fun () ->
             Edb_workload.Methods.estimate strat.Lab.fm_method point));
      Test.make ~name:"exact-scan/point"
        (Staged.stage (fun () -> Edb_storage.Exec.count rel point));
      Test.make ~name:"exact-scan/range"
        (Staged.stage (fun () -> Edb_storage.Exec.count rel range));
      (let index = Edb_storage.Bitmap.create rel in
       Test.make ~name:"exact-bitmap/point"
         (Staged.stage (fun () -> Edb_storage.Bitmap.count index point)));
      (let cache = Entropydb_core.Cache.create summary in
       ignore (Entropydb_core.Cache.estimate cache point);
       Test.make ~name:"entropydb/point-cached"
         (Staged.stage (fun () -> Entropydb_core.Cache.estimate cache point)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"latency" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create
      ~title:
        "Query latency (bechamel, monotonic clock; paper Sec. 5: EntropyDB \
         ~500ms avg vs Postgres-resident samples)"
      ~headers:[ "operation"; "time/query"; "r^2" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ()
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      let ns =
        match Analyze.OLS.estimates o with Some (t :: _) -> t | _ -> nan
      in
      let pretty =
        if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      let r2 =
        match Analyze.OLS.r_square o with
        | Some r when Float.is_finite r -> Printf.sprintf "%.4f" r
        | _ -> "-"
      in
      Table.add_row table [ name; pretty; r2 ])
    (List.sort compare rows);
  [ table ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments config =
  [
    ("fig2b", fun () -> Figures.fig2b config);
    ("fig3", fun () -> Figures.fig3 config);
    ("fig4", fun () -> Figures.fig4 config);
    ("fig5", fun () -> Figures.fig5 (get_lab config));
    ("fig6", fun () -> Figures.fig6 (get_lab config));
    ("fig7", fun () -> Figures.fig7 config);
    ("fig8", fun () -> Figures.fig8 (get_lab config));
    ("compression", fun () -> Figures.compression config);
    ("ablation", fun () -> Figures.ablation config);
    ("hierarchy", fun () -> Figures.hierarchy config);
    ("costs", fun () -> Figures.build_costs (get_lab config));
    ("latency", fun () -> latency config);
  ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  let config = Config.of_env () in
  let available = experiments config in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst available
  in
  Printf.printf "EntropyDB benchmark harness (scale=%s, seed=%d)\n"
    (Config.scale_name config) config.Config.seed;
  let t0 = Timing.now_s () in
  List.iter
    (fun name ->
      match List.assoc_opt name available with
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat " " (List.map fst available));
          exit 1
      | Some run ->
          Printf.printf "\n================ %s ================\n%!" name;
          let tables, dt = Timing.time run in
          print_tables tables;
          Printf.printf "[%s done in %.1fs]\n%!" name dt)
    requested;
  Printf.printf "\nTotal: %.1fs\n" (Timing.now_s () -. t0)
