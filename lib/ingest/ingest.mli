(** Streaming ingest & incremental summary maintenance.

    Appending a batch to a summarized relation only moves the statistic
    targets by the batch's own counts (s_j(I ⊎ B) = s_j(I) + s_j(B)), so
    maintenance is: delta-update Φ from the batch alone ({!Phi.append},
    O(|batch|)), then re-solve warm-started from the previous converged α
    ({!Solver.solve}[ ~init]) — a handful of sweeps instead of a cold
    start's tens.  The base data is never touched and need not exist.

    Every append extends the summary's {!Journal} (persisted in the
    summary file, Serialize v2) and bumps the [ingest_*] metrics in
    {!Edb_obs.Registry}. *)

open Edb_storage
open Entropydb_core

type stats = {
  batch_rows : int;
  cardinality : int;  (** summary cardinality after the append *)
  sweeps : int;  (** warm-started re-solve sweeps to tolerance *)
  converged : bool;
  seconds : float;  (** whole append: delta-Φ + rebuild + re-solve *)
}

val append :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?source:string ->
  ?on_sweep:(Solver.sweep_stat -> unit) ->
  Summary.t ->
  Relation.t ->
  Summary.t
(** [append summary batch] is the summary of the union relation: same
    statistic structure, targets grown by the batch's counts, model
    re-solved warm-started from [summary]'s α.  [source] tags the journal
    entry (default ["batch"]).  Raises [Invalid_argument] if the batch's
    schema differs from the summary's. *)

val append_with_stats :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?source:string ->
  ?on_sweep:(Solver.sweep_stat -> unit) ->
  Summary.t ->
  Relation.t ->
  Summary.t * stats
(** [append] plus the append's cost telemetry. *)

val replay :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  joints:Predicate.t list ->
  Relation.t ->
  (string * Relation.t) list ->
  Summary.t
(** Recovery path: rebuild the base summary, then re-apply the journaled
    batches (as [(source, batch)] pairs) in order.  Within solver
    tolerance of the summary the original ingest sequence produced. *)

val save_atomic : ?format:[ `Flat | `V3 ] -> Summary.t -> string -> unit
(** Persist via write-to-temp + [rename] in the target's directory, so a
    concurrent reader of [path] sees the old or the new summary, never a
    torn file.  The write format follows the file being replaced (a v3
    file stays v3; anything else — including a missing target — gets the
    flat format) unless [format] forces one.  Raises like
    {!Serialize.save} / {!Serialize.save_v3}. *)

val orphan_temps : dir:string -> string list
(** Temp files ([*.ingest-tmp]) stranded in [dir] by a crash between the
    temp write and the rename, sorted; never read by any loader, safe to
    delete. *)

val clean_orphans : dir:string -> int
(** Remove every {!orphan_temps} file in [dir]; returns how many were
    deleted (files that vanish concurrently are skipped, not errors). *)
