(* Streaming ingest: append a batch of rows to an existing summary
   without a full rebuild (the maintenance problem the paper's Sec. 7
   leaves open).

   Two observations make this cheap:

   1. Every statistic target is a count, so the sufficient statistics of
      I ⊎ B are s_j(I) + s_j(B): Phi.append recounts only the batch
      (O(|B|) histograms + per-joint batch counts), never the base data —
      which may no longer exist.

   2. A batch perturbs the targets by at most |B|/n in relative terms, so
      the previous converged α is an excellent starting point for the new
      MaxEnt problem.  Solver.solve ~init warm-starts coordinate descent
      from it and typically reaches tolerance in a handful of sweeps
      where a cold start needs tens (the `bench ingest` experiment
      measures exactly this, via the solver's on_sweep telemetry).

   The summary's Journal records the lineage (base build + every batch),
   is persisted in the summary file (Serialize v2), and is audited here:
   after every append, Journal.total_rows must equal the summary's
   cardinality. *)

open Edb_storage
open Entropydb_core
module R = Edb_obs.Registry

(* ingest_* metrics: surfaced by server STATS / `entropydb stats` as
   obs_ingest_* lines alongside every other engine metric. *)
let m_batches = R.counter "ingest_batches"
let m_rows = R.counter "ingest_rows"
let m_sweeps_warm = R.counter "ingest_sweeps_warm"
let m_append_latency = R.histogram "ingest_append"

type stats = {
  batch_rows : int;
  cardinality : int;  (* after the append *)
  sweeps : int;  (* warm-started re-solve sweeps *)
  converged : bool;
  seconds : float;  (* whole append: delta-Φ + rebuild + re-solve *)
}

let append_with_stats ?(solver_config = Solver.default_config) ?term_cap
    ?(source = "batch") ?on_sweep summary batch =
  if Stdlib.compare (Relation.schema batch) (Summary.schema summary) <> 0 then
    invalid_arg "Ingest.append: batch schema differs from the summary's";
  let t0 = Edb_util.Timing.now_s () in
  Edb_obs.Obs.with_span "ingest.append" ~cat:"ingest"
    ~attrs:(fun () ->
      [
        ("batch_rows", string_of_int (Relation.cardinality batch));
        ("source", source);
      ])
  @@ fun () ->
  let phi = Phi.append (Poly.phi (Summary.poly summary)) batch in
  (* Warm start from the previous optimum.  Structure is unchanged, so
     the old α vector indexes the new polynomial's variables directly. *)
  let init = Poly.alphas (Summary.poly summary) in
  let poly = Poly.create ?term_cap phi in
  let report = Solver.solve ~config:solver_config ~init ?on_sweep poly in
  let journal =
    Journal.append (Summary.journal summary)
      {
        Journal.rows = Relation.cardinality batch;
        source;
        sweeps = report.Solver.sweeps;
        warm = true;
      }
  in
  let summary' = Summary.of_solved_poly ~journal ~poly ~report () in
  (* Lineage audit: the journal and the model must agree on n. *)
  assert (Journal.total_rows journal = Summary.cardinality summary');
  let seconds = Edb_util.Timing.now_s () -. t0 in
  R.Counter.incr m_batches;
  R.Counter.add m_rows (Relation.cardinality batch);
  R.Counter.add m_sweeps_warm report.Solver.sweeps;
  R.Hist.observe m_append_latency seconds;
  ( summary',
    {
      batch_rows = Relation.cardinality batch;
      cardinality = Summary.cardinality summary';
      sweeps = report.Solver.sweeps;
      converged = report.Solver.converged;
      seconds;
    } )

let append ?solver_config ?term_cap ?source ?on_sweep summary batch =
  fst
    (append_with_stats ?solver_config ?term_cap ?source ?on_sweep summary
       batch)

(* Replay a journal's worth of batches over a base relation — the
   restart/recovery path: rebuild the base summary, then re-apply each
   batch in order.  Equivalent (within solver tolerance) to the summary
   the original ingest sequence produced. *)
let replay ?solver_config ?term_cap ~joints base batches =
  let s0 = Summary.build ?solver_config ?term_cap base ~joints in
  List.fold_left
    (fun s (source, batch) ->
      append ?solver_config ?term_cap ~source s batch)
    s0 batches

(* Atomic on-disk refresh: write next to the target, fsync-free rename
   over it (atomic on POSIX), so a concurrent reader sees either the old
   file or the new one, never a torn write.

   The write format follows the file being replaced — a v3 (mmap-able)
   file stays v3, so a mapped catalog entry survives REFRESH without a
   silent downgrade to heap loading — unless the caller forces one with
   [?format].  A missing or unreadable target gets the default flat
   format. *)
let save_atomic ?format summary path =
  let write =
    let v3 () = Serialize.save_v3 summary in
    let flat () = Serialize.save summary in
    match format with
    | Some `V3 -> v3 ()
    | Some `Flat -> flat ()
    | None -> (
        match Serialize.detect path with
        | Serialize.MappedV3 -> v3 ()
        | Serialize.Flat | Serialize.Sharded -> flat ()
        | exception (Serialize.Format_error _ | Sys_error _) -> flat ())
  in
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      (Filename.basename path) ".ingest-tmp"
  in
  match write tmp with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* A crash between the temp write and the rename strands a temp file.
   They are harmless (never read by any loader) but accumulate; these
   helpers let operators — and the crash-safety tests — find and sweep
   them. *)
let orphan_temps ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".ingest-tmp")
      |> List.map (Filename.concat dir)
      |> List.sort compare

let clean_orphans ~dir =
  List.fold_left
    (fun n p ->
      match Sys.remove p with () -> n + 1 | exception Sys_error _ -> n)
    0 (orphan_temps ~dir)
