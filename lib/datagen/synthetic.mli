(** Seeded random relations for the correctness harness ([lib/check]).

    Schemas are small and integer-binned (raw value = bin index), and
    rows are drawn either from a product of independent per-attribute
    categorical distributions or from a small mixture of such products
    (which introduces correlation and so exercises joint statistics).

    Distribution parameters are drawn {e before} any row, and rows are
    drawn sequentially, so generating with a smaller [rows] yields a
    prefix of the longer relation — the property the harness's shrinker
    relies on when it halves the row count of a failing case. *)

open Edb_storage

type mode =
  | Product  (** independent attributes: one product component *)
  | Mixture of int
      (** the given number (>= 2) of product components, mixed *)

val schema : sizes:int list -> Schema.t
(** Attributes [a0], [a1], ... where attribute [i] has the integer
    domain [{0, ..., size_i - 1}] (bins of width 1, so a raw integer
    equals its bin index).  Raises [Invalid_argument] on an empty list
    or a size below 1. *)

val generate :
  sizes:int list -> rows:int -> mode:mode -> seed:int -> Relation.t
(** A relation over [schema ~sizes] with [rows] rows.  Equal arguments
    yield equal relations; [generate ~rows:n] is a row-prefix of
    [generate ~rows:m] for [n <= m] with the other arguments equal. *)
