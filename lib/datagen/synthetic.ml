(* Random relations for the correctness harness: products of skewed
   per-attribute categoricals, optionally mixed over a few components.

   All distribution parameters are drawn up front from the seed; rows are
   then drawn one at a time from the fixed distributions.  That makes the
   row stream prefix-stable under a smaller [rows] — shrinking a failing
   case by halving its row count replays the same leading rows. *)

open Edb_util
open Edb_storage

type mode = Product | Mixture of int

let schema ~sizes =
  if sizes = [] then invalid_arg "Synthetic.schema: empty size list";
  Schema.create
    (List.mapi
       (fun i size ->
         if size < 1 then invalid_arg "Synthetic.schema: size < 1";
         Schema.attr
           (Printf.sprintf "a%d" i)
           (Domain.int_bins ~lo:0 ~hi:(size - 1) ~width:1))
       sizes)

(* Skewed per-value weights: squaring a uniform draw spreads the mass so
   most attributes have both heavy and light values, which is what makes
   heavy-hitter and near-zero estimates both appear in a workload. *)
let random_dist rng size =
  Prng.Categorical.create
    (Array.init size (fun _ -> 0.05 +. (Prng.unit_float rng ** 2.)))

let generate ~sizes ~rows ~mode ~seed =
  let schema = schema ~sizes in
  let rng = Prng.create ~seed () in
  let components = match mode with Product -> 1 | Mixture k -> max 2 k in
  (* Parameters first (component mix, then every component's
     per-attribute distribution), rows after. *)
  let mix =
    Prng.Categorical.create
      (Array.init components (fun _ -> 0.2 +. Prng.unit_float rng))
  in
  let dists =
    Array.init components (fun _ ->
        Array.of_list (List.map (random_dist rng) sizes))
  in
  let arity = List.length sizes in
  let b = Relation.builder ~capacity:rows schema in
  for _ = 1 to rows do
    let c = Prng.Categorical.sample mix rng in
    (* Explicit left-to-right draws: the row stream must not depend on
       [Array.init]'s evaluation order. *)
    let row = Array.make arity 0 in
    for i = 0 to arity - 1 do
      row.(i) <- Prng.Categorical.sample dists.(c).(i) rng
    done;
    Relation.add_row b row
  done;
  Relation.build b
