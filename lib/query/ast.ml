(* Abstract syntax of the supported query language.

   EntropyDB answers linear queries (Sec. 3.1); the concrete language is
   the fragment used throughout the paper's examples and evaluation:

     SELECT COUNT( * ) FROM R WHERE A = 'v' AND B IN [lo, hi] ...
     SELECT A, B, COUNT( * ) FROM R [WHERE ...] GROUP BY A, B
       [ORDER BY cnt DESC] [LIMIT k]

   Attribute names are resolved against a schema at translation time, not
   parse time. *)

type value = Vint of int | Vfloat of float | Vstr of string

type condition =
  | Eq of string * value (* A = v *)
  | Neq of string * value (* A <> v *)
  | Between of string * value * value (* A BETWEEN lo AND hi, inclusive *)
  | In_set of string * value list (* A IN ('x', 'y', ...) *)

type order = Desc | Asc

(* The aggregate in the SELECT clause.  COUNT supports GROUP BY; SUM and
   AVG are plain aggregates over one binned attribute (the weighted linear
   queries of Sec. 3.1). *)
type agg = Count | Sum of string | Avg of string

type t = {
  table : string;
  agg : agg;
  group_by : string list; (* [] for a plain aggregate *)
  where : condition list list;
      (* disjunctive normal form: OR of AND-conjunctions; [] = no WHERE *)
  order : order option; (* ORDER BY the count column *)
  limit : int option;
}

let count_query ?(table = "R") conditions =
  {
    table;
    agg = Count;
    group_by = [];
    where = (match conditions with [] -> [] | _ -> [ conditions ]);
    order = None;
    limit = None;
  }

let pp_value ppf = function
  | Vint i -> Fmt.int ppf i
  | Vfloat f -> Fmt.float ppf f
  | Vstr s ->
      (* The lexer reads '' inside a string literal as one quote, so
         printing must double them or the output would not re-parse. *)
      Fmt.pf ppf "'%s'"
        (String.concat "''" (String.split_on_char '\'' s))

let pp_condition ppf = function
  | Eq (a, v) -> Fmt.pf ppf "%s = %a" a pp_value v
  | Neq (a, v) -> Fmt.pf ppf "%s <> %a" a pp_value v
  | Between (a, lo, hi) ->
      Fmt.pf ppf "%s IN [%a, %a]" a pp_value lo pp_value hi
  | In_set (a, vs) ->
      Fmt.pf ppf "%s IN (%a)" a Fmt.(list ~sep:comma pp_value) vs

let pp_agg ppf = function
  | Count -> Fmt.string ppf "COUNT(*)"
  | Sum a -> Fmt.pf ppf "SUM(%s)" a
  | Avg a -> Fmt.pf ppf "AVG(%s)" a

let pp ppf t =
  let pp_select ppf = function
    | [] -> pp_agg ppf t.agg
    | gs -> Fmt.pf ppf "%s, %a" (String.concat ", " gs) pp_agg t.agg
  in
  Fmt.pf ppf "SELECT %a FROM %s" pp_select t.group_by t.table;
  if t.where <> [] then begin
    let pp_conj ppf conds =
      Fmt.(list ~sep:(any " AND ") pp_condition) ppf conds
    in
    Fmt.pf ppf " WHERE %a" Fmt.(list ~sep:(any " OR ") pp_conj) t.where
  end;
  if t.group_by <> [] then
    Fmt.pf ppf " GROUP BY %s" (String.concat ", " t.group_by);
  (match t.order with
  | Some Desc -> Fmt.string ppf " ORDER BY cnt DESC"
  | Some Asc -> Fmt.string ppf " ORDER BY cnt ASC"
  | None -> ());
  match t.limit with Some k -> Fmt.pf ppf " LIMIT %d" k | None -> ()
