(* Recursive-descent parser for the query language.

   Grammar (keywords case-insensitive; AND binds tighter than OR):

     query     ::= SELECT select FROM IDENT [where] [group] [order] [limit]
     select    ::= COUNT ( * ) | SUM ( IDENT ) | AVG ( IDENT )
                 | IDENT (, IDENT)* , COUNT ( * )
     where     ::= WHERE conj (OR conj)*
     conj      ::= condition (AND condition)*
     condition ::= IDENT = value
                 | IDENT <> value
                 | IDENT BETWEEN value AND value
                 | IDENT IN [ value , value ]
                 | IDENT IN ( value (, value)* )
     group     ::= GROUP BY IDENT (, IDENT)*
     order     ::= ORDER BY (IDENT | COUNT ( * )) (DESC | ASC)
     limit     ::= LIMIT INT
     value     ::= INT | FLOAT | STRING *)

type error = { pos : int; message : string }

let pp_error ppf (e : error) =
  Fmt.pf ppf "parse error at offset %d: %s" e.pos e.message

type state = { mutable tokens : (Lexer.token * int) list }

exception Parse_failure of error

let fail pos message = raise (Parse_failure { pos; message })

let peek st =
  match st.tokens with [] -> (Lexer.EOF, 0) | (tok, pos) :: _ -> (tok, pos)

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st expected =
  let tok, pos = peek st in
  if tok = expected then advance st
  else
    fail pos
      (Fmt.str "expected %a but found %a" Lexer.pp_token expected
         Lexer.pp_token tok)

let ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | tok, pos ->
      fail pos (Fmt.str "expected an identifier, found %a" Lexer.pp_token tok)

let value st =
  match peek st with
  | Lexer.INT i, _ ->
      advance st;
      Ast.Vint i
  | Lexer.FLOAT f, _ ->
      advance st;
      Ast.Vfloat f
  | Lexer.STRING s, _ ->
      advance st;
      Ast.Vstr s
  | tok, pos -> fail pos (Fmt.str "expected a value, found %a" Lexer.pp_token tok)

let count_star st =
  expect st Lexer.COUNT;
  expect st Lexer.LPAREN;
  expect st Lexer.STAR;
  expect st Lexer.RPAREN

let agg_over st kind =
  advance st;
  expect st Lexer.LPAREN;
  let attr = ident st in
  expect st Lexer.RPAREN;
  match kind with `Sum -> Ast.Sum attr | `Avg -> Ast.Avg attr

(* select ::= COUNT(star) | SUM(ident) | AVG(ident)
            | ident, ..., COUNT(star) *)
let select_clause st =
  match peek st with
  | Lexer.COUNT, _ ->
      count_star st;
      (Ast.Count, [])
  | Lexer.SUM, _ -> (agg_over st `Sum, [])
  | Lexer.AVG, _ -> (agg_over st `Avg, [])
  | _ ->
      let rec idents acc =
        let name = ident st in
        expect st Lexer.COMMA;
        match peek st with
        | Lexer.COUNT, _ ->
            count_star st;
            List.rev (name :: acc)
        | _ -> idents (name :: acc)
      in
      (Ast.Count, idents [])

let condition st =
  let attr = ident st in
  match peek st with
  | Lexer.EQUALS, _ ->
      advance st;
      Ast.Eq (attr, value st)
  | Lexer.NEQ, _ ->
      advance st;
      Ast.Neq (attr, value st)
  | Lexer.BETWEEN, _ ->
      advance st;
      let lo = value st in
      expect st Lexer.AND;
      let hi = value st in
      Ast.Between (attr, lo, hi)
  | Lexer.IN, _ -> (
      advance st;
      match peek st with
      | Lexer.LBRACKET, _ ->
          advance st;
          let lo = value st in
          expect st Lexer.COMMA;
          let hi = value st in
          expect st Lexer.RBRACKET;
          Ast.Between (attr, lo, hi)
      | Lexer.LPAREN, _ ->
          advance st;
          let rec values acc =
            let v = value st in
            match peek st with
            | Lexer.COMMA, _ ->
                advance st;
                values (v :: acc)
            | _ ->
                expect st Lexer.RPAREN;
                List.rev (v :: acc)
          in
          Ast.In_set (attr, values [])
      | tok, pos ->
          fail pos
            (Fmt.str "expected [range] or (set) after IN, found %a"
               Lexer.pp_token tok))
  | tok, pos ->
      fail pos (Fmt.str "expected =, <>, BETWEEN, or IN, found %a" Lexer.pp_token tok)

(* where ::= conjunction (OR conjunction)*
   conjunction ::= condition (AND condition)*
   AND binds tighter than OR, as in SQL. *)
let where_clause st =
  match peek st with
  | Lexer.WHERE, _ ->
      advance st;
      let rec conjunction acc =
        let c = condition st in
        match peek st with
        | Lexer.AND, _ ->
            advance st;
            conjunction (c :: acc)
        | _ -> List.rev (c :: acc)
      in
      let rec disjunction acc =
        let conj = conjunction [] in
        match peek st with
        | Lexer.OR, _ ->
            advance st;
            disjunction (conj :: acc)
        | _ -> List.rev (conj :: acc)
      in
      disjunction []
  | _ -> []

let group_clause st =
  match peek st with
  | Lexer.GROUP, _ ->
      advance st;
      expect st Lexer.BY;
      let rec idents acc =
        let name = ident st in
        match peek st with
        | Lexer.COMMA, _ ->
            advance st;
            idents (name :: acc)
        | _ -> List.rev (name :: acc)
      in
      idents []
  | _ -> []

let order_clause st =
  match peek st with
  | Lexer.ORDER, _ ->
      advance st;
      expect st Lexer.BY;
      (* The sort key is always the aggregate; accept either a column
         alias or the literal COUNT ( * ) spelling. *)
      (match peek st with
      | Lexer.COUNT, _ ->
          advance st;
          expect st Lexer.LPAREN;
          expect st Lexer.STAR;
          expect st Lexer.RPAREN
      | _ -> ignore (ident st));
      (match peek st with
      | Lexer.DESC, _ ->
          advance st;
          Some Ast.Desc
      | Lexer.ASC, _ ->
          advance st;
          Some Ast.Asc
      | _ -> Some Ast.Desc)
  | _ -> None

let limit_clause st =
  match peek st with
  | Lexer.LIMIT, _ -> (
      advance st;
      match peek st with
      | Lexer.INT k, _ ->
          advance st;
          Some k
      | tok, pos ->
          fail pos (Fmt.str "expected an integer, found %a" Lexer.pp_token tok))
  | _ -> None

let parse input =
  match Lexer.tokenize input with
  | Error (e : Lexer.error) -> Error { pos = e.pos; message = e.message }
  | Ok tokens -> (
      let st = { tokens } in
      try
        expect st Lexer.SELECT;
        let agg, group_by_select = select_clause st in
        expect st Lexer.FROM;
        let table = ident st in
        let where = where_clause st in
        let group_by = group_clause st in
        let order = order_clause st in
        let limit = limit_clause st in
        expect st Lexer.EOF;
        (* The projected attributes and GROUP BY must agree when both are
           present, and SUM/AVG do not group. *)
        let group_by =
          match (group_by_select, group_by) with
          | [], g -> g
          | g, [] -> g
          | g1, g2 when g1 = g2 -> g1
          | _, _ ->
              fail 0 "SELECT attributes and GROUP BY attributes differ"
        in
        if agg <> Ast.Count && group_by <> [] then
          fail 0 "SUM/AVG do not support GROUP BY";
        Ok { Ast.table; agg; group_by; where; order; limit }
      with Parse_failure e -> Error e)
