(* Translation of parsed queries into engine form.

   Attribute names resolve against the schema; raw values map to domain
   indices through the attribute's binning.  A value outside the active
   domain yields an empty restriction — the query is answerable (count 0),
   matching the semantics of querying for data that cannot exist. *)

open Edb_util
open Edb_storage

type error = { message : string }

let pp_error ppf e = Fmt.string ppf e.message

type aggregate = Count | Sum of int | Avg of int

type compiled = {
  disjuncts : Predicate.t list;
      (* non-empty; a single tautology when there is no WHERE clause *)
  aggregate : aggregate;
  group_attrs : int list;
  order : Ast.order option;
  limit : int option;
}

(* The single conjunctive predicate of a non-OR query, which is what the
   summary's primitive evaluation and the GROUP BY path consume. *)
let conjunctive c = match c.disjuncts with [ p ] -> Some p | _ -> None

let err fmt = Fmt.kstr (fun message -> Error { message }) fmt

(* Levenshtein distance, case-insensitive: typo suggestions should treat
   "State" and "state" as one edit apart from "sttae", not four. *)
let edit_distance a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <-
        min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggestion schema name =
  let best =
    List.fold_left
      (fun acc cand ->
        let d = edit_distance name cand in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (cand, d))
      None (Schema.names schema)
  in
  match best with
  | Some (cand, d) when d <= max 2 (String.length name / 3) -> Some cand
  | _ -> None

let resolve_attr schema name =
  match Schema.find schema name with
  | Some i -> Ok i
  | None -> (
      match suggestion schema name with
      | Some cand -> err "unknown attribute %s (did you mean %s?)" name cand
      | None -> err "unknown attribute %s" name)

(* Map one raw value to its domain index; None when outside the domain. *)
let value_index schema attr (v : Ast.value) =
  let domain = Schema.domain schema attr in
  match (Domain.spec domain, v) with
  | Domain.Categorical _, Ast.Vstr s -> Ok (Domain.index_of_label domain s)
  | Domain.Categorical _, _ ->
      err "attribute %s is categorical; use a quoted string"
        (Schema.attr_name schema attr)
  | Domain.Int_bins _, Ast.Vint i -> Ok (Domain.index_of_int domain i)
  | Domain.Int_bins _, Ast.Vfloat f ->
      Ok (Domain.index_of_int domain (int_of_float f))
  | Domain.Int_bins _, Ast.Vstr _ ->
      err "attribute %s is numeric; remove the quotes"
        (Schema.attr_name schema attr)
  | Domain.Float_bins _, Ast.Vfloat f -> Ok (Domain.index_of_float domain f)
  | Domain.Float_bins _, Ast.Vint i ->
      Ok (Domain.index_of_float domain (float_of_int i))
  | Domain.Float_bins _, Ast.Vstr _ ->
      err "attribute %s is numeric; remove the quotes"
        (Schema.attr_name schema attr)

let ( let* ) r f = Result.bind r f

let condition_ranges schema cond =
  match cond with
  | Ast.Eq (name, v) ->
      let* attr = resolve_attr schema name in
      let* idx = value_index schema attr v in
      let range =
        match idx with Some i -> Ranges.singleton i | None -> Ranges.empty
      in
      Ok (attr, range)
  | Ast.Neq (name, v) ->
      let* attr = resolve_attr schema name in
      let* idx = value_index schema attr v in
      let size = Schema.domain_size schema attr in
      let range =
        match idx with
        | Some i -> Ranges.complement ~size (Ranges.singleton i)
        | None -> Ranges.interval 0 (size - 1) (* excluding nothing *)
      in
      Ok (attr, range)
  | Ast.Between (name, lo, hi) ->
      let* attr = resolve_attr schema name in
      let* lo_idx = value_index schema attr lo in
      let* hi_idx = value_index schema attr hi in
      let size = Schema.domain_size schema attr in
      (* Clamp open ends: a range reaching outside the active domain still
         covers the bins inside it. *)
      let lo_bin = Option.value lo_idx ~default:0 in
      let hi_bin = Option.value hi_idx ~default:(size - 1) in
      if lo_bin > hi_bin then Ok (attr, Ranges.empty)
      else Ok (attr, Ranges.interval lo_bin hi_bin)
  | Ast.In_set (name, vs) ->
      let* attr = resolve_attr schema name in
      let* indices =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* idx = value_index schema attr v in
            Ok (match idx with Some i -> i :: acc | None -> acc))
          (Ok []) vs
      in
      Ok (attr, Ranges.of_list indices)

let compile_conjunction schema conds =
  let* pairs =
    List.fold_left
      (fun acc cond ->
        let* acc = acc in
        let* pair = condition_ranges schema cond in
        Ok (pair :: acc))
      (Ok []) conds
  in
  Ok (Predicate.of_alist ~arity:(Schema.arity schema) pairs)

let compile schema (q : Ast.t) =
  let* disjuncts =
    match q.where with
    | [] -> Ok [ Predicate.tautology (Schema.arity schema) ]
    | conjs ->
        List.fold_left
          (fun acc conj ->
            let* acc = acc in
            let* p = compile_conjunction schema conj in
            Ok (p :: acc))
          (Ok []) conjs
        |> Result.map List.rev
  in
  let* group_attrs =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* attr = resolve_attr schema name in
        Ok (attr :: acc))
      (Ok []) q.group_by
  in
  let numeric_attr name =
    let* attr = resolve_attr schema name in
    match Domain.spec (Schema.domain schema attr) with
    | Domain.Categorical _ ->
        err "cannot aggregate over categorical attribute %s" name
    | Domain.Int_bins _ | Domain.Float_bins _ -> Ok attr
  in
  let* aggregate =
    match q.agg with
    | Ast.Count -> Ok Count
    | Ast.Sum name ->
        let* attr = numeric_attr name in
        Ok (Sum attr)
    | Ast.Avg name ->
        let* attr = numeric_attr name in
        Ok (Avg attr)
  in
  let* () =
    if List.length disjuncts > 1 then begin
      if group_attrs <> [] then err "GROUP BY does not support OR"
      else if aggregate <> Count then err "SUM/AVG do not support OR"
      else if List.length disjuncts > 10 then
        err "too many OR branches (max 10)"
      else Ok ()
    end
    else Ok ()
  in
  Ok
    {
      disjuncts;
      aggregate;
      group_attrs = List.rev group_attrs;
      order = q.order;
      limit = q.limit;
    }

let compile_string schema input =
  match Parser.parse input with
  | Error e -> err "%a" Parser.pp_error e
  | Ok ast -> compile schema ast
