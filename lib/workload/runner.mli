(** Experiment runner: per-method average relative error, F measure, and
    latency over a workload — the quantities the paper's figures plot. *)

type error_result = {
  method_name : string;
  avg_error : float;
  errors : float array;
  avg_seconds : float;
  max_seconds : float;
}

val run_errors :
  Methods.t -> arity:int -> attrs:int list -> queries:(int list * int) list ->
  error_result
(** [queries] pairs value combinations with their true counts. *)

val run_errors_all :
  Methods.t list -> arity:int -> attrs:int list ->
  queries:(int list * int) list -> error_result list

type f_result = {
  f_method : string;
  f_measure : float;
  f_precision : float;
  f_recall : float;
}

val run_f :
  Methods.t -> arity:int -> attrs:int list ->
  light:(int list * int) list -> nulls:int list list -> f_result

val run_f_all :
  Methods.t list -> arity:int -> attrs:int list ->
  light:(int list * int) list -> nulls:int list list -> f_result list

val error_differences :
  reference:string -> error_result list -> (string * float) list
(** Per-method [avg_error − reference's avg_error], as in Fig. 5 (positive
    = reference wins).  Raises if the reference method is absent. *)

type standard_report = {
  report_attrs : int list;
  workload : Hitters.workload;  (** the generated workload itself *)
  heavy : error_result list;  (** one per method, input order *)
  light : error_result list;
  f : f_result list;
}

val run_standard :
  seed:int ->
  Edb_storage.Relation.t ->
  Methods.t list ->
  attrs:int list ->
  num_hitters:int ->
  num_nulls:int ->
  standard_report
(** Build the standard workload ({!Hitters.standard}) for [attrs] and
    evaluate every method on it.  The workload's PRNG is derived from
    [seed] {e and} [attrs], so each attribute set's workload is a pure
    function of the two — independent of how many streams any other
    caller consumed first (running attribute sets in a different order,
    or skipping one, changes nothing else). *)
