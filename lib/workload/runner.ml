(* Experiment runner: evaluates a set of methods on a workload and collects
   the exact numbers the paper's figures plot — average relative error per
   method (Figs. 2b, 5, 7, 8a), F measures (Figs. 6, 8b), and per-query
   latency (Fig. 7). *)

open Edb_util

type error_result = {
  method_name : string;
  avg_error : float;
  errors : float array; (* per query, workload order *)
  avg_seconds : float;
  max_seconds : float;
}

(* Evaluate one method on point queries with known truths. *)
let run_errors method_ ~arity ~attrs ~queries =
  let times = Array.make (max 1 (List.length queries)) 0. in
  let errors =
    List.mapi
      (fun idx (values, truth) ->
        let pred = Hitters.to_predicate ~arity ~attrs values in
        let est, dt = Timing.time (fun () -> Methods.estimate method_ pred) in
        times.(idx) <- dt;
        Metrics.rel_error ~truth:(float_of_int truth) ~est)
      queries
  in
  let errors = Array.of_list errors in
  {
    method_name = Methods.name method_;
    avg_error = Floatx.mean errors;
    errors;
    avg_seconds = Floatx.mean times;
    max_seconds = Array.fold_left Float.max 0. times;
  }

let run_errors_all methods ~arity ~attrs ~queries =
  List.map (fun m -> run_errors m ~arity ~attrs ~queries) methods

type f_result = {
  f_method : string;
  f_measure : float;
  f_precision : float;
  f_recall : float;
}

(* F measure of one method on a light-hitters + nulls workload. *)
let run_f method_ ~arity ~attrs ~light ~nulls =
  let estimate values =
    Methods.estimate method_ (Hitters.to_predicate ~arity ~attrs values)
  in
  let light_estimates = List.map (fun (values, _) -> estimate values) light in
  let null_estimates = List.map estimate nulls in
  let c = Metrics.classify ~light_estimates ~null_estimates in
  {
    f_method = Methods.name method_;
    f_measure = Metrics.f_measure c;
    f_precision = Metrics.precision c;
    f_recall = Metrics.recall c;
  }

let run_f_all methods ~arity ~attrs ~light ~nulls =
  List.map (fun m -> run_f m ~arity ~attrs ~light ~nulls) methods

(* Error *differences* against a reference method, as plotted in Fig. 5
   (positive bar = reference is better). *)
let error_differences ~reference results =
  let ref_result =
    match
      List.find_opt (fun r -> r.method_name = reference) results
    with
    | Some r -> r
    | None -> invalid_arg ("Runner.error_differences: no method " ^ reference)
  in
  List.filter_map
    (fun r ->
      if r.method_name = reference then None
      else Some (r.method_name, r.avg_error -. ref_result.avg_error))
    results

type standard_report = {
  report_attrs : int list;
  workload : Hitters.workload;
  heavy : error_result list;
  light : error_result list;
  f : f_result list;
}

let run_standard ~seed rel methods ~attrs ~num_hitters ~num_nulls =
  (* Mix the attribute set into the seed so every set gets its own
     stream: evaluation order and shared-rng drift cannot change a
     workload. *)
  let rng =
    Prng.create
      ~seed:(List.fold_left (fun acc i -> (acc * 31) + i + 1) seed attrs)
      ()
  in
  let arity = Edb_storage.Schema.arity (Edb_storage.Relation.schema rel) in
  let w = Hitters.standard rng rel ~attrs ~num_hitters ~num_nulls in
  {
    report_attrs = attrs;
    workload = w;
    heavy = run_errors_all methods ~arity ~attrs ~queries:w.Hitters.heavy;
    light = run_errors_all methods ~arity ~attrs ~queries:w.Hitters.light;
    f = run_f_all methods ~arity ~attrs ~light:w.Hitters.light ~nulls:w.Hitters.nulls;
  }
