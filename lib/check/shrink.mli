(** Greedy spec minimization: once a check fails, shrink the case to the
    smallest spec that still fails the {e same} check, so the repro line
    in the report is as readable as possible. *)

val minimize : Oracle.config -> check:string -> Gen.spec -> Gen.spec
(** Repeatedly tries size-reducing mutations of the spec (fewer rows,
    one shard, no joints, product data, fewer attributes, smaller
    domains), keeping a mutation whenever {!Oracle.run} restricted to
    [check] still reports a finding for it.  Deterministic; bounded by a
    fixed fuel, so it terminates even when every mutation keeps
    failing. *)
