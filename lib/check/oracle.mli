(** The oracle battery: every answer path cross-checked against every
    other path, against enumeration ground truth, and against model-free
    invariants.

    Three tiers:

    - {b exact}: estimates vs the relation's exact counts, within a
      statistical tolerance derived from the summary's own stddev
      ([z] sigmas plus an absolute floor).  Only run on product-mode
      data, where the MaxEnt model family contains the generating
      distribution — on mixture data a violation would be model error,
      not a bug.
    - {b differential}: independently-built answer paths must agree —
      compressed polynomial vs {!Entropydb_core.Bruteforce} enumeration,
      flat vs k=1 sharded (bitwise), batched GROUP BY vs per-cell
      evaluation, serialize/store round-trips, cached vs uncached, and
      the server over a Unix socket vs the library call.
    - {b metamorphic}: invariants needing no ground truth — monotonicity
      under predicate widening, GROUP BY cells summing to the
      unrestricted total, partition-of-domain additivity, conjunction
      idempotence, unsatisfiable queries evaluating to exactly 0, and
      inclusion–exclusion bounds (all consequences of Sec. 4.2's
      zeroing evaluation rule). *)

type tier = Exact | Differential | Metamorphic

val tier_name : tier -> string

type config = {
  z : float;  (** exact tier: allowed deviation in model stddevs *)
  exact_atol : float;  (** exact tier: absolute slack in rows *)
  rtol_hard : float;
      (** float-reassociation tolerance for paths computing the same
          quantity by different summation orders (default 1e-9) *)
  rtol_bf : float;
      (** compressed polynomial vs brute-force enumeration (default
          1e-6: the paths differ in factorization, not just order) *)
  server : bool;  (** spin an in-process socket server per case *)
}

val default : config

type finding = {
  check : string;  (** oracle name, e.g. ["groupby-batched-vs-naive"] *)
  tier : tier;
  seed : int;
  detail : string;
}

type result = {
  findings : finding list;
  checks_run : int;  (** individual assertions evaluated *)
  max_exact_sigma : float;
      (** worst exact-tier deviation in stddevs; tolerance headroom *)
}

val check_names : string list

val run : ?only:string -> config -> Gen.spec -> result
(** Build the spec's case and run the battery ([only] restricts to one
    named check — the shrinker's re-run entry point).  A crash during
    the build becomes a ["build"] finding, and a crash inside a check
    becomes a finding for that check; [run] never raises. *)
