(** A materialized harness case: the spec's relation, its summaries on
    every build path, and its query workload. *)

open Edb_storage
open Entropydb_core

type t = {
  spec : Gen.spec;
  rel : Relation.t;
  joints : Predicate.t list;
  summary : Summary.t;  (** flat build *)
  sharded : Edb_shard.Sharded.t;
      (** the spec's shard count/strategy ([Sharded.of_flat] at k = 1) *)
  queries : Predicate.t list;
}

val quiet : Solver.config
(** The default solver config with logging off. *)

val build : Gen.spec -> t
(** Deterministic in the spec.  Raises whatever the underlying builders
    raise; {!Oracle.run} converts that into a finding. *)
