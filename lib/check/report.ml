open Edb_util

let repro_line (spec : Gen.spec) =
  Printf.sprintf "entropydb check --replay %d" spec.Gen.seed

let pp_finding ppf ((spec : Gen.spec), (f : Oracle.finding)) =
  Fmt.pf ppf "@[<v 2>FAIL %s [%s] (seed %d)@,%s@,shrunk to: %a@,repro: %s@]"
    f.Oracle.check
    (Oracle.tier_name f.Oracle.tier)
    f.Oracle.seed f.Oracle.detail Gen.pp_spec spec (repro_line spec)

let spec_json (s : Gen.spec) =
  Json.Obj
    [
      ("seed", Json.Int s.Gen.seed);
      ("sizes", Json.List (List.map (fun n -> Json.Int n) s.sizes));
      ("rows", Json.Int s.rows);
      ( "mode",
        Json.Str
          (match s.mode with Gen.Product -> "product" | Gen.Mixture -> "mixture")
      );
      ("with_joints", Json.Bool s.with_joints);
      ("shards", Json.Int s.shards);
      ( "shard_by",
        Json.Str
          (match s.shard_by with
          | `Rows -> "rows"
          | `Attr i -> Printf.sprintf "attr:%d" i) );
    ]

let finding_json ((spec : Gen.spec), (f : Oracle.finding)) =
  Json.Obj
    [
      ("check", Json.Str f.Oracle.check);
      ("tier", Json.Str (Oracle.tier_name f.Oracle.tier));
      ("seed", Json.Int f.Oracle.seed);
      ("detail", Json.Str f.Oracle.detail);
      ("shrunk_spec", spec_json spec);
      ("repro", Json.Str (repro_line spec));
    ]
