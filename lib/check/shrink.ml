(* Greedy descent over spec mutations.  Each candidate strictly reduces
   some size measure, so accepting one never enlarges the case; the fuel
   bound caps the total number of oracle re-runs. *)

let still_fails cfg ~check spec =
  let r = Oracle.run ~only:check cfg spec in
  List.exists (fun (f : Oracle.finding) -> f.check = check) r.Oracle.findings

(* Size-reducing candidate mutations of a spec, in preference order:
   the earlier ones remove whole subsystems from the repro. *)
let candidates (s : Gen.spec) =
  let open Gen in
  let halve_rows =
    if s.rows > 10 then [ { s with rows = Stdlib.max 10 (s.rows / 2) } ]
    else []
  in
  let drop_shards =
    if s.shards > 1 || s.shard_by <> `Rows then
      [ { s with shards = 1; shard_by = `Rows } ]
    else []
  in
  let drop_joints = if s.with_joints then [ { s with with_joints = false } ] else [] in
  let to_product = if s.mode <> Product then [ { s with mode = Product } ] else [] in
  let drop_attr =
    if List.length s.sizes > 2 then begin
      let sizes = List.filteri (fun i _ -> i < List.length s.sizes - 1) s.sizes in
      let shard_by =
        match s.shard_by with
        | `Attr i when i >= List.length sizes -> `Rows
        | sb -> sb
      in
      [ { s with sizes; shard_by } ]
    end
    else []
  in
  let halve_domains =
    if List.exists (fun n -> n > 2) s.sizes then
      [ { s with sizes = List.map (fun n -> Stdlib.max 2 (n / 2)) s.sizes } ]
    else []
  in
  drop_shards @ drop_joints @ to_product @ halve_rows @ drop_attr
  @ halve_domains

let minimize cfg ~check spec =
  let fuel = ref 40 in
  let rec go spec =
    if !fuel <= 0 then spec
    else
      match
        List.find_opt
          (fun c ->
            decr fuel;
            !fuel >= 0 && still_fails cfg ~check c)
          (candidates spec)
      with
      | Some smaller -> go smaller
      | None -> spec
  in
  go spec
