open Edb_util

type budget = Smoke | Default | Deep

let budget_of_string = function
  | "smoke" -> Ok Smoke
  | "default" -> Ok Default
  | "deep" -> Ok Deep
  | s -> Error (Printf.sprintf "unknown budget %S (smoke|default|deep)" s)

let budget_name = function
  | Smoke -> "smoke"
  | Default -> "default"
  | Deep -> "deep"

let cases_of_budget = function Smoke -> 12 | Default -> 48 | Deep -> 200

type outcome = {
  cases : int;
  checks_run : int;
  findings : (Gen.spec * Oracle.finding) list;
  max_exact_sigma : float;
}

let run_seeds ?(config = Oracle.default) seeds =
  let outcome =
    List.fold_left
      (fun acc seed ->
        let spec = Gen.spec_of_seed seed in
        let r = Oracle.run config spec in
        let shrunk =
          List.map
            (fun (f : Oracle.finding) ->
              (Shrink.minimize config ~check:f.Oracle.check spec, f))
            r.Oracle.findings
        in
        {
          cases = acc.cases + 1;
          checks_run = acc.checks_run + r.Oracle.checks_run;
          findings = acc.findings @ shrunk;
          max_exact_sigma =
            Float.max acc.max_exact_sigma r.Oracle.max_exact_sigma;
        })
      { cases = 0; checks_run = 0; findings = []; max_exact_sigma = 0. }
      seeds
  in
  outcome

let run ?config ?(base_seed = 1000) budget =
  run_seeds ?config (List.init (cases_of_budget budget) (fun i -> base_seed + i))

let replay ?config seed = run_seeds ?config [ seed ]

let print_outcome o =
  List.iter (fun pair -> Fmt.pr "%a@." Report.pp_finding pair) o.findings;
  Fmt.pr "check: %d cases, %d assertions, %d findings, max exact sigma %.2f@."
    o.cases o.checks_run (List.length o.findings) o.max_exact_sigma

let outcome_json o =
  Json.Obj
    [
      ("cases", Json.Int o.cases);
      ("checks_run", Json.Int o.checks_run);
      ("num_findings", Json.Int (List.length o.findings));
      ("findings", Json.List (List.map Report.finding_json o.findings));
      ("max_exact_sigma", Json.Float o.max_exact_sigma);
    ]
