(* Case generation: every random choice flows from the spec's seed
   through fixed-purpose streams, so a case is a pure function of its
   spec and a spec is a pure function of its seed. *)

open Edb_util
open Edb_storage

type data_mode = Product | Mixture

type spec = {
  seed : int;
  sizes : int list;
  rows : int;
  mode : data_mode;
  with_joints : bool;
  shards : int;
  shard_by : [ `Rows | `Attr of int ];
}

let spec_of_seed seed =
  let rng = Prng.create ~seed () in
  let arity = Prng.int_in rng 2 4 in
  let sizes = List.init arity (fun _ -> Prng.int_in rng 2 8) in
  let rows = Prng.int_in rng 30 400 in
  let mode = if Prng.unit_float rng < 0.5 then Product else Mixture in
  let with_joints = Prng.unit_float rng < 0.6 in
  let shards = Prng.int_in rng 1 3 in
  let shard_by =
    if Prng.unit_float rng < 0.7 then `Rows else `Attr (Prng.int rng arity)
  in
  { seed; sizes; rows; mode; with_joints; shards; shard_by }

let pp_spec ppf s =
  Fmt.pf ppf
    "seed=%d sizes=[%s] rows=%d mode=%s joints=%b shards=%d shard_by=%s"
    s.seed
    (String.concat ";" (List.map string_of_int s.sizes))
    s.rows
    (match s.mode with Product -> "product" | Mixture -> "mixture")
    s.with_joints s.shards
    (match s.shard_by with
    | `Rows -> "rows"
    | `Attr i -> Printf.sprintf "attr:%d" i)

(* One disjoint family of two 2D range statistics over attributes 0 and 1
   (every generated schema has arity >= 2 and domain sizes >= 2). *)
let joints spec schema =
  if not spec.with_joints then []
  else begin
    let arity = Schema.arity schema in
    let sa = Schema.domain_size schema 0 in
    let sb = Schema.domain_size schema 1 in
    let ha = (sa - 1) / 2 in
    let hb = (sb - 1) / 2 in
    [
      Predicate.of_alist ~arity
        [ (0, Ranges.interval 0 ha); (1, Ranges.interval 0 hb) ];
      Predicate.of_alist ~arity
        [
          (0, Ranges.interval (ha + 1) (sa - 1));
          (1, Ranges.interval (hb + 1) (sb - 1));
        ];
    ]
  end

let random_range rng size =
  let r = Prng.unit_float rng in
  if r < 0.4 || size = 1 then Ranges.singleton (Prng.int rng size)
  else if r < 0.8 then begin
    let lo = Prng.int rng size in
    let hi = Prng.int_in rng lo (size - 1) in
    Ranges.interval lo hi
  end
  else
    Ranges.union
      (Ranges.singleton (Prng.int rng size))
      (Ranges.singleton (Prng.int rng size))

let random_predicate rng schema =
  let arity = Schema.arity schema in
  let pairs =
    List.filter_map
      (fun i ->
        if Prng.unit_float rng < 0.55 then
          Some (i, random_range rng (Schema.domain_size schema i))
        else None)
      (List.init arity Fun.id)
  in
  Predicate.of_alist ~arity pairs

(* Distinct derived streams so adding queries never perturbs the
   disjunction workload and vice versa. *)
let stream spec salt = Prng.create ~seed:(spec.seed + salt) ()

let num_queries = 6

let queries spec schema =
  let rng = stream spec 0x51ab in
  List.init num_queries (fun _ -> random_predicate rng schema)

let group_attr_sets spec schema =
  let rng = stream spec 0x77cd in
  let arity = Schema.arity schema in
  let one = [ Prng.int rng arity ] in
  if arity < 2 then [ one ]
  else begin
    let a = Prng.int rng arity in
    let b = (a + 1 + Prng.int rng (arity - 1)) mod arity in
    [ one; [ a; b ] ]
  end

let disjunctions spec schema =
  let rng = stream spec 0x1c39 in
  List.init 3 (fun _ ->
      let d = Prng.int_in rng 2 3 in
      List.init d (fun _ -> random_predicate rng schema))
