open Edb_storage
open Entropydb_core

type t = {
  spec : Gen.spec;
  rel : Relation.t;
  joints : Predicate.t list;
  summary : Summary.t;
  sharded : Edb_shard.Sharded.t;
  queries : Predicate.t list;
}

let quiet = { Solver.default_config with log_every = 0 }

let build (spec : Gen.spec) =
  let mode =
    match spec.Gen.mode with
    | Gen.Product -> Edb_datagen.Synthetic.Product
    | Gen.Mixture -> Edb_datagen.Synthetic.Mixture 2
  in
  (* An offset seed keeps the data stream distinct from the spec-field
     stream, which consumed the raw seed already. *)
  let rel =
    Edb_datagen.Synthetic.generate ~sizes:spec.sizes ~rows:spec.rows ~mode
      ~seed:(spec.seed + 7919)
  in
  let schema = Relation.schema rel in
  let joints = Gen.joints spec schema in
  let summary = Summary.build ~solver_config:quiet rel ~joints in
  let sharded =
    if spec.shards = 1 then Edb_shard.Sharded.of_flat summary
    else begin
      let strategy =
        match spec.shard_by with
        | `Rows -> Edb_shard.Partition.Rows
        | `Attr i -> Edb_shard.Partition.By_attr i
      in
      Edb_shard.Builder.build ~solver_config:quiet rel ~shards:spec.shards
        ~strategy ~joints
    end
  in
  let queries = Gen.queries spec schema in
  { spec; rel; joints; summary; sharded; queries }
