(* The oracle battery.  Each check is a named function over a built case;
   failures accumulate as findings instead of raising, so one bad case
   reports every violated invariant at once and the shrinker can re-run a
   single named check cheaply. *)

open Edb_util
open Edb_storage
open Entropydb_core

type tier = Exact | Differential | Metamorphic

let tier_name = function
  | Exact -> "exact"
  | Differential -> "differential"
  | Metamorphic -> "metamorphic"

type config = {
  z : float;
  exact_atol : float;
  rtol_hard : float;
  rtol_bf : float;
  server : bool;
}

let default =
  { z = 6.; exact_atol = 3.; rtol_hard = 1e-9; rtol_bf = 1e-6; server = false }

type finding = { check : string; tier : tier; seed : int; detail : string }

type result = {
  findings : finding list;
  checks_run : int;
  max_exact_sigma : float;
}

type ctx = {
  cfg : config;
  case : Case.t;
  mutable findings : finding list;
  mutable checks : int;
  mutable max_sigma : float;
  mutable bf : (Bruteforce.t * float array) option;
}

let fail ctx ~check ~tier fmt =
  Fmt.kstr
    (fun detail ->
      ctx.findings <-
        { check; tier; seed = ctx.case.Case.spec.Gen.seed; detail }
        :: ctx.findings)
    fmt

let tally ctx = ctx.checks <- ctx.checks + 1
let nf ctx = float_of_int (Summary.cardinality ctx.case.Case.summary)

(* Tolerance for paths that compute the same quantity with a different
   summation order: relative in the magnitudes, absolute in the
   cardinality (cancellation near zero is benign at the n-th digit). *)
let approx ctx a b =
  Floatx.approx_eq ~rtol:ctx.cfg.rtol_hard
    ~atol:(ctx.cfg.rtol_hard *. (nf ctx +. 1.))
    a b

let slack ctx = ctx.cfg.rtol_hard *. (nf ctx +. 1.)

let bruteforce ctx =
  match ctx.bf with
  | Some pair -> pair
  | None ->
      let poly = Summary.poly ctx.case.Case.summary in
      let pair = (Bruteforce.create (Poly.phi poly), Poly.alphas poly) in
      ctx.bf <- Some pair;
      pair

let schema ctx = Relation.schema ctx.case.Case.rel

(* The predicate with one attribute's restriction removed. *)
let widen q i =
  let arity = Predicate.arity q in
  Predicate.of_alist ~arity
    (List.filter_map
       (fun j ->
         if j = i then None
         else Option.map (fun r -> (j, r)) (Predicate.restriction q j))
       (List.init arity Fun.id))

(* Split a query's (possibly implicit) restriction on [i] into two
   nonempty halves; None when it has fewer than two values. *)
let split_restriction ctx q i =
  let r =
    match Predicate.restriction q i with
    | Some r -> r
    | None -> Ranges.interval 0 (Schema.domain_size (schema ctx) i - 1)
  in
  let vs = Ranges.to_list r in
  if List.length vs < 2 then None
  else begin
    let k = List.length vs / 2 in
    let lo = List.filteri (fun idx _ -> idx < k) vs in
    let hi = List.filteri (fun idx _ -> idx >= k) vs in
    Some (Ranges.of_list lo, Ranges.of_list hi)
  end

(* ------------------------------------------------------------------ *)
(* Differential tier                                                   *)
(* ------------------------------------------------------------------ *)

let c_bruteforce_estimate ctx =
  let bf, alphas = bruteforce ctx in
  let s = ctx.case.Case.summary in
  List.iter
    (fun q ->
      tally ctx;
      let fast = Summary.estimate s q in
      let slow = Bruteforce.estimate bf alphas q in
      if not (Floatx.approx_eq ~rtol:ctx.cfg.rtol_bf ~atol:1e-6 fast slow)
      then
        fail ctx ~check:"bruteforce-estimate" ~tier:Differential
          "poly %.12g vs enumeration %.12g on %a" fast slow Predicate.pp q)
    ctx.case.Case.queries

let c_bruteforce_variance ctx =
  let bf, alphas = bruteforce ctx in
  let s = ctx.case.Case.summary in
  let n = nf ctx in
  let probs = Bruteforce.tuple_probabilities bf alphas in
  List.iter
    (fun q ->
      tally ctx;
      let fast = Summary.variance s q in
      let p = ref 0. in
      Array.iteri
        (fun idx pr ->
          if Predicate.matches_row q (Bruteforce.tuple bf idx) then
            p := !p +. pr)
        probs;
      let p = Floatx.clamp ~lo:0. ~hi:1. !p in
      let slow = n *. p *. (1. -. p) in
      if not (Floatx.approx_eq ~rtol:ctx.cfg.rtol_bf ~atol:1e-6 fast slow)
      then
        fail ctx ~check:"bruteforce-variance" ~tier:Differential
          "variance %.12g vs enumeration %.12g on %a" fast slow Predicate.pp q)
    ctx.case.Case.queries

let c_bruteforce_sum ctx =
  let bf, alphas = bruteforce ctx in
  let s = ctx.case.Case.summary in
  let sch = schema ctx in
  let attr = 0 in
  let domain = Schema.domain sch attr in
  let w v = Domain.bin_midpoint domain v in
  let p_total = Bruteforce.p bf alphas in
  List.iter
    (fun q ->
      tally ctx;
      let fast = Summary.estimate_sum s ~attr q in
      let slow =
        nf ctx *. Bruteforce.eval_weighted bf alphas q ~weights:[ (attr, w) ]
        /. p_total
      in
      if not (Floatx.approx_eq ~rtol:ctx.cfg.rtol_bf ~atol:1e-6 fast slow)
      then
        fail ctx ~check:"bruteforce-sum" ~tier:Differential
          "SUM(a0) %.12g vs enumeration %.12g on %a" fast slow Predicate.pp q)
    ctx.case.Case.queries

let c_flat_vs_k1 ctx =
  let s = ctx.case.Case.summary in
  let k1 = Edb_shard.Sharded.of_flat s in
  List.iter
    (fun q ->
      tally ctx;
      let a = Summary.estimate s q and b = Edb_shard.Sharded.estimate k1 q in
      if a <> b then
        fail ctx ~check:"flat-vs-k1" ~tier:Differential
          "estimate not bitwise: flat %.17g vs k=1 %.17g on %a" a b
          Predicate.pp q;
      tally ctx;
      let va = Summary.variance s q and vb = Edb_shard.Sharded.variance k1 q in
      if va <> vb then
        fail ctx ~check:"flat-vs-k1" ~tier:Differential
          "variance not bitwise: flat %.17g vs k=1 %.17g on %a" va vb
          Predicate.pp q)
    ctx.case.Case.queries;
  let attrs = List.hd (Gen.group_attr_sets ctx.case.Case.spec (schema ctx)) in
  let q = List.hd ctx.case.Case.queries in
  tally ctx;
  if
    Summary.estimate_groups_with_stddev s ~attrs q
    <> Edb_shard.Sharded.estimate_groups_with_stddev k1 ~attrs q
  then
    fail ctx ~check:"flat-vs-k1" ~tier:Differential
      "GROUP BY cells not bitwise at k=1 (attrs %a) on %a"
      Fmt.(Dump.list int)
      attrs Predicate.pp q

let c_shard_additivity ctx =
  let sh = ctx.case.Case.sharded in
  let shards = Edb_shard.Sharded.shards sh in
  List.iter
    (fun q ->
      tally ctx;
      let fan = Edb_shard.Sharded.estimate sh q in
      let sum =
        Array.fold_left (fun acc s -> acc +. Summary.estimate s q) 0. shards
      in
      if not (approx ctx fan sum) then
        fail ctx ~check:"shard-additivity" ~tier:Differential
          "fan-out %.12g vs per-shard sum %.12g (k=%d) on %a" fan sum
          (Array.length shards) Predicate.pp q)
    ctx.case.Case.queries;
  List.iter
    (fun d ->
      tally ctx;
      let fan = Edb_shard.Sharded.estimate_disjuncts sh d in
      let sum =
        Array.fold_left
          (fun acc s -> acc +. Disjunction.estimate s d)
          0. shards
      in
      if not (approx ctx fan sum) then
        fail ctx ~check:"shard-additivity" ~tier:Differential
          "disjunction fan-out %.12g vs per-shard sum %.12g" fan sum)
    (Gen.disjunctions ctx.case.Case.spec (schema ctx))

let naive_groups s ~attrs q =
  let sch = Summary.schema s in
  let values attr =
    match Predicate.restriction q attr with
    | Some r -> Ranges.to_list r
    | None -> List.init (Schema.domain_size sch attr) Fun.id
  in
  let rec keys = function
    | [] -> [ [] ]
    | a :: rest ->
        let tails = keys rest in
        List.concat_map
          (fun v -> List.map (fun t -> v :: t) tails)
          (values a)
  in
  List.map
    (fun key ->
      let cell_q =
        List.fold_left2
          (fun acc attr v -> Predicate.restrict acc attr (Ranges.singleton v))
          q attrs key
      in
      (key, Summary.estimate s cell_q))
    (keys attrs)

let c_groupby_batched_vs_naive ctx =
  let s = ctx.case.Case.summary in
  let sets = Gen.group_attr_sets ctx.case.Case.spec (schema ctx) in
  let queries = List.filteri (fun i _ -> i < 3) ctx.case.Case.queries in
  List.iter
    (fun attrs ->
      List.iter
        (fun q ->
          tally ctx;
          let batched = Summary.estimate_groups s ~attrs q in
          let naive = naive_groups s ~attrs q in
          if List.length batched <> List.length naive then
            fail ctx ~check:"groupby-batched-vs-naive" ~tier:Differential
              "cell count %d vs %d (attrs %a) on %a" (List.length batched)
              (List.length naive)
              Fmt.(Dump.list int)
              attrs Predicate.pp q
          else
            List.iter2
              (fun (bk, bv) (nk, nv) ->
                if bk <> nk then
                  fail ctx ~check:"groupby-batched-vs-naive"
                    ~tier:Differential "cell key %a vs %a on %a"
                    Fmt.(Dump.list int)
                    bk
                    Fmt.(Dump.list int)
                    nk Predicate.pp q
                else if not (approx ctx bv nv) then
                  fail ctx ~check:"groupby-batched-vs-naive"
                    ~tier:Differential
                    "cell %a: batched %.12g vs per-cell %.12g on %a"
                    Fmt.(Dump.list int)
                    bk bv nv Predicate.pp q)
              batched naive)
        queries)
    sets

(* The flat (SoA) kernel's internal contracts, checked from the outside:
   the into-buffer batched kernel is bitwise the allocating one; batched
   cells match per-value scalar evaluation; refresh is a pure function
   of the variable vector (a second refresh is a bitwise no-op, and a
   perturb/restore of one variable followed by refresh lands exactly
   where refresh alone did — incremental caches cannot leak state that a
   recompute would not reproduce). *)
let c_kernel_soa ctx =
  let s = ctx.case.Case.summary in
  let poly = Summary.poly s in
  let sch = schema ctx in
  let arity = Schema.arity sch in
  List.iteri
    (fun idx q ->
      let attr = idx mod arity in
      let size = Schema.domain_size sch attr in
      tally ctx;
      let vec = Poly.eval_restricted_by_value poly q ~attr in
      let out = Array.make size nan in
      Poly.eval_restricted_by_value_into poly q ~attr ~out;
      if vec <> out then
        fail ctx ~check:"kernel-soa" ~tier:Differential
          "into-buffer kernel not bitwise with allocating kernel (attr %d) \
           on %a"
          attr Predicate.pp q;
      for v = 0 to size - 1 do
        tally ctx;
        let scalar =
          Poly.eval_restricted poly
            (Predicate.restrict q attr (Ranges.singleton v))
        in
        if not (Floatx.approx_eq ~rtol:ctx.cfg.rtol_hard ~atol:(slack ctx) vec.(v) scalar)
        then
          fail ctx ~check:"kernel-soa" ~tier:Differential
            "by-value cell %d: batched %.12g vs scalar %.12g (attr %d) on %a"
            v vec.(v) scalar attr Predicate.pp q
      done)
    ctx.case.Case.queries;
  let est_all () =
    List.map (fun q -> Poly.eval_restricted poly q) ctx.case.Case.queries
  in
  Poly.refresh poly;
  let base = est_all () in
  tally ctx;
  Poly.refresh poly;
  if est_all () <> base then
    fail ctx ~check:"kernel-soa" ~tier:Metamorphic
      "second refresh moved restricted evaluations";
  tally ctx;
  let j = 0 in
  let a = Poly.alpha poly j in
  Poly.set_alpha poly j ((2. *. a) +. 0.125);
  Poly.set_alpha poly j a;
  Poly.refresh poly;
  if est_all () <> base then
    fail ctx ~check:"kernel-soa" ~tier:Metamorphic
      "perturb/restore/refresh of variable %d is not bitwise refresh" j

let temp_dir () =
  let path = Filename.temp_file "edb-check" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let c_serialize_roundtrip ctx =
  let s = ctx.case.Case.summary in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let flat_path = Filename.concat dir "flat.summary" in
      Serialize.save s flat_path;
      let s' = Serialize.load flat_path in
      let sh_path = Filename.concat dir "sharded.summary" in
      Edb_shard.Store.save ctx.case.Case.sharded sh_path;
      let sh' = Edb_shard.Store.load sh_path in
      List.iter
        (fun q ->
          tally ctx;
          let a = Summary.estimate s q and b = Summary.estimate s' q in
          if a <> b then
            fail ctx ~check:"serialize-roundtrip" ~tier:Differential
              "flat reload not bitwise: %.17g vs %.17g on %a" a b Predicate.pp
              q;
          tally ctx;
          let a = Edb_shard.Sharded.estimate ctx.case.Case.sharded q in
          let b = Edb_shard.Sharded.estimate sh' q in
          if a <> b then
            fail ctx ~check:"serialize-roundtrip" ~tier:Differential
              "sharded reload not bitwise: %.17g vs %.17g on %a" a b
              Predicate.pp q)
        ctx.case.Case.queries)

(* The mapped kernel promises bitwise equality with the heap kernel:
   same operations, same order, over the same bytes.  Exercise every
   estimator surface against the heap answers, check the v3 round-trip
   heap-loads to the same summary as the v2 round-trip, and that a
   close/reopen of the mapping changes nothing. *)
let c_mmap_v3 ctx =
  let s = ctx.case.Case.summary in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let v3_path = Filename.concat dir "v3.summary" in
      Serialize.save_v3 s v3_path;
      let m = Mapped.open_file v3_path in
      tally ctx;
      if Mapped.cardinality m <> Summary.cardinality s then
        fail ctx ~check:"mmap-v3" ~tier:Differential
          "mapped cardinality %d vs heap %d" (Mapped.cardinality m)
          (Summary.cardinality s);
      List.iter
        (fun q ->
          tally ctx;
          let h = Summary.estimate s q and mm = Mapped.estimate m q in
          if h <> mm then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "mapped estimate not bitwise: %.17g vs heap %.17g on %a" mm h
              Predicate.pp q;
          tally ctx;
          let hv, hvar = Summary.estimate_with_variance s q in
          let mv, mvar = Mapped.estimate_with_variance m q in
          if hv <> mv || hvar <> mvar then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "mapped (est, var) not bitwise: (%.17g, %.17g) vs (%.17g, \
               %.17g) on %a"
              mv mvar hv hvar Predicate.pp q;
          tally ctx;
          let hs = Summary.estimate_sum s ~attr:0 q in
          let ms = Mapped.estimate_sum m ~attr:0 q in
          if hs <> ms then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "mapped SUM not bitwise: %.17g vs heap %.17g on %a" ms hs
              Predicate.pp q;
          tally ctx;
          if Summary.variance_sum s ~attr:0 q <> Mapped.variance_sum m ~attr:0 q
          then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "mapped SUM variance differs from heap on %a" Predicate.pp q)
        ctx.case.Case.queries;
      let attrs =
        List.hd (Gen.group_attr_sets ctx.case.Case.spec (schema ctx))
      in
      let q0 = List.hd ctx.case.Case.queries in
      tally ctx;
      if
        Summary.estimate_groups_with_stddev s ~attrs q0
        <> Mapped.estimate_groups_with_stddev m ~attrs q0
      then
        fail ctx ~check:"mmap-v3" ~tier:Differential
          "mapped GROUP BY not bitwise on %a" Predicate.pp q0;
      List.iter
        (fun d ->
          tally ctx;
          let h = Disjunction.estimate s d in
          let mm = Mapped.estimate_disjuncts m d in
          if h <> mm then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "mapped disjunction not bitwise: %.17g vs heap %.17g" mm h)
        (Gen.disjunctions ctx.case.Case.spec (schema ctx));
      (* v3 heap-load round-trips to the same summary as the v2 path. *)
      let flat_path = Filename.concat dir "flat.summary" in
      Serialize.save s flat_path;
      let via_v2 = Serialize.load flat_path in
      let via_v3 = Serialize.load v3_path in
      List.iter
        (fun q ->
          tally ctx;
          let a = Summary.estimate via_v2 q and b = Summary.estimate via_v3 q in
          if a <> b then
            fail ctx ~check:"mmap-v3" ~tier:Differential
              "v3 heap-load differs from v2 round-trip: %.17g vs %.17g on %a"
              b a Predicate.pp q)
        ctx.case.Case.queries;
      (* Close/reopen idempotence: a second mapping of the same file
         answers identically to the first (and to the heap). *)
      let m2 = Mapped.open_file v3_path in
      Mapped.verify m2;
      List.iter
        (fun q ->
          tally ctx;
          if Mapped.estimate m q <> Mapped.estimate m2 q then
            fail ctx ~check:"mmap-v3" ~tier:Metamorphic
              "reopened mapping is not idempotent on %a" Predicate.pp q)
        ctx.case.Case.queries)

let c_cache_vs_uncached ctx =
  let s = ctx.case.Case.summary in
  let cache = Cache.create s in
  List.iter
    (fun q ->
      tally ctx;
      let direct = Summary.estimate s q in
      let miss = Cache.estimate cache q in
      let hit = Cache.estimate cache q in
      if miss <> direct || hit <> direct then
        fail ctx ~check:"cache-vs-uncached" ~tier:Differential
          "cache %.17g/%.17g vs direct %.17g on %a" miss hit direct
          Predicate.pp q)
    ctx.case.Case.queries;
  let attrs = List.hd (Gen.group_attr_sets ctx.case.Case.spec (schema ctx)) in
  let q = List.hd ctx.case.Case.queries in
  tally ctx;
  let direct = Summary.estimate_groups_with_stddev s ~attrs q in
  if
    Cache.estimate_groups cache ~attrs q <> direct
    || Cache.estimate_groups cache ~attrs q <> direct
  then
    fail ctx ~check:"cache-vs-uncached" ~tier:Differential
      "cached GROUP BY differs from direct on %a" Predicate.pp q

(* SQL rendering for the server path: only single-interval conjunctive
   restrictions are expressible in the query language's fragment. *)
let sql_of_query sch q =
  let arity = Schema.arity sch in
  let rec clauses i acc =
    if i = arity then Some (List.rev acc)
    else
      match Predicate.restriction q i with
      | None -> clauses (i + 1) acc
      | Some r -> (
          match Ranges.intervals r with
          | [ (lo, hi) ] when lo = hi ->
              clauses (i + 1)
                (Printf.sprintf "%s = %d" (Schema.attr_name sch i) lo :: acc)
          | [ (lo, hi) ] ->
              clauses (i + 1)
                (Printf.sprintf "%s IN [%d, %d]" (Schema.attr_name sch i) lo
                   hi
                :: acc)
          | _ -> None)
  in
  Option.map
    (fun cs ->
      match cs with
      | [] -> "SELECT COUNT(*) FROM R"
      | _ -> "SELECT COUNT(*) FROM R WHERE " ^ String.concat " AND " cs)
    (clauses 0 [])

let c_server_vs_library ctx =
  if not ctx.cfg.server then ()
  else begin
    let s = ctx.case.Case.summary in
    let dir = temp_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let path = Filename.concat dir "case.summary" in
        Serialize.save s path;
        let socket = Filename.concat dir "edb.sock" in
        let server =
          Edb_server.Server.create
            {
              Edb_server.Server.default_config with
              unix_socket = Some socket;
              workers = 2;
              queue_depth = 4;
              request_deadline = 30.;
              idle_timeout = 10.;
            }
        in
        Edb_server.Server.start server;
        Fun.protect
          ~finally:(fun () ->
            Edb_server.Server.stop server;
            Edb_server.Server.wait server)
          (fun () ->
            match
              Edb_server.Client.connect ~timeout:10.
                (Edb_server.Client.Unix_socket socket)
            with
            | Error m ->
                fail ctx ~check:"server-vs-library" ~tier:Differential
                  "connect failed: %s" m
            | Ok conn ->
                Fun.protect
                  ~finally:(fun () -> Edb_server.Client.close conn)
                  (fun () ->
                    match
                      Edb_server.Client.load conn ~name:"case" ~path
                    with
                    | Error m ->
                        fail ctx ~check:"server-vs-library" ~tier:Differential
                          "LOAD failed: %s" m
                    | Ok _ ->
                        List.iter
                          (fun q ->
                            match sql_of_query (schema ctx) q with
                            | None -> ()
                            | Some sql -> (
                                tally ctx;
                                let lib = Summary.estimate s q in
                                match
                                  Edb_server.Client.query conn ~name:"case"
                                    ~sql
                                with
                                | Error m ->
                                    fail ctx ~check:"server-vs-library"
                                      ~tier:Differential "%s failed: %s" sql m
                                | Ok payload -> (
                                    match
                                      Edb_server.Client.estimate_of_payload
                                        payload
                                    with
                                    | None ->
                                        fail ctx ~check:"server-vs-library"
                                          ~tier:Differential
                                          "%s: no estimate line" sql
                                    | Some v ->
                                        (* %.17g round-trips exactly, so
                                           the wire answer must equal the
                                           library's bitwise. *)
                                        if v <> lib then
                                          fail ctx ~check:"server-vs-library"
                                            ~tier:Differential
                                            "%s: wire %.17g vs library %.17g"
                                            sql v lib)))
                          ctx.case.Case.queries)))
  end

(* ------------------------------------------------------------------ *)
(* Metamorphic tier                                                    *)
(* ------------------------------------------------------------------ *)

let c_widening_monotonic ctx =
  let s = ctx.case.Case.summary in
  List.iter
    (fun q ->
      match Predicate.restricted_attrs q with
      | [] -> ()
      | i :: _ ->
          tally ctx;
          let narrow = Summary.estimate s q in
          let wide = Summary.estimate s (widen q i) in
          if wide < narrow -. slack ctx then
            fail ctx ~check:"widening-monotonic" ~tier:Metamorphic
              "widening attr %d shrank the estimate: %.12g -> %.12g on %a" i
              narrow wide Predicate.pp q)
    ctx.case.Case.queries

let c_groupby_total ctx =
  let s = ctx.case.Case.summary in
  let sets = Gen.group_attr_sets ctx.case.Case.spec (schema ctx) in
  List.iter
    (fun attrs ->
      List.iter
        (fun q ->
          tally ctx;
          let total = Summary.estimate s q in
          let cells =
            List.fold_left
              (fun acc (_, v) -> acc +. v)
              0.
              (Summary.estimate_groups s ~attrs q)
          in
          if not (approx ctx total cells) then
            fail ctx ~check:"groupby-total" ~tier:Metamorphic
              "cells sum to %.12g but estimate is %.12g (attrs %a) on %a"
              cells total
              Fmt.(Dump.list int)
              attrs Predicate.pp q)
        ctx.case.Case.queries)
    sets

let c_partition_additivity ctx =
  let s = ctx.case.Case.summary in
  let arity = Schema.arity (schema ctx) in
  List.iteri
    (fun idx q ->
      let i = idx mod arity in
      match split_restriction ctx q i with
      | None -> ()
      | Some (lo, hi) ->
          tally ctx;
          let whole = Summary.estimate s q in
          let parts =
            Summary.estimate s (Predicate.restrict q i lo)
            +. Summary.estimate s (Predicate.restrict q i hi)
          in
          if not (approx ctx whole parts) then
            fail ctx ~check:"partition-additivity" ~tier:Metamorphic
              "attr %d halves sum to %.12g but whole is %.12g on %a" i parts
              whole Predicate.pp q)
    ctx.case.Case.queries

let c_conj_idempotent ctx =
  let s = ctx.case.Case.summary in
  List.iter
    (fun q ->
      tally ctx;
      let qq = Predicate.conj q q in
      if not (Predicate.equal qq q) then
        fail ctx ~check:"conj-idempotent" ~tier:Metamorphic
          "conj q q <> q structurally on %a" Predicate.pp q
      else begin
        let a = Summary.estimate s q and b = Summary.estimate s qq in
        if a <> b then
          fail ctx ~check:"conj-idempotent" ~tier:Metamorphic
            "conj q q evaluates to %.17g vs %.17g on %a" b a Predicate.pp q
      end)
    ctx.case.Case.queries

(* Sec. 4.2 zeroes the variables of excluded values; a query excluding
   an attribute's whole domain must therefore evaluate to exactly 0.
   This is the check a corrupted cancellation clamp cannot pass: a
   positive floor leaves a group's restricted value at the floor even
   when every term is zeroed. *)
let c_unsat_zero ctx =
  let s = ctx.case.Case.summary in
  let arity = Schema.arity (schema ctx) in
  for i = 0 to arity - 1 do
    tally ctx;
    let q = Predicate.of_alist ~arity [ (i, Ranges.empty) ] in
    let est = Summary.estimate s q in
    if est <> 0. then
      fail ctx ~check:"unsat-zero" ~tier:Metamorphic
        "emptying attr %d yields %.12g, expected exactly 0" i est
  done;
  List.iteri
    (fun idx q ->
      tally ctx;
      let i = idx mod arity in
      let est = Summary.estimate s (Predicate.restrict q i Ranges.empty) in
      if est <> 0. then
        fail ctx ~check:"unsat-zero" ~tier:Metamorphic
          "emptying attr %d of %a yields %.12g, expected exactly 0" i
          Predicate.pp q est)
    ctx.case.Case.queries

let c_tautology_n ctx =
  let s = ctx.case.Case.summary in
  tally ctx;
  let est = Summary.estimate s (Predicate.tautology (Predicate.arity (List.hd ctx.case.Case.queries))) in
  if not (approx ctx est (nf ctx)) then
    fail ctx ~check:"tautology-n" ~tier:Metamorphic
      "E[true] = %.12g but n = %g" est (nf ctx)

let c_disjunction_singleton ctx =
  let s = ctx.case.Case.summary in
  List.iter
    (fun q ->
      tally ctx;
      let d = Disjunction.estimate s [ q ] in
      let e = Summary.estimate s q in
      if not (approx ctx d e) then
        fail ctx ~check:"disjunction-singleton" ~tier:Metamorphic
          "OR of one: %.12g vs estimate %.12g on %a" d e Predicate.pp q)
    ctx.case.Case.queries

let c_disjunction_disjoint ctx =
  let s = ctx.case.Case.summary in
  List.iteri
    (fun idx q ->
      let i = idx mod Schema.arity (schema ctx) in
      match split_restriction ctx q i with
      | None -> ()
      | Some (lo, hi) ->
          tally ctx;
          let d =
            Disjunction.estimate s
              [ Predicate.restrict q i lo; Predicate.restrict q i hi ]
          in
          let e = Summary.estimate s q in
          if not (approx ctx d e) then
            fail ctx ~check:"disjunction-disjoint" ~tier:Metamorphic
              "disjoint OR %.12g vs whole %.12g (attr %d) on %a" d e i
              Predicate.pp q)
    ctx.case.Case.queries

let c_disjunction_bounds ctx =
  let s = ctx.case.Case.summary in
  let arity = Schema.arity (schema ctx) in
  let taut = Predicate.tautology arity in
  let unsat = Predicate.of_alist ~arity [ (0, Ranges.empty) ] in
  List.iter
    (fun d ->
      tally ctx;
      let est = Disjunction.estimate s d in
      let each = List.map (Summary.estimate s) d in
      let upper = List.fold_left ( +. ) 0. each in
      let lower = List.fold_left Float.max 0. each in
      if est > upper +. slack ctx || est < lower -. slack ctx then
        fail ctx ~check:"disjunction-bounds" ~tier:Metamorphic
          "OR estimate %.12g outside union bounds [%.12g, %.12g]" est lower
          upper;
      let p = Disjunction.probability s d in
      tally ctx;
      if p < 0. || p > 1. then
        fail ctx ~check:"disjunction-bounds" ~tier:Metamorphic
          "P[union] = %.12g outside [0, 1]" p;
      match d with
      | q :: _ ->
          tally ctx;
          let with_unsat = Disjunction.estimate s [ q; unsat ] in
          let alone = Disjunction.estimate s [ q ] in
          if not (approx ctx with_unsat alone) then
            fail ctx ~check:"disjunction-bounds" ~tier:Metamorphic
              "OR with unsatisfiable clause %.12g vs alone %.12g" with_unsat
              alone;
          tally ctx;
          let with_taut = Disjunction.estimate s [ q; taut ] in
          if not (approx ctx with_taut (nf ctx)) then
            fail ctx ~check:"disjunction-bounds" ~tier:Metamorphic
              "OR with tautology %.12g vs n = %g" with_taut (nf ctx)
      | [] -> ())
    (Gen.disjunctions ctx.case.Case.spec (schema ctx))

(* ------------------------------------------------------------------ *)
(* Exact tier                                                          *)
(* ------------------------------------------------------------------ *)

(* Only sound on product-mode data: there the MaxEnt family contains the
   generating distribution, so the estimate's deviation from the sample
   count is on the scale of the model's own stddev.  On mixture data
   without covering joints, deviations are model error, not bugs. *)
let c_exact_count ctx =
  if ctx.case.Case.spec.Gen.mode <> Gen.Product then ()
  else begin
    let s = ctx.case.Case.summary in
    List.iter
      (fun q ->
        tally ctx;
        let est = Summary.estimate s q in
        let exact = float_of_int (Exec.count ctx.case.Case.rel q) in
        let sd = Summary.stddev s q in
        let sigma = Float.abs (est -. exact) /. (sd +. 1.) in
        ctx.max_sigma <- Float.max ctx.max_sigma sigma;
        if
          Float.abs (est -. exact)
          > (ctx.cfg.z *. (sd +. 1.)) +. ctx.cfg.exact_atol
        then
          fail ctx ~check:"exact-count" ~tier:Exact
            "estimate %.6g vs exact %g is %.1f sigma (stddev %.4g) on %a" est
            exact sigma sd Predicate.pp q)
      ctx.case.Case.queries
  end

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)
(* ------------------------------------------------------------------ *)

module P = Edb_plan.Plan
module E = Edb_plan.Estimator

let planner_sample ctx =
  let rng =
    Prng.create ~seed:(ctx.case.Case.spec.Gen.seed + 13) ()
  in
  Edb_sampling.Uniform.create rng ~rate:0.2 ctx.case.Case.rel

(* A planner over a single estimator is a pass-through: the chosen answer
   must be bitwise what calling the backend directly yields — routing may
   never perturb an answer, only pick one. *)
let c_planner_singleton ctx =
  let s = ctx.case.Case.summary in
  let est = E.of_summary s in
  List.iter
    (fun q ->
      tally ctx;
      let d =
        P.choose ~combine:false ~target:P.default_target [ est ] (P.Count q)
      in
      let a = P.chosen_answer d in
      let direct_est = Summary.estimate s q in
      let direct_est', direct_var = Summary.estimate_with_variance s q in
      if a.E.est <> direct_est || a.E.est <> direct_est'
         || a.E.var <> direct_var
      then
        fail ctx ~check:"planner-singleton" ~tier:Differential
          "routed answer (%.17g, %.17g) vs direct (%.17g, %.17g) on %a"
          a.E.est a.E.var direct_est direct_var Predicate.pp q)
    ctx.case.Case.queries

(* Inverse-variance weighting can only help: the combined variance is
   v₁v₂/(v₁+v₂) ≤ min(v₁, v₂) mathematically, and the implementation
   must not lose that (modulo an ulp of rounding). *)
let c_planner_combined_variance ctx =
  let es = E.of_summary ctx.case.Case.summary in
  let ea = E.of_sample (planner_sample ctx) in
  let ec = E.combine es ea in
  List.iter
    (fun q ->
      tally ctx;
      let va = (E.count es q).E.var
      and vb = (E.count ea q).E.var
      and vc = (E.count ec q).E.var in
      let bound = Float.min va vb in
      if vc > bound +. (1e-12 *. (bound +. 1.)) then
        fail ctx ~check:"planner-combined-variance" ~tier:Differential
          "combined variance %.12g exceeds min(%.12g, %.12g) on %a" vc va vb
          Predicate.pp q)
    ctx.case.Case.queries

(* Product-gated like exact-count: the chosen route's realized error must
   sit within its own predicted CI at z sigmas — whichever backend the
   planner picked, its error model has to be honest. *)
let c_planner_route_ci ctx =
  if ctx.case.Case.spec.Gen.mode <> Gen.Product then ()
  else begin
    let estimators =
      [
        E.of_summary ctx.case.Case.summary;
        E.of_sample (planner_sample ctx);
        E.of_relation ctx.case.Case.rel;
      ]
    in
    List.iter
      (fun q ->
        tally ctx;
        let d = P.choose ~target:P.default_target estimators (P.Count q) in
        let a = P.chosen_answer d in
        let exact = float_of_int (Exec.count ctx.case.Case.rel q) in
        let sd = sqrt (Float.max 0. a.E.var) in
        let sigma = Float.abs (a.E.est -. exact) /. (sd +. 1.) in
        ctx.max_sigma <- Float.max ctx.max_sigma sigma;
        if
          Float.abs (a.E.est -. exact)
          > (ctx.cfg.z *. (sd +. 1.)) +. ctx.cfg.exact_atol
        then
          fail ctx ~check:"planner-route-ci" ~tier:Exact
            "route %s: estimate %.6g vs exact %g is %.1f sigma (stddev %.4g) \
             on %a"
            (E.name d.P.chosen.P.estimator)
            a.E.est exact sigma sd Predicate.pp q)
      ctx.case.Case.queries
  end

(* Observability wiring: after a known sweep, the global registry's
   counters and the trace sink must account for exactly the work
   performed — the engine lying about what it did is a bug even when
   every answer is right.  Invariants: cache hits + misses = lookups
   with exact per-query deltas, and one "shard.eval" span (and counter
   tick) per shard per fanned-out query. *)
let c_obs_consistency ctx =
  let module R = Edb_obs.Registry in
  let module Trace = Edb_obs.Trace in
  let value name = R.Counter.value (R.counter name) in
  let nq = List.length ctx.case.Case.queries in
  tally ctx;
  let s = ctx.case.Case.summary in
  let cache = Cache.create s in
  let l0 = value "cache.lookups"
  and h0 = value "cache.hits"
  and m0 = value "cache.misses" in
  List.iter
    (fun q ->
      ignore (Cache.estimate cache q);
      ignore (Cache.estimate cache q))
    ctx.case.Case.queries;
  let dl = value "cache.lookups" - l0
  and dh = value "cache.hits" - h0
  and dm = value "cache.misses" - m0 in
  (* The query list may repeat a predicate, so the miss count is the
     number of *distinct* keys — which is exactly the entries resident
     afterwards (capacity far exceeds the sweep, no evictions). *)
  let st = Cache.stats cache in
  if
    dl <> 2 * nq
    || dh + dm <> dl
    || dm <> st.Cache.entries
    || dh <> st.Cache.hits
    || dm <> st.Cache.misses
  then
    fail ctx ~check:"obs-consistency" ~tier:Differential
      "cache counters off after %d lookup pairs: global lookups +%d, hits \
       +%d, misses +%d; instance hits %d, misses %d, entries %d"
      nq dl dh dm st.Cache.hits st.Cache.misses st.Cache.entries;
  tally ctx;
  let k = Edb_shard.Sharded.num_shards ctx.case.Case.sharded in
  let se0 = value "shard.evals" in
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Trace.clear ();
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled was)
    (fun () ->
      List.iter
        (fun q -> ignore (Edb_shard.Sharded.estimate ctx.case.Case.sharded q))
        ctx.case.Case.queries);
  let spans =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.name = "shard.eval")
         (Trace.events ()))
  in
  let dse = value "shard.evals" - se0 in
  if spans <> k * nq then
    fail ctx ~check:"obs-consistency" ~tier:Differential
      "expected %d shard.eval spans (%d shards x %d queries), traced %d" (k * nq)
      k nq spans;
  if dse <> k * nq then
    fail ctx ~check:"obs-consistency" ~tier:Differential
      "shard.evals counter moved %d for %d shard evaluations" dse (k * nq)

(* ------------------------------------------------------------------ *)
(* Streaming ingest (lib/ingest)                                       *)
(* ------------------------------------------------------------------ *)

(* Split the case's relation into a base prefix and a ~20% suffix that
   plays the ingested batch; None for degenerate single-row cases. *)
let ingest_split ctx =
  let rel = ctx.case.Case.rel in
  let n = Relation.cardinality rel in
  if n < 2 then None
  else begin
    let d = max 1 (n / 5) in
    let prefix = Relation.select_rows rel (Array.init (n - d) Fun.id) in
    let suffix =
      Relation.select_rows rel (Array.init d (fun i -> n - d + i))
    in
    Some (prefix, suffix)
  end

(* Incremental maintenance must land where the cold rebuild landed: the
   delta-updated Φ IS the recount (targets are counts, additive over
   disjoint bags, exact in floating point), and the warm-started
   re-solve's estimates match the case's full build up to the slack two
   independent solves of the same Φ can carry. *)
let c_ingest_vs_rebuild ctx =
  match ingest_split ctx with
  | None -> ()
  | Some (prefix, suffix) ->
      let old_s =
        Summary.build ~solver_config:Case.quiet prefix
          ~joints:ctx.case.Case.joints
      in
      let inc =
        Edb_ingest.Ingest.append ~solver_config:Case.quiet old_s suffix
      in
      let full = ctx.case.Case.summary in
      let phi_inc = Poly.phi (Summary.poly inc) in
      let phi_full = Poly.phi (Summary.poly full) in
      tally ctx;
      let worst = ref None in
      for j = 0 to Phi.num_stats phi_full - 1 do
        let a = Statistic.target (Phi.stat phi_inc j) in
        let b = Statistic.target (Phi.stat phi_full j) in
        if a <> b && !worst = None then worst := Some (j, a, b)
      done;
      (match !worst with
      | Some (j, a, b) ->
          fail ctx ~check:"ingest-vs-rebuild" ~tier:Differential
            "delta-updated target differs from recount at stat %d: %.17g vs \
             %.17g"
            j a b
      | None -> ());
      (* Same Φ solved twice (warm vs cold): comparable only when both
         solves actually reached tolerance. *)
      if
        (Summary.solver_report inc).Solver.converged
        && (Summary.solver_report full).Solver.converged
      then
        List.iter
          (fun q ->
            tally ctx;
            let a = Summary.estimate inc q and b = Summary.estimate full q in
            if
              not
                (Floatx.approx_eq ~rtol:0.01
                   ~atol:(1e-4 *. (nf ctx +. 1.))
                   a b)
            then
              fail ctx ~check:"ingest-vs-rebuild" ~tier:Differential
                "ingested %.12g vs rebuilt %.12g on %a" a b Predicate.pp q)
          ctx.case.Case.queries

(* Counts are additive over the partition (old rows ⊎ batch), and each
   converged summary estimates its own partition's count within its own
   error bars — so est(old) + est(delta) must agree with the ingested
   summary's estimate up to the three models' combined uncertainty. *)
let c_ingest_additivity ctx =
  match ingest_split ctx with
  | None -> ()
  | Some (prefix, suffix) ->
      let joints = ctx.case.Case.joints in
      let old_s = Summary.build ~solver_config:Case.quiet prefix ~joints in
      let delta_s = Summary.build ~solver_config:Case.quiet suffix ~joints in
      let inc =
        Edb_ingest.Ingest.append ~solver_config:Case.quiet old_s suffix
      in
      if
        (Summary.solver_report old_s).Solver.converged
        && (Summary.solver_report delta_s).Solver.converged
        && (Summary.solver_report inc).Solver.converged
      then
        List.iter
          (fun q ->
            tally ctx;
            let parts =
              Summary.estimate old_s q +. Summary.estimate delta_s q
            in
            let whole = Summary.estimate inc q in
            let tol =
              ctx.cfg.z
              *. (Summary.stddev old_s q +. Summary.stddev delta_s q
                 +. Summary.stddev inc q)
              +. (3. *. ctx.cfg.exact_atol)
            in
            if Float.abs (parts -. whole) > tol then
              fail ctx ~check:"ingest-additivity" ~tier:Metamorphic
                "est(old) + est(delta) = %.12g but est(old ⊎ delta) = %.12g \
                 (tol %.3g) on %a"
                parts whole tol Predicate.pp q)
          ctx.case.Case.queries

(* ------------------------------------------------------------------ *)
(* Battery                                                             *)
(* ------------------------------------------------------------------ *)

let checks : (string * tier * (ctx -> unit)) list =
  [
    ("bruteforce-estimate", Differential, c_bruteforce_estimate);
    ("bruteforce-variance", Differential, c_bruteforce_variance);
    ("bruteforce-sum", Differential, c_bruteforce_sum);
    ("flat-vs-k1", Differential, c_flat_vs_k1);
    ("shard-additivity", Differential, c_shard_additivity);
    ("groupby-batched-vs-naive", Differential, c_groupby_batched_vs_naive);
    ("kernel-soa", Differential, c_kernel_soa);
    ("serialize-roundtrip", Differential, c_serialize_roundtrip);
    ("mmap-v3", Differential, c_mmap_v3);
    ("cache-vs-uncached", Differential, c_cache_vs_uncached);
    ("server-vs-library", Differential, c_server_vs_library);
    ("obs-consistency", Differential, c_obs_consistency);
    ("widening-monotonic", Metamorphic, c_widening_monotonic);
    ("groupby-total", Metamorphic, c_groupby_total);
    ("partition-additivity", Metamorphic, c_partition_additivity);
    ("conj-idempotent", Metamorphic, c_conj_idempotent);
    ("unsat-zero", Metamorphic, c_unsat_zero);
    ("tautology-n", Metamorphic, c_tautology_n);
    ("disjunction-singleton", Metamorphic, c_disjunction_singleton);
    ("disjunction-disjoint", Metamorphic, c_disjunction_disjoint);
    ("disjunction-bounds", Metamorphic, c_disjunction_bounds);
    ("ingest-vs-rebuild", Differential, c_ingest_vs_rebuild);
    ("ingest-additivity", Metamorphic, c_ingest_additivity);
    ("planner-singleton", Differential, c_planner_singleton);
    ("planner-combined-variance", Differential, c_planner_combined_variance);
    ("exact-count", Exact, c_exact_count);
    ("planner-route-ci", Exact, c_planner_route_ci);
  ]

let check_names = List.map (fun (n, _, _) -> n) checks

let run ?only cfg (spec : Gen.spec) =
  match Case.build spec with
  | exception e ->
      {
        findings =
          [
            {
              check = "build";
              tier = Differential;
              seed = spec.Gen.seed;
              detail = "build raised: " ^ Printexc.to_string e;
            };
          ];
        checks_run = 1;
        max_exact_sigma = 0.;
      }
  | case ->
      let ctx =
        { cfg; case; findings = []; checks = 0; max_sigma = 0.; bf = None }
      in
      List.iter
        (fun (name, tier, f) ->
          match only with
          | Some o when o <> name -> ()
          | _ -> (
              try f ctx
              with e ->
                fail ctx ~check:name ~tier "check raised: %s"
                  (Printexc.to_string e)))
        checks;
      {
        findings = List.rev ctx.findings;
        checks_run = ctx.checks;
        max_exact_sigma = ctx.max_sigma;
      }
