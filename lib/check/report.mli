(** Rendering findings for humans (terminal) and machines (JSON, for the
    [BENCH_check.json] artifact). *)

open Edb_util

val repro_line : Gen.spec -> string
(** The one-liner that reproduces a failing case:
    ["entropydb check --replay <seed>"]. *)

val pp_finding : Format.formatter -> Gen.spec * Oracle.finding -> unit
(** Shrunk spec + finding, with the repro line. *)

val spec_json : Gen.spec -> Json.t
val finding_json : Gen.spec * Oracle.finding -> Json.t
