(** Seed-deterministic generation of harness cases.

    A {!spec} fully determines a case: the relation (via
    {!Edb_datagen.Synthetic}), the build configuration (joint statistics,
    shard count and strategy), and the query workload.  [spec_of_seed]
    derives every field from one integer, so a failure replays from its
    seed alone; the shrinker mutates fields directly and rebuilds. *)

open Edb_util
open Edb_storage

type data_mode = Product | Mixture

type spec = {
  seed : int;
  sizes : int list;  (** per-attribute domain sizes, arity = length *)
  rows : int;
  mode : data_mode;
  with_joints : bool;  (** add a disjoint family of 2D statistics *)
  shards : int;
  shard_by : [ `Rows | `Attr of int ];
}

val spec_of_seed : int -> spec
(** Arity 2–4, domain sizes 2–8, 30–400 rows; |Tup| stays well under
    {!Entropydb_core.Bruteforce}'s enumeration cap, so the exact oracle
    is always available. *)

val pp_spec : Format.formatter -> spec -> unit

val joints : spec -> Schema.t -> Predicate.t list
(** The spec's joint statistics: two disjoint 2D range predicates over
    attributes 0 and 1 when [with_joints] (empty otherwise). *)

val queries : spec -> Schema.t -> Predicate.t list
(** The case's conjunctive query workload (a fixed count of random
    predicates: points, ranges, and unions, roughly half the attributes
    restricted each). *)

val group_attr_sets : spec -> Schema.t -> int list list
(** Grouping-attribute sets for the GROUP BY checks (one single-attribute
    and one two-attribute set when the arity allows). *)

val disjunctions : spec -> Schema.t -> Predicate.t list list
(** Disjunctive workload: lists of 2–3 conjunctive disjuncts. *)

val random_predicate : Prng.t -> Schema.t -> Predicate.t
(** One random conjunctive predicate (exposed for tests). *)
