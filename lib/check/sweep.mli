(** Budgeted sweeps over seeded cases: the harness's top-level driver,
    shared by [entropydb check], the bench [check] experiment, and the
    test suite. *)

open Edb_util

type budget = Smoke | Default | Deep

val budget_of_string : string -> (budget, string) result
val budget_name : budget -> string

val cases_of_budget : budget -> int
(** Smoke: 12 cases (CI), Default: 48, Deep: 200. *)

type outcome = {
  cases : int;  (** specs exercised *)
  checks_run : int;  (** individual assertions across all cases *)
  findings : (Gen.spec * Oracle.finding) list;
      (** each paired with its shrunk spec *)
  max_exact_sigma : float;
      (** worst exact-tier deviation observed, in model stddevs —
          headroom against the [z] tolerance *)
}

val run_seeds : ?config:Oracle.config -> int list -> outcome
(** Run the full battery on each seed's spec; shrink every finding. *)

val run : ?config:Oracle.config -> ?base_seed:int -> budget -> outcome
(** [run_seeds] on [base_seed .. base_seed + cases - 1] (base defaults
    to 1000). *)

val replay : ?config:Oracle.config -> int -> outcome
(** Re-run one seed — the target of a report's repro line. *)

val print_outcome : outcome -> unit
(** Human-readable summary + findings on stdout. *)

val outcome_json : outcome -> Json.t
