(* Stratified sampling over attribute subsets (the paper's "StratN"
   baselines, stratified on the same attribute pairs as the summaries' 2D
   statistics).

   Strata are the distinct value combinations of the stratification
   attributes.  The total budget is [rate * n] rows.  Allocation follows
   the standard small-group-guarantee scheme (as in BlinkDB-style
   stratified samples): every stratum first receives
   [min(stratum size, floor)] rows, and the remaining budget is spread
   proportionally to the strata's remaining sizes.  Each sampled row is
   weighted by [stratum size / stratum sample size], so count estimation
   stays unbiased per stratum. *)

open Edb_util
open Edb_storage

let allocate ~budget ~floor_per_stratum sizes =
  let s = Array.length sizes in
  let alloc = Array.make s 0 in
  let total = Array.fold_left ( + ) 0 sizes in
  (* The budget can never place more rows than exist nor fewer than zero:
     allocations sum to exactly [min budget total]. *)
  let budget = max 0 (min budget total) in
  if s = 0 || budget = 0 then alloc
  else begin
    let floor_per_stratum =
      (* If the guarantee alone overshoots the budget, degrade it to what
         fits — possibly to zero rows per stratum when budget < #strata. *)
      let f = max 0 floor_per_stratum in
      if s * f > budget then budget / s else f
    in
    let used = ref 0 in
    Array.iteri
      (fun i size ->
        alloc.(i) <- min size floor_per_stratum;
        used := !used + alloc.(i))
      sizes;
    let remaining = ref (budget - !used) in
    if !remaining > 0 then begin
      let capacity = Array.mapi (fun i size -> size - alloc.(i)) sizes in
      let total_cap = Array.fold_left ( + ) 0 capacity in
      if total_cap > 0 then begin
        let budget0 = !remaining in
        (* Proportional shares with floors; remainders handed out by largest
           fractional part. *)
        let shares =
          Array.map
            (fun c ->
              float_of_int budget0 *. float_of_int c /. float_of_int total_cap)
            capacity
        in
        let fracs = ref [] in
        Array.iteri
          (fun i sh ->
            let base = min capacity.(i) (int_of_float sh) in
            alloc.(i) <- alloc.(i) + base;
            remaining := !remaining - base;
            if alloc.(i) < sizes.(i) then
              fracs := (sh -. Float.of_int (int_of_float sh), i) :: !fracs)
          shares;
        let by_frac = List.sort (fun (a, _) (b, _) -> compare b a) !fracs in
        List.iter
          (fun (_, i) ->
            if !remaining > 0 && alloc.(i) < sizes.(i) then begin
              alloc.(i) <- alloc.(i) + 1;
              decr remaining
            end)
          by_frac
      end
    end;
    (* Deterministic sweep: any budget the fractional pass could not place
       (float rounding pathologies) goes to the first strata with spare
       capacity, so the sum is exact. *)
    if !remaining > 0 then
      Array.iteri
        (fun i size ->
          let give = min !remaining (size - alloc.(i)) in
          alloc.(i) <- alloc.(i) + give;
          remaining := !remaining - give)
        sizes;
    alloc
  end

let create rng ~rate ~attrs ?(floor_per_stratum = 4) rel =
  if not (rate > 0. && rate <= 1.) then
    invalid_arg "Stratified.create: rate must be in (0, 1]";
  if attrs = [] then invalid_arg "Stratified.create: no stratification attrs";
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  let budget = max 1 (int_of_float (Float.round (rate *. float_of_int n))) in
  let sizes_by_attr = List.map (fun i -> Schema.domain_size schema i) attrs in
  let cols = List.map (fun i -> Relation.column rel i) attrs in
  (* Bucket row indices per stratum. *)
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  for row = 0 to n - 1 do
    let key =
      List.fold_left2
        (fun acc col size -> (acc * size) + col.(row))
        0 cols sizes_by_attr
    in
    match Hashtbl.find_opt tbl key with
    | Some l -> l := row :: !l
    | None -> Hashtbl.add tbl key (ref [ row ])
  done;
  let strata = Hashtbl.fold (fun _ l acc -> Array.of_list !l :: acc) tbl [] in
  let strata = Array.of_list strata in
  let sizes = Array.map Array.length strata in
  let alloc = allocate ~budget ~floor_per_stratum sizes in
  (* rows/weights/stratum ids are prepended in lockstep so the id array
     lines up with the selected rows. *)
  let rows = ref [] and weights = ref [] and sids = ref [] in
  Array.iteri
    (fun i stratum ->
      let k = alloc.(i) in
      if k > 0 then begin
        Prng.shuffle rng stratum;
        let w = float_of_int sizes.(i) /. float_of_int k in
        for j = 0 to k - 1 do
          rows := stratum.(j) :: !rows;
          weights := w :: !weights;
          sids := i :: !sids
        done
      end)
    strata;
  let rows = Array.of_list !rows and weights = Array.of_list !weights in
  let design =
    Array.mapi
      (fun i size -> { Sample.population = size; drawn = alloc.(i) })
      sizes
  in
  let names =
    String.concat "," (List.map (fun i -> Schema.attr_name schema i) attrs)
  in
  Sample.create
    ~strata:(design, Array.of_list !sids)
    ~data:(Relation.select_rows rel rows)
    ~weights ~source_cardinality:n
    ~description:
      (Printf.sprintf "stratified(%s) %.2f%% (%d rows, %d strata)" names
         (rate *. 100.) (Array.length rows) (Array.length strata))
    ()
