(* Weighted samples and Horvitz–Thompson estimation.

   Both baselines of the paper's evaluation — a uniform sample and
   stratified samples over attribute pairs (Sec. 6.1) — reduce to a bag of
   sampled rows with a per-row scale-up weight.  A count query is estimated
   as the sum of the weights of the matching sampled rows, which is unbiased
   whenever every source row's inclusion probability is the inverse of its
   weight.

   Samples additionally carry their design — which stratum each sampled row
   came from and how many source rows each stratum holds — so estimates can
   report a sampling variance with per-stratum finite-population correction
   (FPC).  A uniform sample is the degenerate one-stratum design. *)

open Edb_util
open Edb_storage

type stratum = { population : int; drawn : int }

type t = {
  data : Relation.t;
  weights : float array; (* scale-up weight of each sampled row *)
  source_cardinality : int;
  description : string;
  strata : stratum array;
  stratum_of_row : int array;
}

let create ?strata ~data ~weights ~source_cardinality ~description () =
  let rows = Relation.cardinality data in
  if Array.length weights <> rows then
    invalid_arg "Sample.create: weights/rows mismatch";
  let strata, stratum_of_row =
    match strata with
    | None -> ([| { population = source_cardinality; drawn = rows } |],
               Array.make rows 0)
    | Some (strata, stratum_of_row) ->
        if Array.length stratum_of_row <> rows then
          invalid_arg "Sample.create: stratum_of_row/rows mismatch";
        let counts = Array.make (Array.length strata) 0 in
        Array.iter
          (fun h ->
            if h < 0 || h >= Array.length strata then
              invalid_arg "Sample.create: stratum id out of range";
            counts.(h) <- counts.(h) + 1)
          stratum_of_row;
        Array.iteri
          (fun h st ->
            if st.drawn <> counts.(h) then
              invalid_arg "Sample.create: stratum drawn/rows mismatch";
            if st.population < st.drawn then
              invalid_arg "Sample.create: stratum drawn exceeds population")
          strata;
        (strata, stratum_of_row)
  in
  { data; weights; source_cardinality; description; strata; stratum_of_row }

let data t = t.data
let description t = t.description
let size t = Relation.cardinality t.data
let source_cardinality t = t.source_cardinality
let strata t = Array.copy t.strata

(* Columns restricted by [pred], paired with their admissible ranges —
   shared by every estimator below so they all scan rows identically. *)
let restricted_columns t pred =
  List.map
    (fun i ->
      match Predicate.restriction pred i with
      | Some r -> (Relation.column t.data i, r)
      | None -> assert false)
    (Predicate.restricted_attrs pred)

let estimate_count t pred =
  if Predicate.is_unsatisfiable pred then 0.
  else
    let restricted = restricted_columns t pred in
    let acc = ref 0. in
    for row = 0 to Relation.cardinality t.data - 1 do
      if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted then
        acc := !acc +. t.weights.(row)
    done;
    !acc

(* Per-stratum SRSWOR count variance with finite-population correction:
   N² (1 − k/N) p̃(1−p̃) / max(k−1, 1).  The plug-in proportion p̂ = m/k is
   clamped away from the degenerate endpoints to p̃ ∈ [1/2k, 1−1/2k] when
   the stratum is not a census: a sample that missed (or fully hit) a
   predicate still reports an honest nonzero width rather than certainty.
   A census stratum (k = N) is exact and contributes 0; an undrawn stratum
   (k = 0, N > 0) contributes the worst-case binomial spread N²/4 — no
   draw, no information. *)
let fpc_count_variance ~population ~drawn ~matched =
  if population = 0 || drawn >= population then 0.
  else if drawn = 0 then 0.25 *. float_of_int population *. float_of_int population
  else begin
    let n = float_of_int population and k = float_of_int drawn in
    let p = float_of_int matched /. k in
    let lo = 1. /. (2. *. k) in
    let p = Float.min (1. -. lo) (Float.max lo p) in
    n *. n *. (1. -. (k /. n)) *. p *. (1. -. p) /. Float.max 1. (k -. 1.)
  end

let variance_of_matched t matched =
  let var = ref 0. in
  Array.iteri
    (fun h st ->
      var :=
        !var
        +. fpc_count_variance ~population:st.population ~drawn:st.drawn
             ~matched:matched.(h))
    t.strata;
  !var

let estimate_with_variance t pred =
  if Predicate.is_unsatisfiable pred then (0., 0.)
  else begin
    let restricted = restricted_columns t pred in
    let matched = Array.make (Array.length t.strata) 0 in
    (* Accumulate the estimate in the same row order as [estimate_count]
       so the two agree bitwise. *)
    let acc = ref 0. in
    for row = 0 to Relation.cardinality t.data - 1 do
      if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted
      then begin
        acc := !acc +. t.weights.(row);
        let h = t.stratum_of_row.(row) in
        matched.(h) <- matched.(h) + 1
      end
    done;
    (!acc, variance_of_matched t matched)
  end

(* SUM over a binned attribute's midpoints — the exact counterpart of
   [Exec.sum] restricted to the sampled rows.  Treating a non-matching row
   as contributing y = 0 makes the per-stratum sample variance
   s² = (Σy² − k ȳ²)/(k−1) well-defined from the matching rows alone
   (they are the only nonzero terms of Σy and Σy²); only k counts every
   drawn row.  Var = Σ_h N_h²(1 − k_h/N_h) s²_h / k_h.  Unlike counts
   there is no distribution-free floor: a stratum whose sampled rows all
   miss the predicate reports zero spread. *)
let estimate_sum_with_variance t ~attr pred =
  let schema = Relation.schema t.data in
  let domain = Schema.domain schema attr in
  let midpoints =
    Array.init (Schema.domain_size schema attr) (fun v ->
        Domain.bin_midpoint domain v)
  in
  if Predicate.is_unsatisfiable pred then (0., 0.)
  else begin
    let restricted = restricted_columns t pred in
    let col = Relation.column t.data attr in
    let s = Array.length t.strata in
    let sum_y = Array.make s 0. and sum_y2 = Array.make s 0. in
    let acc = ref 0. in
    for row = 0 to Relation.cardinality t.data - 1 do
      if List.for_all (fun (c, r) -> Ranges.mem c.(row) r) restricted
      then begin
        let y = midpoints.(col.(row)) in
        acc := !acc +. (t.weights.(row) *. y);
        let h = t.stratum_of_row.(row) in
        sum_y.(h) <- sum_y.(h) +. y;
        sum_y2.(h) <- sum_y2.(h) +. (y *. y)
      end
    done;
    let var = ref 0. in
    Array.iteri
      (fun h st ->
        if st.population > 0 && st.drawn > 0 && st.drawn < st.population
        then begin
          let n = float_of_int st.population and k = float_of_int st.drawn in
          let mean = sum_y.(h) /. k in
          let s2 =
            Float.max 0.
              ((sum_y2.(h) -. (k *. mean *. mean)) /. Float.max 1. (k -. 1.))
          in
          var := !var +. (n *. n *. (1. -. (k /. n)) *. s2 /. k)
        end)
      t.strata;
    (!acc, !var)
  end

let estimate_group_count t ~attrs pred =
  let schema = Relation.schema t.data in
  let sizes = List.map (fun i -> Schema.domain_size schema i) attrs in
  let cols = List.map (fun i -> Relation.column t.data i) attrs in
  let restricted = restricted_columns t pred in
  let tbl = Hashtbl.create 256 in
  for row = 0 to Relation.cardinality t.data - 1 do
    if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted then begin
      let key =
        List.fold_left2 (fun acc col size -> (acc * size) + col.(row)) 0 cols sizes
      in
      let cur = Option.value (Hashtbl.find_opt tbl key) ~default:0. in
      Hashtbl.replace tbl key (cur +. t.weights.(row))
    end
  done;
  let decode key =
    let rev_sizes = List.rev sizes in
    let rec go key = function
      | [] -> []
      | size :: rest -> (key mod size) :: go (key / size) rest
    in
    List.rev (go key rev_sizes)
  in
  Hashtbl.fold (fun key w acc -> (decode key, w) :: acc) tbl []

(* Grouped counts with per-group variance: each group's count is the count
   of (pred ∧ group = key), so its variance takes the same per-stratum FPC
   form as [estimate_with_variance], with per-(group, stratum) match
   tallies.  Groups absent from the sample are absent from the result. *)
let estimate_group_with_variance t ~attrs pred =
  let schema = Relation.schema t.data in
  let sizes = List.map (fun i -> Schema.domain_size schema i) attrs in
  let cols = List.map (fun i -> Relation.column t.data i) attrs in
  let restricted = restricted_columns t pred in
  let s = Array.length t.strata in
  let tbl = Hashtbl.create 256 in
  for row = 0 to Relation.cardinality t.data - 1 do
    if List.for_all (fun (col, r) -> Ranges.mem col.(row) r) restricted then begin
      let key =
        List.fold_left2 (fun acc col size -> (acc * size) + col.(row)) 0 cols sizes
      in
      let weight, matched =
        match Hashtbl.find_opt tbl key with
        | Some cell -> cell
        | None ->
            let cell = (ref 0., Array.make s 0) in
            Hashtbl.add tbl key cell;
            cell
      in
      weight := !weight +. t.weights.(row);
      let h = t.stratum_of_row.(row) in
      matched.(h) <- matched.(h) + 1
    end
  done;
  let decode key =
    let rev_sizes = List.rev sizes in
    let rec go key = function
      | [] -> []
      | size :: rest -> (key mod size) :: go (key / size) rest
    in
    List.rev (go key rev_sizes)
  in
  Hashtbl.fold
    (fun key (weight, matched) acc ->
      (decode key, !weight, variance_of_matched t matched) :: acc)
    tbl []
