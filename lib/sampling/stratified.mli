(** Stratified sampling over attribute subsets — the paper's "StratN"
    baselines.  Strata are distinct value combinations of the given
    attributes; every stratum is guaranteed [floor_per_stratum] rows (or its
    full size) before the rest of the budget is spread proportionally. *)

open Edb_util
open Edb_storage

val allocate : budget:int -> floor_per_stratum:int -> int array -> int array
(** Exposed for testing: per-stratum sample counts given stratum sizes.
    Allocations are non-negative, never exceed a stratum's size, and sum to
    exactly [min (max budget 0) (sum sizes)]; the floor degrades (possibly
    to zero) when the guarantee alone exceeds the budget.  Empty strata and
    negative budgets or floors are tolerated and allocate nothing. *)

val create :
  Prng.t -> rate:float -> attrs:int list -> ?floor_per_stratum:int ->
  Relation.t -> Sample.t
(** Raises on rates outside (0, 1] or an empty attribute list. *)
