(** Weighted samples with Horvitz–Thompson count estimation — the common
    representation of the paper's uniform and stratified baselines.

    A sample carries its design: the strata it was drawn from, each with a
    source population and a drawn count, and the stratum of every sampled
    row.  Estimators use the design to report a sampling variance with
    per-stratum finite-population correction; a uniform sample is the
    degenerate single-stratum design. *)

open Edb_storage

type t

type stratum = { population : int; drawn : int }
(** One stratum of the sampling design: [population] source rows, of which
    [drawn] were sampled without replacement. *)

val create :
  ?strata:stratum array * int array ->
  data:Relation.t ->
  weights:float array ->
  source_cardinality:int ->
  description:string ->
  unit ->
  t
(** [strata] pairs the design with a per-sampled-row stratum id.  When
    omitted, the sample is a single stratum with [population =
    source_cardinality] and [drawn =] the number of sampled rows.  Raises
    [Invalid_argument] if weights and rows disagree in length, if the
    stratum-id array has the wrong length or ids out of range, or if a
    stratum's [drawn] disagrees with its row count or exceeds its
    [population]. *)

val data : t -> Relation.t
val description : t -> string
val size : t -> int
val source_cardinality : t -> int

val strata : t -> stratum array
(** A copy of the sampling design. *)

val estimate_count : t -> Predicate.t -> float
(** Sum of matching rows' weights: unbiased when each source row's inclusion
    probability is the inverse of its weight. *)

val estimate_with_variance : t -> Predicate.t -> float * float
(** [(estimate, variance)].  The estimate is bitwise-identical to
    {!estimate_count}.  The variance is the stratified SRSWOR count
    variance Σₕ Nₕ²(1−kₕ/Nₕ) p̃ₕ(1−p̃ₕ)/max(kₕ−1,1), where the plug-in
    match proportion is clamped to p̃ ∈ [1/2k, 1−1/2k] for non-census
    strata so degenerate all-miss/all-hit strata report an honest width
    instead of zero; a census stratum (k = N) contributes 0 and an undrawn
    stratum (k = 0, N > 0) the worst-case Nₕ²/4.  An unsatisfiable
    predicate is provably zero: [(0., 0.)]. *)

val estimate_sum_with_variance : t -> attr:int -> Predicate.t -> float * float
(** SUM of attribute [attr]'s bin midpoints over matching source rows —
    the sampled counterpart of [Exec.sum] — with the per-stratum FPC
    variance Σₕ Nₕ²(1−kₕ/Nₕ) s²ₕ/kₕ, where s²ₕ is the sample variance of
    the per-row contribution (0 for non-matching rows).  No variance
    floor: a stratum whose drawn rows all miss reports zero spread.
    Raises if [attr]'s domain is categorical (no midpoints). *)

val estimate_group_count :
  t -> attrs:int list -> Predicate.t -> (int list * float) list
(** Weighted GROUP BY estimate; groups absent from the sample are absent
    from the result (samples cannot distinguish rare from nonexistent — the
    contrast at the heart of the paper's F-measure experiment). *)

val estimate_group_with_variance :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** [(key, estimate, variance)] per group: each group's count is the count
    of [pred ∧ group = key] and its variance takes the same per-stratum
    FPC form as {!estimate_with_variance}.  Groups absent from the sample
    are absent from the result. *)
