(* Uniform sampling without replacement (the paper's "Uni" baseline).
   A single-stratum design: population n, drawn k. *)

open Edb_util
open Edb_storage

let create rng ~rate rel =
  if not (rate > 0. && rate <= 1.) then
    invalid_arg "Uniform.create: rate must be in (0, 1]";
  let n = Relation.cardinality rel in
  let k = max 1 (int_of_float (Float.round (rate *. float_of_int n))) in
  let k = min k n in
  let rows = Prng.sample_without_replacement rng ~n ~k in
  let weight = float_of_int n /. float_of_int k in
  Sample.create
    ~strata:([| { Sample.population = n; drawn = k } |], Array.make k 0)
    ~data:(Relation.select_rows rel rows)
    ~weights:(Array.make k weight) ~source_cardinality:n
    ~description:(Printf.sprintf "uniform %.2f%% (%d rows)" (rate *. 100.) k)
    ()
