(** Server counters and a log-bucketed latency histogram (1 µs – 10 s,
    ~26% bucket resolution) with p50/p95/p99 readouts, built on the obs
    layer's lock-free striped primitives ({!Edb_obs.Registry}).
    Everything is safe to call from any thread or domain. *)

type t

val create : unit -> t

type counter = Requests | Errors | Timeouts | Rejects | Connections

val incr : t -> counter -> unit

val observe : t -> float -> unit
(** Record one request latency, in seconds. *)

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  timeouts : int;
  rejects : int;
  connections : int;
  observations : int;  (** latencies recorded *)
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

val snapshot : t -> snapshot
(** Quantiles are the geometric midpoint of the covering histogram bucket,
    clamped to the observed maximum; 0 when nothing was observed. *)
