(** The resident summary-serving daemon.

    A fixed worker pool serves whole connections popped from a bounded
    queue; connections beyond [workers + queue_depth] receive an immediate
    [ERR busy] instead of queueing (admission control).  Reads poll a
    shutdown flag, so [stop] — wired to SIGINT/SIGTERM by {!run} — drains
    in-flight requests and returns within a fraction of a second plus the
    longest running evaluation. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  workers : int;
  queue_depth : int;  (** pending-connection bound beyond the workers *)
  request_deadline : float;
      (** seconds; replies [ERR timeout] when an evaluation overruns
          (checked after the fact — compute is not interrupted); <= 0
          disables *)
  idle_timeout : float;  (** seconds a connection may sit quiet *)
  catalog_capacity : int;  (** resident summaries, when no catalog given *)
  catalog_bytes : int option;
      (** byte budget over resident summaries' footprints; evicted names
          transparently reopen on use ([None] = unlimited) *)
  cache_capacity : int;  (** per-summary query-cache entries *)
}

val default_config : config
(** 8 workers, queue 16, 10 s deadline, 60 s idle timeout, no listeners
    (set at least one of [unix_socket] / [tcp]). *)

type t

val create : ?catalog:Catalog.t -> config -> t
(** Raises [Invalid_argument] on a listener-less or worker-less config. *)

val catalog : t -> Catalog.t
val metrics : t -> Metrics.t

val start : t -> unit
(** Bind the listeners and spawn the accept and worker threads; returns
    immediately.  Raises [Unix.Unix_error] if binding fails. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe: only flips an atomic
    flag.  Idempotent. *)

val wait : t -> unit
(** Block until [stop] has been called, then join all threads, close the
    listeners, and unlink the Unix socket. *)

val run : t -> unit
(** [start], install SIGINT/SIGTERM handlers that call [stop] (and ignore
    SIGPIPE), then [wait].  Returns after a clean drain, restoring the
    previous signal dispositions. *)
