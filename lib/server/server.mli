(** The resident summary-serving daemon.

    Domain-per-core event loops: one acceptor thread admission-controls
    incoming connections (beyond [workers + queue_depth] live connections
    the answer is an immediate [ERR busy]) and hands them round-robin to
    [domains] executor domains over lock-free MPSC inboxes; each executor
    multiplexes its connections with non-blocking I/O.  The v2 protocol
    pipelines many tagged requests per connection ({!Protocol.split_tag});
    requests arriving in the same loop iteration form a batch, and
    identical QUERYs within a batch are coalesced into one evaluation
    whose response fans out byte-identically to every waiter.  All loops
    poll a shutdown flag, so [stop] — wired to SIGINT/SIGTERM by {!run} —
    drains in-flight requests and returns within a fraction of a second
    plus the longest running evaluation. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  workers : int;
  queue_depth : int;  (** with [workers], bounds live connections *)
  domains : int;
      (** executor domains; 0 = auto: [EDB_DOMAINS] if set, else the
          machine's core count, clamped to \[1, 8\].  Unlike compute
          fan-out, executor domains mostly block in [select], so the
          env value is honoured even beyond the core count. *)
  batch_window : float;
      (** seconds an executor lingers topping up a batch after its first
          request; 0 (default) executes whatever one readiness sweep
          yields — coalescing still applies within the sweep *)
  max_inflight : int;
      (** per-connection pipeline window: once this many requests from
          one connection are unanswered, its socket is not read until
          responses drain (backpressure) *)
  max_line_bytes : int;
      (** a request line growing past this without a newline gets
          [ERR proto] and the connection is closed *)
  request_deadline : float;
      (** seconds; replies [ERR timeout] when an evaluation overruns
          (checked after the fact — compute is not interrupted); <= 0
          disables *)
  idle_timeout : float;  (** seconds a connection may sit quiet *)
  catalog_capacity : int;  (** resident summaries, when no catalog given *)
  catalog_bytes : int option;
      (** byte budget over resident summaries' footprints; evicted names
          transparently reopen on use ([None] = unlimited) *)
  cache_capacity : int;  (** per-summary query-cache entries *)
}

val default_config : config
(** 8 workers, queue 16, auto domains, no batch linger, 64-request
    pipeline window, 1 MiB line cap, 10 s deadline, 60 s idle timeout,
    no listeners (set at least one of [unix_socket] / [tcp]). *)

type t

val create : ?catalog:Catalog.t -> config -> t
(** Raises [Invalid_argument] on a listener-less or worker-less config. *)

val catalog : t -> Catalog.t
val metrics : t -> Metrics.t

val num_domains : t -> int
(** Resolved executor-domain count (after the 0 = auto rule). *)

val start : t -> unit
(** Bind the listeners, spawn the executor domains and the acceptor
    thread; returns immediately.  Raises [Unix.Unix_error] if binding
    fails. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe: only flips an atomic
    flag.  Idempotent. *)

val wait : t -> unit
(** Block until [stop] has been called, then join the acceptor and the
    executor domains, close the listeners, and unlink the Unix socket. *)

val run : t -> unit
(** [start], install SIGINT/SIGTERM handlers that call [stop] (and ignore
    SIGPIPE), then [wait].  Returns after a clean drain, restoring the
    previous signal dispositions. *)
