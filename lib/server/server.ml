(* The resident daemon: a domain-per-core event-loop architecture.

   One acceptor thread owns the listening sockets.  Accepted connections
   are admission-controlled (beyond [workers + queue_depth] live
   connections the acceptor replies `ERR busy` and closes — saturation
   degrades into fast rejections, never unbounded queueing) and then
   handed round-robin to one of N executor *domains* over lock-free MPSC
   inboxes ([Edb_util.Mpsc]); a self-pipe per executor turns the handoff
   into a select wakeup, so a new connection never waits out a poll tick.

   Each executor runs a private event loop over the connections it owns:
   non-blocking reads into per-connection buffers, line framing, batch
   execution, and non-blocking buffered writes.  Nothing is shared
   between executors except the catalog (already concurrency-safe) and
   the striped metrics, so the loops never take a lock on the hot path.

   Pipelining and batching: the v2 protocol lets a client keep many
   tagged requests in flight on one connection.  All requests readable
   in one loop iteration (optionally topped up for [batch_window]
   seconds) form a batch; identical QUERYs inside a batch — same summary
   name, same SQL — are *coalesced*: one evaluation through the shared
   shape-keyed cache, its response fanned back out to every waiter.
   QUERY is read-only and deterministic, so a coalesced answer is
   byte-identical to the uncoalesced one; a mutating verb
   (LOAD/REFRESH/ATTACH) executing mid-batch invalidates the coalesced
   answers collected so far, preserving arrival-order semantics for
   QUERYs that follow it.  Backpressure is the
   per-connection window: once [max_inflight] requests from one
   connection are unanswered, its socket is simply not read until
   responses drain, bounding both memory and batch latency.

   Timeouts: the per-request deadline is checked after evaluation —
   OCaml compute can't be safely interrupted mid-polynomial, so an
   overrunning query costs its own latency but is reported as
   `ERR timeout`.  Idle connections are closed after [idle_timeout].
   A connection that stops draining its responses (slow loris) is killed
   once its pending output exceeds a hard cap.

   Shutdown (`stop`, wired to SIGINT/SIGTERM by `run`): a single atomic
   flag — signal handlers only set it.  The acceptor and every executor
   poll it within a tick and drain: requests already read are answered,
   pending output is flushed (bounded), then connections, listeners and
   wake pipes close and `wait`/`run` return. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  workers : int;  (** with [queue_depth], bounds live connections *)
  queue_depth : int;  (** extra connections beyond the workers *)
  domains : int;  (** executor domains; 0 = auto (EDB_DOMAINS, else cores) *)
  batch_window : float;
      (** seconds to linger collecting a batch after the first request of
          an iteration; 0 disables (batch = one readiness sweep) *)
  max_inflight : int;  (** per-connection pipeline window *)
  max_line_bytes : int;  (** oversized-frame guard *)
  request_deadline : float;  (** seconds; <= 0 disables *)
  idle_timeout : float;  (** seconds a connection may sit quiet *)
  catalog_capacity : int;
  catalog_bytes : int option;  (** byte budget for resident summaries *)
  cache_capacity : int;
}

let default_config =
  {
    unix_socket = None;
    tcp = None;
    workers = 8;
    queue_depth = 16;
    domains = 0;
    batch_window = 0.;
    max_inflight = 64;
    max_line_bytes = 1 lsl 20;
    request_deadline = 10.;
    idle_timeout = 60.;
    catalog_capacity = 8;
    catalog_bytes = None;
    cache_capacity = 4096;
  }

(* Executor domains block in select, so unlike compute domains
   ([Parallel.default_domains]) oversubscription is harmless: honour
   EDB_DOMAINS as asked (the CI matrix runs the suites at 4 domains on
   any hardware), default to the core count, cap at a sane 8. *)
let auto_domains () =
  let requested =
    match Sys.getenv_opt "EDB_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min requested 8)

(* Pending output beyond this means the peer stopped reading while we
   kept answering (the inflight window bounds well-behaved clients far
   below it): kill the connection rather than buffer without bound. *)
let out_cap_bytes = 8 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (** unread bytes; complete lines not yet consumed *)
  out : Buffer.t;  (** pending response bytes *)
  mutable out_pos : int;  (** prefix of [out] already written *)
  mutable inflight : int;  (** read-but-unanswered requests *)
  mutable has_more : bool;  (** complete line(s) left in [rbuf] *)
  mutable last_active : float;
  mutable closing : bool;  (** flush pending output, then close *)
  mutable dead : bool;  (** close now, abandon output *)
}

type executor = {
  ex_id : int;
  inbox : Unix.file_descr Edb_util.Mpsc.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  g_conns : Edb_obs.Registry.Gauge.t;  (** connections owned *)
  g_queue : Edb_obs.Registry.Gauge.t;  (** last iteration's batch size *)
}

type t = {
  config : config;
  ndomains : int;
  max_conns : int;
  catalog : Catalog.t;
  metrics : Metrics.t;
  stopping : bool Atomic.t;
  live : int Atomic.t;  (** admitted, not yet closed; admission bound *)
  rr : int Atomic.t;  (** acceptor's round-robin cursor *)
  mutable executors : executor array;
  mutable listeners : Unix.file_descr list;
  mutable threads : Thread.t list;  (** the acceptor *)
  mutable domains_h : unit Domain.t list;
  mutable started : bool;
}

let tick = 0.05 (* seconds between shutdown/idle checks in blocking ops *)

let log_src = Logs.Src.create "edb.server" ~doc:"EntropyDB summary server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Batching/coalescing accounting, in the global obs registry so STATS
   and `entropydb stats` surface them as obs_server_* lines. *)
let m_batches = Edb_obs.Registry.counter "server_batches"
let m_batch_requests = Edb_obs.Registry.counter "server_batch_requests"
let m_coalesce_hits = Edb_obs.Registry.counter "server_coalesce_hits"
let m_coalesce_evals = Edb_obs.Registry.counter "server_coalesce_evals"
let m_pipelined = Edb_obs.Registry.counter "server_pipelined_frames"
let m_max_batch = Edb_obs.Registry.gauge "server_max_batch"

let create ?catalog config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_depth < 0 then
    invalid_arg "Server.create: queue_depth must be >= 0";
  if config.domains < 0 then
    invalid_arg "Server.create: domains must be >= 0";
  if config.max_inflight < 1 then
    invalid_arg "Server.create: max_inflight must be >= 1";
  if config.max_line_bytes < 256 then
    invalid_arg "Server.create: max_line_bytes must be >= 256";
  if config.unix_socket = None && config.tcp = None then
    invalid_arg "Server.create: no listener configured";
  let catalog =
    match catalog with
    | Some c -> c
    | None ->
        Catalog.create ~capacity:config.catalog_capacity
          ?budget_bytes:config.catalog_bytes
          ~cache_capacity:config.cache_capacity ()
  in
  {
    config;
    ndomains = (if config.domains = 0 then auto_domains () else config.domains);
    max_conns = config.workers + config.queue_depth;
    catalog;
    metrics = Metrics.create ();
    stopping = Atomic.make false;
    live = Atomic.make 0;
    rr = Atomic.make 0;
    executors = [||];
    listeners = [];
    threads = [];
    domains_h = [];
    started = false;
  }

let catalog t = t.catalog
let metrics t = t.metrics
let num_domains t = t.ndomains

(* ------------------------------------------------------------------ *)
(* Socket I/O helpers                                                  *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done;
    true
  with Unix.Unix_error _ | Sys_error _ -> false

let send_response fd response =
  write_all fd (String.concat "\n" (Protocol.print_response response) ^ "\n")

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let execute_parsed t request =
  let t0 = Unix.gettimeofday () in
  let response, outcome =
    try
      Edb_obs.Obs.with_span "server.request" ~cat:"serve"
        ~attrs:(fun () -> [ ("request", Protocol.request_tag request) ])
        (fun () -> Handler.handle ~catalog:t.catalog ~metrics:t.metrics request)
    with e ->
      ( Protocol.Err
          { code = Protocol.err_internal; message = Printexc.to_string e },
        Handler.Keep )
  in
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.observe t.metrics dt;
  let response =
    if t.config.request_deadline > 0. && dt > t.config.request_deadline then begin
      Metrics.incr t.metrics Metrics.Timeouts;
      Protocol.Err
        {
          code = Protocol.err_timeout;
          message =
            Printf.sprintf "request exceeded deadline (%.3fs > %.3fs)" dt
              t.config.request_deadline;
        }
    end
    else response
  in
  (match response with
  | Protocol.Err _ -> Metrics.incr t.metrics Metrics.Errors
  | Protocol.Ok _ -> ());
  (response, outcome)

(* ------------------------------------------------------------------ *)
(* Executor event loop                                                 *)
(* ------------------------------------------------------------------ *)

let make_conn now fd =
  {
    fd;
    rbuf = Buffer.create 512;
    out = Buffer.create 512;
    out_pos = 0;
    inflight = 0;
    has_more = false;
    last_active = now;
    closing = false;
    dead = false;
  }

let enqueue_response c tag response =
  List.iter
    (fun line ->
      Buffer.add_string c.out line;
      Buffer.add_char c.out '\n')
    (Protocol.print_tagged_response tag response);
  if Buffer.length c.out - c.out_pos > out_cap_bytes then c.dead <- true

(* Extract up to [max] complete lines from the connection's read buffer,
   leaving the remainder (a torn frame waits for its missing bytes).
   [has_more] records whether a complete line is still buffered, so the
   loop can use a zero select timeout instead of sleeping a tick on
   window-deferred requests. *)
let take_lines c ~max:budget =
  if budget <= 0 then []
  else begin
    let s = Buffer.contents c.rbuf in
    let n = String.length s in
    let lines = ref [] and count = ref 0 and pos = ref 0 in
    (try
       while !count < budget do
         let i = String.index_from s !pos '\n' in
         let stop = if i > !pos && s.[i - 1] = '\r' then i - 1 else i in
         lines := String.sub s !pos (stop - !pos) :: !lines;
         incr count;
         pos := i + 1
       done
     with Not_found -> ());
    if !pos > 0 then begin
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s !pos (n - !pos)
    end;
    c.has_more <- (try String.index_from s !pos '\n' >= 0 with Not_found -> false);
    List.rev !lines
  end

let read_chunk t c chunk =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.dead <- true
  | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      c.last_active <- Unix.gettimeofday ();
      c.has_more <- true;
      (* Oversized-frame guard: a line that outgrows the cap without a
         newline can never parse; answer ERR and drop the connection
         rather than buffer without bound. *)
      if
        Buffer.length c.rbuf > t.config.max_line_bytes
        && not
             (String.contains
                (Buffer.sub c.rbuf 0 (min (Buffer.length c.rbuf) (t.config.max_line_bytes + 1)))
                '\n')
      then begin
        Buffer.clear c.rbuf;
        c.has_more <- false;
        Metrics.incr t.metrics Metrics.Errors;
        enqueue_response c None
          (Protocol.Err
             {
               code = Protocol.err_proto;
               message =
                 Printf.sprintf "request line exceeds %d bytes"
                   t.config.max_line_bytes;
             });
        c.closing <- true
      end
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception (Unix.Unix_error _ | Sys_error _) -> c.dead <- true

(* One batch item: a framed request taken off some connection. *)
type pending = {
  p_conn : conn;
  p_tag : string option;
  p_line : string;  (** request text, tag stripped *)
  p_bad : string option;  (** malformed tag: answer ERR proto *)
}

let collect_conn t c acc =
  if c.closing || c.dead then acc
  else begin
    let lines = take_lines c ~max:(t.config.max_inflight - c.inflight) in
    List.fold_left
      (fun acc line ->
        if String.trim line = "" then acc
        else begin
          c.inflight <- c.inflight + 1;
          match Protocol.split_tag line with
          | Ok (tag, rest) ->
              { p_conn = c; p_tag = tag; p_line = rest; p_bad = None } :: acc
          | Error e ->
              { p_conn = c; p_tag = None; p_line = line; p_bad = Some e } :: acc
        end)
      acc lines
  end

(* Execute a batch in arrival order.  Identical QUERYs (same summary,
   same SQL) evaluate once; the response fans out to every waiter.
   Only QUERY coalesces: it is read-only and deterministic, so the
   shared response is byte-identical to an uncoalesced evaluation.
   Mutating verbs (LOAD/REFRESH/ATTACH) and introspection run
   individually, in order — and a mutating verb also *invalidates* the
   coalesced answers collected so far, so a pipelined `QUERY q; REFRESH
   s; QUERY q` sees the post-REFRESH answer for the second QUERY, exactly
   as it would uncoalesced. *)
let mutates = function
  | Protocol.Load _ | Protocol.Refresh _ | Protocol.Attach _ -> true
  | _ -> false

let execute_batch t batch =
  let coalesced : (string, Protocol.response) Hashtbl.t =
    Hashtbl.create (List.length batch)
  in
  List.iter
    (fun p ->
      let c = p.p_conn in
      c.inflight <- c.inflight - 1;
      (* A peer that vanished mid-batch, or sent requests after QUIT:
         drop silently (there is nobody to answer). *)
      if not (c.dead || c.closing) then begin
        Metrics.incr t.metrics Metrics.Requests;
        if p.p_tag <> None then Edb_obs.Registry.Counter.incr m_pipelined;
        match p.p_bad with
        | Some e ->
            Metrics.incr t.metrics Metrics.Errors;
            enqueue_response c None
              (Protocol.Err { code = Protocol.err_proto; message = e })
        | None -> (
            match Protocol.parse_request p.p_line with
            | Error m ->
                Metrics.incr t.metrics Metrics.Errors;
                enqueue_response c p.p_tag
                  (Protocol.Err { code = Protocol.err_proto; message = m })
            | Ok (Protocol.Query { name; sql } as request) -> (
                let key = name ^ "\x00" ^ sql in
                match Hashtbl.find_opt coalesced key with
                | Some response ->
                    Edb_obs.Registry.Counter.incr m_coalesce_hits;
                    enqueue_response c p.p_tag response
                | None ->
                    let response, _ = execute_parsed t request in
                    Hashtbl.add coalesced key response;
                    Edb_obs.Registry.Counter.incr m_coalesce_evals;
                    enqueue_response c p.p_tag response)
            | Ok request ->
                if mutates request then Hashtbl.reset coalesced;
                let response, outcome = execute_parsed t request in
                enqueue_response c p.p_tag response;
                if outcome = Handler.Close then c.closing <- true)
      end)
    batch

let flush_conn c =
  if not c.dead then begin
    let continue = ref true in
    while !continue do
      let len = Buffer.length c.out in
      if c.out_pos >= len then begin
        if len > 0 then begin
          Buffer.clear c.out;
          c.out_pos <- 0
        end;
        if c.closing then c.dead <- true;
        continue := false
      end
      else begin
        let n = min 65536 (len - c.out_pos) in
        let s = Buffer.sub c.out c.out_pos n in
        match Unix.write_substring c.fd s 0 n with
        | written ->
            c.out_pos <- c.out_pos + written;
            if written < n then continue := false (* kernel buffer full *)
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            continue := false
        | exception (Unix.Unix_error _ | Sys_error _) ->
            c.dead <- true;
            continue := false
      end
    done
  end

let pending_out c = Buffer.length c.out > c.out_pos

let executor_loop t ex =
  let chunk = Bytes.create 65536 in
  let conns = ref [] in
  let drain_wake () =
    let b = Bytes.create 256 in
    let rec go () =
      match Unix.read ex.wake_r b 0 256 with
      | 256 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let adopt () =
    List.iter
      (fun fd ->
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        Metrics.incr t.metrics Metrics.Connections;
        conns := make_conn (Unix.gettimeofday ()) fd :: !conns)
      (Edb_util.Mpsc.drain ex.inbox)
  in
  let reap () =
    let live, dead = List.partition (fun c -> not c.dead) !conns in
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        Atomic.decr t.live)
      dead;
    conns := live
  in
  let read_ready timeout =
    let readable =
      List.filter_map
        (fun c ->
          if (not c.closing) && (not c.dead) && c.inflight < t.config.max_inflight
          then Some c.fd
          else None)
        !conns
    in
    match Unix.select (ex.wake_r :: readable) [] [] timeout with
    | ready, _, _ ->
        if List.memq ex.wake_r ready then drain_wake ();
        List.iter
          (fun c -> if List.memq c.fd ready then read_chunk t c chunk)
          !conns
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Thread.delay tick
  in
  let rec loop () =
    adopt ();
    reap ();
    if Atomic.get t.stopping then ()
    else begin
      (* Zero timeout when window-deferred lines are already buffered;
         otherwise block until traffic, a handoff wakeup, or a tick. *)
      let timeout =
        if
          List.exists
            (fun c ->
              c.has_more && (not c.closing) && (not c.dead)
              && c.inflight < t.config.max_inflight)
            !conns
        then 0.
        else tick
      in
      read_ready timeout;
      adopt ();
      let batch = List.fold_left (fun acc c -> collect_conn t c acc) [] !conns in
      (* Linger up to batch_window for stragglers joining this batch. *)
      let batch =
        if t.config.batch_window <= 0. || batch = [] then batch
        else begin
          let deadline = Unix.gettimeofday () +. t.config.batch_window in
          let b = ref batch in
          let continue = ref true in
          while !continue do
            let left = deadline -. Unix.gettimeofday () in
            if left <= 0. || Atomic.get t.stopping then continue := false
            else begin
              read_ready left;
              b := List.fold_left (fun acc c -> collect_conn t c acc) !b !conns
            end
          done;
          !b
        end
      in
      let batch = List.rev batch in
      (match batch with
      | [] -> ()
      | _ ->
          let n = List.length batch in
          Edb_obs.Registry.Counter.incr m_batches;
          Edb_obs.Registry.Counter.add m_batch_requests n;
          if float_of_int n > Edb_obs.Registry.Gauge.value m_max_batch then
            Edb_obs.Registry.Gauge.set m_max_batch (float_of_int n);
          Edb_obs.Registry.Gauge.set ex.g_queue (float_of_int n);
          execute_batch t batch);
      (* Idle connections: answer ERR timeout, then close after flush. *)
      let now = Unix.gettimeofday () in
      List.iter
        (fun c ->
          if
            (not c.dead) && (not c.closing) && c.inflight = 0
            && (not (pending_out c))
            && now -. c.last_active > t.config.idle_timeout
          then begin
            enqueue_response c None
              (Protocol.Err
                 { code = Protocol.err_timeout; message = "idle timeout" });
            c.closing <- true
          end)
        !conns;
      List.iter flush_conn !conns;
      Edb_obs.Registry.Gauge.set ex.g_conns (float_of_int (List.length !conns));
      loop ()
    end
  in
  (try loop ()
   with e -> Log.err (fun m -> m "executor %d: %s" ex.ex_id (Printexc.to_string e)));
  (* Drain, part 1: answer the complete requests already sitting in read
     buffers — the shutdown contract is "requests already read are
     answered", and the loop above exits before collecting them.  Each
     pass frees inflight slots, so repeated passes drain buffers larger
     than one window; no further reads happen, so this terminates. *)
  (try
     let rec final_batches () =
       match
         List.rev (List.fold_left (fun acc c -> collect_conn t c acc) [] !conns)
       with
       | [] -> ()
       | batch ->
           execute_batch t batch;
           final_batches ()
     in
     final_batches ()
   with e ->
     Log.err (fun m -> m "executor %d drain: %s" ex.ex_id (Printexc.to_string e)));
  (* Drain, part 2: flush whatever is answered (bounded), then close. *)
  let deadline = Unix.gettimeofday () +. 1.0 in
  let rec drain_flush () =
    List.iter flush_conn !conns;
    if
      List.exists (fun c -> (not c.dead) && pending_out c) !conns
      && Unix.gettimeofday () < deadline
    then begin
      (match
         Unix.select []
           (List.filter_map
              (fun c -> if (not c.dead) && pending_out c then Some c.fd else None)
              !conns)
           [] 0.01
       with
      | _ -> ()
      | exception Unix.Unix_error _ -> Thread.delay 0.01);
      drain_flush ()
    end
  in
  drain_flush ();
  List.iter (fun c -> c.dead <- true) !conns;
  reap ();
  (* Late handoffs that raced the drain: close them too. *)
  List.iter
    (fun fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.live)
    (Edb_util.Mpsc.drain ex.inbox);
  Edb_obs.Registry.Gauge.set ex.g_conns 0.

(* ------------------------------------------------------------------ *)
(* Acceptor and admission                                              *)
(* ------------------------------------------------------------------ *)

let reject t fd =
  Metrics.incr t.metrics Metrics.Rejects;
  ignore
    (send_response fd
       (Protocol.Err
          { code = Protocol.err_busy; message = "server at capacity" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Admit while the live-connection population is below
   [workers + queue_depth]; otherwise reject immediately.  Admitted
   connections go round-robin to an executor's inbox, with a self-pipe
   byte so the executor's select wakes now rather than at its tick. *)
let admit t fd =
  if Atomic.get t.live >= t.max_conns then reject t fd
  else begin
    Atomic.incr t.live;
    let i = Atomic.fetch_and_add t.rr 1 mod Array.length t.executors in
    let ex = t.executors.(i) in
    Edb_util.Mpsc.push ex.inbox fd;
    match Unix.write_substring ex.wake_w "w" 0 1 with
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        () (* pipe full: a wakeup is already pending *)
    | exception Unix.Unix_error _ -> ()
  end

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select t.listeners [] [] tick with
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ -> admit t fd
              | exception Unix.Unix_error _ -> ())
            ready
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Thread.delay tick);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket *)
  | _ -> failwith (path ^ " exists and is not a socket")
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let make_executor i =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    ex_id = i;
    inbox = Edb_util.Mpsc.create ();
    wake_r;
    wake_w;
    g_conns = Edb_obs.Registry.gauge (Printf.sprintf "server_d%d_connections" i);
    g_queue = Edb_obs.Registry.gauge (Printf.sprintf "server_d%d_batch" i);
  }

let start t =
  if t.started then invalid_arg "Server.start: already started";
  t.started <- true;
  let listeners =
    (match t.config.unix_socket with
    | Some path ->
        Log.info (fun m -> m "listening on unix:%s" path);
        [ bind_unix path ]
    | None -> [])
    @
    match t.config.tcp with
    | Some (host, port) ->
        Log.info (fun m -> m "listening on tcp:%s:%d" host port);
        [ bind_tcp host port ]
    | None -> []
  in
  t.listeners <- listeners;
  t.executors <- Array.init t.ndomains make_executor;
  Log.info (fun m ->
      m "%d executor domain%s, %d max connections" t.ndomains
        (if t.ndomains = 1 then "" else "s")
        t.max_conns);
  t.domains_h <-
    Array.to_list
      (Array.map (fun ex -> Domain.spawn (fun () -> executor_loop t ex))
         t.executors);
  t.threads <- [ Thread.create accept_loop t ]

let stop t = Atomic.set t.stopping true

(* Normal-context teardown: join the acceptor and the executor domains,
   close leftovers, unlink the socket.  Runs after the flag is set. *)
let join_and_close t =
  List.iter Thread.join t.threads;
  t.threads <- [];
  List.iter Domain.join t.domains_h;
  t.domains_h <- [];
  (* Handoffs that raced both the acceptor's exit and the executors'
     final inbox drain. *)
  Array.iter
    (fun ex ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        (Edb_util.Mpsc.drain ex.inbox);
      (try Unix.close ex.wake_r with Unix.Unix_error _ -> ());
      try Unix.close ex.wake_w with Unix.Unix_error _ -> ())
    t.executors;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  t.listeners <- [];
  match t.config.unix_socket with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let wait t =
  while not (Atomic.get t.stopping) do
    Thread.delay (tick /. 2.)
  done;
  join_and_close t

let run t =
  start t;
  (* Handlers only flip the atomic flag: nothing signal-unsafe, and every
     blocking loop polls the flag within one tick. *)
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s handler))
      [ Sys.sigint; Sys.sigterm ]
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  wait t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
  Log.info (fun m -> m "drained and stopped")
