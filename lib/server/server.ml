(* The resident daemon: listeners, worker pool, admission control.

   Threading model: one accept thread multiplexes all listening sockets
   (Unix-domain and/or TCP) with a short select timeout so it can observe
   shutdown; accepted connections go into a bounded queue consumed by a
   fixed pool of worker threads, each of which owns one connection at a
   time for that connection's whole life.  When the queue is full the
   accept thread replies `ERR busy` and closes immediately — saturation
   degrades into fast rejections, never into unbounded queueing or a hang
   (the admission-control half of the paper's "interactive" promise).

   Timeouts: reads poll with a small select tick, so a worker blocked on
   a quiet client notices both the idle deadline and a server shutdown
   within a tick.  The per-request deadline is checked after evaluation —
   OCaml compute can't be safely interrupted mid-polynomial, so an
   overrunning query costs its own latency but is reported to the client
   as `ERR timeout` and counted, keeping the contract observable.

   Shutdown (`stop`, wired to SIGINT/SIGTERM by `run`): a single atomic
   flag.  Signal handlers only set the flag — no locks, no allocation
   hazards; the accept loop and every session loop poll it and drain:
   in-flight requests complete, their replies are written, then
   connections and listeners close and `wait`/`run` return. *)

type config = {
  unix_socket : string option;
  tcp : (string * int) option;  (** bind host, port *)
  workers : int;
  queue_depth : int;  (** pending-connection bound beyond the workers *)
  request_deadline : float;  (** seconds; <= 0 disables *)
  idle_timeout : float;  (** seconds a connection may sit quiet *)
  catalog_capacity : int;
  catalog_bytes : int option;  (** byte budget for resident summaries *)
  cache_capacity : int;
}

let default_config =
  {
    unix_socket = None;
    tcp = None;
    workers = 8;
    queue_depth = 16;
    request_deadline = 10.;
    idle_timeout = 60.;
    catalog_capacity = 8;
    catalog_bytes = None;
    cache_capacity = 4096;
  }

type t = {
  config : config;
  catalog : Catalog.t;
  metrics : Metrics.t;
  stopping : bool Atomic.t;
  queue : Unix.file_descr Queue.t;
  mutable busy_workers : int;  (* guarded by queue_lock *)
  queue_lock : Mutex.t;
  queue_nonempty : Condition.t;
  mutable listeners : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable started : bool;
}

let tick = 0.25 (* seconds between shutdown-flag checks in blocking ops *)

let log_src = Logs.Src.create "edb.server" ~doc:"EntropyDB summary server"

module Log = (val Logs.src_log log_src : Logs.LOG)

let create ?catalog config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_depth < 0 then
    invalid_arg "Server.create: queue_depth must be >= 0";
  if config.unix_socket = None && config.tcp = None then
    invalid_arg "Server.create: no listener configured";
  let catalog =
    match catalog with
    | Some c -> c
    | None ->
        Catalog.create ~capacity:config.catalog_capacity
          ?budget_bytes:config.catalog_bytes
          ~cache_capacity:config.cache_capacity ()
  in
  {
    config;
    catalog;
    metrics = Metrics.create ();
    stopping = Atomic.make false;
    queue = Queue.create ();
    busy_workers = 0;
    queue_lock = Mutex.create ();
    queue_nonempty = Condition.create ();
    listeners = [];
    threads = [];
    started = false;
  }

let catalog t = t.catalog
let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done;
    true
  with Unix.Unix_error _ | Sys_error _ -> false

let send_response fd response =
  write_all fd (String.concat "\n" (Protocol.print_response response) ^ "\n")

(* Buffered line reader that polls the shutdown flag while waiting. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t }

let make_reader fd = { fd; buf = Buffer.create 512 }

type read_result = Line of string | Eof | Idle | Stopped

let buffered_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      let line =
        if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
        else String.sub s 0 i
      in
      Some line

let read_line t r ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match buffered_line r with
    | Some line -> Line line
    | None ->
        if Atomic.get t.stopping then Stopped
        else if Unix.gettimeofday () > deadline then Idle
        else begin
          match Unix.select [ r.fd ] [] [] tick with
          | [], _, _ -> loop ()
          | _ -> (
              match Unix.read r.fd chunk 0 (Bytes.length chunk) with
              | 0 -> Eof
              | n ->
                  Buffer.add_subbytes r.buf chunk 0 n;
                  loop ()
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                ->
                  loop ()
              | exception (Unix.Unix_error _ | Sys_error _) -> Eof)
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | exception (Unix.Unix_error _ | Sys_error _) -> Eof
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let handle_request t line =
  match Protocol.parse_request line with
  | Error m ->
      Metrics.incr t.metrics Metrics.Errors;
      (Protocol.Err { code = Protocol.err_proto; message = m }, Handler.Keep)
  | Ok request ->
      let t0 = Unix.gettimeofday () in
      let response, outcome =
        Edb_obs.Obs.with_span "server.request" ~cat:"serve"
          ~attrs:(fun () -> [ ("request", Protocol.request_tag request) ])
          (fun () ->
            Handler.handle ~catalog:t.catalog ~metrics:t.metrics request)
      in
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.observe t.metrics dt;
      let response =
        if t.config.request_deadline > 0. && dt > t.config.request_deadline
        then begin
          Metrics.incr t.metrics Metrics.Timeouts;
          Protocol.Err
            {
              code = Protocol.err_timeout;
              message =
                Printf.sprintf "request exceeded deadline (%.3fs > %.3fs)" dt
                  t.config.request_deadline;
            }
        end
        else response
      in
      (match response with
      | Protocol.Err _ -> Metrics.incr t.metrics Metrics.Errors
      | Protocol.Ok _ -> ());
      (response, outcome)

let session t fd =
  Metrics.incr t.metrics Metrics.Connections;
  let r = make_reader fd in
  let rec loop () =
    match read_line t r ~timeout:t.config.idle_timeout with
    | Stopped | Eof -> ()
    | Idle ->
        ignore
          (send_response fd
             (Protocol.Err
                { code = Protocol.err_timeout; message = "idle timeout" }))
    | Line line when String.trim line = "" -> loop ()
    | Line line ->
        Metrics.incr t.metrics Metrics.Requests;
        let response, outcome = handle_request t line in
        let sent = send_response fd response in
        if sent && outcome = Handler.Keep && not (Atomic.get t.stopping) then
          loop ()
  in
  (try loop () with e -> Log.err (fun m -> m "session: %s" (Printexc.to_string e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker pool and admission                                           *)
(* ------------------------------------------------------------------ *)

let worker_loop t =
  let rec next () =
    Mutex.lock t.queue_lock;
    let job =
      let rec wait () =
        if not (Queue.is_empty t.queue) then begin
          t.busy_workers <- t.busy_workers + 1;
          Some (Queue.pop t.queue)
        end
        else if Atomic.get t.stopping then None
        else begin
          Condition.wait t.queue_nonempty t.queue_lock;
          wait ()
        end
      in
      wait ()
    in
    Mutex.unlock t.queue_lock;
    match job with
    | Some fd ->
        session t fd;
        Mutex.lock t.queue_lock;
        t.busy_workers <- t.busy_workers - 1;
        Mutex.unlock t.queue_lock;
        next ()
    | None -> ()
  in
  next ()

let reject t fd =
  Metrics.incr t.metrics Metrics.Rejects;
  ignore
    (send_response fd
       (Protocol.Err
          { code = Protocol.err_busy; message = "server at capacity" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Admit while there is either a free worker or room in the pending queue;
   otherwise reject immediately.  The in-flight population is therefore
   bounded by workers + queue_depth connections. *)
let admit t fd =
  let admitted =
    Mutex.lock t.queue_lock;
    let in_flight = t.busy_workers + Queue.length t.queue in
    let ok = in_flight < t.config.workers + t.config.queue_depth in
    if ok then begin
      Queue.push fd t.queue;
      Condition.signal t.queue_nonempty
    end;
    Mutex.unlock t.queue_lock;
    ok
  in
  if not admitted then reject t fd

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select t.listeners [] [] tick with
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ -> admit t fd
              | exception Unix.Unix_error _ -> ())
            ready
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Thread.delay tick);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path (* stale socket *)
  | _ -> failwith (path ^ " exists and is not a socket")
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let start t =
  if t.started then invalid_arg "Server.start: already started";
  t.started <- true;
  let listeners =
    (match t.config.unix_socket with
    | Some path ->
        Log.info (fun m -> m "listening on unix:%s" path);
        [ bind_unix path ]
    | None -> [])
    @
    match t.config.tcp with
    | Some (host, port) ->
        Log.info (fun m -> m "listening on tcp:%s:%d" host port);
        [ bind_tcp host port ]
    | None -> []
  in
  t.listeners <- listeners;
  let workers =
    List.init t.config.workers (fun _ -> Thread.create worker_loop t)
  in
  let acceptor = Thread.create accept_loop t in
  t.threads <- acceptor :: workers

let stop t = Atomic.set t.stopping true

(* Normal-context teardown: wake sleeping workers, join everything, close
   and unlink the listeners.  Runs after the stopping flag is set. *)
let join_and_close t =
  Mutex.lock t.queue_lock;
  Condition.broadcast t.queue_nonempty;
  Mutex.unlock t.queue_lock;
  List.iter Thread.join t.threads;
  t.threads <- [];
  (* Reject connections that were queued but never picked up. *)
  Queue.iter (fun fd -> reject t fd) t.queue;
  Queue.clear t.queue;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  match t.config.unix_socket with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let wait t =
  while not (Atomic.get t.stopping) do
    Thread.delay (tick /. 2.)
  done;
  join_and_close t

let run t =
  start t;
  (* Handlers only flip the atomic flag: nothing signal-unsafe, and every
     blocking loop polls the flag within one tick. *)
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s handler))
      [ Sys.sigint; Sys.sigterm ]
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  wait t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
  Log.info (fun m -> m "drained and stopped")
