(** Blocking summary-server client: one socket, synchronous
    request/response, receive-timeout bounded.  Used by the CLI
    ([entropydb client]), the tests, and each load-generator thread. *)

type address = Unix_socket of string | Tcp of string * int

type t

val pp_address : Format.formatter -> address -> unit

val connect : ?timeout:float -> address -> (t, string) result
(** [timeout] (default 30 s) bounds every subsequent read. *)

val close : t -> unit

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [Error] is a transport failure (connect/read/write/timeout); protocol
    errors come back as [Ok (Err _)]. *)

(** {2 Pipelining (protocol v2)} — many requests in flight on one
    connection, responses matched by id. *)

val send : t -> ?id:string -> Protocol.request -> (unit, string) result
(** Write one request without waiting for its response; [id] tags the
    frame ({!Protocol.print_tagged_request}) so the reply can be matched
    out of order. *)

val recv :
  t -> (string option * Protocol.response, string) result
(** Read one complete response (header + payload), returning its echoed
    id ([None] for an untagged / v1 response). *)

val pipelined :
  t -> Protocol.request list -> (Protocol.response list, string) result
(** Send the whole list as one pipelined window (ids ["0"], ["1"], …),
    then collect responses in any order and return them in request
    order.  Writes are chunked and interleaved with reads so that
    arbitrarily large windows never leave the server's responses
    undrained (which its slow-loris output cap would punish with a
    close).  An untagged response — the server's connection-level
    [ERR busy] reject racing the window — answers {e every} request
    in the window, so saturation surfaces as [Ok [Err busy; …]]
    rather than a broken-pipe transport error. *)

(** {2 Convenience wrappers} — flatten protocol errors into [Error
    "code: message"] and return the payload lines. *)

val hello : t -> (string list, string) result
val ping : t -> (string list, string) result
val list : t -> (string list, string) result
val stats : t -> (string list, string) result
val load : t -> name:string -> path:string -> (string list, string) result

val refresh : t -> name:string -> path:string -> (string list, string) result
(** Ingest a batch CSV into the resident summary [name] (server-side
    incremental maintenance + atomic swap). *)


val query : t -> name:string -> sql:string -> (string list, string) result

val attach :
  t -> name:string -> path:string -> ?rate:float -> unit ->
  (string list, string) result
(** Attach a base-table CSV (and a uniform sample at [rate], server
    default 1%) to a resident summary, enabling [plan]. *)

val plan :
  t -> name:string -> ci:string -> sql:string -> (string list, string) result
(** Error-aware routed query; [ci] is a planner target such as ["95:2"].
    The payload leads with a [route <name> kind <kind> reason <r>] line. *)

val explain : t -> name:string -> sql:string -> (string list, string) result

val quit : t -> (string list, string) result
(** Sends QUIT and closes the socket regardless of the reply. *)

val estimate_of_payload : string list -> float option
(** The value of the [estimate <v>] line of a QUERY payload, if any. *)
