(* Request execution: a parsed Protocol.request against the catalog.

   This is the server's brain, kept free of sockets and threads so the
   whole command surface is unit-testable in-process.  SQL handling
   mirrors `entropydb query`: compile against the summary's schema, then
   dispatch on aggregate/grouping.  Every failure mode — parse errors,
   unknown summaries, unsupported query shapes, evaluation exceptions —
   becomes a protocol error reply; nothing may escape as an exception,
   because one request must never take down a worker or its connection.

   Plain conjunctive COUNT queries and conjunctive GROUP BYs (the
   interactive-exploration hot paths) go through the entry's shared
   Cache; everything else evaluates the summary directly. *)

open Edb_storage
open Entropydb_core
module T = Edb_query.Translate

let float_str v = Printf.sprintf "%.17g" v

let err code fmt =
  Printf.ksprintf (fun message -> Protocol.Err { code; message }) fmt

(* REFRESH accounting: successes/failures and end-to-end latency (CSV
   parse + ingest + disk rewrite + swap), in the global registry so STATS
   and `entropydb stats` surface them as obs_ingest_refresh* lines. *)
let m_refreshes = Edb_obs.Registry.counter "ingest_refreshes"
let m_refresh_failures = Edb_obs.Registry.counter "ingest_refresh_failures"
let m_refresh_latency = Edb_obs.Registry.histogram "ingest_refresh"

(* ------------------------------------------------------------------ *)
(* SQL execution                                                       *)
(* ------------------------------------------------------------------ *)

(* One cached batched evaluation yields every group's estimate AND its
   stddev (the kernel exposes each cell's restricted P), so there is no
   per-group re-evaluation here at all. *)
let group_lines (entry : Catalog.entry) schema (c : T.compiled) predicate =
  let groups =
    Cache.estimate_groups entry.Catalog.cache ~attrs:c.group_attrs predicate
  in
  let groups =
    match c.order with
    | Some Edb_query.Ast.Asc ->
        List.sort
          (fun (ka, a, _) (kb, b, _) ->
            let o = Float.compare a b in
            if o <> 0 then o else Stdlib.compare ka kb)
          groups
    | _ ->
        List.sort
          (fun (ka, a, _) (kb, b, _) ->
            let o = Float.compare b a in
            if o <> 0 then o else Stdlib.compare ka kb)
          groups
  in
  let groups =
    match c.limit with
    | Some k -> List.filteri (fun i _ -> i < k) groups
    | None -> groups
  in
  List.map
    (fun (values, est, sd) ->
      let labels =
        List.map2
          (fun attr v -> Domain.label (Schema.domain schema attr) v)
          c.group_attrs values
      in
      (* Labels go last: they may contain spaces. *)
      Printf.sprintf "group %s %s %s" (float_str est) (float_str sd)
        (String.concat "," labels))
    groups

let run_sql (entry : Catalog.entry) sql =
  let schema = Catalog.schema entry in
  match T.compile_string schema sql with
  | Error e -> err Protocol.err_parse "%s" e.T.message
  | Ok c -> (
      try
        match c with
        | { aggregate = T.Sum attr; _ } | { aggregate = T.Avg attr; _ }
          when T.conjunctive c = None ->
            err Protocol.err_unsupported
              "SUM/AVG over OR predicates is not supported (attribute %s)"
              (Schema.attr_name schema attr)
        | { aggregate = T.Sum attr; _ } ->
            let predicate = Option.get (T.conjunctive c) in
            let est = Catalog.estimate_sum entry ~attr predicate in
            let sd = sqrt (Catalog.variance_sum entry ~attr predicate) in
            Protocol.Ok
              [ "estimate " ^ float_str est; "stddev " ^ float_str sd ]
        | { aggregate = T.Avg attr; _ } -> (
            let predicate = Option.get (T.conjunctive c) in
            match Catalog.estimate_avg entry ~attr predicate with
            | Some est -> Protocol.Ok [ "estimate " ^ float_str est ]
            | None -> Protocol.Ok [ "estimate undefined" ])
        | { group_attrs = []; disjuncts = [ predicate ]; _ } ->
            (* The hot path: conjunctive COUNT through the shared cache. *)
            let est = Cache.estimate entry.Catalog.cache predicate in
            let sd = Catalog.stddev entry predicate in
            Protocol.Ok
              [ "estimate " ^ float_str est; "stddev " ^ float_str sd ]
        | { group_attrs = []; disjuncts; _ } ->
            let est = Catalog.estimate_disjuncts entry disjuncts in
            let sd = Catalog.stddev_disjuncts entry disjuncts in
            Protocol.Ok
              [ "estimate " ^ float_str est; "stddev " ^ float_str sd ]
        | _ -> (
            match T.conjunctive c with
            | None ->
                err Protocol.err_unsupported
                  "GROUP BY over OR predicates is not supported"
            | Some predicate ->
                Protocol.Ok (group_lines entry schema c predicate))
      with
      | Invalid_argument m -> err Protocol.err_unsupported "%s" m
      | e -> err Protocol.err_internal "%s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Planner routing (PLAN verb, EXPLAIN candidate table)                 *)
(* ------------------------------------------------------------------ *)

module P = Edb_plan.Plan
module E = Edb_plan.Estimator

(* The entry's registered routes: always its summary (heap or mapped —
   the two answer bitwise identically); plus the exact relation and a
   uniform sample once a base table is ATTACHed. *)
let entry_estimators (entry : Catalog.entry) =
  let summary =
    match entry.Catalog.backing with
    | Catalog.Heap sh -> E.of_sharded sh
    | Catalog.Mapped m -> E.of_mapped m
  in
  match entry.Catalog.aux with
  | None -> [ summary ]
  | Some aux ->
      [ summary; E.of_sample aux.Catalog.sample; E.of_relation aux.Catalog.rel ]

(* Only conjunctive COUNT, SUM, and COUNT GROUP BY have error models on
   every backend; OR-predicates and AVG stay on the default QUERY path. *)
let shape_of_compiled (c : T.compiled) =
  match T.conjunctive c with
  | None -> None
  | Some pred -> (
      match c with
      | { aggregate = T.Count; group_attrs = []; _ } -> Some (P.Count pred)
      | { aggregate = T.Sum attr; group_attrs = []; _ } ->
          Some (P.Sum { attr; pred })
      | { aggregate = T.Count; group_attrs; _ } ->
          Some (P.Groups { attrs = group_attrs; pred })
      | _ -> None)

let route_line (d : P.decision) =
  Printf.sprintf "route %s kind %s reason %s"
    (E.name d.P.chosen.P.estimator)
    (E.kind_name (E.kind d.P.chosen.P.estimator))
    d.P.reason

let plan_group_lines schema (c : T.compiled) cells =
  let cells =
    List.map
      (fun (values, (a : E.answer)) ->
        (values, a.E.est, sqrt (Float.max 0. a.E.var)))
      cells
  in
  let cells =
    match c.T.order with
    | Some Edb_query.Ast.Asc ->
        List.sort
          (fun (ka, a, _) (kb, b, _) ->
            let o = Float.compare a b in
            if o <> 0 then o else Stdlib.compare ka kb)
          cells
    | _ ->
        List.sort
          (fun (ka, a, _) (kb, b, _) ->
            let o = Float.compare b a in
            if o <> 0 then o else Stdlib.compare ka kb)
          cells
  in
  let cells =
    match c.T.limit with
    | Some k -> List.filteri (fun i _ -> i < k) cells
    | None -> cells
  in
  List.map
    (fun (values, est, sd) ->
      let labels =
        List.map2
          (fun attr v -> Domain.label (Schema.domain schema attr) v)
          c.T.group_attrs values
      in
      Printf.sprintf "group %s %s %s" (float_str est) (float_str sd)
        (String.concat "," labels))
    cells

let plan_sql (entry : Catalog.entry) ~ci sql =
  let schema = Catalog.schema entry in
  match P.target_of_string ci with
  | exception Invalid_argument m -> err Protocol.err_parse "%s" m
  | target -> (
      match T.compile_string schema sql with
      | Error e -> err Protocol.err_parse "%s" e.T.message
      | Ok c -> (
          match shape_of_compiled c with
          | None ->
              err Protocol.err_unsupported
                "PLAN supports conjunctive COUNT, SUM, and COUNT GROUP BY"
          | Some shape -> (
              try
                let d = P.choose ~target (entry_estimators entry) shape in
                match P.chosen_groups d with
                | Some cells ->
                    Protocol.Ok
                      (route_line d :: plan_group_lines schema c cells)
                | None ->
                    let a = P.chosen_answer d in
                    Protocol.Ok
                      [
                        route_line d;
                        "estimate " ^ float_str a.E.est;
                        "stddev " ^ float_str (sqrt (Float.max 0. a.E.var));
                      ]
              with
              | Invalid_argument m -> err Protocol.err_unsupported "%s" m
              | e -> err Protocol.err_internal "%s" (Printexc.to_string e))))

(* The eager decision for EXPLAIN: every candidate evaluated.  Ground
   truth is read off the exact candidate's own answer when one is
   registered (it has zero variance), so observed errors cost nothing
   extra. *)
let plan_explain_lines (entry : Catalog.entry) (c : T.compiled) =
  match shape_of_compiled c with
  | None -> [ "plan unsupported" ]
  | Some shape -> (
      try
        let d =
          P.choose_all ~target:P.default_target (entry_estimators entry) shape
        in
        let truth =
          List.find_map
            (fun (cand : P.candidate) ->
              match (E.kind cand.P.estimator, cand.P.evaluation) with
              | E.Exact, Some ev when ev.P.groups = None ->
                  Some ev.P.answer.E.est
              | _ -> None)
            d.P.candidates
        in
        Edb_plan.Explain.lines ?truth d
      with Invalid_argument m -> [ "plan unsupported " ^ m ])

let explain_sql (entry : Catalog.entry) sql =
  let schema = Catalog.schema entry in
  match T.compile_string schema sql with
  | Error e -> err Protocol.err_parse "%s" e.T.message
  | Ok c ->
      let aggregate =
        match c.aggregate with
        | T.Count -> "count"
        | T.Sum a -> "sum " ^ Schema.attr_name schema a
        | T.Avg a -> "avg " ^ Schema.attr_name schema a
      in
      let restricted p =
        Predicate.restricted_attrs p
        |> List.map (fun a ->
               let r = Option.get (Predicate.restriction p a) in
               Printf.sprintf "%s:%s" (Schema.attr_name schema a)
                 (String.concat ","
                    (List.map
                       (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi)
                       (Edb_util.Ranges.intervals r))))
        |> String.concat " "
      in
      (* Conjunctive COUNTs and conjunctive GROUP BYs both go through the
         entry's cache; disjunctions and SUM/AVG do not. *)
      let cacheable = c.aggregate = T.Count && List.length c.disjuncts = 1 in
      Protocol.Ok
        ([
           "aggregate " ^ aggregate;
           Printf.sprintf "disjuncts %d" (List.length c.disjuncts);
           Printf.sprintf "group_attrs %s"
             (if c.group_attrs = [] then "-"
              else
                String.concat ","
                  (List.map (Schema.attr_name schema) c.group_attrs));
           Printf.sprintf "cacheable %b" cacheable;
         ]
        @ List.map (fun p -> "where " ^ restricted p) c.disjuncts
        @ plan_explain_lines entry c)

(* ------------------------------------------------------------------ *)
(* STATS                                                               *)
(* ------------------------------------------------------------------ *)

let stats_lines catalog metrics =
  let m = Metrics.snapshot metrics in
  let c = Catalog.stats catalog in
  let ch, cm, ce = Catalog.cache_stats catalog in
  let rate =
    if ch + cm = 0 then 0. else float_of_int ch /. float_of_int (ch + cm)
  in
  [
    Printf.sprintf "uptime_s %.1f" m.Metrics.uptime_s;
    Printf.sprintf "connections %d" m.Metrics.connections;
    Printf.sprintf "requests %d" m.Metrics.requests;
    Printf.sprintf "errors %d" m.Metrics.errors;
    Printf.sprintf "timeouts %d" m.Metrics.timeouts;
    Printf.sprintf "rejects %d" m.Metrics.rejects;
    Printf.sprintf "catalog_resident %d" c.Catalog.resident;
    Printf.sprintf "catalog_resident_mapped %d" c.Catalog.resident_mapped;
    Printf.sprintf "catalog_capacity %d" c.Catalog.capacity;
    Printf.sprintf "catalog_budget_bytes %d"
      (Option.value c.Catalog.budget_bytes ~default:0);
    Printf.sprintf "catalog_resident_bytes %d" c.Catalog.resident_bytes;
    Printf.sprintf "catalog_mapped_bytes %d" c.Catalog.mapped_bytes;
    Printf.sprintf "catalog_heap_bytes %d" c.Catalog.heap_bytes;
    Printf.sprintf "catalog_pinned %d" c.Catalog.pinned;
    Printf.sprintf "catalog_slots %d" c.Catalog.slots;
    Printf.sprintf "catalog_shards %d" c.Catalog.shards;
    Printf.sprintf "catalog_hits %d" c.Catalog.hits;
    Printf.sprintf "catalog_misses %d" c.Catalog.misses;
    Printf.sprintf "catalog_loads %d" c.Catalog.loads;
    Printf.sprintf "catalog_evictions %d" c.Catalog.evictions;
    Printf.sprintf "catalog_reopens %d" c.Catalog.reopens;
    Printf.sprintf "cache_hits %d" ch;
    Printf.sprintf "cache_misses %d" cm;
    Printf.sprintf "cache_evictions %d" ce;
    Printf.sprintf "cache_hit_rate %.4f" rate;
    Printf.sprintf "latency_count %d" m.Metrics.observations;
    Printf.sprintf "latency_p50_us %.1f" m.Metrics.p50_us;
    Printf.sprintf "latency_p95_us %.1f" m.Metrics.p95_us;
    Printf.sprintf "latency_p99_us %.1f" m.Metrics.p99_us;
    Printf.sprintf "latency_max_us %.1f" m.Metrics.max_us;
  ]
  (* Global obs registry (engine-level counters/gauges/histograms shared
     by everything in the process), so STATS and `entropydb stats` read
     the same source of truth as the trace/bench tooling. *)
  @ (let r = Edb_obs.Registry.snapshot () in
     List.map
       (fun (name, v) -> Printf.sprintf "obs_%s %d" name v)
       r.Edb_obs.Registry.counters
     @ List.map
         (fun (name, v) -> Printf.sprintf "obs_%s %.6g" name v)
         r.Edb_obs.Registry.gauges
     @ List.concat_map
         (fun (name, (h : Edb_obs.Registry.Hist.snapshot)) ->
           [
             Printf.sprintf "obs_%s_count %d" name h.count;
             Printf.sprintf "obs_%s_p50_us %.1f" name
               (Edb_obs.Registry.Hist.quantile h 0.50);
             Printf.sprintf "obs_%s_p99_us %.1f" name
               (Edb_obs.Registry.Hist.quantile h 0.99);
           ])
         r.Edb_obs.Registry.histograms)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type outcome = Keep | Close

(* Resolve + pin a summary for the duration of one request: resident
   hit, or transparent reopen after a budget eviction.  Unknown names
   keep the historical err_unknown wording; a reopen that fails (file
   deleted or corrupted since the LOAD) is a load error. *)
let with_summary catalog name f =
  if not (Catalog.known catalog name) then
    err Protocol.err_unknown "no summary named %s" name
  else
    match Catalog.with_entry catalog name f with
    | Ok response -> response
    | Error m -> err Protocol.err_load "%s" m

let handle ~catalog ~metrics (request : Protocol.request) :
    Protocol.response * outcome =
  match request with
  | Protocol.Hello v ->
      (* Both protocol versions are served on every connection: v2 is
         v1 plus optional per-request id tags, so there is no mode to
         negotiate — HELLO just confirms the dialect the client names. *)
      if v = Protocol.version || v = Protocol.version_v2 then
        (Protocol.Ok [ v ^ " entropydb-server" ], Keep)
      else
        ( err Protocol.err_proto "unsupported protocol version %s (want %s or %s)"
            v Protocol.version Protocol.version_v2,
          Keep )
  | Protocol.Ping -> (Protocol.Ok [ "pong" ], Keep)
  | Protocol.Quit -> (Protocol.Ok [ "bye" ], Close)
  | Protocol.List ->
      let lines =
        List.map
          (fun (e : Catalog.entry) ->
            Printf.sprintf "summary %s cardinality %d shards %d kind %s path %s"
              e.Catalog.name (Catalog.cardinality e) (Catalog.num_shards e)
              (Catalog.kind_name e) e.Catalog.path)
          (Catalog.entries catalog)
      in
      (Protocol.Ok lines, Keep)
  | Protocol.Load { name; path } -> (
      match Catalog.load catalog ~name ~path with
      | Ok entry ->
          ( Protocol.Ok
              [
                Printf.sprintf "loaded %s cardinality %d shards %d kind %s" name
                  (Catalog.cardinality entry) (Catalog.num_shards entry)
                  (Catalog.kind_name entry);
              ],
            Keep )
      | Error m -> (err Protocol.err_load "%s" m, Keep))
  | Protocol.Stats -> (Protocol.Ok (stats_lines catalog metrics), Keep)
  | Protocol.Query { name; sql } ->
      (with_summary catalog name (fun entry -> run_sql entry sql), Keep)
  | Protocol.Explain { name; sql } ->
      (with_summary catalog name (fun entry -> explain_sql entry sql), Keep)
  | Protocol.Attach { name; path; rate } -> (
      let rate = Option.value rate ~default:0.01 in
      match Catalog.attach catalog ~name ~path ~rate with
      | Ok entry ->
          let aux = Option.get entry.Catalog.aux in
          ( Protocol.Ok
              [
                Printf.sprintf "attached %s rows %d sample_rows %d rate %g"
                  name
                  (Relation.cardinality aux.Catalog.rel)
                  (Edb_sampling.Sample.size aux.Catalog.sample)
                  rate;
              ],
            Keep )
      | Error m -> (err Protocol.err_load "%s" m, Keep))
  | Protocol.Plan { name; ci; sql } ->
      (with_summary catalog name (fun entry -> plan_sql entry ~ci sql), Keep)
  | Protocol.Refresh { name; path } ->
      if not (Catalog.known catalog name) then
        (err Protocol.err_unknown "no summary named %s" name, Keep)
      else (
        let t0 = Edb_util.Timing.now_s () in
        match Catalog.refresh catalog ~name ~path with
        | Ok (_, info) ->
            Edb_obs.Registry.Counter.incr m_refreshes;
            Edb_obs.Registry.Hist.observe m_refresh_latency
              (Edb_util.Timing.now_s () -. t0);
            ( Protocol.Ok
                [
                  Printf.sprintf
                    "refreshed %s cardinality %d batch_rows %d batches %d \
                     sweeps %d"
                    name info.Catalog.cardinality info.Catalog.batch_rows
                    info.Catalog.batches info.Catalog.sweeps;
                ],
              Keep )
        | Error m ->
            Edb_obs.Registry.Counter.incr m_refresh_failures;
            (err Protocol.err_load "%s" m, Keep))
