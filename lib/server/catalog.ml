(* The server's directory of resident summaries.

   Summaries are built offline (`entropydb build`/`summarize`) and loaded
   by name from disk — flat files and sharded manifests alike, sniffed by
   magic (Edb_shard.Store), so clients never care how a summary was
   partitioned.  The catalog keeps at most [capacity] of them resident —
   an LRU over whole summaries, one level above the per-summary query
   cache — because a deployment may serve many datasets whose summaries
   together exceed memory even though each is tiny relative to its base
   data.

   Thread-safety: the table, LRU clock, and counters are mutex-guarded.
   Deserialization (the expensive part) runs outside the lock, so a slow
   LOAD never blocks queries against already-resident summaries; if two
   threads race to load the same name, both deserialize and the later
   insert wins, which is safe because summaries are immutable. *)

open Entropydb_core

type aux = {
  rel : Edb_storage.Relation.t;
  sample : Edb_sampling.Sample.t;
  rate : float;
  csv_path : string;
}

type entry = {
  name : string;
  path : string;
  summary : Edb_shard.Sharded.t;
  cache : Cache.t;
  mutable last_used : int;
  mutable aux : aux option;
}

type stats = {
  resident : int;
  capacity : int;
  shards : int;
  hits : int;
  misses : int;
  loads : int;
  evictions : int;
}

type t = {
  capacity : int;
  cache_capacity : int;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable loads : int;
  mutable evictions : int;
}

let create ?(capacity = 8) ?(cache_capacity = 4096) () =
  if capacity < 1 then invalid_arg "Catalog.create: capacity must be positive";
  {
    capacity;
    cache_capacity;
    table = Hashtbl.create 16;
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    loads = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Caller holds the lock. *)
let evict_lru t =
  while Hashtbl.length t.table > t.capacity do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some best when best.last_used <= e.last_used -> acc
          | _ -> Some e)
        t.table None
    in
    match victim with
    | None -> ()
    | Some e ->
        Hashtbl.remove t.table e.name;
        t.evictions <- t.evictions + 1
  done

let load t ~name ~path =
  match Edb_shard.Store.load path with
  | exception Serialize.Format_error m ->
      Error (Printf.sprintf "%s: bad summary file: %s" path m)
  | exception Sys_error m -> Error m
  | summary ->
      let entry =
        {
          name;
          path;
          summary;
          cache =
            Cache.of_fn ~capacity:t.cache_capacity
              ~groups:(fun ~attrs pred ->
                Edb_shard.Sharded.estimate_groups_with_stddev summary ~attrs
                  pred)
              (Edb_shard.Sharded.estimate summary);
          last_used = 0;
          aux = None;
        }
      in
      with_lock t (fun () ->
          t.tick <- t.tick + 1;
          entry.last_used <- t.tick;
          t.loads <- t.loads + 1;
          Hashtbl.replace t.table name entry;
          evict_lru t);
      Ok entry

let find t name =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table name with
      | Some entry ->
          entry.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some entry
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Attach a base-table CSV (index form, the summary's schema) to a
   resident summary: the relation (exact scan) plus a deterministic
   uniform sample of it become the entry's extra planner routes.  CSV
   parsing and sampling run outside the lock, like [load]; the sample's
   PRNG seed derives from (name, path) so re-attachment is
   reproducible. *)
let attach t ~name ~path ~rate =
  match find t name with
  | None ->
      Error (Printf.sprintf "no resident summary named %s; LOAD it first" name)
  | Some entry -> (
      if not (rate > 0. && rate <= 1.) then
        Error "attach rate must be in (0, 1]"
      else
        let schema = Edb_shard.Sharded.schema entry.summary in
        match Edb_storage.Csv_io.load_indices schema path with
        | exception Sys_error m -> Error m
        | Error e ->
            Error
              (Format.asprintf "%s: %a" path Edb_storage.Csv_io.pp_error e)
        | Ok rel ->
            let rng =
              Edb_util.Prng.create ~seed:(Hashtbl.hash (name, path)) ()
            in
            let sample = Edb_sampling.Uniform.create rng ~rate rel in
            with_lock t (fun () ->
                entry.aux <- Some { rel; sample; rate; csv_path = path });
            Ok entry)

type refresh_info = {
  batch_rows : int;
  cardinality : int;
  sweeps : int;
  batches : int;  (* journal length after the append *)
}

(* Incremental REFRESH: ingest a batch CSV into a resident summary and
   atomically swap the catalog entry.

   All the expensive work — CSV parse, delta-Φ, warm-started re-solve,
   atomic on-disk rewrite — runs outside the lock, on the worker thread
   serving the REFRESH.  Concurrent queries keep answering from the old
   entry (a request resolves its entry once via [find] and uses that
   immutable summary throughout, so no request ever mixes old and new
   answers).  The swap itself is one Hashtbl.replace under the lock with
   a *fresh* cache, so every cached answer derived from the old summary
   is invalidated by construction.  Any ATTACHed base table describes
   the pre-batch relation and is dropped — re-ATTACH after REFRESH. *)
let refresh t ~name ~path:csv_path =
  match find t name with
  | None ->
      Error (Printf.sprintf "no resident summary named %s; LOAD it first" name)
  | Some entry -> (
      if Edb_shard.Sharded.num_shards entry.summary <> 1 then
        Error
          (Printf.sprintf
             "REFRESH supports unsharded summaries; %s has %d shards" name
             (Edb_shard.Sharded.num_shards entry.summary))
      else
        let flat = (Edb_shard.Sharded.shards entry.summary).(0) in
        let schema = Summary.schema flat in
        match Edb_storage.Csv_io.load_indices schema csv_path with
        | exception Sys_error m -> Error m
        | Error e ->
            Error
              (Format.asprintf "%s: %a" csv_path Edb_storage.Csv_io.pp_error e)
        | Ok batch -> (
            match
              Edb_ingest.Ingest.append_with_stats
                ~source:(Filename.basename csv_path) flat batch
            with
            | exception Invalid_argument m -> Error m
            | summary', stats -> (
                match Edb_ingest.Ingest.save_atomic summary' entry.path with
                | exception Sys_error m -> Error m
                | () ->
                    let sharded = Edb_shard.Sharded.of_flat summary' in
                    let entry' =
                      {
                        name;
                        path = entry.path;
                        summary = sharded;
                        cache =
                          Cache.of_fn ~capacity:t.cache_capacity
                            ~groups:(fun ~attrs pred ->
                              Edb_shard.Sharded.estimate_groups_with_stddev
                                sharded ~attrs pred)
                            (Edb_shard.Sharded.estimate sharded);
                        last_used = 0;
                        aux = None;
                      }
                    in
                    with_lock t (fun () ->
                        t.tick <- t.tick + 1;
                        entry'.last_used <- t.tick;
                        Hashtbl.replace t.table name entry');
                    Ok
                      ( entry',
                        {
                          batch_rows = stats.Edb_ingest.Ingest.batch_rows;
                          cardinality = stats.Edb_ingest.Ingest.cardinality;
                          sweeps = stats.Edb_ingest.Ingest.sweeps;
                          batches =
                            Journal.batches (Summary.journal summary');
                        } ))))

let evict t name =
  with_lock t (fun () ->
      if Hashtbl.mem t.table name then begin
        Hashtbl.remove t.table name;
        t.evictions <- t.evictions + 1;
        true
      end
      else false)

let entries t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
      |> List.sort (fun a b -> compare a.name b.name))

let cache_stats t =
  List.fold_left
    (fun (h, m, e) entry ->
      let s = Cache.stats entry.cache in
      (h + s.Cache.hits, m + s.Cache.misses, e + s.Cache.evictions))
    (0, 0, 0) (entries t)

let stats t =
  with_lock t (fun () ->
      {
        resident = Hashtbl.length t.table;
        capacity = t.capacity;
        shards =
          Hashtbl.fold
            (fun _ e acc -> acc + Edb_shard.Sharded.num_shards e.summary)
            t.table 0;
        hits = t.hits;
        misses = t.misses;
        loads = t.loads;
        evictions = t.evictions;
      })
