(* The server's directory of resident summaries, under a byte budget.

   Summaries are built offline (`entropydb build`/`summarize`) and loaded
   by name from disk — flat files, sharded manifests, and mmap-able v3
   files alike, sniffed by magic (Edb_shard.Store.open_any).  v3 files
   become zero-copy *mapped* entries: O(header + manifest) to open, body
   pages file-backed and clean.  Everything else heap-loads.

   Residency is *weighted*: every entry is charged its byte footprint
   (mapped file size, or estimated kernel-table heap size) against a
   configurable budget, and eviction is weighted LRU — drop the
   least-recently-used unpinned entries until both the byte budget and
   the entry-count capacity hold.  A deployment can therefore serve a
   thousand small summaries under a budget far below their total
   footprint, paying a cheap reopen on the cold ones.

   Eviction keeps the name→path *slot* (the persistent directory): a
   later request for an evicted name transparently reopens it from disk
   — O(1) for v3 files — so budget-driven eviction is invisible to
   clients, it only shows up as latency and in the reopen counter.
   Explicit [evict] removes the slot too (the name is gone).

   Pinning: a request resolves its entry once ([with_entry]) and holds a
   pin for its whole execution; pinned entries are never chosen for
   eviction, so an in-flight request can never have its mapping's
   accounting pulled out from under it, and the byte budget may
   transiently overshoot by the pinned bytes.  (Safety does not depend
   on this — an evicted entry stays valid while referenced, since the
   mapping lives until the Bigarray is collected — but pinning keeps the
   books honest and the residency stats meaningful.)

   Thread-safety: slots, the LRU clock, byte accounting, and counters
   are mutex-guarded.  Opening (the expensive part for heap formats)
   runs outside the lock, so a slow LOAD never blocks queries against
   resident summaries; if two threads race to open the same name, both
   open and the later insert wins, which is safe because summaries are
   immutable. *)

open Entropydb_core

(* Open latency, O(header + manifest) for v3 files regardless of body
   size — `bench catalog` gates on this histogram's shape.  Values are
   *nanoseconds* (the name carries the unit, like kernel_eval_ns):
   mapped opens sit around the microsecond scale where the histogram's
   native microsecond resolution would flatten them. *)
let open_ns_hist = Edb_obs.Registry.histogram "catalog_open_ns"

type aux = {
  rel : Edb_storage.Relation.t;
  sample : Edb_sampling.Sample.t;
  rate : float;
  csv_path : string;
}

type backing =
  | Heap of Edb_shard.Sharded.t
  | Mapped of Mapped.t

type entry = {
  name : string;
  path : string;
  backing : backing;
  bytes : int; (* footprint charged against the budget *)
  cache : Cache.t;
  mutable last_used : int;
  mutable pins : int; (* in-flight requests; eviction skips > 0 *)
  mutable aux : aux option;
}

(* A known name: its path survives eviction so the entry can be
   reopened transparently. *)
type slot = { s_name : string; mutable s_path : string; mutable s_resident : entry option }

type stats = {
  resident : int;
  resident_mapped : int;
  capacity : int;
  budget_bytes : int option;
  resident_bytes : int;
  mapped_bytes : int;
  heap_bytes : int;
  pinned : int;
  slots : int;
  shards : int;
  hits : int;
  misses : int;
  loads : int;
  evictions : int;
  reopens : int;
}

type t = {
  capacity : int;
  budget : int option;
  cache_capacity : int;
  table : (string, slot) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable resident_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable loads : int;
  mutable evictions : int;
  mutable reopens : int;
}

let create ?(capacity = 8) ?budget_bytes ?(cache_capacity = 4096) () =
  if capacity < 1 then invalid_arg "Catalog.create: capacity must be positive";
  (match budget_bytes with
  | Some b when b < 1 ->
      invalid_arg "Catalog.create: budget_bytes must be positive"
  | _ -> ());
  {
    capacity;
    budget = budget_bytes;
    cache_capacity;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    tick = 0;
    resident_bytes = 0;
    hits = 0;
    misses = 0;
    loads = 0;
    evictions = 0;
    reopens = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Backing dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let kind_name entry =
  match entry.backing with Heap _ -> "heap" | Mapped _ -> "mapped"

let schema entry =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.schema sh
  | Mapped m -> Mapped.schema m

let cardinality entry =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.cardinality sh
  | Mapped m -> Mapped.cardinality m

let num_shards entry =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.num_shards sh
  | Mapped _ -> 1

let estimate entry q =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.estimate sh q
  | Mapped m -> Mapped.estimate m q

let stddev entry q =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.stddev sh q
  | Mapped m -> Mapped.stddev m q

let estimate_sum entry ~attr q =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.estimate_sum sh ~attr q
  | Mapped m -> Mapped.estimate_sum m ~attr q

let variance_sum entry ~attr q =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.variance_sum sh ~attr q
  | Mapped m -> Mapped.variance_sum m ~attr q

let estimate_avg entry ~attr q =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.estimate_avg sh ~attr q
  | Mapped m -> Mapped.estimate_avg m ~attr q

let estimate_disjuncts entry disjuncts =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.estimate_disjuncts sh disjuncts
  | Mapped m -> Mapped.estimate_disjuncts m disjuncts

let stddev_disjuncts entry disjuncts =
  match entry.backing with
  | Heap sh -> Edb_shard.Sharded.stddev_disjuncts sh disjuncts
  | Mapped m -> Mapped.stddev_disjuncts m disjuncts

let footprint = function
  | Heap sh -> Edb_shard.Sharded.footprint_bytes sh
  | Mapped m -> Mapped.size_bytes m

(* ------------------------------------------------------------------ *)
(* Residency management (callers hold the lock)                        *)
(* ------------------------------------------------------------------ *)

let resident_entries_locked t =
  Hashtbl.fold
    (fun _ s acc -> match s.s_resident with Some e -> e :: acc | None -> acc)
    t.table []

let resident_count_locked t =
  Hashtbl.fold
    (fun _ s acc -> acc + (if s.s_resident = None then 0 else 1))
    t.table 0

(* Drop residency, keep the slot.  The entry object stays valid for any
   request still holding it. *)
let unmap_locked t slot entry =
  slot.s_resident <- None;
  t.resident_bytes <- t.resident_bytes - entry.bytes;
  t.evictions <- t.evictions + 1

(* Weighted-LRU eviction: while over the byte budget or the entry-count
   capacity, drop the least-recently-used *unpinned* entry.  If every
   remaining entry is pinned, stop — the budget transiently overshoots
   by in-flight bytes rather than yanking an active request's entry. *)
let rebalance_locked t =
  let over () =
    resident_count_locked t > t.capacity
    || (match t.budget with Some b -> t.resident_bytes > b | None -> false)
  in
  let continue_ = ref (over ()) in
  while !continue_ do
    let victim =
      Hashtbl.fold
        (fun _ s acc ->
          match s.s_resident with
          | Some e when e.pins = 0 -> (
              match acc with
              | Some (_, best) when best.last_used <= e.last_used -> acc
              | _ -> Some (s, e))
          | _ -> acc)
        t.table None
    in
    match victim with
    | Some (slot, e) ->
        unmap_locked t slot e;
        continue_ := over ()
    | None -> continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

(* Open a summary file the cheapest way its format allows and package
   it as an entry.  Runs outside the lock. *)
let open_entry t ~name ~path =
  match
    let t0 = Edb_util.Timing.now_s () in
    let opened = Edb_shard.Store.open_any path in
    Edb_obs.Registry.Hist.observe_us open_ns_hist
      ((Edb_util.Timing.now_s () -. t0) *. 1e9);
    opened
  with
  | exception Serialize.Format_error m ->
      Error (Printf.sprintf "%s: bad summary file: %s" path m)
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | opened ->
      let backing =
        match opened with
        | Edb_shard.Store.Heap sh -> Heap sh
        | Edb_shard.Store.Mapped m -> Mapped m
      in
      let cache =
        match backing with
        | Heap sh ->
            Cache.of_fn ~capacity:t.cache_capacity
              ~groups:(fun ~attrs pred ->
                Edb_shard.Sharded.estimate_groups_with_stddev sh ~attrs pred)
              (Edb_shard.Sharded.estimate sh)
        | Mapped m ->
            Cache.of_fn ~capacity:t.cache_capacity
              ~groups:(fun ~attrs pred ->
                Mapped.estimate_groups_with_stddev m ~attrs pred)
              (Mapped.estimate m)
      in
      Ok
        {
          name;
          path;
          backing;
          bytes = footprint backing;
          cache;
          last_used = 0;
          pins = 0;
          aux = None;
        }

(* Make [entry] the resident summary for its name (creating or reusing
   the slot), bump its LRU position, and rebalance. *)
let install_locked t entry =
  let slot =
    match Hashtbl.find_opt t.table entry.name with
    | Some s -> s
    | None ->
        let s = { s_name = entry.name; s_path = entry.path; s_resident = None } in
        Hashtbl.add t.table entry.name s;
        s
  in
  (match slot.s_resident with
  | Some old -> t.resident_bytes <- t.resident_bytes - old.bytes
  | None -> ());
  slot.s_path <- entry.path;
  slot.s_resident <- Some entry;
  t.resident_bytes <- t.resident_bytes + entry.bytes;
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick;
  rebalance_locked t

let load t ~name ~path =
  match open_entry t ~name ~path with
  | Error _ as e -> e
  | Ok entry ->
      with_lock t (fun () ->
          t.loads <- t.loads + 1;
          install_locked t entry);
      Ok entry

let known t name =
  with_lock t (fun () -> Hashtbl.mem t.table name)

let find t name =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table name with
      | Some { s_resident = Some entry; _ } ->
          entry.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some entry
      | Some { s_resident = None; _ } | None ->
          t.misses <- t.misses + 1;
          None)

(* Resolve a name to a pinned entry: resident hit, or transparent
   reopen from the slot's path (O(1) for v3 files).  The double-checked
   reopen keeps the open outside the lock; if another thread installed
   the name meanwhile, its entry wins and our open is dropped. *)
let acquire t name =
  let resolved =
    with_lock t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.table name with
        | Some { s_resident = Some entry; _ } ->
            entry.last_used <- t.tick;
            entry.pins <- entry.pins + 1;
            t.hits <- t.hits + 1;
            `Pinned entry
        | Some ({ s_resident = None; _ } as slot) ->
            t.misses <- t.misses + 1;
            `Reopen slot.s_path
        | None ->
            t.misses <- t.misses + 1;
            `Unknown)
  in
  match resolved with
  | `Pinned entry -> Ok entry
  | `Unknown ->
      Error (Printf.sprintf "no resident summary named %s; LOAD it first" name)
  | `Reopen path -> (
      match open_entry t ~name ~path with
      | Error m -> Error m
      | Ok entry ->
          Ok
            (with_lock t (fun () ->
                 match Hashtbl.find_opt t.table name with
                 | Some { s_resident = Some winner; _ } ->
                     t.tick <- t.tick + 1;
                     winner.last_used <- t.tick;
                     winner.pins <- winner.pins + 1;
                     winner
                 | _ ->
                     t.reopens <- t.reopens + 1;
                     entry.pins <- 1;
                     install_locked t entry;
                     entry)))

let release t entry =
  with_lock t (fun () ->
      entry.pins <- entry.pins - 1;
      if entry.pins = 0 then rebalance_locked t)

let with_entry t name f =
  match acquire t name with
  | Error _ as e -> e
  | Ok entry ->
      Fun.protect
        ~finally:(fun () -> release t entry)
        (fun () -> Ok (f entry))

(* Attach a base-table CSV (index form, the summary's schema) to a
   resident summary: the relation (exact scan) plus a deterministic
   uniform sample of it become the entry's extra planner routes.  CSV
   parsing and sampling run outside the lock, like [load]; the sample's
   PRNG seed derives from (name, path) so re-attachment is
   reproducible. *)
let attach t ~name ~path ~rate =
  match acquire t name with
  | Error m -> Error m
  | Ok entry ->
      Fun.protect
        ~finally:(fun () -> release t entry)
        (fun () ->
          if not (rate > 0. && rate <= 1.) then
            Error "attach rate must be in (0, 1]"
          else
            let schema = schema entry in
            match Edb_storage.Csv_io.load_indices schema path with
            | exception Sys_error m -> Error m
            | Error e ->
                Error
                  (Format.asprintf "%s: %a" path Edb_storage.Csv_io.pp_error e)
            | Ok rel ->
                let rng =
                  Edb_util.Prng.create ~seed:(Hashtbl.hash (name, path)) ()
                in
                let sample = Edb_sampling.Uniform.create rng ~rate rel in
                with_lock t (fun () ->
                    entry.aux <- Some { rel; sample; rate; csv_path = path });
                Ok entry)

type refresh_info = {
  batch_rows : int;
  cardinality : int;
  sweeps : int;
  batches : int;  (* journal length after the append *)
}

(* Incremental REFRESH: ingest a batch CSV into a resident summary and
   atomically swap the catalog entry.

   All the expensive work — CSV parse, delta-Φ, warm-started re-solve,
   atomic on-disk rewrite — runs outside the lock, on the worker thread
   serving the REFRESH.  Concurrent queries keep answering from the old
   entry (a request resolves its entry once and uses that immutable
   summary throughout, so no request ever mixes old and new answers).
   The swap itself is one slot update under the lock with a *fresh*
   cache, so every cached answer derived from the old summary is
   invalidated by construction.  Any ATTACHed base table describes the
   pre-batch relation and is dropped — re-ATTACH after REFRESH.

   Mapped entries refresh too: the flat summary is heap-rebuilt from the
   v3 file, appended to, and written back atomically in v3
   ([Edb_ingest.Ingest.save_atomic] preserves the on-disk format), then
   the entry reopens zero-copy. *)
let refresh t ~name ~path:csv_path =
  match acquire t name with
  | Error m -> Error m
  | Ok entry ->
      Fun.protect
        ~finally:(fun () -> release t entry)
        (fun () ->
          if num_shards entry <> 1 then
            Error
              (Printf.sprintf
                 "REFRESH supports unsharded summaries; %s has %d shards" name
                 (num_shards entry))
          else
            let flat =
              match entry.backing with
              | Heap sh -> Ok (Edb_shard.Sharded.shards sh).(0)
              | Mapped _ -> (
                  (* Heap-rebuild the solved summary from the v3 file;
                     checksums re-verified by the loader. *)
                  match Serialize.load entry.path with
                  | exception Serialize.Format_error m ->
                      Error (Printf.sprintf "%s: bad summary file: %s" entry.path m)
                  | exception Sys_error m -> Error m
                  | s -> Ok s)
            in
            match flat with
            | Error m -> Error m
            | Ok flat -> (
                let schema = Summary.schema flat in
                match Edb_storage.Csv_io.load_indices schema csv_path with
                | exception Sys_error m -> Error m
                | Error e ->
                    Error
                      (Format.asprintf "%s: %a" csv_path
                         Edb_storage.Csv_io.pp_error e)
                | Ok batch -> (
                    match
                      Edb_ingest.Ingest.append_with_stats
                        ~source:(Filename.basename csv_path) flat batch
                    with
                    | exception Invalid_argument m -> Error m
                    | summary', stats -> (
                        match
                          Edb_ingest.Ingest.save_atomic summary' entry.path
                        with
                        | exception Sys_error m -> Error m
                        | () -> (
                            (* Reopen from disk so the resident entry and
                               the file agree (and a v3 file stays
                               zero-copy). *)
                            match open_entry t ~name ~path:entry.path with
                            | Error m -> Error m
                            | Ok entry' ->
                                with_lock t (fun () -> install_locked t entry');
                                Ok
                                  ( entry',
                                    {
                                      batch_rows =
                                        stats.Edb_ingest.Ingest.batch_rows;
                                      cardinality =
                                        stats.Edb_ingest.Ingest.cardinality;
                                      sweeps = stats.Edb_ingest.Ingest.sweeps;
                                      batches =
                                        Journal.batches
                                          (Summary.journal summary');
                                    } ))))))

let evict t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some slot ->
          (match slot.s_resident with
          | Some e -> unmap_locked t slot e
          | None -> ());
          Hashtbl.remove t.table name;
          true
      | None -> false)

let entries t =
  with_lock t (fun () ->
      resident_entries_locked t
      |> List.sort (fun a b -> compare a.name b.name))

let cache_stats t =
  List.fold_left
    (fun (h, m, e) entry ->
      let s = Cache.stats entry.cache in
      (h + s.Cache.hits, m + s.Cache.misses, e + s.Cache.evictions))
    (0, 0, 0) (entries t)

let stats t =
  with_lock t (fun () ->
      let res = resident_entries_locked t in
      let mapped_bytes =
        List.fold_left
          (fun acc e ->
            acc + (match e.backing with Mapped _ -> e.bytes | Heap _ -> 0))
          0 res
      in
      {
        resident = List.length res;
        resident_mapped =
          List.length
            (List.filter
               (fun e -> match e.backing with Mapped _ -> true | _ -> false)
               res);
        capacity = t.capacity;
        budget_bytes = t.budget;
        resident_bytes = t.resident_bytes;
        mapped_bytes;
        heap_bytes = t.resident_bytes - mapped_bytes;
        pinned = List.length (List.filter (fun e -> e.pins > 0) res);
        slots = Hashtbl.length t.table;
        shards = List.fold_left (fun acc e -> acc + num_shards e) 0 res;
        hits = t.hits;
        misses = t.misses;
        loads = t.loads;
        evictions = t.evictions;
        reopens = t.reopens;
      })
