(** Weighted directory of resident summaries, keyed by name.

    Every resident summary is charged its byte footprint — the mapped
    file size for zero-copy v3 entries, the estimated kernel-table heap
    size otherwise — against an optional byte budget, alongside an
    entry-count capacity.  Eviction is weighted LRU over whole
    summaries, and it keeps the name→path directory: an evicted name
    transparently reopens from disk on its next use (O(1) for v3
    files), so a catalog can serve a thousand summaries under a budget
    far below their total footprint without clients ever seeing an
    error.  In-flight requests pin their entry; pinned entries are
    never evicted, so the budget may transiently overshoot by the bytes
    of active requests.

    All operations are safe to call from concurrent server workers;
    opening and deserialization happen outside the lock. *)

open Entropydb_core

type aux = {
  rel : Edb_storage.Relation.t;  (** the base table, for exact scans *)
  sample : Edb_sampling.Sample.t;  (** deterministic uniform sample *)
  rate : float;
  csv_path : string;
}
(** Planner routes beyond the summary, attached per entry by {!attach}. *)

type backing =
  | Heap of Edb_shard.Sharded.t
      (** flat files and sharded manifests, fully deserialized *)
  | Mapped of Mapped.t  (** v3 files, zero-copy *)

type entry = {
  name : string;
  path : string;
  backing : backing;
  bytes : int;  (** footprint charged against the byte budget *)
  cache : Cache.t;
  mutable last_used : int;  (** LRU clock value; managed by the catalog *)
  mutable pins : int;  (** in-flight requests; eviction skips > 0 *)
  mutable aux : aux option;  (** set by {!attach}; dropped with the entry *)
}

type stats = {
  resident : int;
  resident_mapped : int;  (** of which zero-copy mapped *)
  capacity : int;
  budget_bytes : int option;
  resident_bytes : int;  (** total charged bytes *)
  mapped_bytes : int;
  heap_bytes : int;
  pinned : int;  (** entries with in-flight requests *)
  slots : int;  (** known names (resident or evicted-but-reopenable) *)
  shards : int;  (** total resident shards across all entries *)
  hits : int;  (** lookups that found the entry resident *)
  misses : int;
  loads : int;  (** explicit {!load}s *)
  evictions : int;
  reopens : int;  (** transparent reopens after budget eviction *)
}

type t

val create : ?capacity:int -> ?budget_bytes:int -> ?cache_capacity:int -> unit -> t
(** [capacity] bounds the resident entry count (default 8);
    [budget_bytes] additionally bounds the summed footprint (default
    unlimited); [cache_capacity] sizes each entry's query cache
    (default 4096).  Raises on non-positive values. *)

val load : t -> name:string -> path:string -> (entry, string) result
(** Open [path] (flat summary, sharded manifest, or mmap-able v3 file,
    sniffed by magic) and make it resident under [name], evicting
    least-recently-used unpinned entries beyond capacity or budget.
    Replaces any previous summary of the same name. *)

val with_entry : t -> string -> (entry -> 'a) -> ('a, string) result
(** Resolve [name] — resident hit, or transparent reopen from the
    name's recorded path — pin the entry for the duration of [f], and
    run [f] outside the lock.  The pin guarantees the entry is not
    chosen for eviction while the request runs.  Errors if the name was
    never loaded (or was explicitly evicted) or the reopen fails. *)

val attach : t -> name:string -> path:string -> rate:float -> (entry, string) result
(** Load the index-form CSV at [path] under summary [name]'s schema and
    attach it — plus a deterministic uniform sample at [rate] — as
    planner routes.  Errors if the name is unknown, the rate is outside
    (0, 1], or the CSV does not parse against the schema. *)

type refresh_info = {
  batch_rows : int;
  cardinality : int;  (** after the append *)
  sweeps : int;  (** warm-started re-solve sweeps *)
  batches : int;  (** journal length after the append *)
}

val refresh : t -> name:string -> path:string -> (entry * refresh_info, string) result
(** Ingest the batch CSV at [path] into the (unsharded) summary [name]:
    incremental Φ update + warm-started re-solve + atomic
    format-preserving rewrite of the summary file, all outside the
    lock, then an atomic swap of the catalog entry with a fresh (empty)
    query cache.  Mapped entries are heap-rebuilt for the append and
    reopened zero-copy afterwards.  Concurrent queries answer from the
    old summary until the swap and never observe a partial one.  Any
    ATTACHed planner routes are dropped (they describe the pre-batch
    table).  Errors if the name is unknown, the summary is sharded, or
    the CSV does not parse against its schema. *)

val known : t -> string -> bool
(** Whether [name] has a slot — resident or evicted-but-reopenable.
    Does not touch the LRU clock or the hit/miss counters. *)

val find : t -> string -> entry option
(** Resident-only lookup; bumps the entry's LRU position and the
    hit/miss counters.  Never touches the disk — use {!with_entry} to
    get transparent reopen. *)

val evict : t -> string -> bool
(** Forget a name entirely: drop residency {e and} the name→path slot,
    so the name errors until re-LOADed.  [false] if unknown. *)

val entries : t -> entry list
(** Resident entries, sorted by name. *)

val cache_stats : t -> int * int * int
(** Summed (hits, misses, evictions) over all resident entries' query
    caches. *)

val stats : t -> stats

(** {2 Backing dispatch}

    Uniform estimator surface over an entry's backing, so the handler
    never matches on {!backing} itself. *)

val kind_name : entry -> string
(** ["heap"] or ["mapped"]. *)

val schema : entry -> Edb_storage.Schema.t
val cardinality : entry -> int

val num_shards : entry -> int
(** Mapped entries report 1. *)

val estimate : entry -> Edb_storage.Predicate.t -> float
val stddev : entry -> Edb_storage.Predicate.t -> float
val estimate_sum : entry -> attr:int -> Edb_storage.Predicate.t -> float
val variance_sum : entry -> attr:int -> Edb_storage.Predicate.t -> float
val estimate_avg : entry -> attr:int -> Edb_storage.Predicate.t -> float option
val estimate_disjuncts : entry -> Edb_storage.Predicate.t list -> float
val stddev_disjuncts : entry -> Edb_storage.Predicate.t list -> float
