(** Directory of resident summaries, keyed by name.

    At most [capacity] summaries stay loaded (LRU eviction over whole
    summaries); each resident summary — flat or sharded, loaded
    transparently by magic — is fronted by its own thread-safe
    {!Entropydb_core.Cache}.  All operations are safe to call from
    concurrent server workers; deserialization happens outside the lock. *)

open Entropydb_core

type aux = {
  rel : Edb_storage.Relation.t;  (** the base table, for exact scans *)
  sample : Edb_sampling.Sample.t;  (** deterministic uniform sample *)
  rate : float;
  csv_path : string;
}
(** Planner routes beyond the summary, attached per entry by {!attach}. *)

type entry = {
  name : string;
  path : string;
  summary : Edb_shard.Sharded.t;
      (** flat files load as single-shard views *)
  cache : Cache.t;
  mutable last_used : int;  (** LRU clock value; managed by the catalog *)
  mutable aux : aux option;  (** set by {!attach}; dropped with the entry *)
}

type stats = {
  resident : int;
  capacity : int;
  shards : int;  (** total resident shards across all entries *)
  hits : int;  (** {!find} results that were resident *)
  misses : int;
  loads : int;
  evictions : int;
}

type t

val create : ?capacity:int -> ?cache_capacity:int -> unit -> t
(** [capacity] bounds the resident set (default 8); [cache_capacity] sizes
    each entry's query cache (default 4096).  Raises on non-positive
    capacity. *)

val load : t -> name:string -> path:string -> (entry, string) result
(** Deserialize [path] (flat summary or sharded manifest) and make it
    resident under [name], evicting the least-recently-used entries
    beyond capacity.  Replaces any previous summary of the same name. *)

val attach : t -> name:string -> path:string -> rate:float -> (entry, string) result
(** Load the index-form CSV at [path] under the resident summary [name]'s
    schema and attach it — plus a deterministic uniform sample at [rate] —
    as planner routes.  Errors if the summary is not resident, the rate is
    outside (0, 1], or the CSV does not parse against the schema. *)

type refresh_info = {
  batch_rows : int;
  cardinality : int;  (** after the append *)
  sweeps : int;  (** warm-started re-solve sweeps *)
  batches : int;  (** journal length after the append *)
}

val refresh : t -> name:string -> path:string -> (entry * refresh_info, string) result
(** Ingest the batch CSV at [path] into the resident (unsharded) summary
    [name]: incremental Φ update + warm-started re-solve + atomic rewrite
    of the summary file, all outside the lock, then an atomic swap of the
    catalog entry with a fresh (empty) query cache.  Concurrent queries
    answer from the old summary until the swap and never observe a
    partial one.  Any ATTACHed planner routes are dropped (they describe
    the pre-batch table).  Errors if the summary is not resident, is
    sharded, or the CSV does not parse against its schema. *)

val find : t -> string -> entry option
(** Resident lookup; bumps the entry's LRU position and the hit/miss
    counters.  Never touches the disk. *)

val evict : t -> string -> bool
(** Drop a summary by name; [false] if it was not resident. *)

val entries : t -> entry list
(** Resident entries, sorted by name. *)

val cache_stats : t -> int * int * int
(** Summed (hits, misses, evictions) over all resident entries' query
    caches. *)

val stats : t -> stats
