(** Execution of protocol requests against a catalog — the server's
    command surface, free of sockets and threads so it is testable
    in-process.  Guaranteed exception-free: every failure becomes a
    protocol [Err] reply. *)

type outcome = Keep | Close  (** whether the connection survives the reply *)

val handle :
  catalog:Catalog.t ->
  metrics:Metrics.t ->
  Protocol.request ->
  Protocol.response * outcome
(** [metrics] is only read (to render STATS); request/error accounting is
    the transport loop's job. *)

val run_sql : Catalog.entry -> string -> Protocol.response
(** Compile and evaluate one SQL string against a resident summary.
    Conjunctive COUNTs go through the entry's shared cache. *)

val stats_lines : Catalog.t -> Metrics.t -> string list
(** The [STATS] payload: one [key value] line per statistic. *)
