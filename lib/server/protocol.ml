(* Wire protocol of the summary-serving daemon.

   Line-oriented and versioned: every request is a single LF-terminated
   line, every response is either a single error line

     ERR <code> <message...>

   or an OK header announcing its payload length followed by exactly that
   many payload lines

     OK <k>
     <payload line 1>
     ...
     <payload line k>

   The framing makes the stream self-synchronizing (a reader always knows
   how many lines to consume) and keeps the parser/printer pure — no
   sockets anywhere in this module, so round-trip properties are plain
   qcheck tests.  Keywords are case-insensitive on input and canonical
   uppercase on output. *)

let version = "EDB/1"
let version_v2 = "EDB/2"

type request =
  | Hello of string  (** client's protocol version *)
  | Query of { name : string; sql : string }
  | Explain of { name : string; sql : string }
  | List
  | Load of { name : string; path : string }
  | Attach of { name : string; path : string; rate : float option }
      (** attach a base-table CSV (and a uniform sample of it) to a
          resident summary, enabling PLAN routing *)
  | Plan of { name : string; ci : string; sql : string }
      (** error-aware routed query: [ci] is a planner target such as
          ["95:2"] *)
  | Refresh of { name : string; path : string }
      (** ingest a batch CSV into a resident summary: rebuild off the
          request thread, then atomically swap the catalog entry *)
  | Stats
  | Ping
  | Quit

type response = Ok of string list | Err of { code : string; message : string }

let request_tag = function
  | Hello _ -> "hello"
  | Query _ -> "query"
  | Explain _ -> "explain"
  | List -> "list"
  | Load _ -> "load"
  | Attach _ -> "attach"
  | Plan _ -> "plan"
  | Refresh _ -> "refresh"
  | Stats -> "stats"
  | Ping -> "ping"
  | Quit -> "quit"

(* Error codes the server emits; clients may switch on these. *)
let err_busy = "busy"
let err_parse = "parse"
let err_proto = "proto"
let err_unknown = "unknown-summary"
let err_load = "load"
let err_timeout = "timeout"
let err_unsupported = "unsupported"
let err_internal = "internal"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let is_space c = c = ' ' || c = '\t'

(* Split off the first space-delimited word; the remainder is trimmed of
   leading whitespace only (payloads keep interior spacing). *)
let split_word s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && not (is_space s.[!i]) do
    incr i
  done;
  let word = String.sub s 0 !i in
  while !i < n && is_space s.[!i] do
    incr i
  done;
  (word, String.sub s !i (n - !i))

let valid_word w =
  w <> "" && String.for_all (fun c -> c > ' ' && c <> '\x7f') w

let parse_request line =
  let line = String.trim line in
  let keyword, rest = split_word line in
  let name_and_rest what k =
    let name, payload = split_word rest in
    if not (valid_word name) then
      Error (Printf.sprintf "%s needs a summary name" what)
    else if payload = "" then
      Error (Printf.sprintf "%s %s needs an argument" what name)
    else k name payload
  in
  match String.uppercase_ascii keyword with
  | "" -> Error "empty request"
  | "HELLO" ->
      if valid_word rest then Result.Ok (Hello rest)
      else Error "HELLO needs a protocol version"
  | "QUERY" -> name_and_rest "QUERY" (fun name sql -> Result.Ok (Query { name; sql }))
  | "EXPLAIN" ->
      name_and_rest "EXPLAIN" (fun name sql -> Result.Ok (Explain { name; sql }))
  | "LOAD" ->
      name_and_rest "LOAD" (fun name path ->
          if valid_word path then Result.Ok (Load { name; path })
          else Error "LOAD path must not contain whitespace")
  | "REFRESH" ->
      name_and_rest "REFRESH" (fun name path ->
          if valid_word path then Result.Ok (Refresh { name; path })
          else Error "REFRESH path must not contain whitespace")
  | "ATTACH" ->
      name_and_rest "ATTACH" (fun name payload ->
          let path, rest = split_word payload in
          if not (valid_word path) then
            Error "ATTACH path must not contain whitespace"
          else if rest = "" then Result.Ok (Attach { name; path; rate = None })
          else
            match float_of_string_opt rest with
            | Some r when r > 0. && r <= 1. ->
                Result.Ok (Attach { name; path; rate = Some r })
            | _ -> Error "ATTACH rate must be a number in (0, 1]")
  | "PLAN" ->
      name_and_rest "PLAN" (fun name payload ->
          let ci, sql = split_word payload in
          if not (valid_word ci) then Error "PLAN needs a target (e.g. 95:2)"
          else if sql = "" then Error "PLAN needs SQL"
          else Result.Ok (Plan { name; ci; sql }))
  | "LIST" ->
      if rest = "" then Result.Ok List else Error "LIST takes no arguments"
  | "STATS" ->
      if rest = "" then Result.Ok Stats else Error "STATS takes no arguments"
  | "PING" ->
      if rest = "" then Result.Ok Ping else Error "PING takes no arguments"
  | "QUIT" ->
      if rest = "" then Result.Ok Quit else Error "QUIT takes no arguments"
  | other -> Error (Printf.sprintf "unknown command %s" other)

let print_request = function
  | Hello v -> "HELLO " ^ v
  | Query { name; sql } -> Printf.sprintf "QUERY %s %s" name sql
  | Explain { name; sql } -> Printf.sprintf "EXPLAIN %s %s" name sql
  | List -> "LIST"
  | Load { name; path } -> Printf.sprintf "LOAD %s %s" name path
  | Attach { name; path; rate = None } ->
      Printf.sprintf "ATTACH %s %s" name path
  | Attach { name; path; rate = Some r } ->
      Printf.sprintf "ATTACH %s %s %.17g" name path r
  | Plan { name; ci; sql } -> Printf.sprintf "PLAN %s %s %s" name ci sql
  | Refresh { name; path } -> Printf.sprintf "REFRESH %s %s" name path
  | Stats -> "STATS"
  | Ping -> "PING"
  | Quit -> "QUIT"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type header = Payload of int | Error_line of { code : string; message : string }

let parse_header line =
  let keyword, rest = split_word line in
  match String.uppercase_ascii keyword with
  | "OK" -> (
      match int_of_string_opt (String.trim rest) with
      | Some k when k >= 0 -> Result.Ok (Payload k)
      | _ -> Error "OK header needs a non-negative payload line count")
  | "ERR" ->
      let code, message = split_word rest in
      if valid_word code then Result.Ok (Error_line { code; message })
      else Error "ERR needs an error code"
  | _ -> Error (Printf.sprintf "bad response header %S" line)

let print_response = function
  | Ok payload -> Printf.sprintf "OK %d" (List.length payload) :: payload
  | Err { code; message } ->
      [ (if message = "" then "ERR " ^ code
         else Printf.sprintf "ERR %s %s" code message) ]

let parse_response lines =
  match lines with
  | [] -> Error "empty response"
  | header :: payload -> (
      match parse_header header with
      | Error e -> Error e
      | Result.Ok (Error_line { code; message }) ->
          if payload = [] then Result.Ok (Err { code; message })
          else Error "error responses carry no payload"
      | Result.Ok (Payload k) ->
          if List.length payload = k then Result.Ok (Ok payload)
          else
            Error
              (Printf.sprintf "payload length mismatch: header %d, got %d" k
                 (List.length payload)))

let pp_response ppf = function
  | Ok payload ->
      Format.fprintf ppf "OK(%d lines)" (List.length payload)
  | Err { code; message } -> Format.fprintf ppf "ERR %s %s" code message

(* ------------------------------------------------------------------ *)
(* Pipelined (v2) framing                                              *)
(* ------------------------------------------------------------------ *)

(* A v2 frame is an ordinary request line prefixed by a client-chosen
   request id:

     @<id> <request line>

   and its response header carries the same id back:

     @<id> OK <k>          (payload lines follow, untagged)
     @<id> ERR <code> <m>

   The tag is what makes pipelining safe: a client may have many
   requests in flight on one connection and match responses by id, in
   any order the server answers.  Untagged lines are exactly the v1
   lockstep protocol, and the two interleave freely on one connection —
   an old client never sees a tag it didn't send, and a new client can
   downgrade per-request.  Ids are opaque short words; the server never
   interprets them beyond echoing. *)

let max_tag_len = 32

let tag_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let valid_tag id =
  let n = String.length id in
  n >= 1 && n <= max_tag_len && String.for_all tag_char id

let split_tag line =
  let n = String.length line in
  if n = 0 || line.[0] <> '@' then Result.Ok (None, line)
  else begin
    let i = ref 1 in
    while !i < n && not (is_space line.[!i]) do
      incr i
    done;
    let id = String.sub line 1 (!i - 1) in
    if not (valid_tag id) then
      Error
        (Printf.sprintf "bad request id %S (want 1-%d of [A-Za-z0-9_.-])" id
           max_tag_len)
    else begin
      while !i < n && is_space line.[!i] do
        incr i
      done;
      if !i >= n then Error (Printf.sprintf "@%s frame carries no request" id)
      else Result.Ok (Some id, String.sub line !i (n - !i))
    end
  end

let print_tagged_request id r =
  if not (valid_tag id) then invalid_arg "Protocol.print_tagged_request: bad id";
  "@" ^ id ^ " " ^ print_request r

let print_tagged_response tag response =
  match (tag, print_response response) with
  | None, lines -> lines
  | Some id, header :: payload -> ("@" ^ id ^ " " ^ header) :: payload
  | Some _, [] -> assert false (* print_response always yields a header *)

let parse_tagged_header line =
  match split_tag line with
  | Error _ ->
      (* A malformed tag on a response is a framing error outright. *)
      Error (Printf.sprintf "bad response header %S" line)
  | Result.Ok (tag, rest) -> (
      match parse_header rest with
      | Result.Ok h -> Result.Ok (tag, h)
      | Error e -> Error e)
