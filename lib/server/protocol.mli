(** Versioned, line-oriented wire protocol of the summary server.

    Requests are single lines; responses are either one [ERR] line or an
    [OK <k>] header followed by exactly [k] payload lines.  The parser and
    printer are pure (no sockets), so protocol properties are unit-testable;
    {!Server} and {!Client} only add framing over file descriptors. *)

val version : string
(** ["EDB/1"] — the lockstep protocol: one request, then its response. *)

val version_v2 : string
(** ["EDB/2"] — the pipelined protocol: requests may be prefixed with a
    client-chosen id ([@id REQUEST...]) and many may be in flight on one
    connection; response headers echo the id.  Untagged lines behave
    exactly as v1, and both forms interleave freely on one connection. *)

type request =
  | Hello of string  (** client's protocol version *)
  | Query of { name : string; sql : string }
  | Explain of { name : string; sql : string }
  | List
  | Load of { name : string; path : string }
  | Attach of { name : string; path : string; rate : float option }
      (** [ATTACH <name> <path> [<rate>]]: attach a base-table CSV (and a
          uniform sample of it, default 1%) to a resident summary,
          enabling error-aware [PLAN] routing *)
  | Plan of { name : string; ci : string; sql : string }
      (** [PLAN <name> <ci> <sql>]: route the query through the planner
          with target [ci] (a {!Edb_plan.Plan.target_of_string} form such
          as ["95:2"]) *)
  | Refresh of { name : string; path : string }
      (** [REFRESH <name> <csv>]: ingest the batch CSV into the resident
          summary [name] — incremental Φ update + warm-started re-solve
          off the request thread, then an atomic catalog-entry swap (and
          an atomic rewrite of the summary file on disk).  Concurrent
          queries answer from the old summary until the swap. *)
  | Stats
  | Ping
  | Quit

type response = Ok of string list | Err of { code : string; message : string }

val request_tag : request -> string
(** Lowercase constructor name, for metrics/trace labels. *)

(** {2 Error codes} *)

val err_busy : string
val err_parse : string
val err_proto : string
val err_unknown : string
val err_load : string
val err_timeout : string
val err_unsupported : string
val err_internal : string

(** {2 Requests} *)

val parse_request : string -> (request, string) result
(** Keywords are case-insensitive; summary names must be whitespace-free;
    the SQL/path argument is the untrimmed rest of the line. *)

val print_request : request -> string
(** Canonical single-line form; [parse_request (print_request r) = Ok r]
    for every representable request. *)

(** {2 Responses} *)

type header = Payload of int | Error_line of { code : string; message : string }

val parse_header : string -> (header, string) result
(** Classify the first line of a response: either how many payload lines
    follow, or a complete error. *)

val print_response : response -> string list
val parse_response : string list -> (response, string) result
val pp_response : Format.formatter -> response -> unit

(** {2 Pipelined (v2) framing}

    A frame is [@<id> <request line>]; the response header echoes the
    tag ([@<id> OK <k>] / [@<id> ERR <code> <msg>]) while payload lines
    stay untagged (the header's count delimits them).  Ids are opaque
    1–32 character words over [A-Za-z0-9_.-]; the server echoes them
    verbatim and never interprets them. *)

val valid_tag : string -> bool

val split_tag : string -> (string option * string, string) result
(** Split an incoming request line into its optional id and the request
    proper.  Lines not starting with ['@'] pass through as [(None, line)]
    — v1 compatibility.  A line starting with ['@'] whose tag is
    malformed, over-long, or followed by nothing is an error. *)

val print_tagged_request : string -> request -> string
(** [print_tagged_request id r] = ["@id " ^ print_request r].  Raises
    [Invalid_argument] on an invalid id. *)

val print_tagged_response : string option -> response -> string list
(** Tag the header line (only) when an id is present. *)

val parse_tagged_header : string -> (string option * header, string) result
(** Client side: classify a response header line, splitting off the
    echoed id when present. *)
