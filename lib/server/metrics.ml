(* Server counters and latency distribution.

   Counters are plain ints under one mutex (contention is negligible next
   to polynomial evaluation).  Latency is a log-spaced histogram: bucket i
   covers [10^(i/10), 10^((i+1)/10)) microseconds, i.e. ~26% resolution
   per bucket over 1 µs .. 10 s in 70 buckets — the same design as
   Prometheus-style histograms, constant memory, mergeable, and good
   enough to read p50/p95/p99 off the cumulative counts.  Quantiles are
   reported as the geometric midpoint of the covering bucket. *)

type t = {
  lock : Mutex.t;
  started_at : float;
  mutable requests : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable rejects : int;
  mutable connections : int;
  buckets : int array;
  mutable observations : int;
  mutable max_us : float;
}

let num_buckets = 70 (* 10^(70/10) µs = 10 s *)

let create () =
  {
    lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    requests = 0;
    errors = 0;
    timeouts = 0;
    rejects = 0;
    connections = 0;
    buckets = Array.make num_buckets 0;
    observations = 0;
    max_us = 0.;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type counter = Requests | Errors | Timeouts | Rejects | Connections

let incr t c =
  with_lock t (fun () ->
      match c with
      | Requests -> t.requests <- t.requests + 1
      | Errors -> t.errors <- t.errors + 1
      | Timeouts -> t.timeouts <- t.timeouts + 1
      | Rejects -> t.rejects <- t.rejects + 1
      | Connections -> t.connections <- t.connections + 1)

let bucket_of_us us =
  if us <= 1. then 0
  else
    let i = int_of_float (10. *. log10 us) in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

(* Geometric midpoint of bucket i's bounds 10^(i/10) .. 10^((i+1)/10). *)
let bucket_mid_us i = 10. ** ((float_of_int i +. 0.5) /. 10.)

let observe t seconds =
  let us = seconds *. 1e6 in
  with_lock t (fun () ->
      let i = bucket_of_us us in
      t.buckets.(i) <- t.buckets.(i) + 1;
      t.observations <- t.observations + 1;
      if us > t.max_us then t.max_us <- us)

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  timeouts : int;
  rejects : int;
  connections : int;
  observations : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

(* Caller holds the lock. *)
let quantile (t : t) q =
  if t.observations = 0 then 0.
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.observations)) in
    let rank = max 1 (min t.observations rank) in
    let cum = ref 0 and answer = ref (bucket_mid_us (num_buckets - 1)) in
    (try
       Array.iteri
         (fun i n ->
           cum := !cum + n;
           if !cum >= rank then begin
             answer := bucket_mid_us i;
             raise Exit
           end)
         t.buckets
     with Exit -> ());
    min !answer t.max_us
  end

let snapshot t =
  with_lock t (fun () ->
      {
        uptime_s = Unix.gettimeofday () -. t.started_at;
        requests = t.requests;
        errors = t.errors;
        timeouts = t.timeouts;
        rejects = t.rejects;
        connections = t.connections;
        observations = t.observations;
        p50_us = quantile t 0.50;
        p95_us = quantile t 0.95;
        p99_us = quantile t 0.99;
        max_us = t.max_us;
      })
