(* Server counters and latency distribution, built on the obs layer's
   lock-free primitives (Edb_obs.Registry): striped per-domain counters
   and the shared 70-bucket log-spaced latency histogram (bucket i covers
   [10^(i/10), 10^((i+1)/10)) microseconds, ~26% resolution over
   1 µs .. 10 s).  Quantiles are the geometric midpoint of the covering
   bucket, read off a mergeable snapshot.

   Metrics are per-instance (a process can host several servers, e.g.
   the loadgen bench), not registry-named — the registry's global
   counters cover the engine underneath; these cover one server. *)

module R = Edb_obs.Registry

type t = {
  started_at : float;
  requests : R.Counter.t;
  errors : R.Counter.t;
  timeouts : R.Counter.t;
  rejects : R.Counter.t;
  connections : R.Counter.t;
  latency : R.Hist.t;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    requests = R.Counter.create ();
    errors = R.Counter.create ();
    timeouts = R.Counter.create ();
    rejects = R.Counter.create ();
    connections = R.Counter.create ();
    latency = R.Hist.create ();
  }

type counter = Requests | Errors | Timeouts | Rejects | Connections

let incr t c =
  R.Counter.incr
    (match c with
    | Requests -> t.requests
    | Errors -> t.errors
    | Timeouts -> t.timeouts
    | Rejects -> t.rejects
    | Connections -> t.connections)

let observe t seconds = R.Hist.observe t.latency seconds

type snapshot = {
  uptime_s : float;
  requests : int;
  errors : int;
  timeouts : int;
  rejects : int;
  connections : int;
  observations : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

let snapshot t =
  let h = R.Hist.snapshot t.latency in
  {
    uptime_s = Unix.gettimeofday () -. t.started_at;
    requests = R.Counter.value t.requests;
    errors = R.Counter.value t.errors;
    timeouts = R.Counter.value t.timeouts;
    rejects = R.Counter.value t.rejects;
    connections = R.Counter.value t.connections;
    observations = h.R.Hist.count;
    p50_us = R.Hist.quantile h 0.50;
    p95_us = R.Hist.quantile h 0.95;
    p99_us = R.Hist.quantile h 0.99;
    max_us = h.R.Hist.max_us;
  }
