(* Blocking client for the summary server.

   One socket, synchronous request/response — exactly what the CLI, the
   tests, and one load-generator thread need.  Every call is bounded by a
   receive timeout so a wedged server yields an error, never a hang. *)

type address = Unix_socket of string | Tcp of string * int

type t = { fd : Unix.file_descr; ic : in_channel; timeout : float }

let pp_address ppf = function
  | Unix_socket p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p

let connect ?(timeout = 30.) address =
  match
    let domain =
      match address with
      | Unix_socket _ -> Unix.PF_UNIX
      | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    let addr =
      match address with
      | Unix_socket path -> Unix.ADDR_UNIX path
      | Tcp (host, port) ->
          let ip =
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> Unix.inet_addr_of_string host
          in
          Unix.ADDR_INET (ip, port)
    in
    (try Unix.connect fd addr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
     with Unix.Unix_error _ -> ());
    { fd; ic = Unix.in_channel_of_descr fd; timeout }
  with
  | client -> Ok client
  | exception Unix.Unix_error (e, _, _) ->
      Error (Format.asprintf "connect %a: %s" pp_address address (Unix.error_message e))
  | exception e -> Error (Printexc.to_string e)

let close t =
  try Unix.close t.fd with Unix.Unix_error _ | Sys_error _ -> ()

let write_all t s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write t.fd b !off (n - !off)
  done

let input_line_timeout t =
  (* SO_RCVTIMEO makes the underlying read fail with EAGAIN, surfacing
     from in_channel as Sys_error/Sys_blocked_io rather than blocking. *)
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_blocked_io ->
      Error (Printf.sprintf "timed out after %.1fs" t.timeout)
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let read_response t =
  match input_line_timeout t with
  | Error _ as e -> e
  | Ok header -> (
      match Protocol.parse_header header with
      | Error m -> Error ("bad response: " ^ m)
      | Ok (Protocol.Error_line { code; message }) ->
          Ok (Protocol.Err { code; message })
      | Ok (Protocol.Payload k) ->
          let rec gather acc i =
            if i = 0 then Ok (Protocol.Ok (List.rev acc))
            else
              match input_line_timeout t with
              | Error _ as e -> e
              | Ok line -> gather (line :: acc) (i - 1)
          in
          gather [] k)

let request t req =
  match write_all t (Protocol.print_request req ^ "\n") with
  | () -> read_response t
  | exception Unix.Unix_error (e, _, _) -> (
      (* The server may have already replied and closed the connection —
         admission control sends ERR busy before our request hits the
         wire, making the write fail with EPIPE.  The reject line is
         still readable, and it is the better diagnostic. *)
      match read_response t with
      | Ok _ as r -> r
      | Error _ -> Error (Unix.error_message e))
  | exception Sys_error m -> (
      match read_response t with Ok _ as r -> r | Error _ -> Error m)

(* ------------------------------------------------------------------ *)
(* Pipelining (protocol v2)                                            *)
(* ------------------------------------------------------------------ *)

let read_tagged_response t =
  match input_line_timeout t with
  | Error _ as e -> e
  | Ok header -> (
      match Protocol.parse_tagged_header header with
      | Error m -> Error ("bad response: " ^ m)
      | Ok (tag, Protocol.Error_line { code; message }) ->
          Ok (tag, Protocol.Err { code; message })
      | Ok (tag, Protocol.Payload k) ->
          let rec gather acc i =
            if i = 0 then Ok (tag, Protocol.Ok (List.rev acc))
            else
              match input_line_timeout t with
              | Error _ as e -> e
              | Ok line -> gather (line :: acc) (i - 1)
          in
          gather [] k)

let send t ?id req =
  let line =
    match id with
    | None -> Protocol.print_request req
    | Some id -> Protocol.print_tagged_request id req
  in
  match write_all t (line ^ "\n") with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error m -> Error m

let recv t = read_tagged_response t

(* Writes are chunked and interleaved with reads: pushing the whole
   window in one blocking write means nobody reads responses while the
   server keeps answering, and once its pending output for us passes its
   slow-loris cap it kills the connection — so a large window would fail
   spuriously.  Bounding unanswered requests to [pipe_max_outstanding]
   keeps the server's output buffer small regardless of window size,
   while a [pipe_write_chunk]-deep pipeline is kept full. *)
let pipe_write_chunk = 128
let pipe_max_outstanding = 2 * pipe_write_chunk

let pipelined t reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  if n = 0 then Ok []
  else begin
    let results = Array.make n None in
    let answered = ref 0 in
    let next_write = ref 0 in  (* requests written so far *)
    let write_err = ref None in
    (* Set once a connection-level (untagged) response arrives: the
       server answered everything in one line (admission's ERR busy), so
       writing further frames is pointless. *)
    let aborted = ref false in
    let write_chunk () =
      let hi = min n (!next_write + pipe_write_chunk) in
      let buf = Buffer.create ((hi - !next_write) * 64) in
      for i = !next_write to hi - 1 do
        Buffer.add_string buf
          (Protocol.print_tagged_request (string_of_int i) reqs.(i));
        Buffer.add_char buf '\n'
      done;
      (* If the write fails (EPIPE: the server may have rejected us with
         ERR busy and closed before our frames hit the wire), the reject
         line is usually still readable and is the better diagnostic —
         fall through to the read loop either way. *)
      (match write_all t (Buffer.contents buf) with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
          write_err := Some (Unix.error_message e)
      | exception Sys_error m -> write_err := Some m);
      next_write := hi
    in
    let rec collect () =
      if !answered = n then Ok (List.map Option.get (Array.to_list results))
      else if
        (not !aborted) && !write_err = None && !next_write < n
        && !next_write - !answered < pipe_max_outstanding
      then begin
        write_chunk ();
        collect ()
      end
      else
        match read_tagged_response t with
        | Error e -> Error (Option.value !write_err ~default:e)
        | Ok (Some id, resp) -> (
            match int_of_string_opt id with
            | Some i when i >= 0 && i < n && results.(i) = None ->
                results.(i) <- Some resp;
                incr answered;
                collect ()
            | _ -> Error (Printf.sprintf "response for unknown request id %S" id))
        | Ok (None, resp) ->
            (* An untagged response is connection-level — admission's
               ERR busy racing our frames.  It answers every request
               in the window, written or not. *)
            Array.iteri
              (fun i r ->
                if r = None then begin
                  results.(i) <- Some resp;
                  incr answered
                end)
              results;
            aborted := true;
            collect ()
    in
    collect ()
  end

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                                *)
(* ------------------------------------------------------------------ *)

let expect_ok = function
  | Ok (Protocol.Ok payload) -> Ok payload
  | Ok (Protocol.Err { code; message }) ->
      Error (Printf.sprintf "%s: %s" code message)
  | Error _ as e -> e

let hello t = expect_ok (request t (Protocol.Hello Protocol.version))
let ping t = expect_ok (request t Protocol.Ping)
let list t = expect_ok (request t Protocol.List)
let stats t = expect_ok (request t Protocol.Stats)
let load t ~name ~path = expect_ok (request t (Protocol.Load { name; path }))

let refresh t ~name ~path =
  expect_ok (request t (Protocol.Refresh { name; path }))
let query t ~name ~sql = expect_ok (request t (Protocol.Query { name; sql }))

let attach t ~name ~path ?rate () =
  expect_ok (request t (Protocol.Attach { name; path; rate }))

let plan t ~name ~ci ~sql =
  expect_ok (request t (Protocol.Plan { name; ci; sql }))

let explain t ~name ~sql =
  expect_ok (request t (Protocol.Explain { name; sql }))

let quit t =
  let r = expect_ok (request t Protocol.Quit) in
  close t;
  r

(* Pull "estimate <v>" out of a QUERY payload. *)
let estimate_of_payload payload =
  List.find_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "estimate"; v ] -> float_of_string_opt v
      | _ -> None)
    payload
