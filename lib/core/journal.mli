(** Ingest journal: the lineage of a summary — its base build plus every
    appended batch.  Persisted inside the summary file (Serialize format
    v2), so lineage survives restarts and {!total_rows} can always be
    audited against the summary's cardinality. *)

val version : int
(** Journal format version carried in every journal (currently 1), so the
    journal can evolve independently of the container file format. *)

type entry = {
  rows : int;  (** cardinality of the ingested batch *)
  source : string;  (** provenance tag, e.g. the batch CSV's basename *)
  sweeps : int;  (** solver sweeps the re-solve took *)
  warm : bool;  (** whether the solve was warm-started from the prior α *)
}

type t

val base : ?source:string -> rows:int -> unit -> t
(** A fresh journal for a just-built summary ([source] defaults to
    ["build"]).  Raises on a negative row count. *)

val append : t -> entry -> t
(** Record one applied batch (oldest first). *)

val entries : t -> entry list
val base_rows : t -> int
val base_source : t -> string

val batches : t -> int
(** Number of applied batches. *)

val total_rows : t -> int
(** Base rows plus every batch's rows; equals the summary's cardinality
    for any summary maintained through {!Edb_ingest.Ingest}. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
