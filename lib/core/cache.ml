(* Query-result caching for interactive exploration.

   Exploration front ends re-issue the same counting queries constantly
   (every brushing interaction re-renders the same group-bys).  Estimates
   are pure functions of the solved summary, so a small LRU in front of
   the polynomial evaluation turns repeat queries into hash lookups.

   Keys are the canonical form of the predicate (restricted attributes
   with their interval lists), tagged by query shape: plain COUNTs and
   GROUP BYs live in the same table under distinct constructors, so a
   grouped result can never collide with a scalar one over the same
   predicate.  Eviction is batched: when the table exceeds capacity, the
   least recently used ~10% of entries are dropped in one sweep, keeping
   bookkeeping O(1) per query.

   A cache is shared by all worker threads serving one catalog entry
   (lib/server), so every operation that touches the table or the
   counters runs under the cache's mutex.  The summary evaluation on a
   miss happens outside the lock: concurrent misses on the same key both
   evaluate (the value is deterministic, so last-write-wins is safe) and
   the lock is never held across polynomial work. *)

open Edb_storage

type pred_key = (int * (int * int) list) list
type key = Count of pred_key | Grouped of int list * pred_key
type result = Scalar of float | Groups of (int list * float * float) list

type entry = { value : result; mutable last_used : int }

type t = {
  eval : Predicate.t -> float;
  eval_groups : (attrs:int list -> Predicate.t -> (int list * float * float) list) option;
  capacity : int;
  table : (key, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* The cache only needs pure estimators, not a whole summary; sharded
   summaries (lib/shard) reuse it through this entry point. *)
let of_fn ?(capacity = 4096) ?groups eval =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    eval;
    eval_groups = groups;
    capacity;
    table = Hashtbl.create (2 * capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let create ?capacity summary =
  of_fn ?capacity
    ~groups:(fun ~attrs pred ->
      Summary.estimate_groups_with_stddev summary ~attrs pred)
    (Summary.estimate summary)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Process-wide registry counters, summed over every cache instance;
   per-instance accounting stays in [stats].  The obs oracle checks
   hits + misses = lookups after any interleaving. *)
let lookups_c = Edb_obs.Registry.counter "cache.lookups"
let hits_c = Edb_obs.Registry.counter "cache.hits"
let misses_c = Edb_obs.Registry.counter "cache.misses"
let evictions_c = Edb_obs.Registry.counter "cache.evictions"

let key_of_predicate pred : pred_key =
  List.map
    (fun i ->
      match Predicate.restriction pred i with
      | Some r -> (i, Edb_util.Ranges.intervals r)
      | None -> assert false)
    (Predicate.restricted_attrs pred)

(* Caller holds the lock. *)
let evict t =
  (* Drop the oldest ~10% by last_used.  Ticks are unique, so sorting on
     the int alone is total — no need to drag the (structurally large)
     keys through the comparator. *)
  let entries =
    Hashtbl.fold (fun k e acc -> (e.last_used, k) :: acc) t.table []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
  let to_drop = max 1 (t.capacity / 10) in
  List.iteri
    (fun i (_, k) ->
      if i < to_drop then begin
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1;
        Edb_obs.Registry.Counter.incr evictions_c
      end)
    sorted

(* Shared LRU protocol: locked lookup, evaluation outside the lock on a
   miss, locked insert-with-evict. *)
let cached t key compute =
  Edb_obs.Registry.Counter.incr lookups_c;
  let cached =
    with_lock t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            entry.last_used <- t.tick;
            t.hits <- t.hits + 1;
            Edb_obs.Registry.Counter.incr hits_c;
            Some entry.value
        | None ->
            t.misses <- t.misses + 1;
            Edb_obs.Registry.Counter.incr misses_c;
            None)
  in
  match cached with
  | Some value -> value
  | None ->
      let value = compute () in
      with_lock t (fun () ->
          if
            (not (Hashtbl.mem t.table key))
            && Hashtbl.length t.table >= t.capacity
          then evict t;
          Hashtbl.replace t.table key { value; last_used = t.tick });
      value

let estimate t pred =
  match cached t (Count (key_of_predicate pred)) (fun () -> Scalar (t.eval pred)) with
  | Scalar v -> v
  | Groups _ -> assert false (* Count keys only ever hold Scalar values *)

let estimate_groups t ~attrs pred =
  match t.eval_groups with
  | None -> invalid_arg "Cache.estimate_groups: no grouped evaluator"
  | Some eval_groups -> (
      let key = Grouped (attrs, key_of_predicate pred) in
      match cached t key (fun () -> Groups (eval_groups ~attrs pred)) with
      | Groups g -> g
      | Scalar _ -> assert false)

type stats = { hits : int; misses : int; entries : int; evictions : int }

let stats (t : t) =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.table;
        evictions = t.evictions;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.tick <- 0)
