(* Query-result caching for interactive exploration.

   Exploration front ends re-issue the same counting queries constantly
   (every brushing interaction re-renders the same group-bys).  Estimates
   are pure functions of the solved summary, so a small LRU in front of
   the polynomial evaluation turns repeat queries into hash lookups.

   Keys are the canonical form of the predicate (restricted attributes
   with their interval lists), so structurally equal predicates hit
   regardless of construction order.  Eviction is batched: when the table
   exceeds capacity, the least recently used ~10% of entries are dropped
   in one sweep, keeping bookkeeping O(1) per query.

   A cache is shared by all worker threads serving one catalog entry
   (lib/server), so every operation that touches the table or the
   counters runs under the cache's mutex.  The summary evaluation on a
   miss happens outside the lock: concurrent misses on the same key both
   evaluate (the value is deterministic, so last-write-wins is safe) and
   the lock is never held across polynomial work. *)

open Edb_storage

type key = (int * (int * int) list) list

type entry = { value : float; mutable last_used : int }

type t = {
  eval : Predicate.t -> float;
  capacity : int;
  table : (key, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* The cache only needs a pure estimator, not a whole summary; sharded
   summaries (lib/shard) reuse it through this entry point. *)
let of_fn ?(capacity = 4096) eval =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    eval;
    capacity;
    table = Hashtbl.create (2 * capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let create ?capacity summary = of_fn ?capacity (Summary.estimate summary)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let key_of_predicate pred : key =
  List.map
    (fun i ->
      match Predicate.restriction pred i with
      | Some r -> (i, Edb_util.Ranges.intervals r)
      | None -> assert false)
    (Predicate.restricted_attrs pred)

(* Caller holds the lock. *)
let evict t =
  (* Drop the oldest ~10% by last_used. *)
  let entries =
    Hashtbl.fold (fun k e acc -> (e.last_used, k) :: acc) t.table []
  in
  let sorted = List.sort compare entries in
  let to_drop = max 1 (t.capacity / 10) in
  List.iteri
    (fun i (_, k) ->
      if i < to_drop then begin
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1
      end)
    sorted

let estimate t pred =
  let key = key_of_predicate pred in
  let cached =
    with_lock t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            entry.last_used <- t.tick;
            t.hits <- t.hits + 1;
            Some entry.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some value -> value
  | None ->
      let value = t.eval pred in
      with_lock t (fun () ->
          if
            (not (Hashtbl.mem t.table key))
            && Hashtbl.length t.table >= t.capacity
          then evict t;
          Hashtbl.replace t.table key { value; last_used = t.tick });
      value

type stats = { hits : int; misses : int; entries : int; evictions : int }

let stats (t : t) =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.table;
        evictions = t.evictions;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.tick <- 0)
