(** The model solver: maximization of the concave dual Ψ (Eq. 11), either
    by Algorithm 1's coordinate-wise closed-form updates (Eq. 12) or by
    entropic mirror descent (simultaneous multiplicative updates with a
    backtracking step size) for ablation. *)

type algorithm =
  | Coordinate  (** Algorithm 1: exact per-variable solves (the default) *)
  | Multiplicative
      (** mirror descent proper: α_j ← α_j·exp(η(s_j−E_j)/n) for all j *)

type config = {
  algorithm : algorithm;
  max_sweeps : int;  (** full passes over all statistics (paper: 30) *)
  tolerance : float;  (** convergence: max_j |s_j − E\[c_j\]| / n *)
  log_every : int;  (** sweeps between log lines; 0 disables *)
}

val default_config : config
(** Coordinate, 60 sweeps, 1e-6 tolerance. *)

type report = {
  sweeps : int;
  converged : bool;
  max_rel_error : float;
  dual_trace : float list;  (** dual value after each sweep, oldest first *)
  seconds : float;
}

type sweep_stat = {
  sweep : int;  (** 1-based sweep number *)
  dual : float;  (** Ψ after this sweep *)
  sweep_max_rel_error : float;  (** max_j |s_j − E\[c_j\]| / n at sweep start *)
  max_step : float;  (** max_j |α_j' − α_j| over this sweep's updates *)
  elapsed_s : float;  (** wall time since the solve started *)
}

val solve :
  ?config:config ->
  ?init:float array ->
  ?on_sweep:(sweep_stat -> unit) ->
  Poly.t ->
  report
(** Mutates the polynomial's variables toward the MaxEnt solution.  The
    dual trace is non-decreasing up to floating-point noise (Ψ is concave
    and every step is an exact coordinate maximization).

    [init] warm-starts the solve from a caller-supplied variable vector
    (indexed by stat id) instead of {!Poly.create}'s cold initialization —
    the incremental-ingest path passes the previous summary's converged α
    so only the perturbation introduced by the new batch must be
    re-solved.  Omitting it leaves the polynomial's variables untouched,
    preserving cold-start behavior bitwise.  Raises [Invalid_argument]
    on a length mismatch or a negative/non-finite component.

    [on_sweep] is called after every sweep with that sweep's convergence
    telemetry; the same stats are also emitted as ["solver.sweep"] instant
    events (and the whole solve as a ["solver.solve"] span) when tracing
    is enabled. *)
