(** Zero-copy mapped summaries: a format-v3 file opened as Bigarray
    views over an [mmap]ed file, queryable without heap-loading the
    body.

    {!open_file} costs O(header + manifest) — the body sections are
    mapped, not read — so a catalog can keep thousands of summaries
    "open" for the price of their metadata.  Query evaluation walks the
    mapped SoA/CSR tables with {e exactly} the operations, in exactly
    the order, of the heap kernel ({!Poly.eval_restricted} and
    friends), so every estimate is bitwise-identical to the heap
    answer for the same file (at sequential evaluation; the mapped
    kernel never parallelizes).

    Integrity: body-section checksums are verified lazily, once, on the
    first query ({!verify} forces it eagerly).  A corrupt section
    raises {!Serialize.Format_error} naming the section — a flipped or
    truncated byte can never produce a silently wrong answer. *)

open Edb_storage

type t

val open_file : string -> t
(** Map a v3 summary file.  O(header + manifest) I/O: validates the
    header and manifest ({!Serialize.v3_manifest_of}), maps the file,
    and carves the section views.  Raises {!Serialize.Format_error} on
    any format or integrity problem it can see without reading the
    body. *)

val verify : t -> unit
(** Checksum every body section now (idempotent; later queries skip
    it).  Raises {!Serialize.Format_error} ["section %s checksum
    mismatch"] on the first corrupt section. *)

(** {2 Metadata accessors (no body access)} *)

val path : t -> string
val schema : t -> Schema.t

val cardinality : t -> int
(** n — the summarized relation's row count. *)

val size_bytes : t -> int
(** The mapped file's size: what this summary charges a byte-budgeted
    catalog (the body pages are file-backed and clean, so this is the
    eviction cost, not a heap cost). *)

val journal : t -> Journal.t
val solver_report : t -> Solver.report
val manifest : t -> Serialize.v3_manifest
val sections : t -> Serialize.v3_section list

val num_terms : t -> int
(** Terms in the compressed representation, summed over groups (from
    the manifest; used by the planner's cost model). *)

(** {2 Estimation — mirrors {!Summary} bitwise}

    All estimators force lazy verification, then evaluate directly off
    the mapped tables. *)

val estimate : t -> Predicate.t -> float
val estimate_rounded : t -> Predicate.t -> float
val variance : t -> Predicate.t -> float
val stddev : t -> Predicate.t -> float

val estimate_with_variance : t -> Predicate.t -> float * float
(** One restricted evaluation serving both moments, exactly like
    {!Summary.estimate_with_variance}. *)

val estimate_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float

val estimate_avg : t -> attr:int -> Predicate.t -> float option

val variance_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float

val estimate_groups :
  t -> attrs:int list -> Predicate.t -> (int list * float) list

val estimate_groups_with_variance :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list

val estimate_groups_with_stddev :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list

val top_k_groups :
  t -> attrs:int list -> k:int -> Predicate.t -> (int list * float) list

val estimate_disjuncts : t -> Predicate.t list -> float
(** Inclusion–exclusion over {!estimate}, with the intersection order
    of {!Disjunction.fold_intersections}. *)

val variance_disjuncts : t -> Predicate.t list -> float
val stddev_disjuncts : t -> Predicate.t list -> float
