(** The statistic set Φ: the complete marginal family plus the chosen
    multi-dimensional statistics, with targets computed from the data. *)

open Edb_storage

type t

val of_relation : Relation.t -> joints:Predicate.t list -> t
(** Builds Φ for a relation: every attribute contributes one marginal
    statistic per domain value (targets from 1D histograms); [joints] are
    the multi-dimensional range predicates (targets by exact counting).
    Raises [Invalid_argument] if a joint restricts fewer than two
    attributes, has an empty or out-of-domain restriction, or overlaps
    another joint over the same attribute set (Sec. 4.1 assumptions). *)

val of_targets :
  Schema.t ->
  n:int ->
  marginal_targets:float array array ->
  joints:(Predicate.t * float) list ->
  t
(** Build Φ from explicit targets instead of a relation:
    [marginal_targets.(attr).(value)] and per-joint [(predicate, target)]
    pairs.  Used by deserialization and by tests that perturb targets.
    Same validation as {!of_relation}. *)

val delta_counts : t -> Relation.t -> float array
(** Per-statistic count increments contributed by a batch of new rows,
    indexed by statistic id: the batch's 1D histograms for marginals and
    exact batch counts for joints.  Touches only the batch — O(|batch|) —
    never the base data.  Raises [Invalid_argument] on a schema
    mismatch. *)

val add_counts : t -> float array -> rows:int -> t
(** Φ with every target moved by the given increment and [n] grown by
    [rows].  Predicates, ids, and families are unchanged (new rows cannot
    alter the statistic structure), so no revalidation runs.  Raises
    [Invalid_argument] on a length mismatch or a negative/non-finite
    increment. *)

val append : t -> Relation.t -> t
(** [add_counts t (delta_counts t batch) ~rows:(cardinality batch)] — the
    incremental-ingest statistic update:
    s_j(I ⊎ B) = s_j(I) + |σ_{π_j}(B)|. *)

val schema : t -> Schema.t

val n : t -> int
(** The summarized relation's cardinality (fixed and known, Sec. 3.1). *)

val stats : t -> Statistic.t array
(** All statistics; marginals first, joints after, indexed by id. *)

val num_stats : t -> int
val num_marginals : t -> int
val stat : t -> int -> Statistic.t
val target : t -> int -> float

val marginal_id : t -> attr:int -> value:int -> int
(** Id of the 1D statistic [A_attr = value]. *)

val joint_ids : t -> int list

val families : t -> int array array
(** [families t].(f) lists the stat ids of family [f] (same attribute set,
    pairwise disjoint). *)

val family_attrs : t -> int -> int list

val check_overcomplete : t -> bool
(** Whether every attribute's marginal targets sum to [n]. *)
