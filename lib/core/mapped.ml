(* Zero-copy mapped summaries: query a format-v3 file straight off its
   mmap, without heap-loading the body.

   [open_file] validates the header and manifest (O(header + manifest)
   I/O), maps the whole file three times — char for checksumming,
   float64 and native-int for the kernel — and carves the section views
   with [Bigarray.Array1.sub].  Three maps per file (not per section)
   keeps the per-summary mapping count constant, so a thousand-summary
   catalog stays far from vm.max_map_count.

   Bitwise equality with the heap kernel is the design invariant: every
   evaluation function below mirrors its [Poly]/[Summary]/[Disjunction]
   counterpart operation for operation, in the same order — the only
   difference is where a load comes from (a mapped Bigarray instead of a
   heap array).  The writer ([Serialize.save_v3]) refreshes the
   polynomial before exporting its tables, so the mapped tables are the
   tables any heap loader rebuilds, and k=1 answers agree bit for bit.
   The mapped kernel never parallelizes (summation order would change);
   this matches the heap kernel below its 30k-term parallel threshold.

   Integrity: the body is NOT verified at open (that would break the
   O(1) open).  Instead every section checksum is verified once, before
   the first query ([ensure_verified], an idempotent Atomic latch), so
   corruption surfaces as [Serialize.Format_error "section %s checksum
   mismatch"] — never a crash, never a silently wrong answer.  The
   kernels' unsafe accesses are sound because they only ever run on
   verified bytes, which are exactly the bytes a valid polynomial
   exported. *)

open Edb_util
open Edb_storage
module A1 = Bigarray.Array1

type fbuf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t
type ibuf = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

(* The kernel-facing slice of one group's tables.  Only the arrays the
   read-only kernels touch are carved out; update-path tables (the ts,
   bys and byv families) and cached-state tables (fprod, value,
   mask_sum, mask_outer) stay in the file, verified but never sliced. *)
type mgroup = {
  mg_attrs : int array; (* ascending, from the manifest *)
  mg_n_terms : int;
  mg_fa_off : ibuf; (* length n_terms + 1 *)
  mg_fa_attr : ibuf;
  mg_factors : fbuf;
  mg_iv_off : ibuf; (* length #slots + 1 *)
  mg_iv_lo : ibuf;
  mg_iv_hi : ibuf;
  mg_t_mask : ibuf;
  mg_dprod : fbuf;
  mg_mask_bits : ibuf;
}

type t = {
  path : string;
  manifest : Serialize.v3_manifest;
  schema : Schema.t;
  n : int;
  p : float;
  size_bytes : int;
  cview : Crc32.bigchar; (* whole file, for checksumming *)
  alpha : fbuf;
  attr_sums : fbuf;
  prefix : fbuf array; (* attr -> prefix sums, length N_i + 1 *)
  marg_off : int array; (* attr -> first marginal stat id (attr-major) *)
  free_attrs : int array;
  group_of_attr : int array;
  groups : mgroup array;
  verified : bool Atomic.t;
}

let opens_counter = Edb_obs.Registry.counter "mapped.opens"
let evals_counter = Edb_obs.Registry.counter "mapped.evals"

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let find_section manifest name =
  let rec go = function
    | [] -> raise (Serialize.Format_error ("missing section " ^ name))
    | s :: rest -> if s.Serialize.sec_name = name then s else go rest
  in
  go manifest.Serialize.v3_sections

let open_file path =
  Edb_obs.Obs.with_span "mapped.open" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  Edb_obs.Registry.Counter.incr opens_counter;
  let manifest = Serialize.v3_manifest_of path in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let size, cview, fview, iview =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let map kind n =
          Bigarray.array1_of_genarray
            (Unix.map_file fd kind Bigarray.c_layout false [| n |])
        in
        ( size,
          (map Bigarray.char size : Crc32.bigchar),
          (map Bigarray.float64 (size / 8) : fbuf),
          (map Bigarray.int (size / 8) : ibuf) ))
  in
  let fslice name =
    let s = find_section manifest name in
    if not s.Serialize.sec_float then
      raise
        (Serialize.Format_error
           (Printf.sprintf "section %s has the wrong element kind" name));
    A1.sub fview (s.Serialize.sec_off / 8) s.Serialize.sec_len
  in
  let islice name =
    let s = find_section manifest name in
    if s.Serialize.sec_float then
      raise
        (Serialize.Format_error
           (Printf.sprintf "section %s has the wrong element kind" name));
    A1.sub iview (s.Serialize.sec_off / 8) s.Serialize.sec_len
  in
  let schema = manifest.Serialize.v3_schema in
  let m = Schema.arity schema in
  let alpha = fslice "alpha" in
  let attr_sums = fslice "attr_sums" in
  if A1.dim attr_sums <> m then
    raise (Serialize.Format_error "section attr_sums length mismatch");
  let prefix_all = fslice "prefix" in
  let prefix = Array.make (max 1 m) prefix_all in
  let marg_off = Array.make (max 1 m) 0 in
  let off = ref 0 and id = ref 0 in
  for i = 0 to m - 1 do
    let size_i = Schema.domain_size schema i in
    marg_off.(i) <- !id;
    id := !id + size_i;
    if !off + size_i + 1 > A1.dim prefix_all then
      raise (Serialize.Format_error "section prefix length mismatch");
    prefix.(i) <- A1.sub prefix_all !off (size_i + 1);
    off := !off + size_i + 1
  done;
  if !off <> A1.dim prefix_all then
    raise (Serialize.Format_error "section prefix length mismatch");
  if A1.dim alpha <> !id + List.length manifest.Serialize.v3_joints then
    raise (Serialize.Format_error "section alpha length mismatch");
  let groups =
    Array.mapi
      (fun gi (gm : Serialize.v3_group_meta) ->
        let nm name = Printf.sprintf "g%d.%s" gi name in
        let g =
          {
            mg_attrs = gm.Serialize.v3g_attrs;
            mg_n_terms = gm.Serialize.v3g_n_terms;
            mg_fa_off = islice (nm "fa_off");
            mg_fa_attr = islice (nm "fa_attr");
            mg_factors = fslice (nm "factors");
            mg_iv_off = islice (nm "iv_off");
            mg_iv_lo = islice (nm "iv_lo");
            mg_iv_hi = islice (nm "iv_hi");
            mg_t_mask = islice (nm "t_mask");
            mg_dprod = fslice (nm "dprod");
            mg_mask_bits = islice (nm "mask_bits");
          }
        in
        if
          A1.dim g.mg_fa_off <> gm.Serialize.v3g_n_terms + 1
          || A1.dim g.mg_t_mask <> gm.Serialize.v3g_n_terms
          || A1.dim g.mg_dprod <> gm.Serialize.v3g_n_terms
          || A1.dim g.mg_fa_attr <> A1.dim g.mg_factors
          || A1.dim g.mg_iv_off <> A1.dim g.mg_factors + 1
          || A1.dim g.mg_iv_lo <> A1.dim g.mg_iv_hi
        then
          raise
            (Serialize.Format_error
               (Printf.sprintf "group %d table geometry mismatch" gi));
        g)
      manifest.Serialize.v3_groups
  in
  if Array.length manifest.Serialize.v3_group_of_attr <> m then
    raise (Serialize.Format_error "corrupt v3 attribute-group map");
  {
    path;
    manifest;
    schema;
    n = manifest.Serialize.v3_n;
    p = manifest.Serialize.v3_p;
    size_bytes = size;
    cview;
    alpha;
    attr_sums;
    prefix;
    marg_off;
    free_attrs = manifest.Serialize.v3_free_attrs;
    group_of_attr = manifest.Serialize.v3_group_of_attr;
    groups;
    verified = Atomic.make false;
  }

(* ------------------------------------------------------------------ *)
(* Lazy integrity verification                                         *)
(* ------------------------------------------------------------------ *)

let verify_now t =
  List.iter
    (fun s ->
      let sub = A1.sub t.cview s.Serialize.sec_off (8 * s.Serialize.sec_len) in
      if Crc32.bigchar sub <> s.Serialize.sec_crc then
        raise
          (Serialize.Format_error
             (Printf.sprintf "section %s checksum mismatch"
                s.Serialize.sec_name)))
    t.manifest.Serialize.v3_sections

(* Idempotent latch: concurrent first queries may both verify (harmless;
   verification only reads), after which the flag short-circuits. *)
let ensure_verified t =
  if not (Atomic.get t.verified) then begin
    Edb_obs.Obs.with_span "mapped.verify" ~cat:"io"
      ~attrs:(fun () -> [ ("path", t.path) ])
      (fun () -> verify_now t);
    Atomic.set t.verified true
  end

let verify t = ensure_verified t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let path t = t.path
let schema t = t.schema
let cardinality t = t.n
let size_bytes t = t.size_bytes
let journal t = t.manifest.Serialize.v3_journal
let solver_report t = t.manifest.Serialize.v3_report
let manifest t = t.manifest
let sections t = t.manifest.Serialize.v3_sections

let num_terms t =
  Array.fold_left
    (fun acc (g : Serialize.v3_group_meta) -> acc + g.Serialize.v3g_n_terms)
    0 t.manifest.Serialize.v3_groups

(* ------------------------------------------------------------------ *)
(* Restricted-evaluation kernel — mirrors Poly's heap kernel op for op *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Poly.range_sum]. *)
let[@inline] range_sum (pre : fbuf) r =
  let acc = ref 0. in
  for k = 0 to Ranges.num_intervals r - 1 do
    acc :=
      !acc
      +. A1.unsafe_get pre (Ranges.interval_hi r k + 1)
      -. A1.unsafe_get pre (Ranges.interval_lo r k)
  done;
  !acc

(* Mirror of [Poly.inter_sum]: merge walk over (slot s's intervals ∩
   [qr]), summed via prefix sums in the same interval order. *)
let[@inline] inter_sum (pre : fbuf) g s qr =
  let iv_lo = g.mg_iv_lo and iv_hi = g.mg_iv_hi in
  let acc = ref 0. in
  let k = ref (A1.unsafe_get g.mg_iv_off s) and j = ref 0 in
  let k1 = A1.unsafe_get g.mg_iv_off (s + 1) and nq = Ranges.num_intervals qr in
  while !k < k1 && !j < nq do
    let alo = A1.unsafe_get iv_lo !k and ahi = A1.unsafe_get iv_hi !k in
    let blo = Ranges.interval_lo qr !j and bhi = Ranges.interval_hi qr !j in
    let lo = if alo > blo then alo else blo in
    let hi = if ahi < bhi then ahi else bhi in
    if lo <= hi then
      acc := !acc +. A1.unsafe_get pre (hi + 1) -. A1.unsafe_get pre lo;
    if ahi < bhi then incr k else incr j
  done;
  !acc

(* Mirror of [Poly.restricted_attr_sum]. *)
let[@inline] restricted_attr_sum t query i =
  match Predicate.restriction query i with
  | None -> A1.get t.attr_sums i
  | Some r -> range_sum t.prefix.(i) r

(* Mirror of [Poly.accumulate_masses]. *)
let accumulate_masses t query g (msum : float array) ~lo ~hi =
  let fa_off = g.mg_fa_off
  and fa_attr = g.mg_fa_attr
  and factors = g.mg_factors
  and dprod = g.mg_dprod
  and t_mask = g.mg_t_mask
  and prefix = t.prefix in
  let f = ref 0. in
  for ti = lo to hi - 1 do
    f := A1.unsafe_get dprod ti;
    (try
       for s = A1.unsafe_get fa_off ti to A1.unsafe_get fa_off (ti + 1) - 1 do
         let i = A1.unsafe_get fa_attr s in
         let factor =
           match Predicate.restriction query i with
           | None -> A1.unsafe_get factors s
           | Some qr -> inter_sum (Array.unsafe_get prefix i) g s qr
         in
         if factor = 0. then raise Exit;
         f := !f *. factor
       done
     with Exit -> f := 0.);
    let mask = A1.unsafe_get t_mask ti in
    Array.unsafe_set msum mask (Array.unsafe_get msum mask +. !f)
  done

(* Mirror of [Poly.restricted_group_q]'s sequential path (the mapped
   kernel never takes the parallel branch; see the header comment).
   Per-call accumulators are freshly allocated — they are tiny
   (#local-attrs and #masks), and fresh arrays make concurrent server
   queries over the same mapped summary trivially safe. *)
let restricted_group_q t query g =
  let n_local = Array.length g.mg_attrs in
  let ra = Array.make (max 1 n_local) 0. in
  for li = 0 to n_local - 1 do
    ra.(li) <- restricted_attr_sum t query g.mg_attrs.(li)
  done;
  let num_masks = A1.dim g.mg_mask_bits in
  let msum = Array.make num_masks 0. in
  accumulate_masses t query g msum ~lo:0 ~hi:g.mg_n_terms;
  let q = ref 0. in
  for k = 0 to num_masks - 1 do
    if msum.(k) <> 0. then begin
      let bits = A1.get g.mg_mask_bits k in
      let outer = ref 1. in
      for li = 0 to n_local - 1 do
        if bits land (1 lsl li) = 0 then outer := !outer *. ra.(li)
      done;
      q := !q +. (msum.(k) *. !outer)
    end
  done;
  (* Same cancellation clamp as the heap kernel's production setting
     (floor 0); the fault-injection override is heap-only by design —
     the heap-vs-mapped differential oracle is exactly what should fire
     when the harness plants that bug. *)
  Float.max 0. !q

(* Mirror of [Poly.eval_restricted_sc]. *)
let eval_restricted t query =
  Edb_obs.Registry.Counter.incr evals_counter;
  let acc = ref 1. in
  for k = 0 to Array.length t.free_attrs - 1 do
    acc := !acc *. restricted_attr_sum t query t.free_attrs.(k)
  done;
  for gi = 0 to Array.length t.groups - 1 do
    acc := !acc *. restricted_group_q t query t.groups.(gi)
  done;
  !acc

let[@inline] alpha_of t ~attr v = A1.get t.alpha (t.marg_off.(attr) + v)

let local_of g attr =
  let rec find k = if g.mg_attrs.(k) = attr then k else find (k + 1) in
  find 0

(* Mirror of [Poly.accumulate_by_value]. *)
let accumulate_by_value t query g ~attr ~q_attr (coef : float array)
    (msum : float array) (scatter : float array) ~lo ~hi =
  let fa_off = g.mg_fa_off
  and fa_attr = g.mg_fa_attr
  and factors = g.mg_factors
  and dprod = g.mg_dprod
  and t_mask = g.mg_t_mask
  and iv_off = g.mg_iv_off
  and iv_lo = g.mg_iv_lo
  and iv_hi = g.mg_iv_hi
  and prefix = t.prefix in
  let f = ref 0. in
  for ti = lo to hi - 1 do
    let s0 = A1.unsafe_get fa_off ti and s1 = A1.unsafe_get fa_off (ti + 1) in
    let attr_slot = ref (-1) in
    f := A1.unsafe_get dprod ti;
    (try
       for s = s0 to s1 - 1 do
         let i = A1.unsafe_get fa_attr s in
         if i = attr then attr_slot := s
         else begin
           let factor =
             match Predicate.restriction query i with
             | None -> A1.unsafe_get factors s
             | Some qr -> inter_sum (Array.unsafe_get prefix i) g s qr
           in
           if factor = 0. then raise Exit;
           f := !f *. factor
         end
       done
     with Exit -> f := 0.);
    let attr_slot = !attr_slot in
    let fv = !f in
    if fv <> 0. then
      let mask = A1.unsafe_get t_mask ti in
      if attr_slot < 0 then
        Array.unsafe_set msum mask (Array.unsafe_get msum mask +. fv)
      else begin
        let w = fv *. Array.unsafe_get coef mask in
        match q_attr with
        | None ->
            for k = A1.unsafe_get iv_off attr_slot
                 to A1.unsafe_get iv_off (attr_slot + 1) - 1
            do
              for v = A1.unsafe_get iv_lo k to A1.unsafe_get iv_hi k do
                Array.unsafe_set scatter v (Array.unsafe_get scatter v +. w)
              done
            done
        | Some qr ->
            let k = ref (A1.unsafe_get iv_off attr_slot) and j = ref 0 in
            let k1 = A1.unsafe_get iv_off (attr_slot + 1) in
            let nq = Ranges.num_intervals qr in
            while !k < k1 && !j < nq do
              let alo = A1.unsafe_get iv_lo !k
              and ahi = A1.unsafe_get iv_hi !k in
              let blo = Ranges.interval_lo qr !j
              and bhi = Ranges.interval_hi qr !j in
              let lo = if alo > blo then alo else blo in
              let hi = if ahi < bhi then ahi else bhi in
              if lo <= hi then
                for v = lo to hi do
                  Array.unsafe_set scatter v (Array.unsafe_get scatter v +. w)
                done;
              if ahi < bhi then incr k else incr j
            done
      end
  done

(* Mirror of [Poly.eval_by_value_sc]'s sequential path. *)
let eval_by_value t query ~attr ~out =
  Edb_obs.Registry.Counter.incr evals_counter;
  let size = Schema.domain_size t.schema attr in
  if Array.length out < size then
    invalid_arg "Mapped.eval_by_value: out buffer too small";
  Array.fill out 0 size 0.;
  let q_attr = Predicate.restriction query attr in
  let gi = t.group_of_attr.(attr) in
  let base = ref 1. in
  for k = 0 to Array.length t.free_attrs - 1 do
    let i = t.free_attrs.(k) in
    if i <> attr then base := !base *. restricted_attr_sum t query i
  done;
  for gj = 0 to Array.length t.groups - 1 do
    if gj <> gi then base := !base *. restricted_group_q t query t.groups.(gj)
  done;
  let base = !base in
  if gi < 0 then begin
    match q_attr with
    | None ->
        for v = 0 to size - 1 do
          out.(v) <- base *. alpha_of t ~attr v
        done
    | Some r ->
        for k = 0 to Ranges.num_intervals r - 1 do
          for v = Ranges.interval_lo r k to Ranges.interval_hi r k do
            out.(v) <- base *. alpha_of t ~attr v
          done
        done
  end
  else begin
    let g = t.groups.(gi) in
    let li = local_of g attr in
    let n_local = Array.length g.mg_attrs in
    let num_masks = A1.dim g.mg_mask_bits in
    let coef = Array.make num_masks 0. in
    for k = 0 to num_masks - 1 do
      let bits = A1.get g.mg_mask_bits k in
      let outer = ref 1. in
      for li' = 0 to n_local - 1 do
        if li' <> li && bits land (1 lsl li') = 0 then
          outer := !outer *. restricted_attr_sum t query g.mg_attrs.(li')
      done;
      coef.(k) <- !outer
    done;
    let msum = Array.make num_masks 0. in
    let scatter = Array.make size 0. in
    accumulate_by_value t query g ~attr ~q_attr coef msum scatter ~lo:0
      ~hi:g.mg_n_terms;
    let scalar = ref 0. in
    for k = 0 to num_masks - 1 do
      if A1.get g.mg_mask_bits k land (1 lsl li) = 0 && msum.(k) <> 0. then
        scalar := !scalar +. (msum.(k) *. coef.(k))
    done;
    let scalar = !scalar in
    match q_attr with
    | None ->
        for v = 0 to size - 1 do
          out.(v) <-
            base *. Float.max 0. (alpha_of t ~attr v *. (scalar +. scatter.(v)))
        done
    | Some r ->
        for k = 0 to Ranges.num_intervals r - 1 do
          for v = Ranges.interval_lo r k to Ranges.interval_hi r k do
            out.(v) <-
              base
              *. Float.max 0. (alpha_of t ~attr v *. (scalar +. scatter.(v)))
          done
        done
  end

(* Mirror of [Poly.eval_weighted_impl].  Non-overridden attributes copy
   their mapped prefix slice into a plain array (memoized per call):
   the copies hold the exact stored doubles, so every operation sees the
   same values the heap path does. *)
let eval_weighted t query ~weights =
  Edb_obs.Registry.Counter.incr evals_counter;
  let all_nonneg = ref true in
  let prefix_of =
    let overridden = Hashtbl.create 4 in
    List.iter
      (fun (attr, w) ->
        let size = Schema.domain_size t.schema attr in
        let pre = Array.make (size + 1) 0. in
        for v = 0 to size - 1 do
          let wa = alpha_of t ~attr v *. w v in
          if wa < 0. then all_nonneg := false;
          pre.(v + 1) <- pre.(v) +. wa
        done;
        Hashtbl.replace overridden attr pre)
      weights;
    let copies = Hashtbl.create 8 in
    fun attr ->
      match Hashtbl.find_opt overridden attr with
      | Some pre -> pre
      | None -> (
          match Hashtbl.find_opt copies attr with
          | Some pre -> pre
          | None ->
              let sl = t.prefix.(attr) in
              let pre = Array.init (A1.dim sl) (fun k -> A1.get sl k) in
              Hashtbl.add copies attr pre;
              pre)
  in
  let range_sum_pre (pre : float array) r =
    let acc = ref 0. in
    for k = 0 to Ranges.num_intervals r - 1 do
      acc :=
        !acc +. pre.(Ranges.interval_hi r k + 1) -. pre.(Ranges.interval_lo r k)
    done;
    !acc
  in
  let slot_sum_pre (pre : float array) g s =
    let acc = ref 0. in
    for k = A1.unsafe_get g.mg_iv_off s to A1.unsafe_get g.mg_iv_off (s + 1) - 1
    do
      acc :=
        !acc
        +. Array.unsafe_get pre (A1.unsafe_get g.mg_iv_hi k + 1)
        -. Array.unsafe_get pre (A1.unsafe_get g.mg_iv_lo k)
    done;
    !acc
  in
  let inter_sum_pre (pre : float array) g s qr =
    let iv_lo = g.mg_iv_lo and iv_hi = g.mg_iv_hi in
    let acc = ref 0. in
    let k = ref (A1.unsafe_get g.mg_iv_off s) and j = ref 0 in
    let k1 = A1.unsafe_get g.mg_iv_off (s + 1)
    and nq = Ranges.num_intervals qr in
    while !k < k1 && !j < nq do
      let alo = A1.unsafe_get iv_lo !k and ahi = A1.unsafe_get iv_hi !k in
      let blo = Ranges.interval_lo qr !j and bhi = Ranges.interval_hi qr !j in
      let lo = if alo > blo then alo else blo in
      let hi = if ahi < bhi then ahi else bhi in
      if lo <= hi then
        acc := !acc +. Array.unsafe_get pre (hi + 1) -. Array.unsafe_get pre lo;
      if ahi < bhi then incr k else incr j
    done;
    !acc
  in
  let attr_total i =
    let pre = prefix_of i in
    match Predicate.restriction query i with
    | None -> pre.(Schema.domain_size t.schema i)
    | Some r -> range_sum_pre pre r
  in
  let acc = ref 1. in
  Array.iter (fun i -> acc := !acc *. attr_total i) t.free_attrs;
  Array.iter
    (fun g ->
      let totals = Array.map attr_total g.mg_attrs in
      let num_masks = A1.dim g.mg_mask_bits in
      let msum = Array.make num_masks 0. in
      for ti = 0 to g.mg_n_terms - 1 do
        let f = ref (A1.get g.mg_dprod ti) in
        (try
           for s = A1.get g.mg_fa_off ti to A1.get g.mg_fa_off (ti + 1) - 1 do
             let i = A1.get g.mg_fa_attr s in
             let pre = prefix_of i in
             let factor =
               match Predicate.restriction query i with
               | None -> slot_sum_pre pre g s
               | Some qr -> inter_sum_pre pre g s qr
             in
             if factor = 0. then raise Exit;
             f := !f *. factor
           done
         with Exit -> f := 0.);
        let mask = A1.get g.mg_t_mask ti in
        msum.(mask) <- msum.(mask) +. !f
      done;
      let q = ref 0. in
      let n_local = Array.length g.mg_attrs in
      for k = 0 to num_masks - 1 do
        if msum.(k) <> 0. then begin
          let bits = A1.get g.mg_mask_bits k in
          let outer = ref 1. in
          for li = 0 to n_local - 1 do
            if bits land (1 lsl li) = 0 then outer := !outer *. totals.(li)
          done;
          q := !q +. (msum.(k) *. !outer)
        end
      done;
      let q = if !all_nonneg then Float.max 0. !q else !q in
      acc := !acc *. q)
    t.groups;
  !acc

(* ------------------------------------------------------------------ *)
(* Public estimators — mirror Summary / Disjunction                    *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Poly.estimate] (n · P[zeroed] / P). *)
let estimate t query =
  ensure_verified t;
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int t.n *. eval_restricted t query /. t.p

let estimate_rounded t query =
  let e = estimate t query in
  if e < 0.5 then 0. else e

(* Mirror of [Summary.variance]. *)
let variance t query =
  ensure_verified t;
  if t.p <= 0. then 0.
  else
    let p_q = eval_restricted t query /. t.p in
    let p_q = Floatx.clamp ~lo:0. ~hi:1. p_q in
    float_of_int t.n *. p_q *. (1. -. p_q)

let stddev t query = sqrt (variance t query)

(* Mirror of [Summary.estimate_with_variance]. *)
let estimate_with_variance t query =
  ensure_verified t;
  if Predicate.is_unsatisfiable query then (0., 0.)
  else if t.p <= 0. then (0., 0.)
  else
    let r = eval_restricted t query in
    let est = float_of_int t.n *. r /. t.p in
    let p_q = Floatx.clamp ~lo:0. ~hi:1. (r /. t.p) in
    (est, float_of_int t.n *. p_q *. (1. -. p_q))

(* Mirror of [Summary.midpoint_weights]. *)
let midpoint_weights t ~attr =
  let domain = Schema.domain t.schema attr in
  let table =
    Array.init (Schema.domain_size t.schema attr) (fun v ->
        Domain.bin_midpoint domain v)
  in
  fun v -> table.(v)

(* Mirror of [Poly.estimate_weighted]. *)
let estimate_weighted t query ~weights =
  ensure_verified t;
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int t.n *. eval_weighted t query ~weights /. t.p

let estimate_sum t ~attr ?weights query =
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  estimate_weighted t query ~weights:[ (attr, w) ]

let estimate_avg t ~attr query =
  let count = estimate t query in
  if count <= 0. then None else Some (estimate_sum t ~attr query /. count)

(* Mirror of [Summary.variance_sum]. *)
let variance_sum t ~attr ?weights query =
  ensure_verified t;
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  if t.p <= 0. then 0.
  else
    let mean_w = eval_weighted t query ~weights:[ (attr, w) ] /. t.p in
    let mean_w2 =
      eval_weighted t query ~weights:[ (attr, fun v -> w v ** 2.) ] /. t.p
    in
    Float.max 0. (float_of_int t.n *. (mean_w2 -. (mean_w ** 2.)))

(* Mirror of [Summary.estimate_groups_with_variance]: same pivot choice,
   same shared result buffer, same enumeration and sort order. *)
let estimate_groups_with_variance t ~attrs query =
  ensure_verified t;
  let n = float_of_int t.n in
  let p_total = t.p in
  let cell r =
    if p_total <= 0. then (0., 0.)
    else
      let est = n *. r /. p_total in
      let p = Floatx.clamp ~lo:0. ~hi:1. (r /. p_total) in
      (est, n *. p *. (1. -. p))
  in
  match attrs with
  | [] ->
      let r =
        if Predicate.is_unsatisfiable query then 0. else eval_restricted t query
      in
      let est, var = cell r in
      [ ([], est, var) ]
  | _ ->
      let attr_arr = Array.of_list attrs in
      let cand =
        Array.map
          (fun attr ->
            match Predicate.restriction query attr with
            | None -> Array.init (Schema.domain_size t.schema attr) Fun.id
            | Some r -> Array.of_list (Ranges.to_list r))
          attr_arr
      in
      let pivot = ref 0 in
      Array.iteri
        (fun i c ->
          if Array.length c > Array.length cand.(!pivot) then pivot := i)
        cand;
      let pivot = !pivot in
      let d = Array.length attr_arr in
      let chosen = Array.make d 0 in
      let vec = Array.make (Schema.domain_size t.schema attr_arr.(pivot)) 0. in
      let cells = ref [] in
      let rec combos i =
        if i = d then begin
          let q = ref query in
          for j = 0 to d - 1 do
            if j <> pivot then
              q :=
                Predicate.restrict !q attr_arr.(j)
                  (Ranges.singleton chosen.(j))
          done;
          eval_by_value t !q ~attr:attr_arr.(pivot) ~out:vec;
          Array.iter
            (fun v ->
              chosen.(pivot) <- v;
              cells := (Array.to_list chosen, vec.(v)) :: !cells)
            cand.(pivot)
        end
        else if i = pivot then combos (i + 1)
        else
          Array.iter
            (fun v ->
              chosen.(i) <- v;
              combos (i + 1))
            cand.(i)
      in
      combos 0;
      List.sort (fun (a, _) (b, _) -> compare a b) !cells
      |> List.map (fun (key, r) ->
             let est, var = cell r in
             (key, est, var))

let estimate_groups_with_stddev t ~attrs query =
  List.map
    (fun (key, est, var) -> (key, est, sqrt var))
    (estimate_groups_with_variance t ~attrs query)

let estimate_groups t ~attrs query =
  List.map
    (fun (key, est, _) -> (key, est))
    (estimate_groups_with_variance t ~attrs query)

(* Mirror of [Summary.group_order] / [Summary.top_k_groups]. *)
let group_order (ka, a) (kb, b) =
  let c = Float.compare b a in
  if c <> 0 then c else Stdlib.compare ka kb

let top_k_groups t ~attrs ~k query =
  let groups = estimate_groups t ~attrs query in
  let sorted = List.sort group_order groups in
  List.filteri (fun i _ -> i < k) sorted

(* Mirror of [Disjunction.estimate] / [probability] / [variance]: same
   inclusion–exclusion fold, same intersection order, same sign and
   accumulation operations. *)
let sign size = if size mod 2 = 1 then 1. else -1.

let estimate_disjuncts t preds =
  Disjunction.check_disjuncts preds;
  Disjunction.fold_intersections preds ~init:0.
    ~f:(fun acc ~intersection ~size ->
      acc +. (sign size *. estimate t intersection))

let probability_disjuncts t preds =
  Disjunction.check_disjuncts preds;
  ensure_verified t;
  if t.p <= 0. then 0.
  else
    let mass =
      Disjunction.fold_intersections preds ~init:0.
        ~f:(fun acc ~intersection ~size ->
          acc +. (sign size *. eval_restricted t intersection))
    in
    Floatx.clamp ~lo:0. ~hi:1. (mass /. t.p)

let variance_disjuncts t preds =
  let p = probability_disjuncts t preds in
  float_of_int t.n *. p *. (1. -. p)

let stddev_disjuncts t preds = sqrt (variance_disjuncts t preds)
