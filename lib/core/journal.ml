(* Ingest journal: a summary's lineage.

   A freshly built summary starts a journal with one base record; every
   ingested batch appends an entry (row count, source tag, solver sweeps
   the warm-started re-solve took).  The journal travels inside the
   serialized summary (format v2, see Serialize), so after a restart a
   summary still knows how it was assembled and the maintenance history
   is replayable/auditable: [total_rows] must always equal the summary's
   cardinality, which the ingest path and the check harness both verify.

   The [version] field makes the journal itself evolvable independently
   of the container file format: a future reader can dispatch on it
   without another magic bump. *)

let version = 1

type entry = {
  rows : int;  (* cardinality of the ingested batch *)
  source : string;  (* provenance tag, e.g. the batch CSV's basename *)
  sweeps : int;  (* solver sweeps the warm-started re-solve took *)
  warm : bool;  (* whether the solve was warm-started *)
}

type t = {
  j_version : int;
  base_rows : int;
  base_source : string;
  entries : entry list; (* oldest first *)
}

let base ?(source = "build") ~rows () =
  if rows < 0 then invalid_arg "Journal.base: negative row count";
  { j_version = version; base_rows = rows; base_source = source; entries = [] }

let append t entry =
  if entry.rows < 0 then invalid_arg "Journal.append: negative row count";
  { t with entries = t.entries @ [ entry ] }

let entries t = t.entries
let base_rows t = t.base_rows
let base_source t = t.base_source
let batches t = List.length t.entries

let total_rows t =
  List.fold_left (fun acc e -> acc + e.rows) t.base_rows t.entries

let pp_entry ppf e =
  Fmt.pf ppf "+%d rows from %s (%d sweep%s, %s)" e.rows e.source e.sweeps
    (if e.sweeps = 1 then "" else "s")
    (if e.warm then "warm" else "cold")

let pp ppf t =
  Fmt.pf ppf "@[<v>base: %d rows from %s" t.base_rows t.base_source;
  List.iter (fun e -> Fmt.pf ppf "@,%a" pp_entry e) t.entries;
  Fmt.pf ppf "@]"
