(** Disjunctions of conjunctive counting queries, answered by
    inclusion–exclusion over the summary's primitive estimates. *)

open Edb_storage

val max_disjuncts : int
(** Hard cap (10) on the number of disjuncts: inclusion–exclusion is
    exponential in it. *)

val check_disjuncts : Predicate.t list -> unit
(** Raises [Invalid_argument] on an empty disjunction or more than
    {!max_disjuncts} disjuncts. *)

val fold_intersections :
  Predicate.t list ->
  f:('a -> intersection:Predicate.t -> size:int -> 'a) ->
  init:'a ->
  'a
(** Fold over every non-empty satisfiable intersection of the disjuncts
    (DFS with unsatisfiable-prefix pruning), in a fixed deterministic
    order.  Exposed so alternate summary backings ({!Mapped}) can expand
    inclusion–exclusion with exactly the same intersection order and
    therefore bitwise-identical float accumulation. *)

val estimate : Summary.t -> Predicate.t list -> float
(** E[⟨π₁ ∨ … ∨ π_d, I⟩].  Raises [Invalid_argument] on an empty
    disjunction or more than {!max_disjuncts} disjuncts.  Unsatisfiable
    intersections are pruned with their supersets. *)

val probability : Summary.t -> Predicate.t list -> float
(** Pr[a model tuple satisfies the disjunction], clamped to [\[0, 1\]]. *)

val variance : Summary.t -> Predicate.t list -> float
(** n·p·(1−p) under the multinomial view. *)

val stddev : Summary.t -> Predicate.t list -> float
