(** The compressed factorized MaxEnt polynomial (Eq. 5 / Theorem 4.1).

    P is stored as a product over attribute-connected statistic groups of
    group polynomials, each a sum over compatible sets of joint statistics
    (the paper's J_I), never materializing the one-monomial-per-tuple form.
    All cached quantities are maintained incrementally under
    single-variable updates, which is what Algorithm 1 needs. *)

open Edb_storage

type t

exception Too_many_terms of { cap : int; group_attrs : int list }

val layout : string
(** Name of the in-memory term layout (recorded in BENCH_kernel.json so
    the kernel bench can tell a layout change from a same-layout
    regression). *)

val create : ?term_cap:int -> Phi.t -> t
(** Builds the compressed representation and initializes variables
    (marginals to s_j/n — exact for a marginals-only model — and joints
    to 1, which makes their correction terms vanish initially).  Raises
    {!Too_many_terms} if a group's compatible-set enumeration exceeds
    [term_cap] (default 2,000,000): the statistic budget is too large for
    this attribute topology. *)

val phi : t -> Phi.t

val p : t -> float
(** Current value of P at the current variable assignment. *)

val alpha : t -> int -> float
(** Value of statistic [j]'s variable. *)

val attr_sum : t -> int -> float
(** A_i: sum of attribute [i]'s marginal variables. *)

val set_alpha : t -> int -> float -> unit
(** Incremental single-variable update; maintains all cached sums, group
    values, and P in O(terms containing the variable). *)

val refresh : t -> unit
(** Recompute every cached quantity from the variable vector (washes out
    floating-point drift; the solver calls it once per sweep). *)

val normalize : t -> unit
(** Rescale every attribute's marginal variables so A_i = 1.  Leaves all
    expectations, estimates, and the dual unchanged (overcompleteness
    makes the model scale-invariant per attribute) while pinning P's
    magnitude — numerical hygiene the solver applies once per sweep. *)

val set_alphas : t -> float array -> unit
(** Bulk assignment of the whole variable vector (indexed by stat id),
    followed by a full refresh.  Raises on length mismatch. *)

val alphas : t -> float array
(** Copy of the current variable vector. *)

val reinit : t -> [ `Marginals | `Uniform ] -> unit
(** Reset variables to an initialization strategy: [`Marginals] seeds 1D
    variables at s_j/n, [`Uniform] seeds everything at 1. *)

val partial : t -> int -> float
(** ∂P/∂α_j.  P is multi-linear, so this is exact, not numeric. *)

val expected : t -> int -> float
(** E[⟨c_j, I⟩] = n·α_j·∂P/∂α_j / P  (Eq. 8). *)

val eval_restricted : t -> Predicate.t -> float
(** P with all 1D variables outside the query's restrictions set to 0 —
    the optimized query evaluation of Sec. 4.2.  No rebuilding.  Groups
    above 30k terms are evaluated with {!set_parallelism} domains. *)

val eval_restricted_by_value : t -> Predicate.t -> attr:int -> float array
(** Batched GROUP BY kernel: element [v] of the result equals
    [eval_restricted t (Predicate.restrict query attr (singleton v))]
    (up to float reassociation, ≤ 1e-9 relative), for {e every} value of
    [attr]'s domain, computed in one pass over the terms instead of one
    scan per value.  Values outside the query's restriction on [attr]
    are 0.  Cost: O(terms + Σ|projection ∩ query| + domain size) —
    independent of the number of group cells.  Same parallelism gating
    as {!eval_restricted}. *)

val eval_restricted_by_value_into :
  t -> Predicate.t -> attr:int -> out:float array -> unit
(** As {!eval_restricted_by_value}, but fills the caller's buffer
    instead of allocating: cells [0 .. domain_size - 1] of [out] are
    (over)written, values outside the query's restriction to 0.  [out]
    must be at least the attribute's domain size (larger is fine; the
    tail is untouched), which lets callers evaluating many cross-product
    cells — [Summary.estimate_groups] — reuse one buffer for the whole
    query.  Raises [Invalid_argument] on a too-small buffer. *)

val set_parallelism : ?threshold:int -> int -> unit
(** Worker domains for restricted evaluation over large groups (default:
    the [EDB_DOMAINS] environment variable, else 1).  [threshold] is the
    minimum group term count for parallel evaluation (default 30,000;
    overridable for testing). *)

val set_cancellation_floor : float -> unit
(** Floor of the cancellation clamp applied to restricted group values
    (default 0, the correct value).  Exists solely for fault injection:
    the correctness harness ([entropydb check --mutate clamp]) raises it
    to plant a known estimator bug and assert that the oracle battery
    catches it.  Never set this in production code. *)

val estimate : t -> Predicate.t -> float
(** E[⟨q, I⟩] = n·P\[zeroed\]/P for a conjunctive counting query. *)

val eval_weighted :
  t -> Predicate.t -> weights:(int * (int -> float)) list -> float
(** Sum over tuples satisfying the predicate of
    [Π_i w_i(t_i) · monomial(t)], for product-form weights: [weights]
    maps an attribute to a per-value weight, absent attributes weigh 1.
    Computed by substituting α_{i,v} ↦ α_{i,v}·w_i(v) — no restructuring.
    When every weighted variable is non-negative (the SUM/AVG midpoint
    case), each group value gets the same cancellation clamp as
    {!eval_restricted}, so tiny negative totals cannot flip an
    estimate's sign; genuinely signed weights are left unclamped. *)

val estimate_weighted :
  t -> Predicate.t -> weights:(int * (int -> float)) list -> float
(** E of the weighted linear query: n·[eval_weighted]/P. *)

val dual : t -> float
(** The dual objective Ψ = Σ_j s_j ln α_j − n ln P (Eq. 11); concave in the
    θ parametrization, maximized at the MaxEnt solution. *)

val num_terms : t -> int
(** Terms in the compressed representation (including per-group base
    terms). *)

val num_groups : t -> int

val uncompressed_monomials : t -> float
(** |Tup| — the size the naive sum-of-products form would have. *)

(** {2 Table export (summary format v3)}

    The flat SoA/CSR tables behind the kernel, exposed so the zero-copy
    serializer can write them to disk verbatim: a mapped summary's
    evaluation then walks bitwise the same data the heap kernel does.
    All arrays are {e shared} with the polynomial — treat them as
    read-only snapshots of the current solved state. *)

type group_tables = {
  gt_attrs : int array;
  gt_stats : int array;
  gt_n_terms : int;
  gt_ts_off : int array;
  gt_ts_stat : int array;
  gt_fa_off : int array;
  gt_fa_attr : int array;
  gt_factors : float array;
  gt_iv_off : int array;
  gt_iv_lo : int array;
  gt_iv_hi : int array;
  gt_t_mask : int array;
  gt_fprod : float array;
  gt_dprod : float array;
  gt_value : float array;
  gt_mask_bits : int array;
  gt_mask_sum : float array;
  gt_mask_outer : float array;
  gt_q : float;
  gt_bys_off : int array;
  gt_bys_term : int array;
  gt_byv_off : int array array;
  gt_byv_term : int array array;
  gt_byv_slot : int array array;
}

type tables = {
  tb_alpha : float array;
  tb_attr_sums : float array;
  tb_prefix : float array array;
  tb_p : float;
  tb_free_attrs : int array;
  tb_group_of_attr : int array;
  tb_groups : group_tables array;
}

val tables : t -> tables
(** Current tables (prefix sums finalized first).  Call {!refresh}
    beforehand to wash out incremental drift when a canonical
    (rebuild-from-α) state is required, as the v3 writer does. *)

val footprint_bytes : t -> int
(** Estimated resident heap size of the flat tables in bytes (one word
    per array element); the weighted catalog charges heap-backed entries
    with this. *)
