(** Summary persistence: one versioned binary file per flat summary,
    sized O(#statistics), plus a versioned manifest format for sharded
    summaries (one manifest referencing k flat per-shard files).  The
    compressed polynomial is rebuilt on load. *)

exception Format_error of string

val version : int
(** Current flat-file format version (2: v1 payload + the ingest
    {!Journal}).  {!load} accepts every version up to this one — v1 files
    load with a fresh base journal — and rejects unknown future versions
    with {!Format_error}. *)

val save : Summary.t -> string -> unit
(** Always writes the current {!version}. *)

val load : ?term_cap:int -> string -> Summary.t
(** Load any flat summary file — v1, v2, or v3 (heap rebuild; see
    {!v3_load}).  Raises {!Format_error} on bad magic, an unsupported
    (future) version, or a corrupt payload, and like {!Poly.create} if
    the rebuilt polynomial exceeds [term_cap]. *)

(** {2 Sharded manifests}

    A sharded summary persists as one manifest file (magic, version,
    partitioning-strategy tag, shard count, per-shard file names) next to
    one flat summary file per shard, named [<base>.shard<i>].  Shard
    files are referenced relative to the manifest's directory, so the
    whole group moves together. *)

type format = Flat | Sharded | MappedV3

val detect : string -> format
(** Classify a summary file by magic; {!Format_error} when it is none of
    the known formats.  Reads only the header. *)

val save_sharded : strategy:string -> Summary.t array -> string -> unit
(** Write the per-shard files and then the manifest at [path].
    [strategy] is an opaque tag (e.g. ["rows"] or ["attr:origin"]) stored
    for provenance.  Raises [Invalid_argument] on an empty array. *)

val load_sharded : ?term_cap:int -> string -> string * Summary.t array
(** Load a manifest and all its shards; returns the strategy tag and the
    shard summaries in manifest order.  Raises {!Format_error} on bad
    magic, unsupported version, truncated fields, a shard count that
    disagrees with the name list or the files on disk, per-shard
    corruption, or a schema mismatch between shards — never a crash. *)

(** {2 Summary format v3 — page-aligned, mmap-able}

    v3 stores the polynomial's flat SoA kernel tables verbatim as
    page-aligned body sections, preceded by a fixed header and followed
    by a marshaled manifest (small metadata + per-section checksums), so
    a summary can be opened in O(header + manifest) and queried directly
    off a file mapping ({!Mapped}).  The element encoding is the host's
    Bigarray representation (IEEE-754 doubles, untagged native ints,
    little-endian); files from hosts with a different int size or byte
    order are rejected with {!Format_error}. *)

val v3_page : int
(** Section alignment (4096 bytes). *)

type v3_section = {
  sec_name : string;  (** e.g. ["alpha"], ["g0.ts_off"] *)
  sec_float : bool;  (** float64 elements; untagged ints otherwise *)
  sec_off : int;  (** byte offset, page-aligned *)
  sec_len : int;  (** element count (8 bytes each) *)
  sec_crc : int;  (** CRC-32 of the raw section bytes *)
}

type v3_group_meta = {
  v3g_attrs : int array;
  v3g_stats : int array;
  v3g_n_terms : int;
  v3g_q : float;
}

type v3_manifest = {
  v3_schema : Edb_storage.Schema.t;
  v3_n : int;
  v3_p : float;
  v3_marginal_targets : float array array;
  v3_joints : (Edb_storage.Predicate.t * float) list;
  v3_report : Solver.report;
  v3_journal : Journal.t;
  v3_free_attrs : int array;
  v3_group_of_attr : int array;
  v3_groups : v3_group_meta array;
  v3_sections : v3_section list;
}

val save_v3 : Summary.t -> string -> unit
(** Write the summary in format v3.  Refreshes the polynomial's cached
    tables first (semantically the identity), so the stored tables are
    bitwise what any loader rebuilds from the variable vector. *)

val v3_manifest_of : string -> v3_manifest
(** Validated header + manifest read in O(header + manifest) I/O — the
    low-level entry {!Mapped.open_file} builds on.  Raises
    {!Format_error} on bad magic, version/geometry mismatches, a header
    or manifest checksum failure, truncation, or an inconsistent section
    table.  Body sections are {e not} read or verified here. *)

val v3_sections : string -> v3_section list
(** The section table of a v3 file (used by corruption tests and
    [entropydb info]). *)

val v3_load : ?term_cap:int -> string -> Summary.t
(** Heap-load a v3 file: verify {e every} section checksum, then rebuild
    the polynomial from the stored targets and alpha vector exactly like
    a v2 load.  Raises {!Format_error} as {!v3_manifest_of}, plus on any
    body-section checksum mismatch. *)
