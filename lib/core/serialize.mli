(** Summary persistence: one versioned binary file per flat summary,
    sized O(#statistics), plus a versioned manifest format for sharded
    summaries (one manifest referencing k flat per-shard files).  The
    compressed polynomial is rebuilt on load. *)

exception Format_error of string

val version : int
(** Current flat-file format version (2: v1 payload + the ingest
    {!Journal}).  {!load} accepts every version up to this one — v1 files
    load with a fresh base journal — and rejects unknown future versions
    with {!Format_error}. *)

val save : Summary.t -> string -> unit
(** Always writes the current {!version}. *)

val load : ?term_cap:int -> string -> Summary.t
(** Raises {!Format_error} on bad magic, an unsupported (future) version,
    or a corrupt payload, and like {!Poly.create} if the rebuilt
    polynomial exceeds [term_cap]. *)

(** {2 Sharded manifests}

    A sharded summary persists as one manifest file (magic, version,
    partitioning-strategy tag, shard count, per-shard file names) next to
    one flat summary file per shard, named [<base>.shard<i>].  Shard
    files are referenced relative to the manifest's directory, so the
    whole group moves together. *)

type format = Flat | Sharded

val detect : string -> format
(** Classify a summary file by magic; {!Format_error} when it is
    neither.  Reads only the header. *)

val save_sharded : strategy:string -> Summary.t array -> string -> unit
(** Write the per-shard files and then the manifest at [path].
    [strategy] is an opaque tag (e.g. ["rows"] or ["attr:origin"]) stored
    for provenance.  Raises [Invalid_argument] on an empty array. *)

val load_sharded : ?term_cap:int -> string -> string * Summary.t array
(** Load a manifest and all its shards; returns the strategy tag and the
    shard summaries in manifest order.  Raises {!Format_error} on bad
    magic, unsupported version, truncated fields, a shard count that
    disagrees with the name list or the files on disk, per-shard
    corruption, or a schema mismatch between shards — never a crash. *)
