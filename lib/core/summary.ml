(* The EntropyDB summary: the public face of the library.

   A summary bundles the solved polynomial with everything needed to answer
   queries: build it once offline (Sec. 3.3), then ask for expected counts
   of any conjunctive counting query (Sec. 4.2), group-by estimates, or
   uncertainty (closed-form variance — the paper's Sec. 7 roadmap item,
   which falls out of the multinomial reading of the fixed-size MaxEnt
   model). *)

open Edb_storage

type t = {
  poly : Poly.t;
  schema : Schema.t;
  n : int;
  report : Solver.report;
  journal : Journal.t; (* lineage: base build + every ingested batch *)
}

let build ?(solver_config = Solver.default_config) ?term_cap ?on_sweep rel
    ~joints =
  let phi = Phi.of_relation rel ~joints in
  let poly = Poly.create ?term_cap phi in
  let report = Solver.solve ~config:solver_config ?on_sweep poly in
  let n = Relation.cardinality rel in
  {
    poly;
    schema = Relation.schema rel;
    n;
    report;
    journal = Journal.base ~rows:n ();
  }

let of_phi ?(solver_config = Solver.default_config) ?term_cap ?init ?on_sweep
    phi =
  let poly = Poly.create ?term_cap phi in
  let report = Solver.solve ~config:solver_config ?init ?on_sweep poly in
  {
    poly;
    schema = Phi.schema phi;
    n = Phi.n phi;
    report;
    journal = Journal.base ~rows:(Phi.n phi) ();
  }

let of_solved_poly ?journal ~poly ~report () =
  let n = Phi.n (Poly.phi poly) in
  {
    poly;
    schema = Phi.schema (Poly.phi poly);
    n;
    report;
    journal =
      (match journal with Some j -> j | None -> Journal.base ~rows:n ());
  }

let schema t = t.schema
let cardinality t = t.n
let poly t = t.poly
let solver_report t = t.report
let journal t = t.journal
let with_journal t journal = { t with journal }

let estimate t query = Poly.estimate t.poly query

(* The paper rounds estimates below 0.5 to 0 when distinguishing rare from
   nonexistent values (Sec. 4.3 discussion of Fig. 2b). *)
let estimate_rounded t query =
  let e = estimate t query in
  if e < 0.5 then 0. else e

(* Multinomial view (Sec. 3.1's slotted worlds of fixed cardinality n):
   each of the n slots holds tuple u with probability p_u = monomial_u / P
   independently, so a counting query's answer is Binomial(n, p) with
   p = P[zeroed]/P; hence Var = n p (1-p). *)
let variance t query =
  let p_total = Poly.p t.poly in
  if p_total <= 0. then 0.
  else
    let p_q = Poly.eval_restricted t.poly query /. p_total in
    let p_q = Edb_util.Floatx.clamp ~lo:0. ~hi:1. p_q in
    float_of_int t.n *. p_q *. (1. -. p_q)

let stddev t query = sqrt (variance t query)

(* One restricted evaluation serving both moments: the estimate is computed
   with the same operations in the same order as [Poly.estimate], so it is
   bitwise-identical to {!estimate}, and the variance matches {!variance}. *)
let estimate_with_variance t query =
  if Predicate.is_unsatisfiable query then (0., 0.)
  else
    let p_total = Poly.p t.poly in
    if p_total <= 0. then (0., 0.)
    else
      let r = Poly.eval_restricted t.poly query in
      let est = float_of_int t.n *. r /. p_total in
      let p_q = Edb_util.Floatx.clamp ~lo:0. ~hi:1. (r /. p_total) in
      (est, float_of_int t.n *. p_q *. (1. -. p_q))

(* Aggregate queries beyond COUNT: SUM and AVG over a binned attribute,
   answered as weighted linear queries (each row contributes its bin's
   midpoint).  The paper's theory covers all linear queries; its prototype
   stopped at counting (Sec. 7 "limited query support") — this closes that
   gap for the product-form subclass. *)
let midpoint_weights t ~attr =
  let domain = Schema.domain t.schema attr in
  let table =
    Array.init (Schema.domain_size t.schema attr) (fun v ->
        Domain.bin_midpoint domain v)
  in
  fun v -> table.(v)

let estimate_sum t ~attr ?weights query =
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  Poly.estimate_weighted t.poly query ~weights:[ (attr, w) ]

let estimate_avg t ~attr query =
  let count = estimate t query in
  if count <= 0. then None else Some (estimate_sum t ~attr query /. count)

(* Var[Σ_t w_t X_t] for the multinomial model: n (Σ w² p − (Σ w p)²). *)
let variance_sum t ~attr ?weights query =
  let w = match weights with Some w -> w | None -> midpoint_weights t ~attr in
  let p_total = Poly.p t.poly in
  if p_total <= 0. then 0.
  else
    let mean_w =
      Poly.eval_weighted t.poly query ~weights:[ (attr, w) ] /. p_total
    in
    let mean_w2 =
      Poly.eval_weighted t.poly query ~weights:[ (attr, fun v -> w v ** 2.) ]
      /. p_total
    in
    Float.max 0. (float_of_int t.n *. (mean_w2 -. (mean_w ** 2.)))

(* GROUP BY estimation (the paper's Sec. 3.1 reading of GROUP BY +
   ORDER BY ... LIMIT).  The grouping attribute with the widest
   (restricted) candidate set is answered by the batched kernel
   {!Poly.eval_restricted_by_value} — one term pass for all of its
   values — and the cross product of the remaining attributes is
   enumerated around it, so a d-attribute GROUP BY costs
   Π_{i≠pivot}|D_i| kernel passes instead of Π_i|D_i| full scans.
   Each cell's restricted P also yields its binomial p, so the
   per-group variance is free.  Cells are emitted in the nested
   enumeration order of [attrs] (lexicographic in the group key). *)
let estimate_groups_with_variance t ~attrs query =
  let n = float_of_int t.n in
  let p_total = Poly.p t.poly in
  let cell r =
    if p_total <= 0. then (0., 0.)
    else
      let est = n *. r /. p_total in
      let p = Edb_util.Floatx.clamp ~lo:0. ~hi:1. (r /. p_total) in
      (est, n *. p *. (1. -. p))
  in
  match attrs with
  | [] ->
      let r =
        if Predicate.is_unsatisfiable query then 0.
        else Poly.eval_restricted t.poly query
      in
      let est, var = cell r in
      [ ([], est, var) ]
  | _ ->
      let attr_arr = Array.of_list attrs in
      let cand =
        Array.map
          (fun attr ->
            match Predicate.restriction query attr with
            | None -> Array.init (Schema.domain_size t.schema attr) Fun.id
            | Some r -> Array.of_list (Edb_util.Ranges.to_list r))
          attr_arr
      in
      let pivot = ref 0 in
      Array.iteri
        (fun i c ->
          if Array.length c > Array.length cand.(!pivot) then pivot := i)
        cand;
      let pivot = !pivot in
      let d = Array.length attr_arr in
      let chosen = Array.make d 0 in
      (* One kernel-result buffer for the whole cross product: the
         batched kernel fills it in place per non-pivot combination, so
         a d-attribute GROUP BY no longer allocates a fresh domain-sized
         vector per cell row. *)
      let vec =
        Array.make (Schema.domain_size t.schema attr_arr.(pivot)) 0.
      in
      let cells = ref [] in
      let rec combos i =
        if i = d then begin
          let q = ref query in
          for j = 0 to d - 1 do
            if j <> pivot then
              q :=
                Predicate.restrict !q attr_arr.(j)
                  (Edb_util.Ranges.singleton chosen.(j))
          done;
          Poly.eval_restricted_by_value_into t.poly !q ~attr:attr_arr.(pivot)
            ~out:vec;
          Array.iter
            (fun v ->
              chosen.(pivot) <- v;
              cells := (Array.to_list chosen, vec.(v)) :: !cells)
            cand.(pivot)
        end
        else if i = pivot then combos (i + 1)
        else
          Array.iter
            (fun v ->
              chosen.(i) <- v;
              combos (i + 1))
            cand.(i)
      in
      combos 0;
      (* Candidate sets are ascending, so lexicographic key order is the
         nested enumeration order of [attrs]. *)
      List.sort (fun (a, _) (b, _) -> compare a b) !cells
      |> List.map (fun (key, r) ->
             let est, var = cell r in
             (key, est, var))

let estimate_groups_with_stddev t ~attrs query =
  List.map
    (fun (key, est, var) -> (key, est, sqrt var))
    (estimate_groups_with_variance t ~attrs query)

let estimate_groups t ~attrs query =
  List.map
    (fun (key, est, _) -> (key, est))
    (estimate_groups_with_variance t ~attrs query)

(* Descending by estimate under the NaN-safe total order of
   [Float.compare], ties broken by group key — so top-k selection is
   total and deterministic (and identical across flat and sharded
   summaries). *)
let group_order (ka, a) (kb, b) =
  let c = Float.compare b a in
  if c <> 0 then c else Stdlib.compare ka kb

let top_k_groups t ~attrs ~k query =
  let groups = estimate_groups t ~attrs query in
  let sorted = List.sort group_order groups in
  List.filteri (fun i _ -> i < k) sorted

type size_report = {
  num_statistics : int;
  num_marginals : int;
  num_terms : int;
  num_groups : int;
  uncompressed_monomials : float;
}

let size_report t =
  let phi = Poly.phi t.poly in
  {
    num_statistics = Phi.num_stats phi;
    num_marginals = Phi.num_marginals phi;
    num_terms = Poly.num_terms t.poly;
    num_groups = Poly.num_groups t.poly;
    uncompressed_monomials = Poly.uncompressed_monomials t.poly;
  }

let footprint_bytes t = Poly.footprint_bytes t.poly

let pp_size_report ppf r =
  Fmt.pf ppf
    "@[<v>statistics: %d (%d marginals, %d joints)@,\
     compressed terms: %d in %d group(s)@,\
     uncompressed monomials: %.3g@,\
     compression ratio: %.3gx@]"
    r.num_statistics r.num_marginals
    (r.num_statistics - r.num_marginals)
    r.num_terms r.num_groups r.uncompressed_monomials
    (r.uncompressed_monomials /. float_of_int (max 1 r.num_terms))
