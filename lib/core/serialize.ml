(* Summary persistence.

   The paper stores its polynomial variables in Postgres and the
   factorization in a text file (Sec. 5); here a summary is one versioned
   binary file.  The payload is the statistic set (schema, n, all targets)
   plus the solved variable vector and the solver report.  The compressed
   polynomial itself is *rebuilt* on load — it is deterministic from Φ —
   which keeps the file at O(#statistics) instead of O(#terms) and avoids
   deserializing mutable cached state. *)

open Edb_storage

let magic = "ENTROPYDB\x01"

(* Version history:
   1 — original payload (schema, n, targets, alpha, report);
   2 — adds the ingest journal (summary lineage).  v1 files still load
       (with a fresh base journal); versions beyond [version] are from a
       future writer and fail with Format_error, never a crash. *)
let version = 2

exception Format_error of string

(* The exact structural layout version-1 writers marshaled; kept verbatim
   so old files deserialize safely (Marshal is structural, not named). *)
type payload_v1 = {
  v1_schema : Schema.t;
  v1_n : int;
  v1_marginal_targets : float array array;
  v1_joints : (Predicate.t * float) list;
  v1_alpha : float array;
  v1_report : Solver.report;
}

type payload = {
  p_schema : Schema.t;
  p_n : int;
  p_marginal_targets : float array array;
  p_joints : (Predicate.t * float) list;
  p_alpha : float array;
  p_report : Solver.report;
  p_journal : Journal.t;
}

let save summary path =
  Edb_obs.Obs.with_span "serialize.save" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  let poly = Summary.poly summary in
  let phi = Poly.phi poly in
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  let marginal_targets =
    Array.init m (fun i ->
        Array.init (Schema.domain_size schema i) (fun v ->
            Phi.target phi (Phi.marginal_id phi ~attr:i ~value:v)))
  in
  let joints =
    List.map
      (fun j ->
        let s = Phi.stat phi j in
        (Statistic.pred s, Statistic.target s))
      (Phi.joint_ids phi)
  in
  let payload =
    {
      p_schema = schema;
      p_n = Phi.n phi;
      p_marginal_targets = marginal_targets;
      p_joints = joints;
      p_alpha = Array.init (Phi.num_stats phi) (fun j -> Poly.alpha poly j);
      p_report = Summary.solver_report summary;
      p_journal = Summary.journal summary;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc payload [])

let load ?term_cap path =
  Edb_obs.Obs.with_span "serialize.load" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf =
        try really_input_string ic (String.length magic)
        with End_of_file -> raise (Format_error "truncated file")
      in
      if buf <> magic then raise (Format_error "bad magic");
      let v = try input_binary_int ic with End_of_file -> raise (Format_error "truncated header") in
      if v < 1 || v > version then
        raise (Format_error (Printf.sprintf "unsupported version %d" v));
      (* Marshal surfaces corruption as Failure or End_of_file; normalize
         to Format_error so callers have one error type. *)
      let unmarshal () =
        try Marshal.from_channel ic with
        | Failure msg -> raise (Format_error ("corrupt payload: " ^ msg))
        | End_of_file -> raise (Format_error "truncated payload")
      in
      let payload =
        if v = 1 then
          (* Pre-journal file: same data, no lineage; give it a fresh
             base journal so ingest on top of it starts a clean record. *)
          let p : payload_v1 = unmarshal () in
          {
            p_schema = p.v1_schema;
            p_n = p.v1_n;
            p_marginal_targets = p.v1_marginal_targets;
            p_joints = p.v1_joints;
            p_alpha = p.v1_alpha;
            p_report = p.v1_report;
            p_journal = Journal.base ~rows:p.v1_n ~source:"legacy-v1" ();
          }
        else (unmarshal () : payload)
      in
      let phi =
        Phi.of_targets payload.p_schema ~n:payload.p_n
          ~marginal_targets:payload.p_marginal_targets ~joints:payload.p_joints
      in
      if Array.length payload.p_alpha <> Phi.num_stats phi then
        raise (Format_error "alpha vector length mismatch");
      let poly = Poly.create ?term_cap phi in
      Array.iteri (fun j a -> Poly.set_alpha poly j a) payload.p_alpha;
      Poly.refresh poly;
      Summary.of_solved_poly ~journal:payload.p_journal ~poly
        ~report:payload.p_report ())

(* ------------------------------------------------------------------ *)
(* Sharded manifests                                                   *)
(* ------------------------------------------------------------------ *)

(* A sharded summary (lib/shard) persists as one manifest file plus one
   flat summary file per shard.  The manifest is deliberately *not*
   Marshal: plain length-prefixed fields keep every corruption mode (bad
   magic, truncation, shard-count mismatch, trailing garbage) detectable
   as a Format_error instead of a segfault or silent misread.

   Layout: magic (10 bytes, shares the flat prefix but a distinct tag
   byte) | version | strategy string | shard count k | k shard file
   names, each relative to the manifest's directory. *)

let sharded_magic = "ENTROPYDB\x02"
let sharded_version = 1
let max_shards = 100_000
let max_name_len = 4096

type format = Flat | Sharded | MappedV3

let read_magic ic =
  try really_input_string ic (String.length magic)
  with End_of_file -> raise (Format_error "truncated file")

let v3_magic = "ENTROPYDB\x03"

let detect path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = read_magic ic in
      if buf = magic then Flat
      else if buf = sharded_magic then Sharded
      else if buf = v3_magic then MappedV3
      else raise (Format_error "bad magic"))

let output_str oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let input_int ic what =
  try input_binary_int ic
  with End_of_file -> raise (Format_error ("truncated " ^ what))

let input_str ic ~max what =
  let len = input_int ic what in
  if len < 0 || len > max then
    raise (Format_error (Printf.sprintf "implausible %s length %d" what len));
  try really_input_string ic len
  with End_of_file -> raise (Format_error ("truncated " ^ what))

let shard_file_name path i =
  Printf.sprintf "%s.shard%d" (Filename.basename path) i

let save_sharded ~strategy summaries path =
  let k = Array.length summaries in
  if k < 1 then invalid_arg "Serialize.save_sharded: no shards";
  let dir = Filename.dirname path in
  let names = Array.to_list (Array.init k (shard_file_name path)) in
  List.iteri
    (fun i name -> save summaries.(i) (Filename.concat dir name))
    names;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc sharded_magic;
      output_binary_int oc sharded_version;
      output_str oc strategy;
      output_binary_int oc k;
      List.iter (output_str oc) names)

let load_sharded ?term_cap path =
  let strategy, names =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let buf = read_magic ic in
        if buf <> sharded_magic then raise (Format_error "bad magic");
        let v = input_int ic "header" in
        if v <> sharded_version then
          raise
            (Format_error (Printf.sprintf "unsupported manifest version %d" v));
        let strategy = input_str ic ~max:max_name_len "strategy" in
        let k = input_int ic "shard count" in
        if k < 1 || k > max_shards then
          raise (Format_error (Printf.sprintf "implausible shard count %d" k));
        let names =
          List.init k (fun _ -> input_str ic ~max:max_name_len "shard name")
        in
        (* The recorded count and the name list must tile the file exactly;
           leftover bytes mean the count field and the list disagree. *)
        (match input_char ic with
        | _ -> raise (Format_error "shard-count mismatch (trailing bytes)")
        | exception End_of_file -> ());
        (strategy, names))
  in
  let dir = Filename.dirname path in
  let shards =
    List.map
      (fun name ->
        let file = Filename.concat dir name in
        if not (Sys.file_exists file) then
          raise
            (Format_error
               (Printf.sprintf "shard-count mismatch: missing shard file %s"
                  name));
        load ?term_cap file)
      names
  in
  let shards = Array.of_list shards in
  let schema0 = Summary.schema shards.(0) in
  Array.iter
    (fun s ->
      if Stdlib.compare (Summary.schema s) schema0 <> 0 then
        raise (Format_error "shard schema mismatch"))
    shards;
  (strategy, shards)

(* ------------------------------------------------------------------ *)
(* Summary format v3: page-aligned, mmap-able                          *)
(* ------------------------------------------------------------------ *)

(* v3 stores the polynomial's flat SoA tables verbatim, so a summary can
   be queried directly off a file mapping without deserialization:

     page 0              fixed header (magic, geometry, manifest pointer,
                         CRC-32 of the header bytes)
     pages 1..k          body sections, each starting on a page boundary:
                         the kernel tables of every group plus the alpha
                         vector, attribute sums, and prefix tables
     after the body      the manifest — one marshaled pure-data record
                         holding the small metadata (schema, n, P,
                         targets, solver report, ingest journal) and the
                         section table (name, kind, offset, length,
                         CRC-32 per section) — then zero padding to a
                         page boundary

   The manifest comes last so section offsets are known before it is
   written; the header (written with a final seek) points at it.  Opening
   a v3 file is O(header + manifest): body sections are mapped, not read,
   and their checksums are verified lazily by the mapped reader
   (Mapped.ensure_verified) before the first answer is produced — so
   corruption is always a Format_error, never a silently wrong answer.

   Element encoding is the host representation Bigarray maps: IEEE-754
   doubles and untagged native ints, little-endian.  The header records
   int size and byte order; a file from a foreign host is rejected with
   Format_error rather than misread. *)

let v3_page = 4096
let v3_version = 3

type v3_section = {
  sec_name : string;
  sec_float : bool; (* float64 elements; ints otherwise *)
  sec_off : int; (* byte offset, page-aligned *)
  sec_len : int; (* element count (8 bytes each) *)
  sec_crc : int; (* CRC-32 of the raw section bytes *)
}

type v3_group_meta = {
  v3g_attrs : int array;
  v3g_stats : int array;
  v3g_n_terms : int;
  v3g_q : float;
}

type v3_manifest = {
  v3_schema : Schema.t;
  v3_n : int;
  v3_p : float;
  v3_marginal_targets : float array array;
  v3_joints : (Predicate.t * float) list;
  v3_report : Solver.report;
  v3_journal : Journal.t;
  v3_free_attrs : int array;
  v3_group_of_attr : int array;
  v3_groups : v3_group_meta array;
  v3_sections : v3_section list;
}

let v3_round_page n = (n + v3_page - 1) / v3_page * v3_page

let v3_bytes_of_floats a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) a;
  b

let v3_bytes_of_ints a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) a;
  b

let v3_floats_of_bytes b =
  Array.init
    (Bytes.length b / 8)
    (fun i -> Int64.float_of_bits (Bytes.get_int64_le b (8 * i)))

(* Fixed header field offsets (bytes; all fields int64 LE after the
   magic).  The CRC at [v3_hdr_crc] covers bytes [0, v3_hdr_crc). *)
let v3_hdr_version = 16
let v3_hdr_int_size = 24
let v3_hdr_endian = 32
let v3_hdr_page = 40
let v3_hdr_manifest_off = 48
let v3_hdr_manifest_len = 56
let v3_hdr_manifest_crc = 64
let v3_hdr_file_size = 72
let v3_hdr_sections = 80
let v3_hdr_crc = 88

let save_v3 summary path =
  Edb_obs.Obs.with_span "serialize.save_v3" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  let poly = Summary.poly summary in
  (* Canonicalize the cached tables: rebuild them from the variable
     vector, exactly as every loader does.  Incremental solver updates
     accumulate float drift relative to that rebuild; refreshing here
     makes the mapped tables bitwise-equal to a v2 round trip.  The
     refresh is semantically the identity. *)
  Poly.refresh poly;
  let tb = Poly.tables poly in
  let phi = Poly.phi poly in
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  let marginal_targets =
    Array.init m (fun i ->
        Array.init (Schema.domain_size schema i) (fun v ->
            Phi.target phi (Phi.marginal_id phi ~attr:i ~value:v)))
  in
  let joints =
    List.map
      (fun j ->
        let s = Phi.stat phi j in
        (Statistic.pred s, Statistic.target s))
      (Phi.joint_ids phi)
  in
  (* Lay out the body: every section page-aligned, offsets assigned in
     emission order. *)
  let sections = ref [] and blobs = ref [] in
  let off = ref v3_page in
  let add name is_float blob =
    sections :=
      {
        sec_name = name;
        sec_float = is_float;
        sec_off = !off;
        sec_len = Bytes.length blob / 8;
        sec_crc = Edb_util.Crc32.bytes blob;
      }
      :: !sections;
    blobs := (!off, blob) :: !blobs;
    off := v3_round_page (!off + Bytes.length blob)
  in
  let addf name a = add name true (v3_bytes_of_floats a)
  and addi name a = add name false (v3_bytes_of_ints a) in
  addf "alpha" tb.Poly.tb_alpha;
  addf "attr_sums" tb.Poly.tb_attr_sums;
  addf "prefix" (Array.concat (Array.to_list tb.Poly.tb_prefix));
  Array.iteri
    (fun gi (g : Poly.group_tables) ->
      let s name = Printf.sprintf "g%d.%s" gi name in
      addi (s "ts_off") g.Poly.gt_ts_off;
      addi (s "ts_stat") g.Poly.gt_ts_stat;
      addi (s "fa_off") g.Poly.gt_fa_off;
      addi (s "fa_attr") g.Poly.gt_fa_attr;
      addf (s "factors") g.Poly.gt_factors;
      addi (s "iv_off") g.Poly.gt_iv_off;
      addi (s "iv_lo") g.Poly.gt_iv_lo;
      addi (s "iv_hi") g.Poly.gt_iv_hi;
      addi (s "t_mask") g.Poly.gt_t_mask;
      addf (s "fprod") g.Poly.gt_fprod;
      addf (s "dprod") g.Poly.gt_dprod;
      addf (s "value") g.Poly.gt_value;
      addi (s "mask_bits") g.Poly.gt_mask_bits;
      addf (s "mask_sum") g.Poly.gt_mask_sum;
      addf (s "mask_outer") g.Poly.gt_mask_outer;
      addi (s "bys_off") g.Poly.gt_bys_off;
      addi (s "bys_term") g.Poly.gt_bys_term;
      (* The per-local-attribute by-value index is stored flattened:
         byv_idx points each local attribute at its slice of the
         concatenated offset array (per-attribute offsets stay local;
         the reader rebuilds data bases from each slice's last entry). *)
      let n_local = Array.length g.Poly.gt_attrs in
      let byv_idx = Array.make (n_local + 1) 0 in
      Array.iteri
        (fun li o -> byv_idx.(li + 1) <- byv_idx.(li) + Array.length o)
        g.Poly.gt_byv_off;
      addi (s "byv_idx") byv_idx;
      addi (s "byv_off") (Array.concat (Array.to_list g.Poly.gt_byv_off));
      addi (s "byv_term") (Array.concat (Array.to_list g.Poly.gt_byv_term));
      addi (s "byv_slot") (Array.concat (Array.to_list g.Poly.gt_byv_slot)))
    tb.Poly.tb_groups;
  let manifest =
    {
      v3_schema = schema;
      v3_n = Phi.n phi;
      v3_p = tb.Poly.tb_p;
      v3_marginal_targets = marginal_targets;
      v3_joints = joints;
      v3_report = Summary.solver_report summary;
      v3_journal = Summary.journal summary;
      v3_free_attrs = tb.Poly.tb_free_attrs;
      v3_group_of_attr = tb.Poly.tb_group_of_attr;
      v3_groups =
        Array.map
          (fun (g : Poly.group_tables) ->
            {
              v3g_attrs = g.Poly.gt_attrs;
              v3g_stats = g.Poly.gt_stats;
              v3g_n_terms = g.Poly.gt_n_terms;
              v3g_q = g.Poly.gt_q;
            })
          tb.Poly.tb_groups;
      v3_sections = List.rev !sections;
    }
  in
  let mstr = Marshal.to_string manifest [] in
  let manifest_off = !off in
  let file_size = v3_round_page (manifest_off + String.length mstr) in
  let header = Bytes.make v3_page '\000' in
  Bytes.blit_string v3_magic 0 header 0 (String.length v3_magic);
  let put o v = Bytes.set_int64_le header o (Int64.of_int v) in
  put v3_hdr_version v3_version;
  put v3_hdr_int_size Sys.int_size;
  put v3_hdr_endian (if Sys.big_endian then 0 else 1);
  put v3_hdr_page v3_page;
  put v3_hdr_manifest_off manifest_off;
  put v3_hdr_manifest_len (String.length mstr);
  put v3_hdr_manifest_crc (Edb_util.Crc32.string mstr);
  put v3_hdr_file_size file_size;
  put v3_hdr_sections (List.length !sections);
  put v3_hdr_crc (Edb_util.Crc32.bytes (Bytes.sub header 0 v3_hdr_crc));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_bytes oc header;
      List.iter
        (fun (off, blob) ->
          let pad = off - pos_out oc in
          if pad > 0 then output_bytes oc (Bytes.make pad '\000');
          output_bytes oc blob)
        (List.rev !blobs);
      let pad = manifest_off - pos_out oc in
      if pad > 0 then output_bytes oc (Bytes.make pad '\000');
      output_string oc mstr;
      let pad = file_size - pos_out oc in
      if pad > 0 then output_bytes oc (Bytes.make pad '\000'))

(* Validated header + manifest read: everything [Mapped.open_file] and the
   heap loader need before touching the body, in O(header + manifest)
   I/O.  Every integrity failure is a Format_error naming what broke. *)
let v3_manifest_of path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < v3_page then raise (Format_error "truncated v3 header");
      let header = really_input_string ic v3_page in
      if String.sub header 0 (String.length v3_magic) <> v3_magic then
        raise (Format_error "bad magic");
      let get o = Int64.to_int (String.get_int64_le header o) in
      let crc = Edb_util.Crc32.string (String.sub header 0 v3_hdr_crc) in
      if crc <> get v3_hdr_crc then
        raise (Format_error "v3 header checksum mismatch");
      let v = get v3_hdr_version in
      if v <> v3_version then
        raise (Format_error (Printf.sprintf "unsupported v3 version %d" v));
      if get v3_hdr_int_size <> Sys.int_size then
        raise
          (Format_error
             (Printf.sprintf "v3 int size mismatch (file %d, host %d)"
                (get v3_hdr_int_size) Sys.int_size));
      if get v3_hdr_endian <> if Sys.big_endian then 0 else 1 then
        raise (Format_error "v3 byte order mismatch");
      if get v3_hdr_page <> v3_page then
        raise
          (Format_error
             (Printf.sprintf "unsupported v3 page size %d" (get v3_hdr_page)));
      if get v3_hdr_file_size <> size then
        raise
          (Format_error
             (Printf.sprintf "truncated v3 file (%d bytes, header records %d)"
                size (get v3_hdr_file_size)));
      let moff = get v3_hdr_manifest_off and mlen = get v3_hdr_manifest_len in
      if moff < v3_page || mlen < 0 || moff + mlen > size then
        raise (Format_error "corrupt v3 manifest bounds");
      seek_in ic moff;
      let mstr =
        try really_input_string ic mlen
        with End_of_file -> raise (Format_error "truncated v3 manifest")
      in
      if Edb_util.Crc32.string mstr <> get v3_hdr_manifest_crc then
        raise (Format_error "v3 manifest checksum mismatch");
      let manifest =
        try (Marshal.from_string mstr 0 : v3_manifest)
        with _ -> raise (Format_error "corrupt v3 manifest")
      in
      if List.length manifest.v3_sections <> get v3_hdr_sections then
        raise (Format_error "v3 section table mismatch");
      let seen = Hashtbl.create 64 in
      List.iter
        (fun s ->
          if
            s.sec_off < v3_page
            || s.sec_off mod 8 <> 0
            || s.sec_len < 0
            || s.sec_off + (8 * s.sec_len) > moff
            || Hashtbl.mem seen s.sec_name
          then
            raise
              (Format_error
                 (Printf.sprintf "corrupt v3 section table (%s)" s.sec_name));
          Hashtbl.add seen s.sec_name ())
        manifest.v3_sections;
      manifest)

let v3_sections path = (v3_manifest_of path).v3_sections

(* Heap-load a v3 file: rebuild the polynomial from the manifest's
   targets and the stored alpha vector, exactly like a v2 load.  All body
   checksums are verified — this path re-reads the file anyway, so the
   full battery costs nothing extra and keeps "corruption is never a
   silent misread" true for every loader. *)
let v3_load ?term_cap path =
  let manifest = v3_manifest_of path in
  let ic = open_in_bin path in
  let alpha_bytes = ref None in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      List.iter
        (fun s ->
          seek_in ic s.sec_off;
          let blob = Bytes.create (8 * s.sec_len) in
          (try really_input ic blob 0 (8 * s.sec_len)
           with End_of_file ->
             raise
               (Format_error
                  (Printf.sprintf "truncated section %s" s.sec_name)));
          if Edb_util.Crc32.bytes blob <> s.sec_crc then
            raise
              (Format_error
                 (Printf.sprintf "section %s checksum mismatch" s.sec_name));
          if s.sec_name = "alpha" then alpha_bytes := Some blob)
        manifest.v3_sections);
  let alpha =
    match !alpha_bytes with
    | Some b -> v3_floats_of_bytes b
    | None -> raise (Format_error "missing section alpha")
  in
  let phi =
    Phi.of_targets manifest.v3_schema ~n:manifest.v3_n
      ~marginal_targets:manifest.v3_marginal_targets
      ~joints:manifest.v3_joints
  in
  if Array.length alpha <> Phi.num_stats phi then
    raise (Format_error "alpha vector length mismatch");
  let poly = Poly.create ?term_cap phi in
  Array.iteri (fun j a -> Poly.set_alpha poly j a) alpha;
  Poly.refresh poly;
  Summary.of_solved_poly ~journal:manifest.v3_journal ~poly
    ~report:manifest.v3_report ()

(* Version-dispatching flat load: v1/v2 files take the Marshal path,
   v3 files the checksummed heap rebuild — callers get a summary either
   way without caring which writer produced the file. *)
let load ?term_cap path =
  match detect path with
  | MappedV3 -> v3_load ?term_cap path
  | Flat | Sharded -> load ?term_cap path
