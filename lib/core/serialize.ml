(* Summary persistence.

   The paper stores its polynomial variables in Postgres and the
   factorization in a text file (Sec. 5); here a summary is one versioned
   binary file.  The payload is the statistic set (schema, n, all targets)
   plus the solved variable vector and the solver report.  The compressed
   polynomial itself is *rebuilt* on load — it is deterministic from Φ —
   which keeps the file at O(#statistics) instead of O(#terms) and avoids
   deserializing mutable cached state. *)

open Edb_storage

let magic = "ENTROPYDB\x01"

(* Version history:
   1 — original payload (schema, n, targets, alpha, report);
   2 — adds the ingest journal (summary lineage).  v1 files still load
       (with a fresh base journal); versions beyond [version] are from a
       future writer and fail with Format_error, never a crash. *)
let version = 2

exception Format_error of string

(* The exact structural layout version-1 writers marshaled; kept verbatim
   so old files deserialize safely (Marshal is structural, not named). *)
type payload_v1 = {
  v1_schema : Schema.t;
  v1_n : int;
  v1_marginal_targets : float array array;
  v1_joints : (Predicate.t * float) list;
  v1_alpha : float array;
  v1_report : Solver.report;
}

type payload = {
  p_schema : Schema.t;
  p_n : int;
  p_marginal_targets : float array array;
  p_joints : (Predicate.t * float) list;
  p_alpha : float array;
  p_report : Solver.report;
  p_journal : Journal.t;
}

let save summary path =
  Edb_obs.Obs.with_span "serialize.save" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  let poly = Summary.poly summary in
  let phi = Poly.phi poly in
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  let marginal_targets =
    Array.init m (fun i ->
        Array.init (Schema.domain_size schema i) (fun v ->
            Phi.target phi (Phi.marginal_id phi ~attr:i ~value:v)))
  in
  let joints =
    List.map
      (fun j ->
        let s = Phi.stat phi j in
        (Statistic.pred s, Statistic.target s))
      (Phi.joint_ids phi)
  in
  let payload =
    {
      p_schema = schema;
      p_n = Phi.n phi;
      p_marginal_targets = marginal_targets;
      p_joints = joints;
      p_alpha = Array.init (Phi.num_stats phi) (fun j -> Poly.alpha poly j);
      p_report = Summary.solver_report summary;
      p_journal = Summary.journal summary;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc payload [])

let load ?term_cap path =
  Edb_obs.Obs.with_span "serialize.load" ~cat:"io"
    ~attrs:(fun () -> [ ("path", path) ])
  @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf =
        try really_input_string ic (String.length magic)
        with End_of_file -> raise (Format_error "truncated file")
      in
      if buf <> magic then raise (Format_error "bad magic");
      let v = try input_binary_int ic with End_of_file -> raise (Format_error "truncated header") in
      if v < 1 || v > version then
        raise (Format_error (Printf.sprintf "unsupported version %d" v));
      (* Marshal surfaces corruption as Failure or End_of_file; normalize
         to Format_error so callers have one error type. *)
      let unmarshal () =
        try Marshal.from_channel ic with
        | Failure msg -> raise (Format_error ("corrupt payload: " ^ msg))
        | End_of_file -> raise (Format_error "truncated payload")
      in
      let payload =
        if v = 1 then
          (* Pre-journal file: same data, no lineage; give it a fresh
             base journal so ingest on top of it starts a clean record. *)
          let p : payload_v1 = unmarshal () in
          {
            p_schema = p.v1_schema;
            p_n = p.v1_n;
            p_marginal_targets = p.v1_marginal_targets;
            p_joints = p.v1_joints;
            p_alpha = p.v1_alpha;
            p_report = p.v1_report;
            p_journal = Journal.base ~rows:p.v1_n ~source:"legacy-v1" ();
          }
        else (unmarshal () : payload)
      in
      let phi =
        Phi.of_targets payload.p_schema ~n:payload.p_n
          ~marginal_targets:payload.p_marginal_targets ~joints:payload.p_joints
      in
      if Array.length payload.p_alpha <> Phi.num_stats phi then
        raise (Format_error "alpha vector length mismatch");
      let poly = Poly.create ?term_cap phi in
      Array.iteri (fun j a -> Poly.set_alpha poly j a) payload.p_alpha;
      Poly.refresh poly;
      Summary.of_solved_poly ~journal:payload.p_journal ~poly
        ~report:payload.p_report ())

(* ------------------------------------------------------------------ *)
(* Sharded manifests                                                   *)
(* ------------------------------------------------------------------ *)

(* A sharded summary (lib/shard) persists as one manifest file plus one
   flat summary file per shard.  The manifest is deliberately *not*
   Marshal: plain length-prefixed fields keep every corruption mode (bad
   magic, truncation, shard-count mismatch, trailing garbage) detectable
   as a Format_error instead of a segfault or silent misread.

   Layout: magic (10 bytes, shares the flat prefix but a distinct tag
   byte) | version | strategy string | shard count k | k shard file
   names, each relative to the manifest's directory. *)

let sharded_magic = "ENTROPYDB\x02"
let sharded_version = 1
let max_shards = 100_000
let max_name_len = 4096

type format = Flat | Sharded

let read_magic ic =
  try really_input_string ic (String.length magic)
  with End_of_file -> raise (Format_error "truncated file")

let detect path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = read_magic ic in
      if buf = magic then Flat
      else if buf = sharded_magic then Sharded
      else raise (Format_error "bad magic"))

let output_str oc s =
  output_binary_int oc (String.length s);
  output_string oc s

let input_int ic what =
  try input_binary_int ic
  with End_of_file -> raise (Format_error ("truncated " ^ what))

let input_str ic ~max what =
  let len = input_int ic what in
  if len < 0 || len > max then
    raise (Format_error (Printf.sprintf "implausible %s length %d" what len));
  try really_input_string ic len
  with End_of_file -> raise (Format_error ("truncated " ^ what))

let shard_file_name path i =
  Printf.sprintf "%s.shard%d" (Filename.basename path) i

let save_sharded ~strategy summaries path =
  let k = Array.length summaries in
  if k < 1 then invalid_arg "Serialize.save_sharded: no shards";
  let dir = Filename.dirname path in
  let names = Array.to_list (Array.init k (shard_file_name path)) in
  List.iteri
    (fun i name -> save summaries.(i) (Filename.concat dir name))
    names;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc sharded_magic;
      output_binary_int oc sharded_version;
      output_str oc strategy;
      output_binary_int oc k;
      List.iter (output_str oc) names)

let load_sharded ?term_cap path =
  let strategy, names =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let buf = read_magic ic in
        if buf <> sharded_magic then raise (Format_error "bad magic");
        let v = input_int ic "header" in
        if v <> sharded_version then
          raise
            (Format_error (Printf.sprintf "unsupported manifest version %d" v));
        let strategy = input_str ic ~max:max_name_len "strategy" in
        let k = input_int ic "shard count" in
        if k < 1 || k > max_shards then
          raise (Format_error (Printf.sprintf "implausible shard count %d" k));
        let names =
          List.init k (fun _ -> input_str ic ~max:max_name_len "shard name")
        in
        (* The recorded count and the name list must tile the file exactly;
           leftover bytes mean the count field and the list disagree. *)
        (match input_char ic with
        | _ -> raise (Format_error "shard-count mismatch (trailing bytes)")
        | exception End_of_file -> ());
        (strategy, names))
  in
  let dir = Filename.dirname path in
  let shards =
    List.map
      (fun name ->
        let file = Filename.concat dir name in
        if not (Sys.file_exists file) then
          raise
            (Format_error
               (Printf.sprintf "shard-count mismatch: missing shard file %s"
                  name));
        load ?term_cap file)
      names
  in
  let shards = Array.of_list shards in
  let schema0 = Summary.schema shards.(0) in
  Array.iter
    (fun s ->
      if Stdlib.compare (Summary.schema s) schema0 <> 0 then
        raise (Format_error "shard schema mismatch"))
    shards;
  (strategy, shards)
