(** EntropyDB summaries: build once offline, answer linear queries in
    expectation forever after.

    This is the library's primary public API, covering Secs. 3–4 of the
    paper plus the closed-form variance sketched in its Sec. 7. *)

open Edb_storage

type t

val build :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?on_sweep:(Solver.sweep_stat -> unit) ->
  Relation.t ->
  joints:Predicate.t list ->
  t
(** [build rel ~joints] computes Φ (complete marginals + the given
    multi-dimensional range statistics), compresses the polynomial, and
    solves for the MaxEnt parameters.  Raises like {!Phi.of_relation} and
    {!Poly.create}. *)

val of_phi :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?init:float array ->
  ?on_sweep:(Solver.sweep_stat -> unit) ->
  Phi.t ->
  t
(** Build from a pre-computed statistic set (used by tests, callers that
    tweak targets, and the incremental-ingest path).  [init] warm-starts
    the solve, see {!Solver.solve}. *)

val of_solved_poly :
  ?journal:Journal.t -> poly:Poly.t -> report:Solver.report -> unit -> t
(** Wrap an already-solved polynomial (deserialization and ingest paths);
    does not re-solve.  [journal] defaults to a fresh base journal of the
    polynomial's cardinality. *)

val schema : t -> Schema.t

val cardinality : t -> int
(** n, the cardinality of the summarized relation. *)

val poly : t -> Poly.t
val solver_report : t -> Solver.report

val journal : t -> Journal.t
(** The summary's lineage: base build plus every ingested batch.  For a
    summary maintained through {!Edb_ingest.Ingest},
    [Journal.total_rows (journal t) = cardinality t]. *)

val with_journal : t -> Journal.t -> t
(** Replace the lineage record (used by the ingest path). *)

val estimate : t -> Predicate.t -> float
(** E[⟨q,I⟩] for a conjunctive counting query — Sec. 4.2's zeroing formula;
    typically sub-millisecond. *)

val estimate_rounded : t -> Predicate.t -> float
(** [estimate], with values below 0.5 rounded to 0 (the paper's policy for
    separating rare from nonexistent values). *)

val variance : t -> Predicate.t -> float
(** Var[⟨q,I⟩] = n·p·(1−p) with p = P\[zeroed\]/P, from the multinomial view
    of the fixed-cardinality MaxEnt model. *)

val stddev : t -> Predicate.t -> float

val estimate_with_variance : t -> Predicate.t -> float * float
(** Both moments from a single restricted evaluation.  The first component
    is bitwise-identical to {!estimate}; the second equals {!variance}
    (except that an unsatisfiable query reports exactly [(0., 0.)]). *)

val estimate_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float
(** E[SUM(attr)] under the predicate, as a weighted linear query; weights
    default to bin midpoints ({!Edb_storage.Domain.bin_midpoint}, raises
    on categorical attributes). *)

val estimate_avg : t -> attr:int -> Predicate.t -> float option
(** E[SUM]/E[COUNT]; [None] when the expected count is 0. *)

val variance_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float
(** Var[SUM(attr)] under the multinomial view:
    n·(E\[w²\] − E\[w\]²) over the per-draw weight distribution. *)

val estimate_groups :
  t -> attrs:int list -> Predicate.t -> (int list * float) list
(** GROUP BY estimate: one cell per combination of the grouping
    attributes' values (restricted by the query's predicate), in
    ascending group-key order.  The widest grouping attribute is
    answered by the batched kernel {!Poly.eval_restricted_by_value} —
    one term pass for all of its values — instead of one full scan per
    cell. *)

val estimate_groups_with_variance :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** [estimate_groups] plus each cell's Var[⟨q,I⟩] = n·p·(1−p): the
    kernel yields every cell's restricted P, so the binomial p (and
    hence the variance) costs nothing extra. *)

val estimate_groups_with_stddev :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** [estimate_groups_with_variance] with the variance replaced by its
    square root. *)

val top_k_groups :
  t -> attrs:int list -> k:int -> Predicate.t -> (int list * float) list
(** The paper's GROUP BY ... ORDER BY count DESC LIMIT k example.
    Ordering is total and deterministic: descending estimate under
    [Float.compare] (NaN-safe), ties broken by ascending group key. *)

type size_report = {
  num_statistics : int;
  num_marginals : int;
  num_terms : int;
  num_groups : int;
  uncompressed_monomials : float;
}

val size_report : t -> size_report
val pp_size_report : Format.formatter -> size_report -> unit

val footprint_bytes : t -> int
(** Estimated resident heap size of the summary's kernel tables
    ({!Poly.footprint_bytes}); the weighted catalog charges heap-backed
    entries with this. *)
