(* The compressed MaxEnt polynomial (Sec. 3.1 Eq. 5, compressed per
   Theorem 4.1, plus two refinements).

   The uncompressed polynomial has one monomial per possible tuple —
   billions for the paper's schemas — so it is never materialized.
   Theorem 4.1 rewrites P as a sum over *compatible sets* S of
   multi-dimensional statistics: each S contributes

       (i)  the full 1D sums A_i of the attributes S does not restrict,
       (ii) the sums of 1D variables inside the intersection of S's
            per-attribute projections, for the attributes it does restrict,
            times prod_{j in S} (delta_j - 1).

   Refinement 1 — group factorization.  Joint statistics are partitioned
   into *connected groups* by shared attributes (union-find).  Monomials
   factor across groups, so

       P  =  prod_{i free} A_i  *  prod_g Q_g

   and each group polynomial Q_g enumerates only compatible sets drawn from
   its own statistics: attribute-disjoint families (e.g. the paper's Ent3&4
   pairs (time,distance) x (origin,dest)) multiply instead of
   cross-producting.  The paper's Sec. 7 lists this further factorization
   as future work.

   Refinement 2 — mask-indexed part (i).  Within a group, many terms leave
   some group attributes unrestricted.  Storing those attributes' full sums
   inside every term would make a single marginal update touch every term
   of the group.  Instead, terms are bucketed by their *mask* (the set of
   group attributes their S restricts) and carry only part (ii); the group
   value is

       Q_g = sum_masks  S_mask * prod_{i in group, i not in mask} A_i

   where S_mask is the running sum of the bucket's part-(ii) values.  A
   marginal update then touches only the terms whose own projection
   contains the value, plus O(#masks) outer products — #masks is bounded by
   the number of distinct family combinations, typically < 10.

   Memory layout (structure of arrays).  A term is not a record: a group
   stores all of its terms' data in flat parallel arrays, with CSR offset
   tables for the variable-length parts.

     term ti:
       stats       ts_stat.(ts_off.(ti) .. ts_off.(ti+1)-1)
       factor slot s in fa_off.(ti) .. fa_off.(ti+1)-1:
         attribute fa_attr.(s), cached factor factors.(s),
         projection intervals (iv_lo, iv_hi).(iv_off.(s) .. iv_off.(s+1)-1)
       mask t_mask.(ti), cached fprod/dprod/value.(ti)

   The inverted indexes used by single-variable updates are CSR too:
   by-stat rows (bys_off/bys_term, keyed through the bys_row table) and
   per-attribute by-value buckets (byv_off/byv_term/byv_slot).  Both are
   filled in *descending* term order, matching the prepend-built lists of
   the previous boxed-record layout, so solver trajectories — every
   intermediate float — are bitwise identical to that layout's.

   Restricted evaluation walks these arrays with zero per-call
   minor-heap allocation: interval intersections are merged prefix-sum
   walks (never materialized), and the per-call accumulators (restricted
   attribute sums, per-mask masses, per-cell scatter) live in a reusable
   scratch block claimed with an atomic flag — concurrent evaluations on
   the same polynomial (server threads) fall back to a fresh block.

   The structure is mutable: the solver updates one variable at a time
   (Algorithm 1) and every cached quantity — A_i, per-term factors,
   per-mask sums, Q_g, P — is maintained incrementally.  [refresh]
   recomputes everything from the variable vector to wash out accumulated
   floating-point drift. *)

open Edb_util
open Edb_storage

type group = {
  g_attrs : int array; (* ascending *)
  g_stats : int array; (* joint stat ids *)
  n_terms : int; (* term 0 is the base term (S = empty, mask 0) *)
  (* term -> joint stat ids of S (CSR) *)
  ts_off : int array; (* length n_terms + 1 *)
  ts_stat : int array;
  (* term -> factor slots, one per attribute S restricts, ascending (CSR) *)
  fa_off : int array; (* length n_terms + 1 *)
  fa_attr : int array; (* slot -> attribute *)
  factors : float array; (* slot -> cached F_i(S) = sum of alpha inside *)
  (* slot -> projection-intersection intervals, ascending (CSR) *)
  iv_off : int array; (* length #slots + 1 *)
  iv_lo : int array;
  iv_hi : int array;
  (* per-term caches *)
  t_mask : int array; (* mask id within the group *)
  fprod : float array; (* prod of the term's factors *)
  dprod : float array; (* prod_{j in S} (alpha_j - 1); 1 for the base *)
  value : float array; (* fprod * dprod — part (ii) only *)
  mask_bits : int array; (* mask id -> bitset over local attr indices *)
  mask_sum : float array; (* mask id -> sum of its terms' values *)
  mask_outer : float array; (* mask id -> prod of A_i over unmasked locals *)
  mutable q : float;
  (* joint stat id -> row of terms containing it, descending term order *)
  bys_row : (int, int) Hashtbl.t;
  bys_off : int array;
  bys_term : int array;
  (* local attr -> value -> (term, slot) bucket, descending term order *)
  byv_off : int array array; (* per local attr, length domain size + 1 *)
  byv_term : int array array;
  byv_slot : int array array;
}

(* Reusable per-evaluation accumulators, sized for the largest group (and
   largest attribute domain) of the polynomial they belong to. *)
type scratch = {
  ra : float array; (* local attr -> restricted attribute sum *)
  msum : float array; (* mask id -> restricted term-mass sum *)
  coef : float array; (* mask id -> outer product (GROUP BY kernel) *)
  scatter : float array; (* domain value -> scattered mass *)
}

type t = {
  phi : Phi.t;
  schema : Schema.t;
  m : int;
  alpha : float array; (* one variable per statistic, indexed by stat id *)
  attr_sums : float array; (* A_i *)
  groups : group array;
  group_of_attr : int array; (* attr -> group index, or -1 if free *)
  group_of_stat : (int, int) Hashtbl.t; (* joint stat id -> group index *)
  free_attrs : int array;
  mutable p : float;
  prefix : float array array; (* attr -> prefix sums of alpha, length N_i+1 *)
  mutable prefix_valid : bool;
  scratch : scratch;
  scratch_busy : bool Atomic.t; (* claimed by an in-flight evaluation *)
}

exception Too_many_terms of { cap : int; group_attrs : int list }

(* Identifies the in-memory term layout in benchmark artifacts
   (BENCH_kernel.json), so speedup and regression gates know whether they
   are comparing like with like. *)
let layout = "soa-csr"

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

(* Count kernel invocations always (one striped atomic add per call);
   spans and the latency histogram cost a closure and a clock read, so
   they are taken only when tracing is enabled.  Instrumentation is per
   kernel call — never per term — so the disabled-mode cost is one flag
   load next to a full term pass, and the disabled path stays
   allocation-free. *)
module Obs = Edb_obs.Obs

let evals_counter = Edb_obs.Registry.counter "poly.evals"

(* Bucket values are *nanoseconds* (the name carries the unit): kernel
   calls on interactive summaries sit well under a microsecond per term,
   below the histogram's native microsecond resolution. *)
let eval_ns_hist = Edb_obs.Registry.histogram "kernel_eval_ns"
let scratch_reuse_counter = Edb_obs.Registry.counter "kernel_scratch_reuses"
let scratch_alloc_counter = Edb_obs.Registry.counter "kernel_scratch_allocs"

(* ------------------------------------------------------------------ *)
(* Cached-state maintenance                                            *)
(* ------------------------------------------------------------------ *)

let ensure_prefix t =
  if not t.prefix_valid then begin
    for i = 0 to t.m - 1 do
      let size = Schema.domain_size t.schema i in
      let pre = t.prefix.(i) in
      pre.(0) <- 0.;
      for v = 0 to size - 1 do
        pre.(v + 1) <-
          pre.(v) +. t.alpha.(Phi.marginal_id t.phi ~attr:i ~value:v)
      done
    done;
    t.prefix_valid <- true
  end

(* Sum of alpha over a value set, via prefix sums: O(#intervals). *)
let[@inline] range_sum t ~attr r =
  let pre = t.prefix.(attr) in
  let acc = ref 0. in
  for k = 0 to Ranges.num_intervals r - 1 do
    acc :=
      !acc +. pre.(Ranges.interval_hi r k + 1) -. pre.(Ranges.interval_lo r k)
  done;
  !acc

(* Sum of [pre] over factor slot [s]'s own intervals.  Unsafe accesses:
   interval bounds are validated against the attribute domain at
   construction, and offsets index arrays built from the same counts. *)
let[@inline] slot_sum pre g s =
  let iv_lo = g.iv_lo and iv_hi = g.iv_hi in
  let acc = ref 0. in
  for k = g.iv_off.(s) to g.iv_off.(s + 1) - 1 do
    acc :=
      !acc
      +. Array.unsafe_get pre (Array.unsafe_get iv_hi k + 1)
      -. Array.unsafe_get pre (Array.unsafe_get iv_lo k)
  done;
  !acc

(* Sum of [pre] over (slot [s]'s intervals ∩ [qr]): the merge walk
   [Ranges.inter] performs, summed directly instead of materialized.
   Interval order and summation order match [range_sum] over the
   materialized intersection, so the result is bitwise identical. *)
let[@inline] inter_sum pre g s qr =
  let iv_lo = g.iv_lo and iv_hi = g.iv_hi in
  let acc = ref 0. in
  let k = ref g.iv_off.(s) and j = ref 0 in
  let k1 = g.iv_off.(s + 1) and nq = Ranges.num_intervals qr in
  while !k < k1 && !j < nq do
    let alo = Array.unsafe_get iv_lo !k and ahi = Array.unsafe_get iv_hi !k in
    let blo = Ranges.interval_lo qr !j and bhi = Ranges.interval_hi qr !j in
    let lo = if alo > blo then alo else blo in
    let hi = if ahi < bhi then ahi else bhi in
    if lo <= hi then
      acc := !acc +. Array.unsafe_get pre (hi + 1) -. Array.unsafe_get pre lo;
    if ahi < bhi then incr k else incr j
  done;
  !acc

let[@inline] fprod_of g ti =
  let acc = ref 1. in
  for s = g.fa_off.(ti) to g.fa_off.(ti + 1) - 1 do
    acc := !acc *. g.factors.(s)
  done;
  !acc

let[@inline] dprod_of t g ti =
  let acc = ref 1. in
  for s = g.ts_off.(ti) to g.ts_off.(ti + 1) - 1 do
    acc := !acc *. (t.alpha.(g.ts_stat.(s)) -. 1.)
  done;
  !acc

(* Recompute every mask's outer product and the group value from the
   current attribute sums and mask sums: O(#masks * |g_attrs|). *)
let recompute_group_q t g =
  let n_local = Array.length g.g_attrs in
  let q = ref 0. in
  for k = 0 to Array.length g.mask_bits - 1 do
    let bits = g.mask_bits.(k) in
    let outer = ref 1. in
    for li = 0 to n_local - 1 do
      if bits land (1 lsl li) = 0 then
        outer := !outer *. t.attr_sums.(g.g_attrs.(li))
    done;
    g.mask_outer.(k) <- !outer;
    q := !q +. (g.mask_sum.(k) *. !outer)
  done;
  g.q <- !q

let compute_p t =
  let p = ref 1. in
  for k = 0 to Array.length t.free_attrs - 1 do
    p := !p *. t.attr_sums.(t.free_attrs.(k))
  done;
  for gi = 0 to Array.length t.groups - 1 do
    p := !p *. t.groups.(gi).q
  done;
  !p

let refresh t =
  t.prefix_valid <- false;
  ensure_prefix t;
  for i = 0 to t.m - 1 do
    t.attr_sums.(i) <- t.prefix.(i).(Schema.domain_size t.schema i)
  done;
  Array.iter
    (fun g ->
      Array.fill g.mask_sum 0 (Array.length g.mask_sum) 0.;
      for ti = 0 to g.n_terms - 1 do
        for s = g.fa_off.(ti) to g.fa_off.(ti + 1) - 1 do
          g.factors.(s) <- slot_sum t.prefix.(g.fa_attr.(s)) g s
        done;
        g.fprod.(ti) <- fprod_of g ti;
        g.dprod.(ti) <- dprod_of t g ti;
        g.value.(ti) <- g.fprod.(ti) *. g.dprod.(ti);
        g.mask_sum.(g.t_mask.(ti)) <-
          g.mask_sum.(g.t_mask.(ti)) +. g.value.(ti)
      done;
      recompute_group_q t g)
    t.groups;
  t.p <- compute_p t

(* ------------------------------------------------------------------ *)
(* Scratch management                                                  *)
(* ------------------------------------------------------------------ *)

let make_scratch schema groups =
  let max_attrs = ref 1 and max_masks = ref 1 in
  Array.iter
    (fun g ->
      max_attrs := max !max_attrs (Array.length g.g_attrs);
      max_masks := max !max_masks (Array.length g.mask_bits))
    groups;
  let max_dom = ref 1 in
  for i = 0 to Schema.arity schema - 1 do
    max_dom := max !max_dom (Schema.domain_size schema i)
  done;
  {
    ra = Array.make !max_attrs 0.;
    msum = Array.make !max_masks 0.;
    coef = Array.make !max_masks 0.;
    scatter = Array.make !max_dom 0.;
  }

(* Claim the polynomial's scratch block, or allocate a fresh one if an
   evaluation on another thread holds it (server systhreads can
   interleave at polling points mid-evaluation).  The counters make the
   steady state observable: reuses should dominate allocs. *)
let acquire_scratch t =
  if Atomic.compare_and_set t.scratch_busy false true then begin
    Edb_obs.Registry.Counter.incr scratch_reuse_counter;
    t.scratch
  end
  else begin
    Edb_obs.Registry.Counter.incr scratch_alloc_counter;
    make_scratch t.schema t.groups
  end

let release_scratch t sc =
  if sc == t.scratch then Atomic.set t.scratch_busy false

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

module Uf = struct
  let find parent i =
    let rec go i = if parent.(i) = i then i else go parent.(i) in
    let root = go i in
    let rec compress i =
      if parent.(i) <> root then begin
        let next = parent.(i) in
        parent.(i) <- root;
        compress next
      end
    in
    compress i;
    root

  let union parent a b =
    let ra = find parent a and rb = find parent b in
    if ra <> rb then parent.(ra) <- rb
end

let stat_ranges phi j =
  (* The per-attribute projections rho_ij of joint statistic j. *)
  let pred = Statistic.pred (Phi.stat phi j) in
  List.map
    (fun i ->
      match Predicate.restriction pred i with
      | Some r -> (i, r)
      | None -> assert false)
    (Predicate.restricted_attrs pred)

type raw_term = { rt_stats : int list; rt_bound : (int * Ranges.t) list }

(* Enumerate the compatible sets of one group by DFS over its families:
   pick at most one statistic per family (same-family statistics are
   disjoint, so they never co-occur in a monomial), pruning as soon as some
   attribute's projection intersection becomes empty.  This constructs the
   paper's J_I sets for all I at once. *)
let enumerate_raw_terms phi ~term_cap ~g_attrs ~g_families =
  let terms = ref [] and count = ref 0 in
  let m = Array.fold_left max 0 g_attrs + 1 in
  let restr_map : Ranges.t option array = Array.make m None in
  let emit stats =
    incr count;
    if !count > term_cap then
      raise
        (Too_many_terms { cap = term_cap; group_attrs = Array.to_list g_attrs });
    let bound =
      List.filter_map
        (fun i ->
          match restr_map.(i) with Some r -> Some (i, r) | None -> None)
        (Array.to_list g_attrs)
    in
    terms := { rt_stats = List.rev stats; rt_bound = bound } :: !terms
  in
  let families = Array.of_list g_families in
  let ranges_of = Hashtbl.create 64 in
  Array.iter
    (fun fam ->
      Array.iter (fun j -> Hashtbl.add ranges_of j (stat_ranges phi j)) fam)
    families;
  let rec dfs f chosen any =
    if f = Array.length families then begin
      if any then emit chosen
    end
    else begin
      (* Skip this family. *)
      dfs (f + 1) chosen any;
      (* Or choose one of its statistics. *)
      Array.iter
        (fun j ->
          let ranges = Hashtbl.find ranges_of j in
          let saved = List.map (fun (i, _) -> (i, restr_map.(i))) ranges in
          let ok =
            List.for_all
              (fun (i, r) ->
                let r' =
                  match restr_map.(i) with
                  | None -> r
                  | Some r0 -> Ranges.inter r0 r
                in
                restr_map.(i) <- Some r';
                not (Ranges.is_empty r'))
              ranges
          in
          if ok then dfs (f + 1) (j :: chosen) true;
          List.iter (fun (i, saved_r) -> restr_map.(i) <- saved_r) saved)
        families.(f)
    end
  in
  dfs 0 [] false;
  !terms

(* Flatten one group's raw terms into the SoA/CSR layout.  Term 0 is the
   base term (no stats, no slots); raw terms follow in enumeration order,
   exactly as the boxed layout stored them. *)
let build_group schema ~g_attrs ~g_stats ~local_of_attr ~raw_arr ~t_mask
    ~mask_bits =
  let nt = 1 + Array.length raw_arr in
  let ts_off = Array.make (nt + 1) 0 and fa_off = Array.make (nt + 1) 0 in
  Array.iteri
    (fun k rt ->
      ts_off.(k + 2) <- List.length rt.rt_stats;
      fa_off.(k + 2) <- List.length rt.rt_bound)
    raw_arr;
  for ti = 1 to nt do
    ts_off.(ti) <- ts_off.(ti) + ts_off.(ti - 1);
    fa_off.(ti) <- fa_off.(ti) + fa_off.(ti - 1)
  done;
  let ts_stat = Array.make ts_off.(nt) 0 in
  let n_slots = fa_off.(nt) in
  let fa_attr = Array.make n_slots 0 in
  let slot_restr = Array.make n_slots Ranges.empty in
  Array.iteri
    (fun k rt ->
      let ti = k + 1 in
      List.iteri (fun d j -> ts_stat.(ts_off.(ti) + d) <- j) rt.rt_stats;
      List.iteri
        (fun d (i, r) ->
          fa_attr.(fa_off.(ti) + d) <- i;
          slot_restr.(fa_off.(ti) + d) <- r)
        rt.rt_bound)
    raw_arr;
  let iv_off = Array.make (n_slots + 1) 0 in
  for s = 0 to n_slots - 1 do
    iv_off.(s + 1) <- iv_off.(s) + Ranges.num_intervals slot_restr.(s)
  done;
  let iv_lo = Array.make iv_off.(n_slots) 0
  and iv_hi = Array.make iv_off.(n_slots) 0 in
  for s = 0 to n_slots - 1 do
    let r = slot_restr.(s) in
    for k = 0 to Ranges.num_intervals r - 1 do
      iv_lo.(iv_off.(s) + k) <- Ranges.interval_lo r k;
      iv_hi.(iv_off.(s) + k) <- Ranges.interval_hi r k
    done
  done;
  (* Inverted index: stat -> terms.  Filled in descending term order to
     match the prepend-built association lists of the boxed layout (the
     solver's update order, hence its float trajectories, depend on it). *)
  let n_rows = Array.length g_stats in
  let bys_row = Hashtbl.create (max 16 n_rows) in
  Array.iteri (fun row j -> Hashtbl.add bys_row j row) g_stats;
  let bys_off = Array.make (n_rows + 1) 0 in
  for s = 0 to ts_off.(nt) - 1 do
    let row = Hashtbl.find bys_row ts_stat.(s) in
    bys_off.(row + 1) <- bys_off.(row + 1) + 1
  done;
  for r = 1 to n_rows do
    bys_off.(r) <- bys_off.(r) + bys_off.(r - 1)
  done;
  let bys_term = Array.make ts_off.(nt) 0 in
  let cursor = Array.make n_rows 0 in
  for ti = nt - 1 downto 0 do
    for s = ts_off.(ti) to ts_off.(ti + 1) - 1 do
      let row = Hashtbl.find bys_row ts_stat.(s) in
      bys_term.(bys_off.(row) + cursor.(row)) <- ti;
      cursor.(row) <- cursor.(row) + 1
    done
  done;
  (* Inverted index: local attr -> value -> (term, slot), also filled in
     descending term order. *)
  let n_local = Array.length g_attrs in
  let byv_off =
    Array.init n_local (fun li ->
        Array.make (Schema.domain_size schema g_attrs.(li) + 1) 0)
  in
  for s = 0 to n_slots - 1 do
    let off = byv_off.(local_of_attr.(fa_attr.(s))) in
    for k = iv_off.(s) to iv_off.(s + 1) - 1 do
      for v = iv_lo.(k) to iv_hi.(k) do
        off.(v + 1) <- off.(v + 1) + 1
      done
    done
  done;
  Array.iter
    (fun off ->
      for v = 1 to Array.length off - 1 do
        off.(v) <- off.(v) + off.(v - 1)
      done)
    byv_off;
  let bucket_total off = off.(Array.length off - 1) in
  let byv_term = Array.map (fun off -> Array.make (bucket_total off) 0) byv_off in
  let byv_slot = Array.map (fun off -> Array.make (bucket_total off) 0) byv_off in
  let byv_cursor =
    Array.map (fun off -> Array.make (Array.length off - 1) 0) byv_off
  in
  for ti = nt - 1 downto 0 do
    for s = fa_off.(ti) to fa_off.(ti + 1) - 1 do
      let li = local_of_attr.(fa_attr.(s)) in
      let off = byv_off.(li) and cur = byv_cursor.(li) in
      for k = iv_off.(s) to iv_off.(s + 1) - 1 do
        for v = iv_lo.(k) to iv_hi.(k) do
          let p = off.(v) + cur.(v) in
          byv_term.(li).(p) <- ti;
          byv_slot.(li).(p) <- s;
          cur.(v) <- cur.(v) + 1
        done
      done
    done
  done;
  let fprod = Array.make nt 0. and value = Array.make nt 0. in
  fprod.(0) <- 1.;
  value.(0) <- 1.;
  {
    g_attrs;
    g_stats;
    n_terms = nt;
    ts_off;
    ts_stat;
    fa_off;
    fa_attr;
    factors = Array.make n_slots 0.;
    iv_off;
    iv_lo;
    iv_hi;
    t_mask;
    fprod;
    dprod = Array.make nt 1.;
    value;
    mask_bits;
    mask_sum = Array.make (Array.length mask_bits) 0.;
    mask_outer = Array.make (Array.length mask_bits) 1.;
    q = 0.;
    bys_row;
    bys_off;
    bys_term;
    byv_off;
    byv_term;
    byv_slot;
  }

let create ?(term_cap = 2_000_000) phi =
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  (* Union-find over attributes through joint statistics. *)
  let parent = Array.init m (fun i -> i) in
  List.iter
    (fun j ->
      match Statistic.attrs (Phi.stat phi j) with
      | [] | [ _ ] -> assert false
      | a0 :: rest -> List.iter (fun a -> Uf.union parent a0 a) rest)
    (Phi.joint_ids phi);
  (* Collect groups: root -> statistic list. *)
  let root_stats : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let a0 = List.hd (Statistic.attrs (Phi.stat phi j)) in
      let root = Uf.find parent a0 in
      match Hashtbl.find_opt root_stats root with
      | Some l -> l := j :: !l
      | None -> Hashtbl.add root_stats root (ref [ j ]))
    (Phi.joint_ids phi);
  let group_of_attr = Array.make m (-1) in
  let group_of_stat = Hashtbl.create 64 in
  let groups = ref [] and g_idx = ref 0 in
  Hashtbl.iter
    (fun root stats ->
      let stats = List.rev !stats in
      let g_attrs =
        List.filter (fun i -> Uf.find parent i = root) (List.init m Fun.id)
        |> List.filter (fun i ->
               List.exists
                 (fun j -> List.mem i (Statistic.attrs (Phi.stat phi j)))
                 stats)
        |> Array.of_list
      in
      let local_of_attr = Array.make m (-1) in
      Array.iteri (fun li i -> local_of_attr.(i) <- li) g_attrs;
      (* Families restricted to this group, in id order. *)
      let g_families =
        Array.to_list (Phi.families phi)
        |> List.filter_map (fun members ->
               let inside =
                 Array.to_list members |> List.filter (fun j -> List.mem j stats)
               in
               if inside = [] then None else Some (Array.of_list inside))
      in
      let raw = enumerate_raw_terms phi ~term_cap ~g_attrs ~g_families in
      (* Assign mask ids: one per distinct restricted-attribute set, in
         term enumeration order. *)
      let mask_ids = Hashtbl.create 8 in
      Hashtbl.add mask_ids 0 0;
      let next_mask = ref 1 in
      let mask_of bound =
        let bits =
          List.fold_left
            (fun acc (i, _) -> acc lor (1 lsl local_of_attr.(i)))
            0 bound
        in
        match Hashtbl.find_opt mask_ids bits with
        | Some k -> k
        | None ->
            let k = !next_mask in
            Hashtbl.add mask_ids bits k;
            incr next_mask;
            k
      in
      let raw_arr = Array.of_list raw in
      let nt = 1 + Array.length raw_arr in
      let t_mask = Array.make nt 0 in
      Array.iteri (fun k rt -> t_mask.(k + 1) <- mask_of rt.rt_bound) raw_arr;
      let mask_bits = Array.make !next_mask 0 in
      Hashtbl.iter (fun bits k -> mask_bits.(k) <- bits) mask_ids;
      let g =
        build_group schema ~g_attrs ~g_stats:(Array.of_list stats)
          ~local_of_attr ~raw_arr ~t_mask ~mask_bits
      in
      Array.iter (fun i -> group_of_attr.(i) <- !g_idx) g_attrs;
      List.iter (fun j -> Hashtbl.add group_of_stat j !g_idx) stats;
      groups := g :: !groups;
      incr g_idx)
    root_stats;
  let groups = Array.of_list (List.rev !groups) in
  let free_attrs =
    Array.of_list
      (List.filter (fun i -> group_of_attr.(i) = -1) (List.init m Fun.id))
  in
  let n = float_of_int (Phi.n phi) in
  let alpha =
    Array.map
      (fun s ->
        match Statistic.kind s with
        (* n = 0 (an empty shard of a partitioned relation): every target
           is 0, so seed the variables at 0 rather than 0/0 = nan; the
           degenerate model answers every query with 0 via the P <= 0
           guards below. *)
        | Statistic.Marginal _ -> if n > 0. then Statistic.target s /. n else 0.
        | Statistic.Joint _ -> 1.)
      (Phi.stats phi)
  in
  let t =
    {
      phi;
      schema;
      m;
      alpha;
      attr_sums = Array.make m 0.;
      groups;
      group_of_attr;
      group_of_stat;
      free_attrs;
      p = 0.;
      prefix =
        Array.init m (fun i -> Array.make (Schema.domain_size schema i + 1) 0.);
      prefix_valid = false;
      scratch = make_scratch schema groups;
      scratch_busy = Atomic.make false;
    }
  in
  refresh t;
  t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let phi t = t.phi
let p t = t.p
let alpha t j = t.alpha.(j)
let attr_sum t i = t.attr_sums.(i)
let num_terms t = Array.fold_left (fun acc g -> acc + g.n_terms) 0 t.groups
let num_groups t = Array.length t.groups
let uncompressed_monomials t = Schema.tuple_space_size t.schema

(* ------------------------------------------------------------------ *)
(* Table export (summary format v3)                                    *)
(* ------------------------------------------------------------------ *)

(* The flat SoA tables, exposed for the zero-copy serializer: format v3
   writes exactly these arrays to disk so a mapped summary's kernel walks
   the same bits the heap kernel does.  The arrays are shared with the
   polynomial, not copied — callers must treat them as read-only. *)
type group_tables = {
  gt_attrs : int array;
  gt_stats : int array;
  gt_n_terms : int;
  gt_ts_off : int array;
  gt_ts_stat : int array;
  gt_fa_off : int array;
  gt_fa_attr : int array;
  gt_factors : float array;
  gt_iv_off : int array;
  gt_iv_lo : int array;
  gt_iv_hi : int array;
  gt_t_mask : int array;
  gt_fprod : float array;
  gt_dprod : float array;
  gt_value : float array;
  gt_mask_bits : int array;
  gt_mask_sum : float array;
  gt_mask_outer : float array;
  gt_q : float;
  gt_bys_off : int array;
  gt_bys_term : int array;
  gt_byv_off : int array array;
  gt_byv_term : int array array;
  gt_byv_slot : int array array;
}

type tables = {
  tb_alpha : float array;
  tb_attr_sums : float array;
  tb_prefix : float array array;
  tb_p : float;
  tb_free_attrs : int array;
  tb_group_of_attr : int array;
  tb_groups : group_tables array;
}

let group_tables g =
  {
    gt_attrs = g.g_attrs;
    gt_stats = g.g_stats;
    gt_n_terms = g.n_terms;
    gt_ts_off = g.ts_off;
    gt_ts_stat = g.ts_stat;
    gt_fa_off = g.fa_off;
    gt_fa_attr = g.fa_attr;
    gt_factors = g.factors;
    gt_iv_off = g.iv_off;
    gt_iv_lo = g.iv_lo;
    gt_iv_hi = g.iv_hi;
    gt_t_mask = g.t_mask;
    gt_fprod = g.fprod;
    gt_dprod = g.dprod;
    gt_value = g.value;
    gt_mask_bits = g.mask_bits;
    gt_mask_sum = g.mask_sum;
    gt_mask_outer = g.mask_outer;
    gt_q = g.q;
    gt_bys_off = g.bys_off;
    gt_bys_term = g.bys_term;
    gt_byv_off = g.byv_off;
    gt_byv_term = g.byv_term;
    gt_byv_slot = g.byv_slot;
  }

let tables t =
  ensure_prefix t;
  {
    tb_alpha = t.alpha;
    tb_attr_sums = t.attr_sums;
    tb_prefix = t.prefix;
    tb_p = t.p;
    tb_free_attrs = t.free_attrs;
    tb_group_of_attr = t.group_of_attr;
    tb_groups = Array.map group_tables t.groups;
  }

(* Resident size estimate in bytes: one word per array element plus the
   prefix tables — the weighted catalog charges heap entries with this. *)
let footprint_bytes t =
  let word = 8 in
  let acc = ref (word * (Array.length t.alpha + Array.length t.attr_sums)) in
  Array.iter (fun pre -> acc := !acc + (word * Array.length pre)) t.prefix;
  Array.iter
    (fun g ->
      let ints =
        Array.length g.ts_off + Array.length g.ts_stat + Array.length g.fa_off
        + Array.length g.fa_attr + Array.length g.iv_off
        + Array.length g.iv_lo + Array.length g.iv_hi + Array.length g.t_mask
        + Array.length g.mask_bits + Array.length g.bys_off
        + Array.length g.bys_term
      in
      let ints =
        Array.fold_left (fun a o -> a + Array.length o) ints g.byv_off
      in
      let ints =
        Array.fold_left (fun a o -> a + Array.length o) ints g.byv_term
      in
      let ints =
        Array.fold_left (fun a o -> a + Array.length o) ints g.byv_slot
      in
      let floats =
        Array.length g.factors + Array.length g.fprod + Array.length g.dprod
        + Array.length g.value + Array.length g.mask_sum
        + Array.length g.mask_outer
      in
      acc := !acc + (word * (ints + floats)))
    t.groups;
  !acc

(* ------------------------------------------------------------------ *)
(* Incremental variable update                                         *)
(* ------------------------------------------------------------------ *)

let local_of g attr =
  let rec find k = if g.g_attrs.(k) = attr then k else find (k + 1) in
  find 0

let set_alpha t j v =
  let old = t.alpha.(j) in
  if old <> v then begin
    t.alpha.(j) <- v;
    t.prefix_valid <- false;
    (match Statistic.kind (Phi.stat t.phi j) with
    | Statistic.Marginal { attr; value } ->
        let delta = v -. old in
        t.attr_sums.(attr) <- t.attr_sums.(attr) +. delta;
        let gi = t.group_of_attr.(attr) in
        if gi >= 0 then begin
          let g = t.groups.(gi) in
          let li = local_of g attr in
          let off = g.byv_off.(li) in
          let terms = g.byv_term.(li) and slots = g.byv_slot.(li) in
          for p = off.(value) to off.(value + 1) - 1 do
            let ti = terms.(p) and s = slots.(p) in
            g.factors.(s) <- g.factors.(s) +. delta;
            g.fprod.(ti) <- fprod_of g ti;
            let value' = g.fprod.(ti) *. g.dprod.(ti) in
            g.mask_sum.(g.t_mask.(ti)) <-
              g.mask_sum.(g.t_mask.(ti)) +. value' -. g.value.(ti);
            g.value.(ti) <- value'
          done;
          recompute_group_q t g
        end
    | Statistic.Joint _ ->
        let gi = Hashtbl.find t.group_of_stat j in
        let g = t.groups.(gi) in
        (match Hashtbl.find_opt g.bys_row j with
        | None -> ()
        | Some row ->
            for p = g.bys_off.(row) to g.bys_off.(row + 1) - 1 do
              let ti = g.bys_term.(p) in
              g.dprod.(ti) <- dprod_of t g ti;
              let value' = g.fprod.(ti) *. g.dprod.(ti) in
              g.mask_sum.(g.t_mask.(ti)) <-
                g.mask_sum.(g.t_mask.(ti)) +. value' -. g.value.(ti);
              g.value.(ti) <- value'
            done);
        recompute_group_q t g);
    t.p <- compute_p t
  end

(* Scale normalization.  Every monomial contains exactly one marginal
   variable of every attribute (overcompleteness), so multiplying all of
   attribute i's marginals by c multiplies P by c and leaves every
   expectation, estimate, and the dual unchanged.  Normalizing each
   attribute sum to 1 therefore pins P to a bounded magnitude; without it,
   unrealizable targets (noisy or privatized statistics) make the
   coordinate iteration drift P towards 0 or infinity. *)
let normalize t =
  let changed = ref false in
  for i = 0 to t.m - 1 do
    let a = t.attr_sums.(i) in
    if a > 0. && a <> 1. then begin
      changed := true;
      for v = 0 to Schema.domain_size t.schema i - 1 do
        let j = Phi.marginal_id t.phi ~attr:i ~value:v in
        t.alpha.(j) <- t.alpha.(j) /. a
      done
    end
  done;
  if !changed then refresh t

(* Bulk variable assignment (used by the gradient solver's simultaneous
   updates and by deserialization): copy the whole vector, then rebuild all
   cached state in one pass. *)
let set_alphas t values =
  if Array.length values <> Array.length t.alpha then
    invalid_arg "Poly.set_alphas: wrong vector length";
  Array.blit values 0 t.alpha 0 (Array.length values);
  refresh t

let alphas t = Array.copy t.alpha

(* Reset variables to an initialization strategy: [`Marginals] seeds 1D
   variables at s_j/n (exact for a marginals-only model), [`Uniform] seeds
   everything at 1 (the uninformed start).  Joints start at 1 in both. *)
let reinit t strategy =
  let n = float_of_int (Phi.n t.phi) in
  Array.iter
    (fun s ->
      let j = Statistic.id s in
      t.alpha.(j) <-
        (match (Statistic.kind s, strategy) with
        | Statistic.Marginal _, `Marginals ->
            if n > 0. then Statistic.target s /. n else 0.
        | _, _ -> 1.))
    (Phi.stats t.phi);
  refresh t

(* ------------------------------------------------------------------ *)
(* Derivatives and expectations                                        *)
(* ------------------------------------------------------------------ *)

(* prod over free attrs and groups, excluding one of each. *)
let outer_product t ~skip_attr ~skip_group =
  let acc = ref 1. in
  Array.iter
    (fun i -> if i <> skip_attr then acc := !acc *. t.attr_sums.(i))
    t.free_attrs;
  Array.iteri
    (fun gi g -> if gi <> skip_group then acc := !acc *. g.q)
    t.groups;
  !acc

let[@inline] factors_product_excluding g ti ~slot =
  let acc = ref 1. in
  for s = g.fa_off.(ti) to g.fa_off.(ti + 1) - 1 do
    if s <> slot then acc := !acc *. g.factors.(s)
  done;
  !acc

(* dP/dalpha_j.  P is linear in every variable (each statistic predicate is
   0/1 on every tuple), so the derivative is the sum of the terms whose
   monomials contain the variable, with the variable's own factor
   removed. *)
let partial t j =
  match Statistic.kind (Phi.stat t.phi j) with
  | Statistic.Marginal { attr; value } ->
      let gi = t.group_of_attr.(attr) in
      if gi < 0 then outer_product t ~skip_attr:attr ~skip_group:(-1)
      else begin
        let g = t.groups.(gi) in
        let li = local_of g attr in
        let n_local = Array.length g.g_attrs in
        let dq = ref 0. in
        (* Masks not restricting [attr]: the variable enters through the
           full attribute sum A_attr of the outer product. *)
        for k = 0 to Array.length g.mask_bits - 1 do
          let bits = g.mask_bits.(k) in
          if bits land (1 lsl li) = 0 then begin
            let outer = ref 1. in
            for li' = 0 to n_local - 1 do
              if li' <> li && bits land (1 lsl li') = 0 then
                outer := !outer *. t.attr_sums.(g.g_attrs.(li'))
            done;
            dq := !dq +. (g.mask_sum.(k) *. !outer)
          end
        done;
        (* Terms restricting [attr] with [value] inside their projection:
           the variable enters through the term's own factor. *)
        let off = g.byv_off.(li) in
        let terms = g.byv_term.(li) and slots = g.byv_slot.(li) in
        for p = off.(value) to off.(value + 1) - 1 do
          let ti = terms.(p) in
          dq :=
            !dq
            +. factors_product_excluding g ti ~slot:slots.(p)
               *. g.dprod.(ti) *. g.mask_outer.(g.t_mask.(ti))
        done;
        outer_product t ~skip_attr:(-1) ~skip_group:gi *. !dq
      end
  | Statistic.Joint _ ->
      let gi = Hashtbl.find t.group_of_stat j in
      let g = t.groups.(gi) in
      let dq = ref 0. in
      (match Hashtbl.find_opt g.bys_row j with
      | None -> ()
      | Some row ->
          for p = g.bys_off.(row) to g.bys_off.(row + 1) - 1 do
            let ti = g.bys_term.(p) in
            let rest = ref 1. in
            for s = g.ts_off.(ti) to g.ts_off.(ti + 1) - 1 do
              let j' = g.ts_stat.(s) in
              if j' <> j then rest := !rest *. (t.alpha.(j') -. 1.)
            done;
            dq := !dq +. (g.fprod.(ti) *. !rest *. g.mask_outer.(g.t_mask.(ti)))
          done);
      outer_product t ~skip_attr:(-1) ~skip_group:gi *. !dq

(* E[<c_j, I>] = n * alpha_j * dP/dalpha_j / P   (Eq. 8). *)
let expected t j =
  if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. t.alpha.(j) *. partial t j /. t.p

(* ------------------------------------------------------------------ *)
(* Restricted evaluation: query answering by zeroing (Sec. 4.2)        *)
(* ------------------------------------------------------------------ *)

(* Worker count for restricted evaluation over large groups; configured
   globally (CLI/bench read EDB_DOMAINS).  Chunk workers only read the
   cached state, which [ensure_prefix] finalizes before any spawn. *)
let parallelism = ref (Parallel.default_domains ())
let parallel_threshold = ref 30_000

let set_parallelism ?threshold n =
  parallelism := max 1 n;
  match threshold with
  | Some th -> parallel_threshold := max 1 th
  | None -> ()

(* Floor of the cancellation clamp on restricted group values.  0 in
   production; the correctness harness raises it to plant a detectable
   estimator bug (entropydb check --mutate clamp).  The clamp applies to
   the *group value*, after mask combination — it never looks at the
   term layout, which is why the SoA rewrite leaves it untouched. *)
let cancellation_floor = ref 0.
let set_cancellation_floor f = cancellation_floor := f

(* A_i restricted to the query's value set (the full sum when the query
   leaves attribute [i] free). *)
let[@inline] restricted_attr_sum t query i =
  match Predicate.restriction query i with
  | None -> t.attr_sums.(i)
  | Some r -> range_sum t ~attr:i r

(* Restricted masses of terms [lo, hi) accumulated into [msum] by mask:
   the inner loop of both restricted kernels.  A top-level function, not
   a closure, so the single-domain path allocates nothing. *)
let accumulate_masses t query g msum ~lo ~hi =
  let fa_off = g.fa_off
  and fa_attr = g.fa_attr
  and factors = g.factors
  and dprod = g.dprod
  and t_mask = g.t_mask
  and prefix = t.prefix in
  let f = ref 0. in
  for ti = lo to hi - 1 do
    f := Array.unsafe_get dprod ti;
    (try
       for s = Array.unsafe_get fa_off ti to Array.unsafe_get fa_off (ti + 1) - 1
       do
         let i = Array.unsafe_get fa_attr s in
         let factor =
           match Predicate.restriction query i with
           | None -> Array.unsafe_get factors s
           | Some qr -> inter_sum (Array.unsafe_get prefix i) g s qr
         in
         if factor = 0. then raise Exit;
         f := !f *. factor
       done
     with Exit -> f := 0.);
    let mask = Array.unsafe_get t_mask ti in
    Array.unsafe_set msum mask (Array.unsafe_get msum mask +. !f)
  done

(* Q_g under the query's restrictions: the per-group part of restricted
   evaluation, shared by [eval_restricted] and the batched GROUP BY
   kernel below.  Groups below the parallel threshold accumulate into
   the scratch block; large groups keep the chunked Parallel.fold (whose
   per-chunk arrays are the price of running on several domains). *)
let restricted_group_q t query g sc =
  let n_local = Array.length g.g_attrs in
  for li = 0 to n_local - 1 do
    sc.ra.(li) <- restricted_attr_sum t query g.g_attrs.(li)
  done;
  let num_masks = Array.length g.mask_bits in
  let msum =
    if g.n_terms >= !parallel_threshold && !parallelism > 1 then
      Parallel.fold ~domains:!parallelism ~n:g.n_terms
        ~chunk:(fun ~lo ~hi ->
          let local = Array.make num_masks 0. in
          accumulate_masses t query g local ~lo ~hi;
          local)
        ~combine:(fun a b ->
          Array.iteri (fun k v -> a.(k) <- a.(k) +. v) b;
          a)
        ~init:(Array.make num_masks 0.)
    else begin
      Array.fill sc.msum 0 num_masks 0.;
      accumulate_masses t query g sc.msum ~lo:0 ~hi:g.n_terms;
      sc.msum
    end
  in
  let q = ref 0. in
  for k = 0 to num_masks - 1 do
    if msum.(k) <> 0. then begin
      let bits = g.mask_bits.(k) in
      let outer = ref 1. in
      for li = 0 to n_local - 1 do
        if bits land (1 lsl li) = 0 then outer := !outer *. sc.ra.(li)
      done;
      q := !q +. (msum.(k) *. !outer)
    end
  done;
  (* Q_g is a sum of non-negative monomials; clamp the tiny negative
     values floating-point cancellation can produce.  The floor is 0 in
     production; [set_cancellation_floor] raises it for fault injection. *)
  Float.max !cancellation_floor !q

(* P with every 1D variable outside the query's per-attribute restrictions
   set to 0.  Nothing is rebuilt: restricted attribute sums and term
   factors are recomputed from prefix sums over the current alpha. *)
let eval_restricted_sc t query sc =
  ensure_prefix t;
  let acc = ref 1. in
  for k = 0 to Array.length t.free_attrs - 1 do
    acc := !acc *. restricted_attr_sum t query t.free_attrs.(k)
  done;
  for gi = 0 to Array.length t.groups - 1 do
    acc := !acc *. restricted_group_q t query t.groups.(gi) sc
  done;
  !acc

let[@inline] alpha_of t ~attr v = t.alpha.(Phi.marginal_id t.phi ~attr ~value:v)

(* Term pass of the batched GROUP BY kernel over terms [lo, hi): masses
   of terms leaving [attr] unmasked accumulate into [msum] by mask;
   terms restricting [attr] scatter their remaining product, weighted by
   the mask's outer product [coef], into the cells of their projection ∩
   query.  Top-level for the same zero-allocation reason as
   [accumulate_masses]. *)
let accumulate_by_value t query g ~attr ~q_attr coef msum scatter ~lo ~hi =
  let fa_off = g.fa_off
  and fa_attr = g.fa_attr
  and factors = g.factors
  and dprod = g.dprod
  and t_mask = g.t_mask
  and iv_off = g.iv_off
  and iv_lo = g.iv_lo
  and iv_hi = g.iv_hi
  and prefix = t.prefix in
  let f = ref 0. in
  for ti = lo to hi - 1 do
    let s0 = Array.unsafe_get fa_off ti
    and s1 = Array.unsafe_get fa_off (ti + 1) in
    (* One pass over the slots: multiply the non-[attr] factors in slot
       order (the order the boxed layout used) while remembering [attr]'s
       slot.  Slots are one-per-attribute, so skipping [attr] inline is
       the same exclusion as a separate scan. *)
    let attr_slot = ref (-1) in
    f := Array.unsafe_get dprod ti;
    (try
       for s = s0 to s1 - 1 do
         let i = Array.unsafe_get fa_attr s in
         if i = attr then attr_slot := s
         else begin
           let factor =
             match Predicate.restriction query i with
             | None -> Array.unsafe_get factors s
             | Some qr -> inter_sum (Array.unsafe_get prefix i) g s qr
           in
           if factor = 0. then raise Exit;
           f := !f *. factor
         end
       done
     with Exit -> f := 0.);
    let attr_slot = !attr_slot in
    let fv = !f in
    if fv <> 0. then
      let mask = Array.unsafe_get t_mask ti in
      if attr_slot < 0 then
        Array.unsafe_set msum mask (Array.unsafe_get msum mask +. fv)
      else begin
        let w = fv *. Array.unsafe_get coef mask in
        match q_attr with
        | None ->
            for k = Array.unsafe_get iv_off attr_slot
                 to Array.unsafe_get iv_off (attr_slot + 1) - 1
            do
              for v = Array.unsafe_get iv_lo k to Array.unsafe_get iv_hi k do
                Array.unsafe_set scatter v (Array.unsafe_get scatter v +. w)
              done
            done
        | Some qr ->
            (* Merge walk over (slot ∩ query), as in [inter_sum]. *)
            let k = ref (Array.unsafe_get iv_off attr_slot) and j = ref 0 in
            let k1 = Array.unsafe_get iv_off (attr_slot + 1) in
            let nq = Ranges.num_intervals qr in
            while !k < k1 && !j < nq do
              let alo = Array.unsafe_get iv_lo !k
              and ahi = Array.unsafe_get iv_hi !k in
              let blo = Ranges.interval_lo qr !j
              and bhi = Ranges.interval_hi qr !j in
              let lo = if alo > blo then alo else blo in
              let hi = if ahi < bhi then ahi else bhi in
              if lo <= hi then
                for v = lo to hi do
                  Array.unsafe_set scatter v (Array.unsafe_get scatter v +. w)
                done;
              if ahi < bhi then incr k else incr j
            done
      end
  done

(* Batched GROUP BY kernel: restricted P for *all* cells of a grouping
   attribute in one pass over the terms.

   Every monomial contains exactly one marginal variable of [attr], so
   the cell for value v is P[query restricted, attr restricted to {v}]
   and the attribute's own contribution to each monomial is the single
   factor alpha_{attr,v}:

   - [attr] free (not in any group): every cell shares the same product
     of the other restricted factors; the cell value is that product
     times alpha_{attr,v}.
   - [attr] in group g: a term of g either leaves [attr] unmasked — its
     restricted mass enters every cell through alpha_{attr,v} times the
     mask's outer product over the *other* group attributes — or
     restricts [attr] at some slot, in which case its remaining product
     scatters into exactly the cells of projection ∩ query.

   Total cost O(terms + Σ|projection ∩ query| + #masks·|g_attrs| +
   N_attr) instead of the per-cell scan's O(N_attr × terms).  Cells
   outside the query's restriction on [attr] are 0.  Each cell's Q_g
   gets the same cancellation clamp as [eval_restricted], so cell values
   match the per-cell path up to float reassociation. *)
let eval_by_value_sc t query ~attr out sc =
  ensure_prefix t;
  let size = Schema.domain_size t.schema attr in
  Array.fill out 0 size 0.;
  let q_attr = Predicate.restriction query attr in
  let gi = t.group_of_attr.(attr) in
  (* Factors not involving [attr], shared by every cell. *)
  let base = ref 1. in
  for k = 0 to Array.length t.free_attrs - 1 do
    let i = t.free_attrs.(k) in
    if i <> attr then base := !base *. restricted_attr_sum t query i
  done;
  for gj = 0 to Array.length t.groups - 1 do
    if gj <> gi then base := !base *. restricted_group_q t query t.groups.(gj) sc
  done;
  let base = !base in
  if gi < 0 then begin
    match q_attr with
    | None ->
        for v = 0 to size - 1 do
          out.(v) <- base *. alpha_of t ~attr v
        done
    | Some r ->
        for k = 0 to Ranges.num_intervals r - 1 do
          for v = Ranges.interval_lo r k to Ranges.interval_hi r k do
            out.(v) <- base *. alpha_of t ~attr v
          done
        done
  end
  else begin
    let g = t.groups.(gi) in
    let li = local_of g attr in
    let n_local = Array.length g.g_attrs in
    let num_masks = Array.length g.mask_bits in
    (* Per-mask outer products over the group's other attributes;
       [attr]'s own factor is applied per cell. *)
    let coef = sc.coef in
    for k = 0 to num_masks - 1 do
      let bits = g.mask_bits.(k) in
      let outer = ref 1. in
      for li' = 0 to n_local - 1 do
        if li' <> li && bits land (1 lsl li') = 0 then
          outer := !outer *. restricted_attr_sum t query g.g_attrs.(li')
      done;
      coef.(k) <- !outer
    done;
    let msum, scatter =
      if g.n_terms >= !parallel_threshold && !parallelism > 1 then
        Parallel.fold ~domains:!parallelism ~n:g.n_terms
          ~chunk:(fun ~lo ~hi ->
            let msum = Array.make num_masks 0. in
            let scatter = Array.make size 0. in
            accumulate_by_value t query g ~attr ~q_attr coef msum scatter ~lo
              ~hi;
            (msum, scatter))
          ~combine:(fun (ma, sa) (mb, sb) ->
            Array.iteri (fun k v -> ma.(k) <- ma.(k) +. v) mb;
            Array.iteri (fun v x -> sa.(v) <- sa.(v) +. x) sb;
            (ma, sa))
          ~init:(Array.make num_masks 0., Array.make size 0.)
      else begin
        Array.fill sc.msum 0 num_masks 0.;
        Array.fill sc.scatter 0 size 0.;
        accumulate_by_value t query g ~attr ~q_attr coef sc.msum sc.scatter
          ~lo:0 ~hi:g.n_terms;
        (sc.msum, sc.scatter)
      end
    in
    (* Masses of the terms leaving [attr] unmasked, with their outer
       products; these enter every cell through alpha_{attr,v}. *)
    let scalar = ref 0. in
    for k = 0 to num_masks - 1 do
      if g.mask_bits.(k) land (1 lsl li) = 0 && msum.(k) <> 0. then
        scalar := !scalar +. (msum.(k) *. coef.(k))
    done;
    let scalar = !scalar in
    match q_attr with
    | None ->
        for v = 0 to size - 1 do
          out.(v) <-
            base
            *. Float.max !cancellation_floor
                 (alpha_of t ~attr v *. (scalar +. scatter.(v)))
        done
    | Some r ->
        for k = 0 to Ranges.num_intervals r - 1 do
          for v = Ranges.interval_lo r k to Ranges.interval_hi r k do
            out.(v) <-
              base
              *. Float.max !cancellation_floor
                   (alpha_of t ~attr v *. (scalar +. scatter.(v)))
          done
        done
  end

(* Weighted evaluation: sum over tuples satisfying [query] of
   prod_i w_i(t_i) * monomial(t), for product-form per-tuple weights.
   Because P is linear in every marginal variable, substituting
   alpha_{i,v} -> alpha_{i,v} * w_i(v) computes exactly this sum; that is
   what lets the same factorized representation answer SUM and AVG
   queries (a strictly larger class of the paper's linear queries than
   counting). *)
let eval_weighted_impl t query ~weights =
  ensure_prefix t;
  (* Per-attribute prefix sums of weighted alphas; [weights] gives a
     weight function for the attributes it covers, all others weigh 1 and
     reuse the cached prefixes.  [all_nonneg] records whether every
     weighted alpha stayed >= 0 (unweighted alphas always are): exactly
     then every monomial of the weighted sum is non-negative and each
     group value may be clamped at 0 like [eval_restricted]'s, so
     floating-point cancellation cannot flip a SUM estimate's sign. *)
  let all_nonneg = ref true in
  let prefix_of =
    let overridden = Hashtbl.create 4 in
    List.iter
      (fun (attr, w) ->
        let size = Schema.domain_size t.schema attr in
        let pre = Array.make (size + 1) 0. in
        for v = 0 to size - 1 do
          let wa = t.alpha.(Phi.marginal_id t.phi ~attr ~value:v) *. w v in
          if wa < 0. then all_nonneg := false;
          pre.(v + 1) <- pre.(v) +. wa
        done;
        Hashtbl.replace overridden attr pre)
      weights;
    fun attr ->
      match Hashtbl.find_opt overridden attr with
      | Some pre -> pre
      | None -> t.prefix.(attr)
  in
  let range_sum_pre pre r =
    let acc = ref 0. in
    for k = 0 to Ranges.num_intervals r - 1 do
      acc :=
        !acc +. pre.(Ranges.interval_hi r k + 1) -. pre.(Ranges.interval_lo r k)
    done;
    !acc
  in
  let attr_total i =
    let pre = prefix_of i in
    match Predicate.restriction query i with
    | None -> pre.(Schema.domain_size t.schema i)
    | Some r -> range_sum_pre pre r
  in
  let acc = ref 1. in
  Array.iter (fun i -> acc := !acc *. attr_total i) t.free_attrs;
  Array.iter
    (fun g ->
      let totals = Array.map attr_total g.g_attrs in
      let num_masks = Array.length g.mask_bits in
      let msum = Array.make num_masks 0. in
      for ti = 0 to g.n_terms - 1 do
        let f = ref g.dprod.(ti) in
        (try
           for s = g.fa_off.(ti) to g.fa_off.(ti + 1) - 1 do
             let i = g.fa_attr.(s) in
             let pre = prefix_of i in
             let factor =
               match Predicate.restriction query i with
               | None -> slot_sum pre g s
               | Some qr -> inter_sum pre g s qr
             in
             if factor = 0. then raise Exit;
             f := !f *. factor
           done
         with Exit -> f := 0.);
        msum.(g.t_mask.(ti)) <- msum.(g.t_mask.(ti)) +. !f
      done;
      let q = ref 0. in
      Array.iteri
        (fun k bits ->
          if msum.(k) <> 0. then begin
            let outer = ref 1. in
            Array.iteri
              (fun li _ ->
                if bits land (1 lsl li) = 0 then outer := !outer *. totals.(li))
              g.g_attrs;
            q := !q +. (msum.(k) *. !outer)
          end)
        g.mask_bits;
      (* With non-negative weights Q_g is a sum of non-negative monomials
         exactly as in [eval_restricted]; apply the same cancellation
         clamp.  Genuinely signed weights keep their sign. *)
      let q = if !all_nonneg then Float.max 0. !q else !q in
      acc := !acc *. q)
    t.groups;
  !acc

(* ------------------------------------------------------------------ *)
(* Public kernel entry points: scratch claim + observability           *)
(* ------------------------------------------------------------------ *)

let observe_eval_ns t0 =
  Edb_obs.Registry.Hist.observe_us eval_ns_hist ((Timing.now_s () -. t0) *. 1e9)

let eval_restricted t query =
  Edb_obs.Registry.Counter.incr evals_counter;
  if Obs.enabled () then begin
    let t0 = Timing.now_s () in
    let r =
      Obs.with_span "poly.eval_restricted" ~cat:"answer" (fun () ->
          let sc = acquire_scratch t in
          Fun.protect
            ~finally:(fun () -> release_scratch t sc)
            (fun () -> eval_restricted_sc t query sc))
    in
    observe_eval_ns t0;
    r
  end
  else begin
    let sc = acquire_scratch t in
    match eval_restricted_sc t query sc with
    | r ->
        release_scratch t sc;
        r
    | exception e ->
        release_scratch t sc;
        raise e
  end

let eval_restricted_by_value_into t query ~attr ~out =
  let size = Schema.domain_size t.schema attr in
  if Array.length out < size then
    invalid_arg "Poly.eval_restricted_by_value_into: out buffer too small";
  Edb_obs.Registry.Counter.incr evals_counter;
  if Obs.enabled () then begin
    let t0 = Timing.now_s () in
    Obs.with_span "poly.eval_restricted_by_value" ~cat:"answer" (fun () ->
        let sc = acquire_scratch t in
        Fun.protect
          ~finally:(fun () -> release_scratch t sc)
          (fun () -> eval_by_value_sc t query ~attr out sc));
    observe_eval_ns t0
  end
  else begin
    let sc = acquire_scratch t in
    match eval_by_value_sc t query ~attr out sc with
    | () -> release_scratch t sc
    | exception e ->
        release_scratch t sc;
        raise e
  end

let eval_restricted_by_value t query ~attr =
  let out = Array.make (Schema.domain_size t.schema attr) 0. in
  eval_restricted_by_value_into t query ~attr ~out;
  out

let eval_weighted t query ~weights =
  Edb_obs.Registry.Counter.incr evals_counter;
  if Obs.enabled () then begin
    let t0 = Timing.now_s () in
    let r =
      Obs.with_span "poly.eval_weighted" ~cat:"answer" (fun () ->
          eval_weighted_impl t query ~weights)
    in
    observe_eval_ns t0;
    r
  end
  else eval_weighted_impl t query ~weights

(* E[<q, I>] = n / P * P[zeroed]  — the final formula of Sec. 4.2. *)
let estimate t query =
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. eval_restricted t query /. t.p

let estimate_weighted t query ~weights =
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. eval_weighted t query ~weights /. t.p

(* The dual objective Psi = sum_j s_j ln alpha_j - n ln P  (Eq. 11).
   Statistics with s_j = 0 contribute lim_{a->0} 0*ln a = 0. *)
let dual t =
  let acc = ref 0. in
  Array.iter
    (fun s ->
      let sj = Statistic.target s in
      if sj > 0. then begin
        let a = t.alpha.(Statistic.id s) in
        if a > 0. then acc := !acc +. (sj *. log a)
        else acc := Float.neg_infinity
      end)
    (Phi.stats t.phi);
  if t.p > 0. then !acc -. (float_of_int (Phi.n t.phi) *. log t.p)
  else Float.neg_infinity
