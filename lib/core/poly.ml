(* The compressed MaxEnt polynomial (Sec. 3.1 Eq. 5, compressed per
   Theorem 4.1, plus two refinements).

   The uncompressed polynomial has one monomial per possible tuple —
   billions for the paper's schemas — so it is never materialized.
   Theorem 4.1 rewrites P as a sum over *compatible sets* S of
   multi-dimensional statistics: each S contributes

       (i)  the full 1D sums A_i of the attributes S does not restrict,
       (ii) the sums of 1D variables inside the intersection of S's
            per-attribute projections, for the attributes it does restrict,
            times prod_{j in S} (delta_j - 1).

   Refinement 1 — group factorization.  Joint statistics are partitioned
   into *connected groups* by shared attributes (union-find).  Monomials
   factor across groups, so

       P  =  prod_{i free} A_i  *  prod_g Q_g

   and each group polynomial Q_g enumerates only compatible sets drawn from
   its own statistics: attribute-disjoint families (e.g. the paper's Ent3&4
   pairs (time,distance) x (origin,dest)) multiply instead of
   cross-producting.  The paper's Sec. 7 lists this further factorization
   as future work.

   Refinement 2 — mask-indexed part (i).  Within a group, many terms leave
   some group attributes unrestricted.  Storing those attributes' full sums
   inside every term would make a single marginal update touch every term
   of the group.  Instead, terms are bucketed by their *mask* (the set of
   group attributes their S restricts) and carry only part (ii); the group
   value is

       Q_g = sum_masks  S_mask * prod_{i in group, i not in mask} A_i

   where S_mask is the running sum of the bucket's part-(ii) values.  A
   marginal update then touches only the terms whose own projection
   contains the value, plus O(#masks) outer products — #masks is bounded by
   the number of distinct family combinations, typically < 10.

   The structure is mutable: the solver updates one variable at a time
   (Algorithm 1) and every cached quantity — A_i, per-term factors,
   per-mask sums, Q_g, P — is maintained incrementally.  [refresh]
   recomputes everything from the variable vector to wash out accumulated
   floating-point drift. *)

open Edb_util
open Edb_storage

type term = {
  t_stats : int array; (* joint stat ids of S; [||] for the base term *)
  t_attrs : int array; (* attributes S restricts, ascending *)
  t_restr : Ranges.t array; (* parallel to t_attrs: projection intersections *)
  t_mask : int; (* mask id within the group *)
  factors : float array; (* cached F_i(S) = sum of alpha inside t_restr *)
  mutable fprod : float; (* prod factors *)
  mutable dprod : float; (* prod_{j in S} (alpha_j - 1); 1 for the base *)
  mutable value : float; (* fprod * dprod — part (ii) only *)
}

type group = {
  g_attrs : int array; (* ascending *)
  g_stats : int array; (* joint stat ids *)
  g_terms : term array; (* index 0 is the base term (S = empty, mask 0) *)
  mask_bits : int array; (* mask id -> bitset over local attr indices *)
  mask_sum : float array; (* mask id -> sum of its terms' values *)
  mask_outer : float array; (* mask id -> prod of A_i over unmasked locals *)
  mutable q : float;
  by_stat : (int, int list) Hashtbl.t; (* joint stat id -> term indices *)
  by_value : (int * int) list array array;
      (* local attr -> value -> (term index, factor position) pairs *)
}

type t = {
  phi : Phi.t;
  schema : Schema.t;
  m : int;
  alpha : float array; (* one variable per statistic, indexed by stat id *)
  attr_sums : float array; (* A_i *)
  groups : group array;
  group_of_attr : int array; (* attr -> group index, or -1 if free *)
  group_of_stat : (int, int) Hashtbl.t; (* joint stat id -> group index *)
  free_attrs : int array;
  mutable p : float;
  prefix : float array array; (* attr -> prefix sums of alpha, length N_i+1 *)
  mutable prefix_valid : bool;
}

exception Too_many_terms of { cap : int; group_attrs : int list }

(* ------------------------------------------------------------------ *)
(* Cached-state maintenance                                            *)
(* ------------------------------------------------------------------ *)

let ensure_prefix t =
  if not t.prefix_valid then begin
    for i = 0 to t.m - 1 do
      let size = Schema.domain_size t.schema i in
      let pre = t.prefix.(i) in
      pre.(0) <- 0.;
      for v = 0 to size - 1 do
        pre.(v + 1) <-
          pre.(v) +. t.alpha.(Phi.marginal_id t.phi ~attr:i ~value:v)
      done
    done;
    t.prefix_valid <- true
  end

(* Sum of alpha over a value set, via prefix sums: O(#intervals). *)
let range_sum t ~attr r =
  let pre = t.prefix.(attr) in
  List.fold_left
    (fun acc (lo, hi) -> acc +. pre.(hi + 1) -. pre.(lo))
    0. (Ranges.intervals r)

let fprod_of term =
  let acc = ref 1. in
  Array.iter (fun f -> acc := !acc *. f) term.factors;
  !acc

let dprod_of t term =
  let acc = ref 1. in
  Array.iter (fun j -> acc := !acc *. (t.alpha.(j) -. 1.)) term.t_stats;
  !acc

(* Recompute every mask's outer product and the group value from the
   current attribute sums and mask sums: O(#masks * |g_attrs|). *)
let recompute_group_q t g =
  let q = ref 0. in
  Array.iteri
    (fun k bits ->
      let outer = ref 1. in
      Array.iteri
        (fun li attr ->
          if bits land (1 lsl li) = 0 then outer := !outer *. t.attr_sums.(attr))
        g.g_attrs;
      g.mask_outer.(k) <- !outer;
      q := !q +. (g.mask_sum.(k) *. !outer))
    g.mask_bits;
  g.q <- !q

let compute_p t =
  let p = ref 1. in
  Array.iter (fun i -> p := !p *. t.attr_sums.(i)) t.free_attrs;
  Array.iter (fun g -> p := !p *. g.q) t.groups;
  !p

let refresh t =
  t.prefix_valid <- false;
  ensure_prefix t;
  for i = 0 to t.m - 1 do
    t.attr_sums.(i) <- t.prefix.(i).(Schema.domain_size t.schema i)
  done;
  Array.iter
    (fun g ->
      Array.fill g.mask_sum 0 (Array.length g.mask_sum) 0.;
      Array.iter
        (fun term ->
          Array.iteri
            (fun pos i ->
              term.factors.(pos) <- range_sum t ~attr:i term.t_restr.(pos))
            term.t_attrs;
          term.fprod <- fprod_of term;
          term.dprod <- dprod_of t term;
          term.value <- term.fprod *. term.dprod;
          g.mask_sum.(term.t_mask) <- g.mask_sum.(term.t_mask) +. term.value)
        g.g_terms;
      recompute_group_q t g)
    t.groups;
  t.p <- compute_p t

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

module Uf = struct
  let find parent i =
    let rec go i = if parent.(i) = i then i else go parent.(i) in
    let root = go i in
    let rec compress i =
      if parent.(i) <> root then begin
        let next = parent.(i) in
        parent.(i) <- root;
        compress next
      end
    in
    compress i;
    root

  let union parent a b =
    let ra = find parent a and rb = find parent b in
    if ra <> rb then parent.(ra) <- rb
end

let stat_ranges phi j =
  (* The per-attribute projections rho_ij of joint statistic j. *)
  let pred = Statistic.pred (Phi.stat phi j) in
  List.map
    (fun i ->
      match Predicate.restriction pred i with
      | Some r -> (i, r)
      | None -> assert false)
    (Predicate.restricted_attrs pred)

type raw_term = { rt_stats : int list; rt_bound : (int * Ranges.t) list }

(* Enumerate the compatible sets of one group by DFS over its families:
   pick at most one statistic per family (same-family statistics are
   disjoint, so they never co-occur in a monomial), pruning as soon as some
   attribute's projection intersection becomes empty.  This constructs the
   paper's J_I sets for all I at once. *)
let enumerate_raw_terms phi ~term_cap ~g_attrs ~g_families =
  let terms = ref [] and count = ref 0 in
  let m = Array.fold_left max 0 g_attrs + 1 in
  let restr_map : Ranges.t option array = Array.make m None in
  let emit stats =
    incr count;
    if !count > term_cap then
      raise
        (Too_many_terms { cap = term_cap; group_attrs = Array.to_list g_attrs });
    let bound =
      List.filter_map
        (fun i ->
          match restr_map.(i) with Some r -> Some (i, r) | None -> None)
        (Array.to_list g_attrs)
    in
    terms := { rt_stats = List.rev stats; rt_bound = bound } :: !terms
  in
  let families = Array.of_list g_families in
  let ranges_of = Hashtbl.create 64 in
  Array.iter
    (fun fam ->
      Array.iter (fun j -> Hashtbl.add ranges_of j (stat_ranges phi j)) fam)
    families;
  let rec dfs f chosen any =
    if f = Array.length families then begin
      if any then emit chosen
    end
    else begin
      (* Skip this family. *)
      dfs (f + 1) chosen any;
      (* Or choose one of its statistics. *)
      Array.iter
        (fun j ->
          let ranges = Hashtbl.find ranges_of j in
          let saved = List.map (fun (i, _) -> (i, restr_map.(i))) ranges in
          let ok =
            List.for_all
              (fun (i, r) ->
                let r' =
                  match restr_map.(i) with
                  | None -> r
                  | Some r0 -> Ranges.inter r0 r
                in
                restr_map.(i) <- Some r';
                not (Ranges.is_empty r'))
              ranges
          in
          if ok then dfs (f + 1) (j :: chosen) true;
          List.iter (fun (i, saved_r) -> restr_map.(i) <- saved_r) saved)
        families.(f)
    end
  in
  dfs 0 [] false;
  !terms

let create ?(term_cap = 2_000_000) phi =
  let schema = Phi.schema phi in
  let m = Schema.arity schema in
  (* Union-find over attributes through joint statistics. *)
  let parent = Array.init m (fun i -> i) in
  List.iter
    (fun j ->
      match Statistic.attrs (Phi.stat phi j) with
      | [] | [ _ ] -> assert false
      | a0 :: rest -> List.iter (fun a -> Uf.union parent a0 a) rest)
    (Phi.joint_ids phi);
  (* Collect groups: root -> statistic list. *)
  let root_stats : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let a0 = List.hd (Statistic.attrs (Phi.stat phi j)) in
      let root = Uf.find parent a0 in
      match Hashtbl.find_opt root_stats root with
      | Some l -> l := j :: !l
      | None -> Hashtbl.add root_stats root (ref [ j ]))
    (Phi.joint_ids phi);
  let group_of_attr = Array.make m (-1) in
  let group_of_stat = Hashtbl.create 64 in
  let groups = ref [] and g_idx = ref 0 in
  Hashtbl.iter
    (fun root stats ->
      let stats = List.rev !stats in
      let g_attrs =
        List.filter (fun i -> Uf.find parent i = root) (List.init m Fun.id)
        |> List.filter (fun i ->
               List.exists
                 (fun j -> List.mem i (Statistic.attrs (Phi.stat phi j)))
                 stats)
        |> Array.of_list
      in
      let local_of_attr = Array.make m (-1) in
      Array.iteri (fun li i -> local_of_attr.(i) <- li) g_attrs;
      (* Families restricted to this group, in id order. *)
      let g_families =
        Array.to_list (Phi.families phi)
        |> List.filter_map (fun members ->
               let inside =
                 Array.to_list members |> List.filter (fun j -> List.mem j stats)
               in
               if inside = [] then None else Some (Array.of_list inside))
      in
      let raw = enumerate_raw_terms phi ~term_cap ~g_attrs ~g_families in
      (* Assign mask ids: one per distinct restricted-attribute set. *)
      let mask_ids = Hashtbl.create 8 in
      Hashtbl.add mask_ids 0 0;
      let next_mask = ref 1 in
      let mask_of bound =
        let bits =
          List.fold_left
            (fun acc (i, _) -> acc lor (1 lsl local_of_attr.(i)))
            0 bound
        in
        match Hashtbl.find_opt mask_ids bits with
        | Some k -> k
        | None ->
            let k = !next_mask in
            Hashtbl.add mask_ids bits k;
            incr next_mask;
            k
      in
      let base =
        {
          t_stats = [||];
          t_attrs = [||];
          t_restr = [||];
          t_mask = 0;
          factors = [||];
          fprod = 1.;
          dprod = 1.;
          value = 1.;
        }
      in
      let nonbase =
        List.map
          (fun rt ->
            {
              t_stats = Array.of_list rt.rt_stats;
              t_attrs = Array.of_list (List.map fst rt.rt_bound);
              t_restr = Array.of_list (List.map snd rt.rt_bound);
              t_mask = mask_of rt.rt_bound;
              factors = Array.make (List.length rt.rt_bound) 0.;
              fprod = 0.;
              dprod = 1.;
              value = 0.;
            })
          raw
      in
      let g_terms = Array.of_list (base :: nonbase) in
      let num_masks = !next_mask in
      let mask_bits = Array.make num_masks 0 in
      Hashtbl.iter (fun bits k -> mask_bits.(k) <- bits) mask_ids;
      (* Inverted indexes. *)
      let by_stat = Hashtbl.create 64 in
      Array.iteri
        (fun ti term ->
          Array.iter
            (fun j ->
              let cur = Option.value (Hashtbl.find_opt by_stat j) ~default:[] in
              Hashtbl.replace by_stat j (ti :: cur))
            term.t_stats)
        g_terms;
      let by_value =
        Array.map
          (fun i -> Array.make (Schema.domain_size schema i) [])
          g_attrs
      in
      Array.iteri
        (fun ti term ->
          Array.iteri
            (fun pos i ->
              let li = local_of_attr.(i) in
              Ranges.iter
                (fun v -> by_value.(li).(v) <- (ti, pos) :: by_value.(li).(v))
                term.t_restr.(pos))
            term.t_attrs)
        g_terms;
      Array.iter (fun i -> group_of_attr.(i) <- !g_idx) g_attrs;
      List.iter (fun j -> Hashtbl.add group_of_stat j !g_idx) stats;
      groups :=
        {
          g_attrs;
          g_stats = Array.of_list stats;
          g_terms;
          mask_bits;
          mask_sum = Array.make num_masks 0.;
          mask_outer = Array.make num_masks 1.;
          q = 0.;
          by_stat;
          by_value;
        }
        :: !groups;
      incr g_idx)
    root_stats;
  let groups = Array.of_list (List.rev !groups) in
  let free_attrs =
    Array.of_list
      (List.filter (fun i -> group_of_attr.(i) = -1) (List.init m Fun.id))
  in
  let n = float_of_int (Phi.n phi) in
  let alpha =
    Array.map
      (fun s ->
        match Statistic.kind s with
        (* n = 0 (an empty shard of a partitioned relation): every target
           is 0, so seed the variables at 0 rather than 0/0 = nan; the
           degenerate model answers every query with 0 via the P <= 0
           guards below. *)
        | Statistic.Marginal _ -> if n > 0. then Statistic.target s /. n else 0.
        | Statistic.Joint _ -> 1.)
      (Phi.stats phi)
  in
  let t =
    {
      phi;
      schema;
      m;
      alpha;
      attr_sums = Array.make m 0.;
      groups;
      group_of_attr;
      group_of_stat;
      free_attrs;
      p = 0.;
      prefix =
        Array.init m (fun i -> Array.make (Schema.domain_size schema i + 1) 0.);
      prefix_valid = false;
    }
  in
  refresh t;
  t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let phi t = t.phi
let p t = t.p
let alpha t j = t.alpha.(j)
let attr_sum t i = t.attr_sums.(i)

let num_terms t =
  Array.fold_left (fun acc g -> acc + Array.length g.g_terms) 0 t.groups

let num_groups t = Array.length t.groups
let uncompressed_monomials t = Schema.tuple_space_size t.schema

(* ------------------------------------------------------------------ *)
(* Incremental variable update                                         *)
(* ------------------------------------------------------------------ *)

let local_of g attr =
  let rec find k = if g.g_attrs.(k) = attr then k else find (k + 1) in
  find 0

let set_alpha t j v =
  let old = t.alpha.(j) in
  if old <> v then begin
    t.alpha.(j) <- v;
    t.prefix_valid <- false;
    (match Statistic.kind (Phi.stat t.phi j) with
    | Statistic.Marginal { attr; value } ->
        let delta = v -. old in
        t.attr_sums.(attr) <- t.attr_sums.(attr) +. delta;
        let gi = t.group_of_attr.(attr) in
        if gi >= 0 then begin
          let g = t.groups.(gi) in
          List.iter
            (fun (ti, pos) ->
              let term = g.g_terms.(ti) in
              term.factors.(pos) <- term.factors.(pos) +. delta;
              term.fprod <- fprod_of term;
              let value' = term.fprod *. term.dprod in
              g.mask_sum.(term.t_mask) <-
                g.mask_sum.(term.t_mask) +. value' -. term.value;
              term.value <- value')
            g.by_value.(local_of g attr).(value);
          recompute_group_q t g
        end
    | Statistic.Joint _ ->
        let gi = Hashtbl.find t.group_of_stat j in
        let g = t.groups.(gi) in
        List.iter
          (fun ti ->
            let term = g.g_terms.(ti) in
            term.dprod <- dprod_of t term;
            let value' = term.fprod *. term.dprod in
            g.mask_sum.(term.t_mask) <-
              g.mask_sum.(term.t_mask) +. value' -. term.value;
            term.value <- value')
          (Option.value (Hashtbl.find_opt g.by_stat j) ~default:[]);
        recompute_group_q t g);
    t.p <- compute_p t
  end

(* Scale normalization.  Every monomial contains exactly one marginal
   variable of every attribute (overcompleteness), so multiplying all of
   attribute i's marginals by c multiplies P by c and leaves every
   expectation, estimate, and the dual unchanged.  Normalizing each
   attribute sum to 1 therefore pins P to a bounded magnitude; without it,
   unrealizable targets (noisy or privatized statistics) make the
   coordinate iteration drift P towards 0 or infinity. *)
let normalize t =
  let changed = ref false in
  for i = 0 to t.m - 1 do
    let a = t.attr_sums.(i) in
    if a > 0. && a <> 1. then begin
      changed := true;
      for v = 0 to Schema.domain_size t.schema i - 1 do
        let j = Phi.marginal_id t.phi ~attr:i ~value:v in
        t.alpha.(j) <- t.alpha.(j) /. a
      done
    end
  done;
  if !changed then refresh t

(* Bulk variable assignment (used by the gradient solver's simultaneous
   updates and by deserialization): copy the whole vector, then rebuild all
   cached state in one pass. *)
let set_alphas t values =
  if Array.length values <> Array.length t.alpha then
    invalid_arg "Poly.set_alphas: wrong vector length";
  Array.blit values 0 t.alpha 0 (Array.length values);
  refresh t

let alphas t = Array.copy t.alpha

(* Reset variables to an initialization strategy: [`Marginals] seeds 1D
   variables at s_j/n (exact for a marginals-only model), [`Uniform] seeds
   everything at 1 (the uninformed start).  Joints start at 1 in both. *)
let reinit t strategy =
  let n = float_of_int (Phi.n t.phi) in
  Array.iter
    (fun s ->
      let j = Statistic.id s in
      t.alpha.(j) <-
        (match (Statistic.kind s, strategy) with
        | Statistic.Marginal _, `Marginals ->
            if n > 0. then Statistic.target s /. n else 0.
        | _, _ -> 1.))
    (Phi.stats t.phi);
  refresh t

(* ------------------------------------------------------------------ *)
(* Derivatives and expectations                                        *)
(* ------------------------------------------------------------------ *)

(* prod over free attrs and groups, excluding one of each. *)
let outer_product t ~skip_attr ~skip_group =
  let acc = ref 1. in
  Array.iter
    (fun i -> if i <> skip_attr then acc := !acc *. t.attr_sums.(i))
    t.free_attrs;
  Array.iteri
    (fun gi g -> if gi <> skip_group then acc := !acc *. g.q)
    t.groups;
  !acc

let factors_product_excluding term ~pos =
  let acc = ref 1. in
  Array.iteri (fun k f -> if k <> pos then acc := !acc *. f) term.factors;
  !acc

(* dP/dalpha_j.  P is linear in every variable (each statistic predicate is
   0/1 on every tuple), so the derivative is the sum of the terms whose
   monomials contain the variable, with the variable's own factor
   removed. *)
let partial t j =
  match Statistic.kind (Phi.stat t.phi j) with
  | Statistic.Marginal { attr; value } ->
      let gi = t.group_of_attr.(attr) in
      if gi < 0 then outer_product t ~skip_attr:attr ~skip_group:(-1)
      else begin
        let g = t.groups.(gi) in
        let li = local_of g attr in
        let dq = ref 0. in
        (* Masks not restricting [attr]: the variable enters through the
           full attribute sum A_attr of the outer product. *)
        Array.iteri
          (fun k bits ->
            if bits land (1 lsl li) = 0 then begin
              let outer = ref 1. in
              Array.iteri
                (fun li' attr' ->
                  if li' <> li && bits land (1 lsl li') = 0 then
                    outer := !outer *. t.attr_sums.(attr'))
                g.g_attrs;
              dq := !dq +. (g.mask_sum.(k) *. !outer)
            end)
          g.mask_bits;
        (* Terms restricting [attr] with [value] inside their projection:
           the variable enters through the term's own factor. *)
        List.iter
          (fun (ti, pos) ->
            let term = g.g_terms.(ti) in
            dq :=
              !dq
              +. factors_product_excluding term ~pos
                 *. term.dprod *. g.mask_outer.(term.t_mask))
          g.by_value.(li).(value);
        outer_product t ~skip_attr:(-1) ~skip_group:gi *. !dq
      end
  | Statistic.Joint _ ->
      let gi = Hashtbl.find t.group_of_stat j in
      let g = t.groups.(gi) in
      let dq = ref 0. in
      List.iter
        (fun ti ->
          let term = g.g_terms.(ti) in
          let rest = ref 1. in
          Array.iter
            (fun j' -> if j' <> j then rest := !rest *. (t.alpha.(j') -. 1.))
            term.t_stats;
          dq := !dq +. (term.fprod *. !rest *. g.mask_outer.(term.t_mask)))
        (Option.value (Hashtbl.find_opt g.by_stat j) ~default:[]);
      outer_product t ~skip_attr:(-1) ~skip_group:gi *. !dq

(* E[<c_j, I>] = n * alpha_j * dP/dalpha_j / P   (Eq. 8). *)
let expected t j =
  if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. t.alpha.(j) *. partial t j /. t.p

(* ------------------------------------------------------------------ *)
(* Restricted evaluation: query answering by zeroing (Sec. 4.2)        *)
(* ------------------------------------------------------------------ *)

(* Worker count for restricted evaluation over large groups; configured
   globally (CLI/bench read EDB_DOMAINS).  Chunk workers only read the
   cached state, which [ensure_prefix] finalizes before any spawn. *)
let parallelism = ref (Parallel.default_domains ())
let parallel_threshold = ref 30_000

let set_parallelism ?threshold n =
  parallelism := max 1 n;
  match threshold with
  | Some th -> parallel_threshold := max 1 th
  | None -> ()

(* Floor of the cancellation clamp on restricted group values.  0 in
   production; the correctness harness raises it to plant a detectable
   estimator bug (entropydb check --mutate clamp). *)
let cancellation_floor = ref 0.
let set_cancellation_floor f = cancellation_floor := f

(* A_i restricted to the query's value set (the full sum when the query
   leaves attribute [i] free). *)
let restricted_attr_sum t query i =
  match Predicate.restriction query i with
  | None -> t.attr_sums.(i)
  | Some r -> range_sum t ~attr:i r

(* Q_g under the query's restrictions: the per-group part of restricted
   evaluation, shared by [eval_restricted] and the batched GROUP BY
   kernel below. *)
let restricted_group_q t query g =
  let restricted_a = Array.map (restricted_attr_sum t query) g.g_attrs in
  let num_masks = Array.length g.mask_bits in
  let term_masses ~lo ~hi =
    let local = Array.make num_masks 0. in
    for ti = lo to hi - 1 do
      let term = g.g_terms.(ti) in
      let f = ref term.dprod in
      (try
         Array.iteri
           (fun pos i ->
             let factor =
               match Predicate.restriction query i with
               | None -> term.factors.(pos)
               | Some qr ->
                   range_sum t ~attr:i (Ranges.inter term.t_restr.(pos) qr)
             in
             if factor = 0. then raise Exit;
             f := !f *. factor)
           term.t_attrs
       with Exit -> f := 0.);
      local.(term.t_mask) <- local.(term.t_mask) +. !f
    done;
    local
  in
  let n_terms = Array.length g.g_terms in
  let domains = if n_terms >= !parallel_threshold then !parallelism else 1 in
  let msum =
    Parallel.fold ~domains ~n:n_terms ~chunk:term_masses
      ~combine:(fun a b ->
        Array.iteri (fun k v -> a.(k) <- a.(k) +. v) b;
        a)
      ~init:(Array.make num_masks 0.)
  in
  let q = ref 0. in
  Array.iteri
    (fun k bits ->
      if msum.(k) <> 0. then begin
        let outer = ref 1. in
        Array.iteri
          (fun li _ ->
            if bits land (1 lsl li) = 0 then
              outer := !outer *. restricted_a.(li))
          g.g_attrs;
        q := !q +. (msum.(k) *. !outer)
      end)
    g.mask_bits;
  (* Q_g is a sum of non-negative monomials; clamp the tiny negative
     values floating-point cancellation can produce.  The floor is 0 in
     production; [set_cancellation_floor] raises it for fault injection. *)
  Float.max !cancellation_floor !q

(* P with every 1D variable outside the query's per-attribute restrictions
   set to 0.  Nothing is rebuilt: restricted attribute sums and term
   factors are recomputed from prefix sums over the current alpha. *)
let eval_restricted t query =
  ensure_prefix t;
  let acc = ref 1. in
  Array.iter
    (fun i -> acc := !acc *. restricted_attr_sum t query i)
    t.free_attrs;
  Array.iter (fun g -> acc := !acc *. restricted_group_q t query g) t.groups;
  !acc

(* Batched GROUP BY kernel: restricted P for *all* cells of a grouping
   attribute in one pass over the terms.

   Every monomial contains exactly one marginal variable of [attr], so
   the cell for value v is P[query restricted, attr restricted to {v}]
   and the attribute's own contribution to each monomial is the single
   factor alpha_{attr,v}:

   - [attr] free (not in any group): every cell shares the same product
     of the other restricted factors; the cell value is that product
     times alpha_{attr,v}.
   - [attr] in group g: a term of g either leaves [attr] unmasked — its
     restricted mass enters every cell through alpha_{attr,v} times the
     mask's outer product over the *other* group attributes — or
     restricts [attr] at some position, in which case its remaining
     product scatters into exactly the cells of t_restr ∩ query.

   Total cost O(terms + Σ|t_restr ∩ query| + #masks·|g_attrs| + N_attr)
   instead of the per-cell scan's O(N_attr × terms).  Cells outside the
   query's restriction on [attr] are 0.  Each cell's Q_g gets the same
   cancellation clamp as [eval_restricted], so cell values match the
   per-cell path up to float reassociation. *)
let eval_restricted_by_value t query ~attr =
  ensure_prefix t;
  let size = Schema.domain_size t.schema attr in
  let out = Array.make size 0. in
  let q_attr = Predicate.restriction query attr in
  let alpha_of v = t.alpha.(Phi.marginal_id t.phi ~attr ~value:v) in
  let each_value f =
    match q_attr with
    | None -> for v = 0 to size - 1 do f v done
    | Some r -> Ranges.iter f r
  in
  let gi = t.group_of_attr.(attr) in
  (* Factors not involving [attr], shared by every cell. *)
  let base = ref 1. in
  Array.iter
    (fun i -> if i <> attr then base := !base *. restricted_attr_sum t query i)
    t.free_attrs;
  Array.iteri
    (fun gj g -> if gj <> gi then base := !base *. restricted_group_q t query g)
    t.groups;
  let base = !base in
  if gi < 0 then each_value (fun v -> out.(v) <- base *. alpha_of v)
  else begin
    let g = t.groups.(gi) in
    let li = local_of g attr in
    let num_masks = Array.length g.mask_bits in
    (* Per-mask outer products over the group's other attributes;
       [attr]'s own factor is applied per cell. *)
    let coef =
      Array.map
        (fun bits ->
          let outer = ref 1. in
          Array.iteri
            (fun li' attr' ->
              if li' <> li && bits land (1 lsl li') = 0 then
                outer := !outer *. restricted_attr_sum t query attr')
            g.g_attrs;
          !outer)
        g.mask_bits
    in
    let chunk ~lo ~hi =
      let msum = Array.make num_masks 0. in
      let scatter = Array.make size 0. in
      for ti = lo to hi - 1 do
        let term = g.g_terms.(ti) in
        let attr_pos = ref (-1) in
        Array.iteri (fun pos i -> if i = attr then attr_pos := pos) term.t_attrs;
        let attr_pos = !attr_pos in
        let f = ref term.dprod in
        (try
           Array.iteri
             (fun pos i ->
               if pos <> attr_pos then begin
                 let factor =
                   match Predicate.restriction query i with
                   | None -> term.factors.(pos)
                   | Some qr ->
                       range_sum t ~attr:i (Ranges.inter term.t_restr.(pos) qr)
                 in
                 if factor = 0. then raise Exit;
                 f := !f *. factor
               end)
             term.t_attrs
         with Exit -> f := 0.);
        if !f <> 0. then
          if attr_pos < 0 then msum.(term.t_mask) <- msum.(term.t_mask) +. !f
          else begin
            let vr =
              match q_attr with
              | None -> term.t_restr.(attr_pos)
              | Some qr -> Ranges.inter term.t_restr.(attr_pos) qr
            in
            let w = !f *. coef.(term.t_mask) in
            List.iter
              (fun (vlo, vhi) ->
                for v = vlo to vhi do
                  scatter.(v) <- scatter.(v) +. w
                done)
              (Ranges.intervals vr)
          end
      done;
      (msum, scatter)
    in
    let n_terms = Array.length g.g_terms in
    let domains = if n_terms >= !parallel_threshold then !parallelism else 1 in
    let msum, scatter =
      Parallel.fold ~domains ~n:n_terms ~chunk
        ~combine:(fun (ma, sa) (mb, sb) ->
          Array.iteri (fun k v -> ma.(k) <- ma.(k) +. v) mb;
          Array.iteri (fun v x -> sa.(v) <- sa.(v) +. x) sb;
          (ma, sa))
        ~init:(Array.make num_masks 0., Array.make size 0.)
    in
    (* Masses of the terms leaving [attr] unmasked, with their outer
       products; these enter every cell through alpha_{attr,v}. *)
    let scalar = ref 0. in
    Array.iteri
      (fun k bits ->
        if bits land (1 lsl li) = 0 && msum.(k) <> 0. then
          scalar := !scalar +. (msum.(k) *. coef.(k)))
      g.mask_bits;
    let scalar = !scalar in
    each_value (fun v ->
        out.(v) <-
          base
          *. Float.max !cancellation_floor
               (alpha_of v *. (scalar +. scatter.(v))))
  end;
  out

(* Weighted evaluation: sum over tuples satisfying [query] of
   prod_i w_i(t_i) * monomial(t), for product-form per-tuple weights.
   Because P is linear in every marginal variable, substituting
   alpha_{i,v} -> alpha_{i,v} * w_i(v) computes exactly this sum; that is
   what lets the same factorized representation answer SUM and AVG
   queries (a strictly larger class of the paper's linear queries than
   counting). *)
let eval_weighted t query ~weights =
  ensure_prefix t;
  (* Per-attribute prefix sums of weighted alphas; [weights] gives a
     weight function for the attributes it covers, all others weigh 1 and
     reuse the cached prefixes.  [all_nonneg] records whether every
     weighted alpha stayed >= 0 (unweighted alphas always are): exactly
     then every monomial of the weighted sum is non-negative and each
     group value may be clamped at 0 like [eval_restricted]'s, so
     floating-point cancellation cannot flip a SUM estimate's sign. *)
  let all_nonneg = ref true in
  let prefix_of =
    let overridden = Hashtbl.create 4 in
    List.iter
      (fun (attr, w) ->
        let size = Schema.domain_size t.schema attr in
        let pre = Array.make (size + 1) 0. in
        for v = 0 to size - 1 do
          let wa = t.alpha.(Phi.marginal_id t.phi ~attr ~value:v) *. w v in
          if wa < 0. then all_nonneg := false;
          pre.(v + 1) <- pre.(v) +. wa
        done;
        Hashtbl.replace overridden attr pre)
      weights;
    fun attr ->
      match Hashtbl.find_opt overridden attr with
      | Some pre -> pre
      | None -> t.prefix.(attr)
  in
  let sum_over ~attr r =
    let pre = prefix_of attr in
    List.fold_left
      (fun acc (lo, hi) -> acc +. pre.(hi + 1) -. pre.(lo))
      0. (Ranges.intervals r)
  in
  let full ~attr =
    let pre = prefix_of attr in
    pre.(Schema.domain_size t.schema attr)
  in
  let attr_total i =
    match Predicate.restriction query i with
    | None -> full ~attr:i
    | Some r -> sum_over ~attr:i r
  in
  let acc = ref 1. in
  Array.iter (fun i -> acc := !acc *. attr_total i) t.free_attrs;
  Array.iter
    (fun g ->
      let totals = Array.map attr_total g.g_attrs in
      let num_masks = Array.length g.mask_bits in
      let msum = Array.make num_masks 0. in
      Array.iter
        (fun term ->
          let f = ref term.dprod in
          (try
             Array.iteri
               (fun pos i ->
                 let restr =
                   match Predicate.restriction query i with
                   | None -> term.t_restr.(pos)
                   | Some qr -> Ranges.inter term.t_restr.(pos) qr
                 in
                 let factor = sum_over ~attr:i restr in
                 if factor = 0. then raise Exit;
                 f := !f *. factor)
               term.t_attrs
           with Exit -> f := 0.);
          msum.(term.t_mask) <- msum.(term.t_mask) +. !f)
        g.g_terms;
      let q = ref 0. in
      Array.iteri
        (fun k bits ->
          if msum.(k) <> 0. then begin
            let outer = ref 1. in
            Array.iteri
              (fun li _ ->
                if bits land (1 lsl li) = 0 then outer := !outer *. totals.(li))
              g.g_attrs;
            q := !q +. (msum.(k) *. !outer)
          end)
        g.mask_bits;
      (* With non-negative weights Q_g is a sum of non-negative monomials
         exactly as in [eval_restricted]; apply the same cancellation
         clamp.  Genuinely signed weights keep their sign. *)
      let q = if !all_nonneg then Float.max 0. !q else !q in
      acc := !acc *. q)
    t.groups;
  !acc

(* Observability: count kernel invocations always (one striped atomic
   add per call) and wrap each call in a span when tracing is enabled.
   Instrumentation is per kernel call — never per term — so the
   disabled-mode cost is one flag load next to a full term pass. *)
module Obs = Edb_obs.Obs

let evals_counter = Edb_obs.Registry.counter "poly.evals"

let eval_restricted t query =
  Edb_obs.Registry.Counter.incr evals_counter;
  Obs.with_span "poly.eval_restricted" ~cat:"answer" (fun () ->
      eval_restricted t query)

let eval_restricted_by_value t query ~attr =
  Edb_obs.Registry.Counter.incr evals_counter;
  Obs.with_span "poly.eval_restricted_by_value" ~cat:"answer" (fun () ->
      eval_restricted_by_value t query ~attr)

let eval_weighted t query ~weights =
  Edb_obs.Registry.Counter.incr evals_counter;
  Obs.with_span "poly.eval_weighted" ~cat:"answer" (fun () ->
      eval_weighted t query ~weights)

(* E[<q, I>] = n / P * P[zeroed]  — the final formula of Sec. 4.2. *)
let estimate t query =
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. eval_restricted t query /. t.p

let estimate_weighted t query ~weights =
  if Predicate.is_unsatisfiable query then 0.
  else if t.p <= 0. then 0.
  else float_of_int (Phi.n t.phi) *. eval_weighted t query ~weights /. t.p

(* The dual objective Psi = sum_j s_j ln alpha_j - n ln P  (Eq. 11).
   Statistics with s_j = 0 contribute lim_{a->0} 0*ln a = 0. *)
let dual t =
  let acc = ref 0. in
  Array.iter
    (fun s ->
      let sj = Statistic.target s in
      if sj > 0. then begin
        let a = t.alpha.(Statistic.id s) in
        if a > 0. then acc := !acc +. (sj *. log a)
        else acc := Float.neg_infinity
      end)
    (Phi.stats t.phi);
  if t.p > 0. then !acc -. (float_of_int (Phi.n t.phi) *. log t.p)
  else Float.neg_infinity
