(* Model computation (Sec. 3.3).

   Two maximizers of the concave dual Ψ (Eq. 11) are provided:

   [Coordinate] — Algorithm 1: coordinate-wise exact updates, the paper's
   "mirror descent" variant where each step solves ∂Ψ/∂α_j = 0 for one
   variable while the others stay fixed.  Because P is linear in every
   variable, the coordinate solve has the closed form of Eq. 12:

       α_j  =  s_j (P − α_j P_{α_j})  /  ((n − s_j) P_{α_j})

   where neither P − α_j P_{α_j} nor P_{α_j} depends on α_j.

   [Multiplicative] — entropic mirror descent proper (the multiplicative-
   weights form the paper cites through Bubeck [5] and Hardt–Rothblum
   [11]): all variables move simultaneously,

       α_j  ←  α_j · exp(η (s_j − E[c_j]) / n),

   i.e. plain gradient ascent in the natural θ = ln α parametrization,
   with a backtracking step size (halve η and revert whenever the dual
   decreases).  It serves as the ablation baseline: the bench compares
   sweeps-to-tolerance of the two.

   Practical details shared by both:
   - statistics with target 0 pin their variable to 0 once and are skipped
     afterwards (the paper notes ZERO-cell variables never need updating);
   - non-positive P_{α_j} or P − α_j P_{α_j} (possible transiently from
     floating-point cancellation; both are sums of non-negative monomials
     mathematically) skip the update for this sweep;
   - s_j = n would make Eq. 12's denominator vanish; such statistics are
     implied by overcompleteness of the rest and are skipped;
   - one [Poly.refresh] per sweep washes out incremental drift;
   - convergence is max_j |s_j − E[c_j]| / n < tolerance. *)

type algorithm = Coordinate | Multiplicative

type config = {
  algorithm : algorithm;
  max_sweeps : int;
  tolerance : float; (* on max_j |s_j - E_j| / n *)
  log_every : int; (* sweeps between progress log lines; 0 disables *)
}

let default_config =
  { algorithm = Coordinate; max_sweeps = 60; tolerance = 1e-6; log_every = 10 }

type report = {
  sweeps : int;
  converged : bool;
  max_rel_error : float;
  dual_trace : float list; (* dual value after each sweep, oldest first *)
  seconds : float;
}

type sweep_stat = {
  sweep : int;
  dual : float;
  sweep_max_rel_error : float;
  max_step : float;
  elapsed_s : float;
}

let src = Logs.Src.create "entropydb.solver" ~doc:"MaxEnt model solver"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Edb_obs.Obs

(* Per-sweep telemetry: deliver to the caller's callback and, when
   tracing is on, as an instant event in the trace stream. *)
let emit_sweep on_sweep (stat : sweep_stat) =
  (match on_sweep with Some f -> f stat | None -> ());
  Obs.instant "solver.sweep" ~cat:"build"
    ~attrs:(fun () ->
      [
        ("sweep", string_of_int stat.sweep);
        ("dual", Printf.sprintf "%.17g" stat.dual);
        ("max_rel_error", Printf.sprintf "%.6g" stat.sweep_max_rel_error);
        ("max_step", Printf.sprintf "%.6g" stat.max_step);
        ("elapsed_s", Printf.sprintf "%.6f" stat.elapsed_s);
      ])

let solve_coordinate ?on_sweep config poly =
  let phi = Poly.phi poly in
  let n = float_of_int (Phi.n phi) in
  let k = Phi.num_stats phi in
  let zero_done = Array.make k false in
  let t0 = Edb_util.Timing.now_s () in
  let dual_trace = ref [] in
  let sweeps = ref 0 and converged = ref false and max_err = ref infinity in
  let diverged = ref false in
  while (not !converged) && (not !diverged) && !sweeps < config.max_sweeps do
    incr sweeps;
    let sweep_err = ref 0. in
    let max_step = ref 0. in
    for j = 0 to k - 1 do
      let sj = Phi.target phi j in
      if sj = 0. then begin
        if not zero_done.(j) then begin
          Poly.set_alpha poly j 0.;
          zero_done.(j) <- true
        end
      end
      else if sj < n then begin
        let pd = Poly.partial poly j in
        let p = Poly.p poly in
        let aj = Poly.alpha poly j in
        (* Track the residual before this coordinate's solve. *)
        let e_j = if p > 0. then n *. aj *. pd /. p else 0. in
        sweep_err := Float.max !sweep_err (Float.abs (sj -. e_j) /. n);
        let p_without = p -. (aj *. pd) in
        if pd > 0. && p_without > 0. then begin
          let a' = sj *. p_without /. ((n -. sj) *. pd) in
          if Float.is_finite a' && a' >= 0. then begin
            max_step := Float.max !max_step (Float.abs (a' -. aj));
            Poly.set_alpha poly j a'
          end
        end
      end
      (* s_j = n: the predicate covers every row; its variable is redundant
         (any positive value works once the rest converge); leave it. *)
    done;
    Poly.refresh poly;
    (* Pin P's scale (the model is attribute-scale invariant); then detect
       divergence: with targets no distribution can realize (inconsistent,
       noisy, or privatized statistics) the dual is unbounded and the
       iterates run to the boundary where P collapses.  Stop with
       converged = false instead of underflowing to 0/NaN. *)
    Poly.normalize poly;
    let p = Poly.p poly in
    if (not (Float.is_finite p)) || p <= 1e-100 then begin
      diverged := true;
      Log.warn (fun m ->
          m
            "dual appears unbounded after %d sweeps (P = %g): the targets \
             are not realizable by any distribution; stopping"
            !sweeps p)
    end;
    dual_trace := Poly.dual poly :: !dual_trace;
    max_err := !sweep_err;
    if !sweep_err < config.tolerance then converged := true;
    emit_sweep on_sweep
      {
        sweep = !sweeps;
        dual = Poly.dual poly;
        sweep_max_rel_error = !sweep_err;
        max_step = !max_step;
        elapsed_s = Edb_util.Timing.now_s () -. t0;
      };
    if config.log_every > 0 && !sweeps mod config.log_every = 0 then
      Log.info (fun m ->
          m "sweep %d: max rel error %.3e, dual %.6g" !sweeps !sweep_err
            (Poly.dual poly))
  done;
  {
    sweeps = !sweeps;
    converged = !converged;
    max_rel_error = !max_err;
    dual_trace = List.rev !dual_trace;
    seconds = Edb_util.Timing.now_s () -. t0;
  }

let solve_multiplicative ?on_sweep config poly =
  let phi = Poly.phi poly in
  let n = float_of_int (Phi.n phi) in
  let k = Phi.num_stats phi in
  let t0 = Edb_util.Timing.now_s () in
  (* Pin zero-target variables once. *)
  for j = 0 to k - 1 do
    if Phi.target phi j = 0. then Poly.set_alpha poly j 0.
  done;
  Poly.refresh poly;
  let eta = ref 0.5 in
  let best_dual = ref (Poly.dual poly) in
  let dual_trace = ref [] in
  let sweeps = ref 0 and converged = ref false and max_err = ref infinity in
  while (not !converged) && !sweeps < config.max_sweeps do
    incr sweeps;
    (* Gradient of Ψ in θ = ln α coordinates: s_j − E[c_j]. *)
    let residual = Array.make k 0. in
    let sweep_err = ref 0. in
    for j = 0 to k - 1 do
      let sj = Phi.target phi j in
      if sj > 0. && sj < n then begin
        let e_j = Poly.expected poly j in
        residual.(j) <- (sj -. e_j) /. n;
        sweep_err := Float.max !sweep_err (Float.abs residual.(j))
      end
    done;
    max_err := !sweep_err;
    let max_step = ref 0. in
    if !sweep_err < config.tolerance then converged := true
    else begin
      let saved = Poly.alphas poly in
      let proposal = Array.copy saved in
      for j = 0 to k - 1 do
        if residual.(j) <> 0. then
          proposal.(j) <- saved.(j) *. exp (!eta *. residual.(j))
      done;
      Poly.set_alphas poly proposal;
      let d = Poly.dual poly in
      if d +. 1e-12 < !best_dual then begin
        (* Overshot: revert and shrink the step. *)
        Poly.set_alphas poly saved;
        eta := !eta /. 2.;
        if !eta < 1e-12 then converged := true (* cannot make progress *)
      end
      else begin
        for j = 0 to k - 1 do
          max_step := Float.max !max_step (Float.abs (proposal.(j) -. saved.(j)))
        done;
        best_dual := Float.max !best_dual d;
        eta := !eta *. 1.05
      end
    end;
    dual_trace := Poly.dual poly :: !dual_trace;
    emit_sweep on_sweep
      {
        sweep = !sweeps;
        dual = Poly.dual poly;
        sweep_max_rel_error = !sweep_err;
        max_step = !max_step;
        elapsed_s = Edb_util.Timing.now_s () -. t0;
      };
    if config.log_every > 0 && !sweeps mod config.log_every = 0 then
      Log.info (fun m ->
          m "md sweep %d: max rel error %.3e, eta %.3g, dual %.6g" !sweeps
            !sweep_err !eta (Poly.dual poly))
  done;
  {
    sweeps = !sweeps;
    converged = !converged;
    max_rel_error = !max_err;
    dual_trace = List.rev !dual_trace;
    seconds = Edb_util.Timing.now_s () -. t0;
  }

(* An empty relation (n = 0, e.g. an empty shard of a partitioned build)
   has every target at 0: pin all variables to 0 and report immediate
   convergence instead of running sweeps against a degenerate dual (the
   divergence detector would otherwise fire on P = 0). *)
let solve_empty poly =
  let phi = Poly.phi poly in
  let t0 = Edb_util.Timing.now_s () in
  for j = 0 to Phi.num_stats phi - 1 do
    Poly.set_alpha poly j 0.
  done;
  Poly.refresh poly;
  {
    sweeps = 0;
    converged = true;
    max_rel_error = 0.;
    dual_trace = [];
    seconds = Edb_util.Timing.now_s () -. t0;
  }

(* Warm start: overwrite Poly.create's cold initialization (marginals at
   s_j/n, joints at 1) with a caller-supplied vector — typically the
   converged α of the summary a batch is being appended to.  Coordinate
   updates are exact per-variable maximizations from wherever the iterate
   stands, so any non-negative starting point is admissible; starting
   near the previous optimum is what makes incremental ingest cheap. *)
let apply_init poly init =
  if Array.exists (fun a -> not (Float.is_finite a) || a < 0.) init then
    invalid_arg "Solver.solve: init must be finite and >= 0";
  Poly.set_alphas poly init

let solve ?(config = default_config) ?init ?on_sweep poly =
  Obs.with_span "solver.solve" ~cat:"build"
    ~attrs:(fun () ->
      [
        ( "algorithm",
          match config.algorithm with
          | Coordinate -> "coordinate"
          | Multiplicative -> "multiplicative" );
        ("num_stats", string_of_int (Phi.num_stats (Poly.phi poly)));
        ("warm_start", string_of_bool (init <> None));
      ])
    (fun () ->
      (match init with Some a -> apply_init poly a | None -> ());
      if Phi.n (Poly.phi poly) = 0 then solve_empty poly
      else
        match config.algorithm with
        | Coordinate -> solve_coordinate ?on_sweep config poly
        | Multiplicative -> solve_multiplicative ?on_sweep config poly)
