(** LRU cache in front of a summary's count estimation — repeat queries
    from interactive front ends become hash lookups.  Keys are canonical
    predicate forms; eviction drops the least-recent ~10% when capacity is
    reached.

    Thread-safe: lookups, inserts, and counters are mutex-guarded, so one
    cache may be shared by concurrent server workers.  The underlying
    summary evaluation runs outside the lock. *)

open Edb_storage

type t

val create : ?capacity:int -> Summary.t -> t
(** Default capacity 4096 entries.  Raises on non-positive capacities. *)

val of_fn : ?capacity:int -> (Predicate.t -> float) -> t
(** Cache an arbitrary pure estimator (e.g. a sharded summary's fan-out
    estimate).  The function must be deterministic and safe to call from
    concurrent threads; it runs outside the cache's lock. *)

val estimate : t -> Predicate.t -> float
(** Same value as {!Summary.estimate}; cached. *)

type stats = { hits : int; misses : int; entries : int; evictions : int }

val stats : t -> stats
val clear : t -> unit
