(** LRU cache in front of a summary's estimators — repeat queries from
    interactive front ends become hash lookups.  Keys are canonical
    predicate forms tagged by query shape (plain COUNT vs GROUP BY with
    its grouping attributes), so grouped and scalar results over the
    same predicate never collide; eviction drops the least-recent ~10%
    when capacity is reached.

    Thread-safe: lookups, inserts, and counters are mutex-guarded, so one
    cache may be shared by concurrent server workers.  The underlying
    summary evaluation runs outside the lock. *)

open Edb_storage

type t

val create : ?capacity:int -> Summary.t -> t
(** Default capacity 4096 entries.  Raises on non-positive capacities.
    Serves both {!estimate} and {!estimate_groups}. *)

val of_fn :
  ?capacity:int ->
  ?groups:(attrs:int list -> Predicate.t -> (int list * float * float) list) ->
  (Predicate.t -> float) ->
  t
(** Cache arbitrary pure estimators (e.g. a sharded summary's fan-out
    estimates).  The functions must be deterministic and safe to call
    from concurrent threads; they run outside the cache's lock.  When
    [groups] is omitted, {!estimate_groups} raises [Invalid_argument]. *)

val estimate : t -> Predicate.t -> float
(** Same value as {!Summary.estimate}; cached. *)

val estimate_groups :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** Same value as {!Summary.estimate_groups_with_stddev}; cached under a
    key combining the grouping attributes with the canonical predicate.
    Raises [Invalid_argument] if the cache was built without a grouped
    evaluator. *)

type stats = { hits : int; misses : int; entries : int; evictions : int }

val stats : t -> stats
val clear : t -> unit
