(* The statistic set Φ = {(c_j, s_j)}.

   Construction computes every target from the data: marginal targets from
   1D histograms, joint targets by exact counting.  Validation enforces the
   structural assumptions of Sec. 4.1: joint predicates restrict at least
   two attributes, restrict each attribute to a non-empty value set, and
   same-attribute-set statistics are pairwise disjoint. *)

open Edb_util
open Edb_storage

type t = {
  schema : Schema.t;
  n : int; (* relation cardinality, fixed and known (Sec. 3.1) *)
  stats : Statistic.t array; (* marginals first, then joints *)
  marginal_offset : int array; (* attr -> id of its first marginal *)
  num_marginals : int;
  families : int array array; (* family -> member stat ids *)
  family_attrs : int list array; (* family -> its attribute set *)
}

let schema t = t.schema
let n t = t.n
let stats t = t.stats
let num_stats t = Array.length t.stats
let num_marginals t = t.num_marginals
let stat t j = t.stats.(j)
let target t j = t.stats.(j).Statistic.target

let marginal_id t ~attr ~value =
  if value < 0 || value >= Schema.domain_size t.schema attr then
    invalid_arg "Phi.marginal_id: value out of domain";
  t.marginal_offset.(attr) + value

let joint_ids t =
  Array.to_list
    (Array.init
       (Array.length t.stats - t.num_marginals)
       (fun i -> t.num_marginals + i))

let families t = t.families
let family_attrs t f = t.family_attrs.(f)

let validate_joint schema pred =
  let attrs = Predicate.restricted_attrs pred in
  if List.length attrs < 2 then
    invalid_arg "Phi.create: joint statistic must restrict >= 2 attributes";
  List.iter
    (fun i ->
      match Predicate.restriction pred i with
      | Some r ->
          if Ranges.is_empty r then
            invalid_arg "Phi.create: joint statistic with empty restriction";
          if Ranges.max_elt r >= Schema.domain_size schema i then
            invalid_arg "Phi.create: joint restriction exceeds domain"
      | None -> assert false)
    attrs

let create_internal schema ~n ~marginal_counts ~joint_pairs =
  let m = Schema.arity schema in
  (* Marginals: one statistic per value of every active domain. *)
  let marginal_offset = Array.make m 0 in
  let next = ref 0 in
  for i = 0 to m - 1 do
    marginal_offset.(i) <- !next;
    next := !next + Schema.domain_size schema i
  done;
  let num_marginals = !next in
  let marginals =
    Array.init num_marginals (fun _ -> None)
    (* placeholder; filled below *)
  in
  for i = 0 to m - 1 do
    Array.iteri
      (fun v c ->
        let id = marginal_offset.(i) + v in
        marginals.(id) <-
          Some
            {
              Statistic.id;
              pred = Predicate.point ~arity:m [ (i, v) ];
              target = c;
              kind = Marginal { attr = i; value = v };
            })
      marginal_counts.(i)
  done;
  let marginals = Array.map Option.get marginals in
  (* Joints: group by attribute set into families. *)
  List.iter (fun (pred, _) -> validate_joint schema pred) joint_pairs;
  let family_tbl : (int list, int) Hashtbl.t = Hashtbl.create 8 in
  let family_attrs = ref [] and num_families = ref 0 in
  let joint_stats =
    List.mapi
      (fun k (pred, target) ->
        let attrs = Predicate.restricted_attrs pred in
        let family =
          match Hashtbl.find_opt family_tbl attrs with
          | Some f -> f
          | None ->
              let f = !num_families in
              Hashtbl.add family_tbl attrs f;
              family_attrs := attrs :: !family_attrs;
              incr num_families;
              f
        in
        {
          Statistic.id = num_marginals + k;
          pred;
          target;
          kind = Joint { family };
        })
      joint_pairs
  in
  let family_attrs = Array.of_list (List.rev !family_attrs) in
  let families = Array.make (Array.length family_attrs) [] in
  List.iter
    (fun (s : Statistic.t) ->
      match s.kind with
      | Joint { family } -> families.(family) <- s.id :: families.(family)
      | Marginal _ -> assert false)
    joint_stats;
  let families =
    Array.map (fun ids -> Array.of_list (List.rev ids)) families
  in
  (* Disjointness within a family (Sec. 4.1): the conjunction of two
     same-attribute-set statistics must be unsatisfiable. *)
  let all = Array.append marginals (Array.of_list joint_stats) in
  Array.iter
    (fun members ->
      let k = Array.length members in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let pa = all.(members.(a)).Statistic.pred
          and pb = all.(members.(b)).Statistic.pred in
          if not (Predicate.is_unsatisfiable (Predicate.conj pa pb)) then
            invalid_arg
              (Fmt.str
                 "Phi.of_relation: overlapping same-family statistics %a and %a"
                 Predicate.pp pa Predicate.pp pb)
        done
      done)
    families;
  {
    schema;
    n;
    stats = all;
    marginal_offset;
    num_marginals;
    families;
    family_attrs;
  }

let of_relation rel ~joints =
  let schema = Relation.schema rel in
  let m = Schema.arity schema in
  let marginal_counts =
    Array.init m (fun i ->
        Array.map float_of_int (Histogram.d1 rel ~attr:i))
  in
  let joint_pairs =
    List.map (fun pred -> (pred, float_of_int (Exec.count rel pred))) joints
  in
  create_internal schema ~n:(Relation.cardinality rel) ~marginal_counts
    ~joint_pairs

let of_targets schema ~n ~marginal_targets ~joints =
  let m = Schema.arity schema in
  if Array.length marginal_targets <> m then
    invalid_arg "Phi.of_targets: marginal_targets arity mismatch";
  Array.iteri
    (fun i targets ->
      if Array.length targets <> Schema.domain_size schema i then
        invalid_arg "Phi.of_targets: marginal target vector length mismatch")
    marginal_targets;
  create_internal schema ~n ~marginal_counts:marginal_targets
    ~joint_pairs:joints

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                             *)
(* ------------------------------------------------------------------ *)

(* Every statistic target is a count, so appending a batch B to the
   summarized relation I moves each target by the batch's own count:

     s_j(I ⊎ B) = |σ_{π_j}(I ⊎ B)| = s_j(I) + |σ_{π_j}(B)|.

   The increments therefore cost O(|B|·arity + |B|·#joints) — they touch
   only the new rows, never the base data (which may no longer exist). *)
let delta_counts t batch =
  if Stdlib.compare (Relation.schema batch) t.schema <> 0 then
    invalid_arg "Phi.delta_counts: batch schema differs from the summary's";
  let d = Array.make (Array.length t.stats) 0. in
  let m = Schema.arity t.schema in
  for i = 0 to m - 1 do
    Array.iteri
      (fun v c -> d.(t.marginal_offset.(i) + v) <- float_of_int c)
      (Histogram.d1 batch ~attr:i)
  done;
  List.iter
    (fun j ->
      d.(j) <- float_of_int (Exec.count batch t.stats.(j).Statistic.pred))
    (joint_ids t);
  d

(* Structure (predicates, families, ids) is untouched by new rows, so the
   incremental update bypasses [create_internal]'s O(k²) family-disjointness
   revalidation: only targets and n move. *)
let add_counts t deltas ~rows =
  if rows < 0 then invalid_arg "Phi.add_counts: negative row count";
  if Array.length deltas <> Array.length t.stats then
    invalid_arg "Phi.add_counts: delta vector length mismatch";
  Array.iter
    (fun d ->
      if d < 0. || not (Float.is_finite d) then
        invalid_arg "Phi.add_counts: deltas must be finite and >= 0")
    deltas;
  {
    t with
    n = t.n + rows;
    stats =
      Array.mapi (fun j s -> Statistic.add_count s deltas.(j)) t.stats;
  }

let append t batch =
  add_counts t (delta_counts t batch) ~rows:(Relation.cardinality batch)

(* Overcompleteness sanity check (Sec. 3.1): for every attribute, the
   marginal targets sum to the relation cardinality. *)
let check_overcomplete t =
  let m = Schema.arity t.schema in
  let ok = ref true in
  for i = 0 to m - 1 do
    let sum = ref 0. in
    for v = 0 to Schema.domain_size t.schema i - 1 do
      sum := !sum +. target t (marginal_id t ~attr:i ~value:v)
    done;
    if not (Floatx.approx_eq !sum (float_of_int t.n)) then ok := false
  done;
  !ok
