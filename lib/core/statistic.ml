(* Statistics (c_j, s_j) — the knowledge the MaxEnt model preserves.

   Following Sec. 3.1, every statistic is a counting query given by a
   conjunctive per-attribute predicate, together with its observed count on
   the data.  Two kinds exist:

   - marginals: the complete set of 1D point statistics A_i = v, one per
     value of every attribute's active domain (the paper requires this
     "overcomplete" family, Eq. 7);
   - joints: multi-dimensional range statistics (in the evaluation, 2D
     rectangles chosen per Sec. 4.3); statistics over the same attribute
     set must be pairwise disjoint (Sec. 4.1, third assumption).

   Each statistic owns one variable of the polynomial; [id] is its index in
   the shared variable vector. *)

open Edb_storage

type kind =
  | Marginal of { attr : int; value : int }
  | Joint of { family : int }
      (* [family] identifies the set of same-attribute-set statistics this
         one belongs to; members of a family are pairwise disjoint. *)

type t = { id : int; pred : Predicate.t; target : float; kind : kind }

let id t = t.id
let pred t = t.pred
let target t = t.target
let kind t = t.kind

let is_marginal t = match t.kind with Marginal _ -> true | Joint _ -> false

(* Incremental maintenance: a batch of new rows moves a statistic's
   observed count, never its predicate or identity. *)
let with_target t target =
  if target < 0. || not (Float.is_finite target) then
    invalid_arg "Statistic.with_target: target must be finite and >= 0";
  { t with target }

let add_count t delta = with_target t (t.target +. delta)

let attrs t = Predicate.restricted_attrs t.pred

let pp ppf t =
  match t.kind with
  | Marginal { attr; value } ->
      Fmt.pf ppf "#%d marginal A%d=%d (s=%g)" t.id attr value t.target
  | Joint { family } ->
      Fmt.pf ppf "#%d joint fam%d %a (s=%g)" t.id family Predicate.pp t.pred
        t.target
