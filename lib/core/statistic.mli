(** Statistics (c_j, s_j): counting queries with observed counts, one
    polynomial variable each (Sec. 3.1). *)

open Edb_storage

type kind =
  | Marginal of { attr : int; value : int }
      (** 1D point statistic [A_attr = value]; the complete marginal family
          makes the model overcomplete (Eq. 7). *)
  | Joint of { family : int }
      (** Multi-dimensional range statistic; statistics sharing a [family]
          have the same attribute set and are pairwise disjoint. *)

type t = { id : int; pred : Predicate.t; target : float; kind : kind }

val id : t -> int
val pred : t -> Predicate.t

val target : t -> float
(** The observed count s_j = |σ_{π_j}(I)|. *)

val kind : t -> kind
val is_marginal : t -> bool

val with_target : t -> float -> t
(** The same statistic with its observed count replaced — the incremental
    ingest path's per-statistic update.  Raises [Invalid_argument] on a
    negative or non-finite target. *)

val add_count : t -> float -> t
(** [with_target t (target t +. delta)]: fold a batch's contribution into
    the observed count. *)

val attrs : t -> int list
(** Attributes the statistic's predicate restricts. *)

val pp : Format.formatter -> t -> unit
