(** Parallel construction of sharded summaries on OCaml 5 domains. *)

open Edb_storage
open Entropydb_core

val quiet_config : Solver.config
(** {!Entropydb_core.Solver.default_config} with logging disabled — the
    default for multi-domain builds. *)

val build :
  ?solver_config:Solver.config ->
  ?term_cap:int ->
  ?domains:int ->
  Relation.t ->
  shards:int ->
  strategy:Partition.strategy ->
  joints:Predicate.t list ->
  Sharded.t
(** [build rel ~shards ~strategy ~joints] partitions [rel] and builds one
    summary per shard, [domains] at a time (default: the [EDB_DOMAINS]
    environment variable via
    {!Edb_util.Parallel.default_domains}).  [joints] are the statistic
    predicates shared by every shard; each shard computes its own targets
    from its own rows.  The result is independent of [domains].  Raises
    like {!Partition.split} and {!Entropydb_core.Summary.build}. *)
