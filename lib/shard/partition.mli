(** Horizontal partitioning of a relation into k disjoint shards whose
    union is the input (a partition in the set-theoretic sense), ahead of
    per-shard MaxEnt summarization. *)

open Edb_storage

type strategy =
  | Rows  (** contiguous row ranges of near-equal size *)
  | By_attr of int
      (** hash of the given attribute's value index: all rows sharing a
          value land in the same shard *)

val strategy_tag : Schema.t -> strategy -> string
(** Human-readable tag stored in sharded manifests: ["rows"] or
    ["attr:<name>"]. *)

val shard_of_value : shards:int -> int -> int
(** The deterministic value-to-shard assignment used by {!By_attr}
    (exposed for tests and for routing updates to the owning shard). *)

val split : Relation.t -> shards:int -> strategy -> Relation.t array
(** [split rel ~shards strategy] returns exactly [shards] relations over
    [rel]'s schema; disjoint, covering, and in deterministic order (row
    order is preserved within each shard).  Shards may be empty when
    [shards] exceeds the cardinality or the hash leaves a bucket bare.
    Raises [Invalid_argument] on [shards < 1] or an out-of-range
    attribute. *)
