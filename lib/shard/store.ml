(* Transparent persistence for sharded summaries.

   Save always writes the manifest format (Core.Serialize.save_sharded),
   even at k = 1, so the partitioning strategy survives round trips.
   Load sniffs the magic: flat files come back as a single-shard view,
   manifests as the full shard group, and mmap-able v3 files as a heap
   rebuild — callers never need to know which format a path holds.

   [open_any] is the residency-aware entry the server catalog uses: a v3
   file comes back as a zero-copy mapped summary (O(1) open, no body
   read), everything else as the heap form. *)

open Entropydb_core

let save sharded path =
  Serialize.save_sharded ~strategy:(Sharded.strategy sharded)
    (Sharded.shards sharded) path

let load ?term_cap path =
  match Serialize.detect path with
  | Serialize.Flat | Serialize.MappedV3 ->
      Sharded.of_flat (Serialize.load ?term_cap path)
  | Serialize.Sharded ->
      let strategy, shards = Serialize.load_sharded ?term_cap path in
      Sharded.create ~strategy shards

let open_v3 path =
  match Serialize.detect path with
  | Serialize.MappedV3 -> Mapped.open_file path
  | Serialize.Flat | Serialize.Sharded ->
      raise (Serialize.Format_error "not a v3 summary file")

type opened = Heap of Sharded.t | Mapped of Mapped.t

let open_any ?term_cap path =
  match Serialize.detect path with
  | Serialize.MappedV3 -> Mapped (Mapped.open_file path)
  | Serialize.Flat | Serialize.Sharded -> Heap (load ?term_cap path)
