(* Transparent persistence for sharded summaries.

   Save always writes the manifest format (Core.Serialize.save_sharded),
   even at k = 1, so the partitioning strategy survives round trips.
   Load sniffs the magic: flat files come back as a single-shard view,
   manifests as the full shard group — callers never need to know which
   format a path holds. *)

open Entropydb_core

let save sharded path =
  Serialize.save_sharded ~strategy:(Sharded.strategy sharded)
    (Sharded.shards sharded) path

let load ?term_cap path =
  match Serialize.detect path with
  | Serialize.Flat -> Sharded.of_flat (Serialize.load ?term_cap path)
  | Serialize.Sharded ->
      let strategy, shards = Serialize.load_sharded ?term_cap path in
      Sharded.create ~strategy shards
