(* A partitioned MaxEnt summary: k per-shard summaries answering as one.

   Every estimator fans the query out to all shards and combines the
   per-shard answers.  The combination is *exact*, not approximate: a
   COUNT over a horizontally partitioned relation is a sum of independent
   linear queries, so expectations add by linearity (Sec. 4.2's E[<q,I>]
   applied per shard) and variances add because the per-shard MaxEnt
   models are independent distributions.  The only approximation anywhere
   is the per-shard model itself — exactly as for a flat summary.

   Per-shard answers are combined left to right in shard order, so a
   sharded summary's answers are deterministic and, at k = 1, bitwise
   identical to the flat summary's. *)

open Entropydb_core

type t = {
  shards : Summary.t array;
  strategy : string; (* provenance tag, e.g. "rows", "attr:origin", "flat" *)
}

let create ?(strategy = "rows") shards =
  if Array.length shards = 0 then invalid_arg "Sharded.create: no shards";
  let schema0 = Summary.schema shards.(0) in
  Array.iter
    (fun s ->
      if Stdlib.compare (Summary.schema s) schema0 <> 0 then
        invalid_arg "Sharded.create: shard schema mismatch")
    shards;
  { shards; strategy }

let of_flat summary = { shards = [| summary |]; strategy = "flat" }
let shards t = t.shards
let num_shards t = Array.length t.shards
let strategy t = t.strategy
let schema t = Summary.schema t.shards.(0)

let cardinality t =
  Array.fold_left (fun acc s -> acc + Summary.cardinality s) 0 t.shards

let cardinalities t = Array.to_list (Array.map Summary.cardinality t.shards)
let solver_reports t = Array.to_list (Array.map Summary.solver_report t.shards)

(* One registry counter and (when tracing) one span per per-shard
   evaluation, so the fan-out's cost is attributable shard by shard. *)
let shard_evals_c = Edb_obs.Registry.counter "shard.evals"

let eval_shard i f =
  Edb_obs.Registry.Counter.incr shard_evals_c;
  Edb_obs.Obs.with_span "shard.eval" ~cat:"answer"
    ~attrs:(fun () -> [ ("shard", string_of_int i) ])
    f

(* Left-to-right sum over shards; starting from 0. keeps k = 1 bitwise
   equal to the flat answer (0. +. x = x for the non-negative estimates
   involved here). *)
let sum_over t f =
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. eval_shard i (fun () -> f s)) t.shards;
  !acc

let estimate t query = sum_over t (fun s -> Summary.estimate s query)

let estimate_rounded t query =
  let e = estimate t query in
  if e < 0.5 then 0. else e

let variance t query = sum_over t (fun s -> Summary.variance s query)
let stddev t query = sqrt (variance t query)

(* Both moments in one fan-out: per-shard estimates and variances each
   accumulate left to right from 0., so at k = 1 the pair is bitwise
   equal to the flat summary's [estimate_with_variance]. *)
let estimate_with_variance t query =
  let est = ref 0. and var = ref 0. in
  Array.iteri
    (fun i s ->
      let e, v = eval_shard i (fun () -> Summary.estimate_with_variance s query) in
      est := !est +. e;
      var := !var +. v)
    t.shards;
  (!est, !var)

let estimate_sum t ~attr ?weights query =
  sum_over t (fun s -> Summary.estimate_sum s ~attr ?weights query)

let variance_sum t ~attr ?weights query =
  sum_over t (fun s -> Summary.variance_sum s ~attr ?weights query)

let estimate_avg t ~attr query =
  let count = estimate t query in
  if count <= 0. then None else Some (estimate_sum t ~attr query /. count)

(* Disjunctions: inclusion–exclusion is itself a linear combination of
   conjunctive counts, so it distributes over shards like any other
   linear query. *)
let estimate_disjuncts t disjuncts =
  sum_over t (fun s -> Disjunction.estimate s disjuncts)

let variance_disjuncts t disjuncts =
  sum_over t (fun s -> Disjunction.variance s disjuncts)

let stddev_disjuncts t disjuncts = sqrt (variance_disjuncts t disjuncts)

(* GROUP BY: every shard enumerates the same group keys in the same
   ascending order (the enumeration is driven by the schema's domains and
   the query's restrictions, not by data), so the per-shard vectors merge
   positionally.  Shards are evaluated concurrently on OCaml 5 domains;
   [Parallel.fold] combines chunks left to right — shard order — so the
   merge is deterministic, and at k = 1 shard 0's vector is returned
   untouched (bitwise equal to the flat summary's). *)
let estimate_groups_with_variance t ~attrs query =
  let k = Array.length t.shards in
  let eval i =
    eval_shard i (fun () ->
        Summary.estimate_groups_with_variance t.shards.(i) ~attrs query)
  in
  if k = 1 then eval 0
  else
    let per_shard =
      Edb_util.Parallel.fold
        ~domains:(min k (Edb_util.Parallel.default_domains ()))
        ~n:k
        ~chunk:(fun ~lo ~hi -> List.init (hi - lo) (fun i -> eval (lo + i)))
        ~combine:( @ ) ~init:[]
    in
    match per_shard with
    | [] -> []
    | base :: rest ->
        List.fold_left
          (fun acc shard ->
            List.map2
              (fun (key, e, v) (_, e', v') -> (key, e +. e', v +. v'))
              acc shard)
          base rest

let estimate_groups_with_stddev t ~attrs query =
  List.map
    (fun (key, e, v) -> (key, e, sqrt v))
    (estimate_groups_with_variance t ~attrs query)

let estimate_groups t ~attrs query =
  List.map
    (fun (key, e, _) -> (key, e))
    (estimate_groups_with_variance t ~attrs query)

(* Same selection policy as {!Summary.top_k_groups} — descending
   [Float.compare] with a group-key tie-break — so every k matches the
   flat summary exactly, ties included. *)
let top_k_groups t ~attrs ~k query =
  let groups = estimate_groups t ~attrs query in
  let sorted =
    List.sort
      (fun (ka, a) (kb, b) ->
        let c = Float.compare b a in
        if c <> 0 then c else Stdlib.compare ka kb)
      groups
  in
  List.filteri (fun i _ -> i < k) sorted

let size_report t =
  Array.fold_left
    (fun (acc : Summary.size_report) s ->
      let r = Summary.size_report s in
      {
        Summary.num_statistics = acc.num_statistics + r.num_statistics;
        num_marginals = acc.num_marginals + r.num_marginals;
        num_terms = acc.num_terms + r.num_terms;
        num_groups = acc.num_groups + r.num_groups;
        uncompressed_monomials =
          acc.uncompressed_monomials +. r.uncompressed_monomials;
      })
    {
      Summary.num_statistics = 0;
      num_marginals = 0;
      num_terms = 0;
      num_groups = 0;
      uncompressed_monomials = 0.;
    }
    t.shards

let footprint_bytes t =
  Array.fold_left (fun acc s -> acc + Summary.footprint_bytes s) 0 t.shards

let pp ppf t =
  Fmt.pf ppf "sharded(%d shard(s), %s, %d rows)" (num_shards t) t.strategy
    (cardinality t)
