(* Parallel construction of sharded summaries.

   Partition once, then build the k per-shard summaries concurrently on
   OCaml 5 domains via Edb_util.Parallel.fold: each chunk of shard
   indices builds its summaries in order, and the per-chunk lists are
   concatenated left to right — list concatenation is exact, so the
   resulting shard order (and therefore every answer) is independent of
   the domain count.  Per-shard builds share nothing mutable: each works
   on its own relation slice, polynomial, and solver state.

   The paper's ~30 coordinate sweeps over one big polynomial are the
   dominant offline cost (Sec. 4.1, Algorithm 1); sharding cuts both the
   per-solve problem size and the wall clock, which is the partitioned/
   parallel summarization the EntropyDB demo paper names as the path to
   larger instances. *)

open Edb_storage
open Entropydb_core

(* Interleaved multi-domain solver logging is useless noise, so builds
   default to a quiet solver config unless the caller overrides. *)
let quiet_config = { Solver.default_config with log_every = 0 }

let build ?(solver_config = quiet_config) ?term_cap ?domains rel ~shards
    ~strategy ~joints =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Edb_util.Parallel.default_domains ()
  in
  let parts = Partition.split rel ~shards strategy in
  let chunk ~lo ~hi =
    List.init (hi - lo) (fun i ->
        Summary.build ~solver_config ?term_cap parts.(lo + i) ~joints)
  in
  let summaries =
    Edb_util.Parallel.fold ~domains ~n:shards ~chunk ~combine:( @ ) ~init:[]
  in
  Sharded.create
    ~strategy:(Partition.strategy_tag (Relation.schema rel) strategy)
    (Array.of_list summaries)
