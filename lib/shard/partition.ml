(* Horizontal partitioning of a relation into k disjoint shards.

   Two strategies:

   [Rows] — contiguous row ranges of near-equal size.  Build-time load is
   balanced by construction, and any per-attribute skew is spread across
   shards in row order; the right default when rows arrive unordered.

   [By_attr a] — rows hash on their value of attribute [a], so all rows
   sharing a value land in the same shard.  Per-shard marginals of [a]
   are then exact indicator counts of whole values (never fractions of a
   value split across shards), which tightens per-shard models for
   queries that filter on [a]; the cost is imbalance under value skew.

   Both strategies are deterministic functions of the relation, so a
   rebuild with the same inputs reproduces the same shards byte for
   byte. *)

open Edb_storage

type strategy = Rows | By_attr of int

let strategy_tag schema = function
  | Rows -> "rows"
  | By_attr a -> "attr:" ^ Schema.attr_name schema a

(* Fibonacci-style multiplicative mix so that consecutive value indices
   spread across shards; masked positive.  Deliberately not Hashtbl.hash:
   the shard assignment is part of the persistent format's provenance and
   must never drift with the compiler's hash implementation. *)
let mix v = v * 0x9E3779B1 land max_int

let shard_of_value ~shards v = mix v mod shards

let split rel ~shards strategy =
  if shards < 1 then invalid_arg "Partition.split: shards must be >= 1";
  let n = Relation.cardinality rel in
  match strategy with
  | Rows ->
      Array.init shards (fun s ->
          let lo = s * n / shards and hi = (s + 1) * n / shards in
          Relation.select_rows rel (Array.init (hi - lo) (fun i -> lo + i)))
  | By_attr attr ->
      if attr < 0 || attr >= Schema.arity (Relation.schema rel) then
        invalid_arg "Partition.split: attribute out of range";
      let col = Relation.column rel attr in
      let buckets = Array.make shards [] in
      (* Walk backwards so each bucket's list comes out in row order. *)
      for r = n - 1 downto 0 do
        let s = shard_of_value ~shards col.(r) in
        buckets.(s) <- r :: buckets.(s)
      done;
      Array.map
        (fun rows -> Relation.select_rows rel (Array.of_list rows))
        buckets
