(** Transparent persistence: load any summary file — flat, sharded
    manifest, or mmap-able v3 — as a {!Sharded.t}, or open it
    residency-aware with {!open_any}. *)

val save : Sharded.t -> string -> unit
(** Write the manifest plus per-shard files
    (see {!Entropydb_core.Serialize.save_sharded}). *)

val load : ?term_cap:int -> string -> Sharded.t
(** Sniff the file's magic and load any format as heap summaries; a flat
    or v3 file becomes a single-shard view.  Raises
    {!Entropydb_core.Serialize.Format_error} like the underlying
    loaders. *)

val open_v3 : string -> Entropydb_core.Mapped.t
(** Open a v3 file as a zero-copy mapped summary in O(header + manifest)
    — the body is mapped, not read.  Raises
    {!Entropydb_core.Serialize.Format_error} if the file is not format
    v3 or fails validation. *)

type opened =
  | Heap of Sharded.t
  | Mapped of Entropydb_core.Mapped.t

val open_any : ?term_cap:int -> string -> opened
(** Open a summary the cheapest way its format allows: v3 files map
    ({!open_v3}), everything else heap-loads ({!load}). *)
