(** Transparent persistence: load any summary file — flat or sharded
    manifest — as a {!Sharded.t}. *)

val save : Sharded.t -> string -> unit
(** Write the manifest plus per-shard files
    (see {!Entropydb_core.Serialize.save_sharded}). *)

val load : ?term_cap:int -> string -> Sharded.t
(** Sniff the file's magic and load either format; a flat file becomes a
    single-shard view.  Raises {!Entropydb_core.Serialize.Format_error}
    like the underlying loaders. *)
