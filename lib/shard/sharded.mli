(** Partitioned MaxEnt summaries answering as one.

    A value of type {!t} wraps k per-shard {!Entropydb_core.Summary.t}
    values over the same schema and implements the full estimator
    surface by fanning each query out to every shard and combining
    exactly: expectations add by linearity of expectation, variances add
    by independence of the per-shard models.  Sharding introduces zero
    additional approximation beyond the per-shard models themselves; at
    k = 1 every answer is bitwise identical to the flat summary's. *)

open Edb_storage
open Entropydb_core

type t

val create : ?strategy:string -> Summary.t array -> t
(** Wrap per-shard summaries (shard order is preserved and significant).
    [strategy] is a provenance tag, default ["rows"].  Raises
    [Invalid_argument] on an empty array or a schema mismatch. *)

val of_flat : Summary.t -> t
(** A single-shard view of a flat summary (strategy ["flat"]); answers
    are bitwise identical to the wrapped summary's. *)

val shards : t -> Summary.t array
(** The per-shard summaries, in shard order; callers must not mutate. *)

val num_shards : t -> int
val strategy : t -> string
val schema : t -> Schema.t

val cardinality : t -> int
(** Total rows across shards. *)

val cardinalities : t -> int list
(** Per-shard rows, in shard order. *)

val solver_reports : t -> Solver.report list

(** {1 Estimators — the {!Entropydb_core.Summary} surface, shard-exact} *)

val estimate : t -> Predicate.t -> float
val estimate_rounded : t -> Predicate.t -> float
val variance : t -> Predicate.t -> float
val stddev : t -> Predicate.t -> float

val estimate_with_variance : t -> Predicate.t -> float * float
(** Both moments in a single fan-out; the estimate is bitwise equal to
    {!estimate} (one accumulation from 0. in shard order). *)

val estimate_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float

val variance_sum :
  t -> attr:int -> ?weights:(int -> float) -> Predicate.t -> float

val estimate_avg : t -> attr:int -> Predicate.t -> float option
(** Total expected SUM over total expected COUNT; [None] when the
    expected count is 0. *)

val estimate_groups :
  t -> attrs:int list -> Predicate.t -> (int list * float) list
(** Group keys appear in ascending key order (identical to the flat
    summary's order: enumeration is schema-driven).  Shards are
    evaluated concurrently on OCaml 5 domains and combined in shard
    order, so answers are deterministic; at k = 1 the flat summary's
    vector is returned bitwise unchanged. *)

val estimate_groups_with_variance :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** [estimate_groups] plus each cell's variance (per-shard variances
    add by independence of the shard models). *)

val estimate_groups_with_stddev :
  t -> attrs:int list -> Predicate.t -> (int list * float * float) list
(** [estimate_groups_with_variance] with the summed variance replaced
    by its square root. *)

val top_k_groups :
  t -> attrs:int list -> k:int -> Predicate.t -> (int list * float) list
(** Deterministic total order: descending estimate under
    [Float.compare], ties broken by ascending group key — the same
    policy as {!Entropydb_core.Summary.top_k_groups}. *)

val estimate_disjuncts : t -> Predicate.t list -> float
(** Inclusion–exclusion COUNT over a disjunction of conjunctive
    predicates; raises like {!Entropydb_core.Disjunction.estimate}. *)

val variance_disjuncts : t -> Predicate.t list -> float
val stddev_disjuncts : t -> Predicate.t list -> float

val size_report : t -> Summary.size_report
(** Aggregate over shards (fields summed). *)

val footprint_bytes : t -> int
(** Estimated resident heap size of all shards' kernel tables
    ({!Summary.footprint_bytes} summed); the weighted catalog charges
    heap-backed entries with this. *)

val pp : Format.formatter -> t -> unit
