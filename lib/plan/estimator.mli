(** A uniform estimator surface over the engine's answer machines.

    Every backend — MaxEnt summary (flat or sharded), weighted sample,
    exact scan — answers COUNT, SUM, and GROUP BY with an
    [(estimate, variance)] pair and carries a static cost model, which is
    everything {!Plan.choose} needs to route a query by predicted error
    and predicted work. *)

open Edb_storage

type kind = Summary | Sample | Exact | Combined

val kind_name : kind -> string
(** ["summary"], ["sample"], ["exact"], ["combined"] — stable names used
    in EXPLAIN output and [edb_obs] metric names. *)

type answer = { est : float; var : float }

type t

val name : t -> string
val kind : t -> kind

val cost_us : t -> float
(** Predicted microseconds for one COUNT under the static cost model:
    summaries pay per polynomial term, samples and exact scans per row.
    Deliberately coarse — only the relative ordering matters for
    routing. *)

val of_summary : ?name:string -> Entropydb_core.Summary.t -> t
(** Closed-form binomial variance (Var = n·p·(1−p)); zero model cost is
    {e not} assumed — the variance is the summary's own uncertainty,
    which is honest exactly when the MaxEnt family contains the data's
    distribution. *)

val of_sharded : ?name:string -> Edb_shard.Sharded.t -> t
(** As {!of_summary}, fanned out over shards (variances add). *)

val of_mapped : ?name:string -> Entropydb_core.Mapped.t -> t
(** As {!of_summary}, over a zero-copy mapped v3 summary (answers are
    bitwise the heap summary's). *)

val of_sample : ?name:string -> Edb_sampling.Sample.t -> t
(** Horvitz–Thompson estimates with design-based, finite-population-
    corrected variance ({!Edb_sampling.Sample.estimate_with_variance}). *)

val of_relation : ?name:string -> Relation.t -> t
(** Exact scan: zero variance, cost proportional to rows. *)

val combine : t -> t -> t
(** Inverse-variance-weighted combination of two independent unbiased
    estimators: variance v₁v₂/(v₁+v₂) ≤ min(v₁, v₂); a zero-variance
    component is returned untouched.  Cost is the sum (both run).
    GROUP BY is not combined (group lists from a sample need not align
    with a summary's); [shape_groups] routes to a single estimator. *)

val combine_answers : answer -> answer -> answer
(** The scalar combination rule above, exposed for tests/oracles. *)

(** {2 Shape evaluation} *)

val count : t -> Predicate.t -> answer

val sum : t -> int -> Predicate.t -> answer option
(** [None] when the backend does not support SUM (combined estimators
    whose components both lack it). *)

val groups : t -> int list -> Predicate.t -> (int list * answer) list option
(** [None] for combined estimators. *)
