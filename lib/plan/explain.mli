(** Rendering of planner decisions for EXPLAIN surfaces. *)

val lines : ?truth:float -> Plan.decision -> string list
(** Compact single-line records for the wire protocol: a [plan target]
    line, one [plan candidate] line per candidate (with estimate, sd,
    half-width, threshold, and — when [truth] is given — observed
    absolute error), and a final [plan route] line naming the chosen
    estimator and the reason. *)

val table : ?truth:float -> Plan.decision -> Edb_util.Table.t
(** The human candidate table ([entropydb explain]); the chosen route's
    row is marked with [*]. *)
