(* The error-aware router.

   Given a target confidence interval and a set of registered estimators,
   [choose] walks the candidates in ascending predicted cost and evaluates
   them until one's predicted CI half-width (z·sd) fits inside the target
   (max of a relative and an absolute tolerance).  An exact scan has zero
   variance, so when one is registered it is an always-sufficient last
   resort; when no evaluated candidate meets the target the best (smallest
   half-width) answer is returned as a best effort.  When both a summary
   and a sample are registered, a synthetic inverse-variance-weighted
   combination joins the candidate pool for scalar shapes.

   Routing decisions and per-route evaluation latency are recorded in the
   process-wide [edb_obs] registry (plan_route_* counters,
   plan_latency_* histograms), so every surface — CLI, server, bench —
   shares one set of metrics. *)

open Edb_util
open Edb_storage

(* ------------------------------------------------------------------ *)
(* Targets                                                             *)
(* ------------------------------------------------------------------ *)

type target = { confidence : float; rel : float; abs : float }

let default_target = { confidence = 0.95; rel = 0.05; abs = 1. }

let target_of_string s =
  let bad () =
    invalid_arg
      (Printf.sprintf
         "Plan.target_of_string: %S (expected CONF:REL%%[:ABS], e.g. 95:2)" s)
  in
  let num part = match float_of_string_opt part with
    | Some v -> v
    | None -> bad ()
  in
  match String.split_on_char ':' (String.trim s) with
  | [ conf; rel ] | [ conf; rel; _ ] as parts ->
      let confidence = num conf /. 100. and rel = num rel /. 100. in
      let abs =
        match parts with [ _; _; a ] -> num a | _ -> default_target.abs
      in
      if not (confidence > 0. && confidence < 1.) then bad ();
      if not (rel >= 0. && abs >= 0.) then bad ();
      { confidence; rel; abs }
  | _ -> bad ()

let target_to_string t =
  if t.abs = default_target.abs then
    Printf.sprintf "%g:%g" (t.confidence *. 100.) (t.rel *. 100.)
  else
    Printf.sprintf "%g:%g:%g" (t.confidence *. 100.) (t.rel *. 100.) t.abs

(* Inverse standard-normal CDF (Acklam's rational approximation, relative
   error < 1.2e-9 on (0,1)), so any confidence level maps to its z
   multiplier without a quantile table. *)
let probit p =
  if not (p > 0. && p < 1.) then invalid_arg "Plan.probit: p must be in (0,1)";
  let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02
  and a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02
  and a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
  let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02
  and b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01
  and b4 = -1.328068155288572e+01 in
  let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01
  and c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00
  and c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
  let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01
  and d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
  let tail q =
    (((((c0 *. q +. c1) *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5)
    /. ((((d0 *. q +. d1) *. q +. d2) *. q +. d3) *. q +. 1.)
  in
  let p_low = 0.02425 in
  if p < p_low then tail (sqrt (-2. *. log p))
  else if p > 1. -. p_low then -.tail (sqrt (-2. *. log (1. -. p)))
  else
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a0 *. r +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5)
    *. q
    /. (((((b0 *. r +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.)

let z_of_confidence confidence = probit ((1. +. confidence) /. 2.)

(* ------------------------------------------------------------------ *)
(* Query shapes                                                        *)
(* ------------------------------------------------------------------ *)

type shape =
  | Count of Predicate.t
  | Sum of { attr : int; pred : Predicate.t }
  | Groups of { attrs : int list; pred : Predicate.t }

let shape_is_scalar = function Count _ | Sum _ -> true | Groups _ -> false

(* ------------------------------------------------------------------ *)
(* Candidates and decisions                                            *)
(* ------------------------------------------------------------------ *)

type evaluation = {
  answer : Estimator.answer;
      (* scalar answer; for GROUP BY, the widest (max half-width) cell *)
  groups : (int list * Estimator.answer) list option;
  half_width : float;
  threshold : float;
  meets : bool;
  seconds : float;
}

type candidate = {
  estimator : Estimator.t;
  evaluation : evaluation option; (* None: skipped (lazy) or unsupported *)
  supported : bool;
}

type decision = {
  target : target;
  z : float;
  candidates : candidate list; (* ascending predicted cost *)
  chosen : candidate;
  reason : string;
}

let chosen_answer d =
  match d.chosen.evaluation with
  | Some e -> e.answer
  | None -> assert false (* a chosen candidate is always evaluated *)

let chosen_groups d =
  match d.chosen.evaluation with Some e -> e.groups | None -> None

(* Half-width z·sd against max(rel·|est|, abs). *)
let judge ~z ~target (a : Estimator.answer) =
  let half_width = z *. sqrt (Float.max 0. a.Estimator.var) in
  let threshold = Float.max (target.rel *. Float.abs a.Estimator.est) target.abs in
  (half_width, threshold, half_width <= threshold)

let evaluate ~z ~target estimator shape =
  let run () =
    match shape with
    | Count pred -> Some (`Scalar (Estimator.count estimator pred))
    | Sum { attr; pred } ->
        Option.map (fun a -> `Scalar a) (Estimator.sum estimator attr pred)
    | Groups { attrs; pred } ->
        Option.map (fun g -> `Groups g) (Estimator.groups estimator attrs pred)
  in
  let result, seconds = Timing.time run in
  match result with
  | None -> None
  | Some (`Scalar answer) ->
      let half_width, threshold, meets = judge ~z ~target answer in
      Some { answer; groups = None; half_width; threshold; meets; seconds }
  | Some (`Groups cells) ->
      (* A GROUP BY meets the target iff every cell does; the reported
         answer is the widest cell (ties to the first). *)
      let worst, meets =
        List.fold_left
          (fun (worst, all_ok) (_, a) ->
            let hw, thr, ok = judge ~z ~target a in
            let worst =
              match worst with
              | Some (whw, _, _, _) when whw >= hw -> worst
              | _ -> Some (hw, thr, ok, a)
            in
            (worst, all_ok && ok))
          (None, true) cells
      in
      let half_width, threshold, _, answer =
        match worst with
        | Some w -> w
        | None -> (0., Float.max target.abs 0., true, { Estimator.est = 0.; var = 0. })
      in
      Some
        { answer; groups = Some cells; half_width; threshold; meets; seconds }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let route_counter kind =
  Edb_obs.Registry.counter ("plan_route_" ^ Estimator.kind_name kind)

let route_hist kind =
  Edb_obs.Registry.histogram ("plan_latency_" ^ Estimator.kind_name kind)

let observe_route kind seconds =
  Edb_obs.Registry.Counter.incr (route_counter kind);
  Edb_obs.Registry.Hist.observe (route_hist kind) seconds

(* ------------------------------------------------------------------ *)
(* The planner                                                         *)
(* ------------------------------------------------------------------ *)

let candidate_pool ~combine estimators shape =
  let pool =
    if not (combine && shape_is_scalar shape) then estimators
    else
      (* One synthetic combination of the cheapest summary and the
         cheapest sample, when both are present. *)
      let cheapest k =
        List.fold_left
          (fun best e ->
            if Estimator.kind e <> k then best
            else
              match best with
              | Some b when Estimator.cost_us b <= Estimator.cost_us e -> best
              | _ -> Some e)
          None estimators
      in
      match (cheapest Estimator.Summary, cheapest Estimator.Sample) with
      | Some s, Some u -> estimators @ [ Estimator.combine s u ]
      | _ -> estimators
  in
  List.stable_sort
    (fun a b -> Float.compare (Estimator.cost_us a) (Estimator.cost_us b))
    pool

let choose ?(combine = true) ?(eager = false) ~target estimators shape =
  if estimators = [] then invalid_arg "Plan.choose: no estimators";
  let z = z_of_confidence target.confidence in
  let pool = candidate_pool ~combine estimators shape in
  (* Lazy walk in ascending predicted cost: stop evaluating once a
     candidate meets the target, so a summary hit never pays for the
     exact scan.  [eager] evaluates everything (EXPLAIN). *)
  let stop = ref false in
  let candidates =
    List.map
      (fun estimator ->
        if !stop && not eager then
          { estimator; evaluation = None; supported = true }
        else
          match evaluate ~z ~target estimator shape with
          | None -> { estimator; evaluation = None; supported = false }
          | Some ev ->
              if ev.meets then stop := true;
              { estimator; evaluation = Some ev; supported = true })
      pool
  in
  let met =
    List.find_opt
      (fun c -> match c.evaluation with Some e -> e.meets | None -> false)
      candidates
  in
  let chosen, reason =
    match met with
    | Some c -> (c, "meets-target")
    | None -> (
        (* Nothing met the target (no exact scan registered): answer with
           the smallest evaluated half-width. *)
        let best =
          List.fold_left
            (fun best c ->
              match (c.evaluation, best) with
              | None, _ -> best
              | Some _, None -> Some c
              | Some e, Some b ->
                  let bh =
                    match b.evaluation with
                    | Some be -> be.half_width
                    | None -> infinity
                  in
                  if e.half_width < bh then Some c else best)
            None candidates
        in
        match best with
        | Some c -> (c, "best-effort")
        | None -> invalid_arg "Plan.choose: no estimator supports this shape")
  in
  (match chosen.evaluation with
  | Some e -> observe_route (Estimator.kind chosen.estimator) e.seconds
  | None -> ());
  { target; z; candidates; chosen; reason }

let choose_all = choose ~eager:true
