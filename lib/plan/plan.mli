(** Error-aware query routing across summaries, samples, and exact scan.

    Given a target confidence interval, {!choose} walks the registered
    estimators in ascending predicted cost, evaluating lazily until one's
    predicted CI half-width (z·√variance) fits within the target — so a
    cheap route that suffices never pays for an expensive one.  An exact
    scan (zero variance) is an always-sufficient last resort; with no
    sufficient candidate the smallest-half-width answer is returned as a
    best effort.  When a summary and a sample are both registered, an
    inverse-variance-weighted combination joins the pool for scalar
    shapes.

    Every routing decision ticks a [plan_route_<kind>] counter and
    records the chosen route's evaluation latency in a
    [plan_latency_<kind>] histogram in the process-wide {!Edb_obs}
    registry (surfaced by [entropydb stats] with the [obs_] prefix). *)

open Edb_storage

(** {1 Targets} *)

type target = { confidence : float; rel : float; abs : float }
(** Meet the target iff z·sd ≤ max(rel·|estimate|, abs), with z the
    two-sided normal quantile of [confidence]. *)

val default_target : target
(** 95% confidence, ±5% relative, absolute floor 1 row. *)

val target_of_string : string -> target
(** ["95:2"] = 95% confidence, ±2% relative; an optional third field sets
    the absolute floor in rows (["95:2:10"]), default 1.  Raises
    [Invalid_argument] on malformed input. *)

val target_to_string : target -> string

val probit : float -> float
(** Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.2e-9).  Raises outside (0,1). *)

val z_of_confidence : float -> float
(** Two-sided quantile: [probit ((1+c)/2)] — e.g. 0.95 ↦ 1.95996…. *)

(** {1 Query shapes} *)

type shape =
  | Count of Predicate.t
  | Sum of { attr : int; pred : Predicate.t }
  | Groups of { attrs : int list; pred : Predicate.t }

(** {1 Decisions} *)

type evaluation = {
  answer : Estimator.answer;
      (** the scalar answer; for GROUP BY, the widest (max half-width)
          cell *)
  groups : (int list * Estimator.answer) list option;
      (** per-group answers for GROUP BY shapes *)
  half_width : float;  (** z·√variance *)
  threshold : float;  (** max(rel·|est|, abs) *)
  meets : bool;  (** half_width ≤ threshold; for GROUP BY, every cell *)
  seconds : float;  (** measured evaluation latency *)
}

type candidate = {
  estimator : Estimator.t;
  evaluation : evaluation option;
      (** [None]: skipped by the lazy walk, or shape unsupported *)
  supported : bool;
}

type decision = {
  target : target;
  z : float;
  candidates : candidate list;  (** in ascending predicted cost *)
  chosen : candidate;
  reason : string;  (** ["meets-target"] or ["best-effort"] *)
}

val chosen_answer : decision -> Estimator.answer
val chosen_groups : decision -> (int list * Estimator.answer) list option

(** {1 Routing} *)

val choose :
  ?combine:bool ->
  ?eager:bool ->
  target:target ->
  Estimator.t list ->
  shape ->
  decision
(** Route one query.  [combine] (default true) adds the synthetic
    inverse-variance combination of the cheapest summary and cheapest
    sample for scalar shapes.  [eager] (default false) evaluates every
    candidate instead of stopping at the first sufficient one — use for
    EXPLAIN.  With a single registered estimator and [combine:false], the
    chosen answer is bitwise-identical to calling that estimator
    directly.  Raises [Invalid_argument] on an empty estimator list or
    when no estimator supports the shape. *)

val choose_all :
  ?combine:bool -> target:target -> Estimator.t list -> shape -> decision
(** [choose ~eager:true]. *)
