(* The planner's common interface over the repo's three answer machines.

   A MaxEnt summary (flat or sharded), a weighted sample, and an exact
   scan all answer the same aggregate shapes; what distinguishes them is
   the error they make and the work they do.  An [Estimator.t] packages a
   backend behind a uniform [(estimate, variance)] surface plus a static
   cost model, which is all the planner needs to route a query. *)

open Edb_storage

type kind = Summary | Sample | Exact | Combined

let kind_name = function
  | Summary -> "summary"
  | Sample -> "sample"
  | Exact -> "exact"
  | Combined -> "combined"

type answer = { est : float; var : float }

type t = {
  name : string;
  kind : kind;
  cost_us : float;
  count : Predicate.t -> answer;
  sum : (int -> Predicate.t -> answer) option;
  groups : (int list -> Predicate.t -> (int list * answer) list) option;
}

let name t = t.name
let kind t = t.kind
let cost_us t = t.cost_us
let count t q = t.count q
let sum t attr q = Option.map (fun f -> f attr q) t.sum
let groups t attrs q = Option.map (fun f -> f attrs q) t.groups

(* Cost model: predicted microseconds for one COUNT.  The constants are
   deliberately coarse — the planner only needs the ordering
   sample < summary < exact at realistic sizes (a 1% sample scans 100×
   fewer rows than the base table; a summary touches terms, not rows),
   not microsecond accuracy.  [bench planner] records predicted vs
   measured latency per route. *)
let term_cost_us = 0.02
let row_cost_us = 0.0025

let summary_cost num_terms = term_cost_us *. float_of_int (max 1 num_terms)
let scan_cost rows = row_cost_us *. float_of_int (max 1 rows)

let of_summary ?(name = "summary") s =
  let open Entropydb_core in
  {
    name;
    kind = Summary;
    cost_us = summary_cost (Summary.size_report s).Summary.num_terms;
    count =
      (fun q ->
        let est, var = Summary.estimate_with_variance s q in
        { est; var });
    sum =
      Some
        (fun attr q ->
          { est = Summary.estimate_sum s ~attr q;
            var = Summary.variance_sum s ~attr q });
    groups =
      Some
        (fun attrs q ->
          List.map
            (fun (key, est, var) -> (key, { est; var }))
            (Summary.estimate_groups_with_variance s ~attrs q));
  }

let of_sharded ?(name = "summary") sh =
  let open Edb_shard in
  {
    name;
    kind = Summary;
    cost_us =
      summary_cost (Sharded.size_report sh).Entropydb_core.Summary.num_terms;
    count =
      (fun q ->
        let est, var = Sharded.estimate_with_variance sh q in
        { est; var });
    sum =
      Some
        (fun attr q ->
          { est = Sharded.estimate_sum sh ~attr q;
            var = Sharded.variance_sum sh ~attr q });
    groups =
      Some
        (fun attrs q ->
          List.map
            (fun (key, est, var) -> (key, { est; var }))
            (Sharded.estimate_groups_with_variance sh ~attrs q));
  }

let of_mapped ?(name = "summary") m =
  let open Entropydb_core in
  {
    name;
    kind = Summary;
    cost_us = summary_cost (Mapped.num_terms m);
    count =
      (fun q ->
        let est, var = Mapped.estimate_with_variance m q in
        { est; var });
    sum =
      Some
        (fun attr q ->
          { est = Mapped.estimate_sum m ~attr q;
            var = Mapped.variance_sum m ~attr q });
    groups =
      Some
        (fun attrs q ->
          List.map
            (fun (key, est, var) -> (key, { est; var }))
            (Mapped.estimate_groups_with_variance m ~attrs q));
  }

let of_sample ?name s =
  let open Edb_sampling in
  let name = Option.value name ~default:"sample" in
  {
    name;
    kind = Sample;
    cost_us = scan_cost (Sample.size s);
    count =
      (fun q ->
        let est, var = Sample.estimate_with_variance s q in
        { est; var });
    sum =
      Some
        (fun attr q ->
          let est, var = Sample.estimate_sum_with_variance s ~attr q in
          { est; var });
    groups =
      Some
        (fun attrs q ->
          List.map
            (fun (key, est, var) -> (key, { est; var }))
            (Sample.estimate_group_with_variance s ~attrs q));
  }

let of_relation ?(name = "exact") rel =
  {
    name;
    kind = Exact;
    cost_us = scan_cost (Relation.cardinality rel);
    count = (fun q -> { est = float_of_int (Exec.count rel q); var = 0. });
    sum = Some (fun attr q -> { est = Exec.sum rel ~attr q; var = 0. });
    groups =
      Some
        (fun attrs q ->
          List.map
            (fun (key, c) -> (key, { est = float_of_int c; var = 0. }))
            (Exec.group_count ~pred:q rel ~attrs));
  }

(* Inverse-variance weighting of two unbiased, independent estimators:
   est = (e₁/v₁ + e₂/v₂)/(1/v₁ + 1/v₂) and var = 1/(1/v₁ + 1/v₂)
   = v₁v₂/(v₁+v₂) ≤ min(v₁, v₂) — the minimum-variance unbiased linear
   combination.  A zero-variance component is exact and wins outright
   (the weights degenerate). *)
let combine_answers a b =
  if not (a.var > 0.) then a
  else if not (b.var > 0.) then b
  else
    let w1 = 1. /. a.var and w2 = 1. /. b.var in
    {
      est = ((a.est *. w1) +. (b.est *. w2)) /. (w1 +. w2);
      var = 1. /. (w1 +. w2);
    }

(* GROUP BY is deliberately not combined: a sample omits groups it did not
   draw, so the two group lists need not align — the planner routes group
   queries to a single estimator instead. *)
let combine t1 t2 =
  {
    name = t1.name ^ "+" ^ t2.name;
    kind = Combined;
    cost_us = t1.cost_us +. t2.cost_us;
    count = (fun q -> combine_answers (t1.count q) (t2.count q));
    sum =
      (match (t1.sum, t2.sum) with
      | Some f, Some g -> Some (fun attr q -> combine_answers (f attr q) (g attr q))
      | (Some _ as f), None | None, (Some _ as f) -> f
      | None, None -> None);
    groups = None;
  }
