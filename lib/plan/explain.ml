(* EXPLAIN rendering: one decision, two audiences.

   [lines] emits compact single-line records for the wire protocol (the
   server's EXPLAIN verb appends them to its payload); [table] renders the
   candidate table for humans (the CLI's `entropydb explain`).  Both show
   every candidate's predicted cost and error, which one was chosen and
   why, and — when ground truth is supplied — the observed error. *)

open Edb_util

let sd (a : Estimator.answer) = sqrt (Float.max 0. a.Estimator.var)

let status (c : Plan.candidate) =
  if not c.Plan.supported then "unsupported"
  else match c.Plan.evaluation with None -> "skipped" | Some _ -> "evaluated"

let err ~truth (a : Estimator.answer) =
  Option.map (fun t -> Float.abs (a.Estimator.est -. t)) truth

let lines ?truth (d : Plan.decision) =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "plan target %s z %.6g" (Plan.target_to_string d.Plan.target) d.Plan.z;
  List.iter
    (fun (c : Plan.candidate) ->
      let est = c.Plan.estimator in
      match c.Plan.evaluation with
      | None ->
          line "plan candidate %s kind %s cost_us %.6g status %s"
            (Estimator.name est)
            (Estimator.kind_name (Estimator.kind est))
            (Estimator.cost_us est) (status c)
      | Some ev ->
          let base =
            Printf.sprintf
              "plan candidate %s kind %s cost_us %.6g status evaluated \
               estimate %.17g sd %.17g half_width %.6g threshold %.6g meets %b"
              (Estimator.name est)
              (Estimator.kind_name (Estimator.kind est))
              (Estimator.cost_us est) ev.Plan.answer.Estimator.est
              (sd ev.Plan.answer) ev.Plan.half_width ev.Plan.threshold
              ev.Plan.meets
          in
          let base =
            match err ~truth ev.Plan.answer with
            | Some e -> Printf.sprintf "%s err %.6g" base e
            | None -> base
          in
          line "%s" base)
    d.Plan.candidates;
  line "plan route %s kind %s reason %s"
    (Estimator.name d.Plan.chosen.Plan.estimator)
    (Estimator.kind_name (Estimator.kind d.Plan.chosen.Plan.estimator))
    d.Plan.reason;
  String.split_on_char '\n' (Buffer.contents b)
  |> List.filter (fun l -> l <> "")

let table ?truth (d : Plan.decision) =
  let title =
    Printf.sprintf "plan: target %s (z %.3g) — route %s (%s)"
      (Plan.target_to_string d.Plan.target)
      d.Plan.z
      (Estimator.name d.Plan.chosen.Plan.estimator)
      d.Plan.reason
  in
  let headers =
    [ ""; "candidate"; "kind"; "cost µs"; "estimate"; "±hw"; "target ±";
      "meets"; "|err|" ]
  in
  let t = Table.create ~title ~headers () in
  List.iter
    (fun (c : Plan.candidate) ->
      let est = c.Plan.estimator in
      let mark = if c == d.Plan.chosen then "*" else "" in
      let cells =
        match c.Plan.evaluation with
        | None ->
            [ mark; Estimator.name est;
              Estimator.kind_name (Estimator.kind est);
              Table.cell_float ~prec:3 (Estimator.cost_us est);
              "-"; "-"; "-"; status c; "-" ]
        | Some ev ->
            [ mark; Estimator.name est;
              Estimator.kind_name (Estimator.kind est);
              Table.cell_float ~prec:3 (Estimator.cost_us est);
              Table.cell_float ~prec:3 ev.Plan.answer.Estimator.est;
              Table.cell_float ~prec:3 ev.Plan.half_width;
              Table.cell_float ~prec:3 ev.Plan.threshold;
              string_of_bool ev.Plan.meets;
              (match err ~truth ev.Plan.answer with
              | Some e -> Table.cell_float ~prec:3 e
              | None -> "-") ]
      in
      Table.add_row t cells)
    d.Plan.candidates;
  t
