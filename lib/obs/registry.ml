(* Process-wide metrics registry: named counters, gauges, and log-spaced
   latency histograms.

   Every metric is built on Edb_util.Stripe — lock-free per-domain cells
   merged on read — so hot paths (poly kernels inside Parallel workers,
   server threads) update metrics without a lock and without losing
   samples.  The registry table itself is mutex-guarded, but callers
   register once (typically at module init) and keep the handle.

   Histograms use the same bucket scheme as the server's latency
   histogram: bucket i covers [10^(i/10), 10^((i+1)/10)) microseconds,
   ~26% resolution over 1 µs .. 10 s in 70 buckets.  Snapshots are plain
   records whose merge (bucket-wise + count/sum addition, max of maxima)
   is associative and commutative, so totals are independent of how many
   domains — or shards — contributed. *)

module Stripe = Edb_util.Stripe

module Counter = struct
  type t = Stripe.counter

  let create () = Stripe.counter ()
  let incr = Stripe.incr
  let add = Stripe.add
  let value = Stripe.total
  let reset = Stripe.reset
end

module Gauge = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.
  let set t v = Atomic.set t v
  let value t = Atomic.get t
end

module Hist = struct
  let num_buckets = 70 (* 10^(70/10) µs = 10 s *)

  let bucket_of_us us =
    if us <= 1. then 0
    else
      let i = int_of_float (10. *. log10 us) in
      if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

  (* Geometric midpoint of bucket i's bounds 10^(i/10) .. 10^((i+1)/10). *)
  let bucket_mid_us i = 10. ** ((float_of_int i +. 0.5) /. 10.)

  type t = {
    buckets : Stripe.counter array;
    sum_us : Stripe.fsum;
    max_us : Stripe.fmax;
  }

  let create () =
    {
      buckets = Array.init num_buckets (fun _ -> Stripe.counter ());
      sum_us = Stripe.fsum ();
      max_us = Stripe.fmax ();
    }

  let observe_us t us =
    Stripe.incr t.buckets.(bucket_of_us us);
    Stripe.fadd t.sum_us us;
    Stripe.fmax_update t.max_us us

  let observe t seconds = observe_us t (seconds *. 1e6)

  type snapshot = {
    buckets : int array;
    count : int;
    sum_us : float;
    max_us : float; (* 0 when empty *)
  }

  let empty =
    { buckets = Array.make num_buckets 0; count = 0; sum_us = 0.; max_us = 0. }

  let snapshot (t : t) : snapshot =
    let buckets = Array.map Stripe.total t.buckets in
    {
      buckets;
      count = Array.fold_left ( + ) 0 buckets;
      sum_us = Stripe.ftotal t.sum_us;
      max_us = Float.max 0. (Stripe.fmax_value t.max_us);
    }

  let merge (a : snapshot) (b : snapshot) : snapshot =
    {
      buckets = Array.map2 ( + ) a.buckets b.buckets;
      count = a.count + b.count;
      sum_us = a.sum_us +. b.sum_us;
      max_us = Float.max a.max_us b.max_us;
    }

  (* Geometric midpoint of the bucket covering rank ceil(q*n), clamped
     to the observed maximum — same readout as the server's histogram. *)
  let quantile (s : snapshot) q =
    if s.count = 0 then 0.
    else begin
      let rank = int_of_float (ceil (q *. float_of_int s.count)) in
      let rank = max 1 (min s.count rank) in
      let cum = ref 0 and answer = ref (bucket_mid_us (num_buckets - 1)) in
      (try
         Array.iteri
           (fun i n ->
             cum := !cum + n;
             if !cum >= rank then begin
               answer := bucket_mid_us i;
               raise Exit
             end)
           s.buckets
       with Exit -> ());
      min !answer s.max_us
    end

  let reset (t : t) =
    Array.iter Stripe.reset t.buckets;
    Stripe.freset t.sum_us;
    Stripe.fmax_reset t.max_us
end

(* Named registration.  Re-registering a name returns the existing
   metric; registering it as a different kind raises. *)

type metric = C of Counter.t | G of Gauge.t | H of Hist.t

let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (C c) -> c
      | Some _ ->
          invalid_arg (Printf.sprintf "Registry: %S is not a counter" name)
      | None ->
          let c = Counter.create () in
          Hashtbl.add table name (C c);
          c)

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (G g) -> g
      | Some _ ->
          invalid_arg (Printf.sprintf "Registry: %S is not a gauge" name)
      | None ->
          let g = Gauge.create () in
          Hashtbl.add table name (G g);
          g)

let histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (H h) -> h
      | Some _ ->
          invalid_arg (Printf.sprintf "Registry: %S is not a histogram" name)
      | None ->
          let h = Hist.create () in
          Hashtbl.add table name (H h);
          h)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Hist.snapshot) list;
}

let snapshot () =
  let metrics = with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []) in
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters =
      List.filter_map
        (function n, C c -> Some (n, Counter.value c) | _ -> None)
        metrics
      |> List.sort by_name;
    gauges =
      List.filter_map
        (function n, G g -> Some (n, Gauge.value g) | _ -> None)
        metrics
      |> List.sort by_name;
    histograms =
      List.filter_map
        (function n, H h -> Some (n, Hist.snapshot h) | _ -> None)
        metrics
      |> List.sort by_name;
  }

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Counter.reset c
          | G g -> Gauge.set g 0.
          | H h -> Hist.reset h)
        table)
