(* Span tracing with a lock-free ring-buffer sink and Chrome trace_event
   export.

   Events are immutable records stored into an array of Atomic slots by
   a fetch-and-add cursor: recording is two atomic operations and never
   blocks, wraparound overwrites the oldest events, and a reader racing
   writers sees each slot as either its old or its new event — never a
   torn one.  The sink is a diagnostic tool: [events] taken mid-burst is
   a consistent-enough sample, not a barrier.

   Timestamps are microseconds since process start (module init), which
   is what Chrome's trace viewer expects for "ts"/"dur".  Load a written
   file in chrome://tracing or https://ui.perfetto.dev. *)

module Timing = Edb_util.Timing
module Json = Edb_util.Json

type phase = Span | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;
  dur_us : float; (* 0 for instants *)
  tid : int; (* recording domain's id *)
  attrs : (string * string) list;
}

let epoch = Timing.now_s ()
let now_us () = (Timing.now_s () -. epoch) *. 1e6

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "EDB_TRACE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let dummy =
  { name = ""; cat = ""; ph = Instant; ts_us = 0.; dur_us = 0.; tid = 0; attrs = [] }

type sink = {
  capacity : int; (* power of two *)
  slots : event Atomic.t array;
  cursor : int Atomic.t; (* total events ever recorded *)
}

let make_sink capacity =
  let capacity =
    let rec up c = if c >= capacity then c else up (c * 2) in
    up 16
  in
  {
    capacity;
    slots = Array.init capacity (fun _ -> Atomic.make dummy);
    cursor = Atomic.make 0;
  }

let default_capacity = 1 lsl 15
let sink = Atomic.make (make_sink default_capacity)

let set_capacity n = Atomic.set sink (make_sink n)
let capacity () = (Atomic.get sink).capacity
let clear () = set_capacity (capacity ())

let record ev =
  let s = Atomic.get sink in
  let i = Atomic.fetch_and_add s.cursor 1 in
  Atomic.set s.slots.(i land (s.capacity - 1)) ev

let total () = Atomic.get (Atomic.get sink).cursor
let dropped () = max 0 (total () - capacity ())

(* Oldest-first retained events.  A racing writer may overwrite the
   oldest retained slots mid-read; each slot read is still atomic. *)
let events () =
  let s = Atomic.get sink in
  let c = Atomic.get s.cursor in
  let slot i = Atomic.get s.slots.(i land (s.capacity - 1)) in
  if c <= s.capacity then List.init c slot
  else List.init s.capacity (fun i -> slot (c + i))

let event_json pid ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ( "ph",
        Json.Str (match ev.ph with Span -> "X" | Instant -> "i") );
      ("ts", Json.Float ev.ts_us);
    ]
  in
  let phase_fields =
    match ev.ph with
    | Span -> [ ("dur", Json.Float ev.dur_us) ]
    | Instant -> [ ("s", Json.Str "t") ]
  in
  let tail =
    [
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ev.attrs));
    ]
  in
  Json.Obj (base @ phase_fields @ tail)

let to_json ?events:evs () =
  let evs = match evs with Some e -> e | None -> events () in
  let pid = Unix.getpid () in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (event_json pid) evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_file path = Json.write_file path (to_json ())
