(** Process-wide metrics registry: named counters, gauges, and
    log-bucketed latency histograms, all built on lock-free per-domain
    stripes ({!Edb_util.Stripe}) merged on read.

    Register once (usually at module init), keep the handle, update it
    from any domain or thread without locking.  Histogram snapshots are
    plain mergeable values: merge is associative and commutative, so
    totals are independent of domain or shard count. *)

module Counter : sig
  type t

  val create : unit -> t
  (** A free-standing counter, not in the registry (per-instance use,
      e.g. one server's metrics). *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Hist : sig
  val num_buckets : int

  val bucket_of_us : float -> int
  (** Bucket i covers [10^(i/10), 10^((i+1)/10)) µs; monotone in its
      argument; everything ≤ 1 µs lands in bucket 0, everything ≥ 10 s
      in the last bucket. *)

  val bucket_mid_us : int -> float
  (** Geometric midpoint of a bucket's bounds. *)

  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one latency, in seconds. *)

  val observe_us : t -> float -> unit

  type snapshot = {
    buckets : int array;
    count : int;
    sum_us : float;
    max_us : float;  (** 0 when empty *)
  }

  val empty : snapshot
  (** The identity for {!merge}. *)

  val snapshot : t -> snapshot

  val merge : snapshot -> snapshot -> snapshot
  (** Bucket-wise and count/sum addition, max of maxima — associative,
      commutative, with {!empty} as identity. *)

  val quantile : snapshot -> float -> float
  (** Geometric midpoint of the covering bucket, clamped to the observed
      maximum; 0 when empty. *)

  val reset : t -> unit
end

(** {1 Named registration}

    Idempotent per name; registering one name as two different kinds
    raises [Invalid_argument]. *)

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Hist.t

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Hist.snapshot) list;
}

val snapshot : unit -> snapshot
(** All registered metrics, each list sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric.  For tests; not atomic with respect to
    concurrent writers. *)
