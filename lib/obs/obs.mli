(** Instrumentation entry points.

    Overhead contract: with tracing disabled, {!with_span} costs one
    atomic load plus the call to [f] — attribute thunks are never
    forced, nothing is recorded.  Sites are coarse-grained (per solve /
    eval / shard / request), never per polynomial term. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_span :
  ?cat:string ->
  ?attrs:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f], recording a complete-span event (with
    the calling domain as [tid]) when tracing is enabled.  Exceptions
    from [f] still record the span and are re-raised with their
    backtrace. *)

val instant :
  ?cat:string -> ?attrs:(unit -> (string * string) list) -> string -> unit
(** Record a point-in-time event (e.g. one solver sweep). *)
