(** Span tracing: a lock-free ring-buffer sink of immutable events with
    Chrome [trace_event] JSON export (load in [chrome://tracing] or
    Perfetto).  Recording is two atomic operations; wraparound
    overwrites the oldest events. *)

type phase = Span | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;  (** µs since process start *)
  dur_us : float;  (** 0 for instants *)
  tid : int;  (** recording domain's id *)
  attrs : (string * string) list;
}

val now_us : unit -> float
(** Microseconds since process start (the trace timebase). *)

val enabled : unit -> bool
(** Initialised from [EDB_TRACE] (["1"]/["true"]/["yes"]/["on"]). *)

val set_enabled : bool -> unit

val record : event -> unit
(** Store unconditionally (callers gate on {!enabled}; {!Obs.with_span}
    does this for you). *)

val events : unit -> event list
(** Retained events, oldest first. *)

val total : unit -> int
(** Events ever recorded (including overwritten ones). *)

val dropped : unit -> int
(** [max 0 (total - capacity)]: events lost to wraparound. *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Replace the sink with an empty one of at least the given capacity
    (rounded up to a power of two).  Also resets {!total}. *)

val clear : unit -> unit
(** Empty the sink, keeping its capacity. *)

val to_json : ?events:event list -> unit -> Edb_util.Json.t
(** Chrome [trace_event] document: [{"traceEvents": [...]}] with
    complete ("X") events for spans and instant ("i") events. *)

val write_file : string -> unit
(** Export the retained events to a Chrome trace JSON file. *)
