(* The instrumentation entry points the engine calls.

   The overhead contract: when tracing is disabled, [with_span] is one
   atomic load and a tail call — no event allocation, and attribute
   lists are thunks so they are never built.  Instrumentation sites are
   coarse-grained (per solve, per eval call, per shard, per request),
   never per polynomial term, so even the enabled path stays far off the
   inner loops. *)

let enabled = Trace.enabled
let set_enabled = Trace.set_enabled

let finish_span ~name ~cat ~attrs t0 =
  let dur = Trace.now_us () -. t0 in
  Trace.record
    {
      name;
      cat;
      ph = Trace.Span;
      ts_us = t0;
      dur_us = dur;
      tid = (Domain.self () :> int);
      attrs = (match attrs with None -> [] | Some g -> g ());
    }

let with_span ?(cat = "edb") ?attrs name f =
  if not (Trace.enabled ()) then f ()
  else begin
    let t0 = Trace.now_us () in
    match f () with
    | v ->
        finish_span ~name ~cat ~attrs t0;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish_span ~name ~cat ~attrs t0;
        Printexc.raise_with_backtrace e bt
  end

let instant ?(cat = "edb") ?attrs name =
  if Trace.enabled () then
    Trace.record
      {
        name;
        cat;
        ph = Trace.Instant;
        ts_us = Trace.now_us ();
        dur_us = 0.;
        tid = (Domain.self () :> int);
        attrs = (match attrs with None -> [] | Some g -> g ());
      }
