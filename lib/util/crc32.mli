(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) over strings,
    bytes, and bigarray byte views.

    Used by the mmap summary format (v3) to checksum its header, manifest,
    and every body section, so any flipped or truncated byte surfaces as a
    detectable [Format_error] instead of a silently wrong answer.  Digests
    are returned as non-negative ints in [\[0, 2^32)]. *)

type bigchar =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val string : string -> int
val bytes : Bytes.t -> int

val bigchar : bigchar -> int
(** Digest of a byte view — typically an [Array1.sub] slice of a mapped
    file, so sections are checksummed in place without copying. *)
