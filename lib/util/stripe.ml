(* Lock-free striped accumulators for cross-domain metrics.

   A stripe set is a small fixed array of [Atomic] cells; each writer
   picks the cell indexed by its domain id, so concurrent updates from
   distinct domains usually touch distinct cells and never lose an
   update ([Atomic.fetch_and_add] / CAS retry make each cell linearizable
   even when domain ids collide modulo the stripe count).  Reads sum the
   cells — a read racing writers sees some linearization of them, which
   is all a monitoring total needs.

   Cells are separate heap blocks, so adjacent stripes may share a cache
   line; that costs throughput under contention, never correctness. *)

let stripes = 16 (* power of two, comfortably above typical domain counts *)
let index () = (Domain.self () :> int) land (stripes - 1)

type counter = int Atomic.t array

let counter () = Array.init stripes (fun _ -> Atomic.make 0)
let add c n = ignore (Atomic.fetch_and_add c.(index ()) n)
let incr c = add c 1
let total c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c
let reset c = Array.iter (fun cell -> Atomic.set cell 0) c

type fsum = float Atomic.t array

let fsum () = Array.init stripes (fun _ -> Atomic.make 0.)

let rec cas_add cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then cas_add cell x

let fadd s x = cas_add s.(index ()) x
let ftotal s = Array.fold_left (fun acc cell -> acc +. Atomic.get cell) 0. s
let freset s = Array.iter (fun cell -> Atomic.set cell 0.) s

type fmax = float Atomic.t

let fmax () = Atomic.make neg_infinity

let rec fmax_update m x =
  let v = Atomic.get m in
  if x > v && not (Atomic.compare_and_set m v x) then fmax_update m x

let fmax_value m = Atomic.get m
let fmax_reset m = Atomic.set m neg_infinity
