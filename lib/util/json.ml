(* Minimal JSON for machine-readable artifacts.

   The bench harness writes one BENCH_<name>.json per experiment so the
   perf trajectory (timings, shard counts, relative errors) is diffable
   across commits, and the obs layer exports Chrome trace_event files.
   The parser exists so tests can check those artifacts are well-formed
   JSON by parsing them back; nothing in the engine's hot paths consumes
   JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null so the files stay
   parseable by strict consumers. *)
let float_repr v =
  if Float.is_finite v then
    let s = Printf.sprintf "%.17g" v in
    (* %.17g prints integral floats bare ("3"); keep them valid either way. *)
    s
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* Recursive-descent parser.  Strict JSON (RFC 8259): no trailing
   commas, no comments, one value per document. *)

exception Parse of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    (* Encode a Unicode scalar value as UTF-8 bytes. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else if cp < 0x10000 then (
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= len then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* Surrogate pair: \uD800-\uDBFF must pair with a low
                   surrogate escape. *)
                if cp >= 0xD800 && cp <= 0xDBFF then (
                  if
                    !pos + 1 < len && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then (
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                  else fail "lone high surrogate")
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail "lone low surrogate"
                else cp
              in
              add_utf8 buf cp;
              loop ()
          | _ -> fail "invalid escape")
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lexeme)
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> Float (float_of_string lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
