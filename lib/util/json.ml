(* Minimal JSON emitter for machine-readable benchmark artifacts.

   The bench harness writes one BENCH_<name>.json per experiment so the
   perf trajectory (timings, shard counts, relative errors) is diffable
   across commits.  Emission only — nothing in the engine consumes JSON —
   so there is no parser and no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null so the files stay
   parseable by strict consumers. *)
let float_repr v =
  if Float.is_finite v then
    let s = Printf.sprintf "%.17g" v in
    (* %.17g prints integral floats bare ("3"); keep them valid either way. *)
    s
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
