(** Sets of integers represented as sorted disjoint inclusive intervals.

    Used throughout EntropyDB for sets of domain value indices: statistic
    projections, query restrictions, and per-attribute polynomial factors.
    Binary operations are linear merges over the interval arrays. *)

type t

val empty : t
val is_empty : t -> bool

val interval : int -> int -> t
(** [interval lo hi] is the inclusive range.  Raises if [hi < lo]. *)

val singleton : int -> t

val of_intervals : (int * int) list -> t
(** Normalizes: drops empty pairs, sorts, coalesces overlapping and adjacent
    intervals. *)

val of_list : int list -> t
val mem : int -> t -> bool
val cardinal : t -> int

val min_elt : t -> int
(** Raises [Invalid_argument] on the empty set. *)

val max_elt : t -> int
val inter : t -> t -> t
val union : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val complement : size:int -> t -> t
(** Complement within the universe [\[0, size)]. *)

val disjoint : t -> t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list

val intervals : t -> (int * int) list
(** The underlying sorted disjoint inclusive intervals. *)

val num_intervals : t -> int

val interval_lo : t -> int -> int
(** [interval_lo r k] is the lower bound of the [k]-th interval (0-based,
    ascending).  Together with {!interval_hi} this gives indexed access
    without materializing the {!intervals} list — hot loops (the
    polynomial kernel) walk intervals allocation-free. *)

val interval_hi : t -> int -> int
val pp : Format.formatter -> t -> unit
