(* Plain-text table rendering for the benchmark harness.

   The bench binary reproduces each of the paper's figures as a table of
   rows; this module renders them with aligned columns so the output is
   readable in a terminal and diffable across runs. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let addf_cell fmt = Printf.sprintf fmt
let cell_float ?(prec = 3) v = Printf.sprintf "%.*f" prec v
let cell_int v = string_of_int v

let title t = t.title
let headers t = t.headers
let rows t = List.rev t.rows

let to_json t =
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("headers", Json.List (List.map (fun h -> Json.Str h) t.headers));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.Str c) row))
             (rows t)) );
    ]

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf
          (pad (List.nth t.aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (max total_width (String.length t.title)) '-');
  Buffer.add_char buf '\n';
  emit_row t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let to_csv t =
  let escape s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows)) ^ "\n"
