(** Lock-free striped accumulators: the primitive under the metrics
    registry and the domain-safe {!Timing} stopwatches.

    Writers update the [Atomic] cell indexed by their domain id; readers
    sum all cells.  No update is ever lost or torn, regardless of how
    many domains write concurrently; a read concurrent with writers
    returns some valid linearization. *)

val stripes : int
(** Number of cells per accumulator (a power of two). *)

val index : unit -> int
(** Stripe index for the calling domain. *)

(** {1 Integer counters} *)

type counter

val counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val total : counter -> int

val reset : counter -> unit
(** Not atomic with respect to concurrent writers; callers quiesce first
    (tests, process shutdown). *)

(** {1 Float sums} *)

type fsum

val fsum : unit -> fsum
val fadd : fsum -> float -> unit

val ftotal : fsum -> float
(** Sum of all cells.  Addition order across stripes is fixed
    (left-to-right), so single-domain use is exactly deterministic. *)

val freset : fsum -> unit

(** {1 Float maxima} *)

type fmax

val fmax : unit -> fmax
(** Starts at [neg_infinity]. *)

val fmax_update : fmax -> float -> unit
val fmax_value : fmax -> float
val fmax_reset : fmax -> unit
