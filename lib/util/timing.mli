(** Wall-clock timing used by the experiment harness (Fig. 7 runtimes).

    Stopwatches are domain-safe: any number of domains may [start]/[stop]
    the same stopwatch concurrently; each domain times its own section
    and no interval is lost or torn. *)

val now_s : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)

type stopwatch

val stopwatch : unit -> stopwatch
val start : stopwatch -> unit

val stop : stopwatch -> unit
(** Accumulates the time since the calling domain's matching [start].
    Raises if this domain has no start in flight. *)

val elapsed : stopwatch -> float
(** Total accumulated seconds across all domains, plus the calling
    domain's currently running interval (other domains' in-flight
    intervals are counted once they [stop]). *)

val samples : stopwatch -> int
(** Number of completed [start]/[stop] intervals across all domains. *)
