(* Lock-free multi-producer / single-consumer queue.

   Producers CAS their item onto the head of an immutable list (a Treiber
   stack); the consumer grabs the whole stack with a single [exchange]
   and reverses it.  Each producer's items therefore come out in the
   order that producer pushed them (its pushes are totally ordered on the
   stack, and one reversal restores them), while items from different
   producers interleave in some linearization of the pushes — exactly the
   guarantee a run queue needs.

   Push is wait-free in the absence of contention and lock-free under it
   (a failed CAS means some other push succeeded); [drain] is one atomic
   exchange plus an O(k) reversal, and never blocks producers.  The same
   stripe-free shape as [Stripe]: a single [Atomic.t] cell, no mutexes,
   safe from any domain or thread. *)

type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec push t x =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (x :: old)) then push t x

let drain t = List.rev (Atomic.exchange t [])
let is_empty t = Atomic.get t = []
let length t = List.length (Atomic.get t)
