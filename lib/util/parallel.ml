(* Chunked parallel folds over index ranges, on OCaml 5 domains.

   The paper's implementation parallelizes polynomial evaluation (Sec. 5,
   Java parallel streams); here the polynomial's term loop is split into
   contiguous chunks, each processed on its own domain, and the per-chunk
   partial results are combined.  Chunk workers must be pure readers of
   shared state — the polynomial guarantees that by refreshing caches
   before spawning.

   Domains are spawned per call.  Spawn cost is tens of microseconds, so
   parallelism only pays off for folds over at least tens of thousands of
   elements; callers gate on a threshold. *)

(* Requested worker count, clamped to the hardware.  Running more domains
   than cores is never faster in OCaml 5 — every minor collection is a
   stop-the-world barrier across all domains, so oversubscribed domains
   turn each collection into a scheduling stall (measured ~6x slowdown
   for an allocation-heavy solver at 4 domains on 1 core).  Only the
   default is clamped; an explicit [~domains] argument to [fold] is
   honoured as given so tests can exercise real multi-domain runs. *)
let default_domains () =
  let requested =
    match Sys.getenv_opt "EDB_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1
  in
  max 1 (min requested (Domain.recommended_domain_count ()))

(* [fold ~domains ~n ~chunk ~combine ~init] splits [0, n) into [domains]
   contiguous chunks, computes [chunk ~lo ~hi] for each (hi exclusive) and
   combines the results left to right, starting from [init].  With
   [domains = 1] it runs in the calling domain. *)
let fold ~domains ~n ~chunk ~combine ~init =
  if n <= 0 then init
  else if domains <= 1 || n < domains then combine init (chunk ~lo:0 ~hi:n)
  else begin
    let per = (n + domains - 1) / domains in
    let bounds =
      List.init domains (fun d ->
          let lo = d * per in
          let hi = min n (lo + per) in
          (lo, hi))
      |> List.filter (fun (lo, hi) -> lo < hi)
    in
    match bounds with
    | [] -> init
    | (lo0, hi0) :: rest ->
        (* Spawn workers for the tail chunks, run the first chunk here. *)
        let handles =
          List.map
            (fun (lo, hi) -> Domain.spawn (fun () -> chunk ~lo ~hi))
            rest
        in
        let first = chunk ~lo:lo0 ~hi:hi0 in
        List.fold_left
          (fun acc h -> combine acc (Domain.join h))
          (combine init first) handles
  end
