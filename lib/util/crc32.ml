(* CRC-32 (IEEE), table-driven, one byte per step.  Arithmetic is done on
   plain ints (the polynomial is 32 bits, so no boxing) with a final mask
   keeping digests in [0, 2^32). *)

type bigchar =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let mask = 0xFFFF_FFFF
let poly = 0xEDB8_8320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let[@inline] step table crc byte =
  Array.unsafe_get table ((crc lxor byte) land 0xff) lxor (crc lsr 8)

let string s =
  let table = Lazy.force table in
  let crc = ref mask in
  for i = 0 to String.length s - 1 do
    crc := step table !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor mask

let bytes b =
  let table = Lazy.force table in
  let crc = ref mask in
  for i = 0 to Bytes.length b - 1 do
    crc := step table !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc lxor mask

let bigchar (buf : bigchar) =
  let table = Lazy.force table in
  let crc = ref mask in
  for i = 0 to Bigarray.Array1.dim buf - 1 do
    crc := step table !crc (Char.code (Bigarray.Array1.unsafe_get buf i))
  done;
  !crc lxor mask
