(** Lock-free multi-producer / single-consumer queue.

    Any number of domains or threads may {!push} concurrently; one
    consumer {!drain}s.  Per-producer FIFO order is preserved: if a
    producer pushes [a] before [b], every drain that contains both
    yields [a] before [b].  Items from different producers appear in
    some linearization of their pushes. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Lock-free; never blocks the caller. *)

val drain : 'a t -> 'a list
(** Remove and return everything pushed so far, oldest first (per
    producer).  Single-consumer: concurrent drains would each get a
    disjoint subset, which is not what a run queue wants — call from
    the owning consumer only. *)

val is_empty : 'a t -> bool
(** Snapshot; racy by nature, useful for idle checks. *)

val length : 'a t -> int
(** Snapshot length (O(n)); monitoring only. *)
