(** Minimal JSON emission for machine-readable benchmark artifacts
    ([BENCH_<name>.json]).  Emission only; no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values emit as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val write_file : string -> t -> unit
(** [write_file path v] writes [to_string v] plus a trailing newline. *)
