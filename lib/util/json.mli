(** Minimal JSON for machine-readable artifacts ([BENCH_<name>.json],
    Chrome trace exports).  Emission plus a strict parser used by tests
    to check artifacts parse back; the engine's hot paths never touch
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values emit as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val write_file : string -> t -> unit
(** [write_file path v] writes [to_string v] plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 parser.  Numbers without ['.'/'e'] parse as [Int]
    when they fit, [Float] otherwise; [\u] escapes decode to UTF-8.
    [Error msg] carries the byte offset of the failure. *)
