(* Sorted sets of disjoint integer intervals.

   EntropyDB manipulates sets of *domain value indices* everywhere: the
   projection of a multi-dimensional statistic onto an attribute, the
   restriction a query places on an attribute, the per-attribute factors of
   compressed polynomial terms.  These sets are unions of a few contiguous
   runs, so we represent them as sorted arrays of disjoint inclusive
   intervals.  All binary operations are linear merges. *)

type t = (int * int) array
(* Invariant: intervals [(lo, hi)] satisfy [lo <= hi], are sorted by [lo],
   and are separated by gaps of at least one ([hi_i + 1 < lo_{i+1}]), i.e.
   adjacent runs are coalesced. *)

let empty : t = [||]
let is_empty (r : t) = Array.length r = 0

let interval lo hi : t =
  if hi < lo then invalid_arg "Ranges.interval: hi < lo";
  [| (lo, hi) |]

let singleton v : t = [| (v, v) |]

let normalize pairs : t =
  let pairs = List.filter (fun (lo, hi) -> lo <= hi) pairs in
  let sorted = List.sort compare pairs in
  let rec merge acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
        match acc with
        | (plo, phi) :: acc' when lo <= phi + 1 ->
            merge ((plo, max phi hi) :: acc') rest
        | _ -> merge ((lo, hi) :: acc) rest)
  in
  Array.of_list (merge [] sorted)

let of_intervals pairs = normalize pairs
let of_list values = normalize (List.map (fun v -> (v, v)) values)

let mem v (r : t) =
  (* Binary search for the interval whose [lo] is the greatest <= v. *)
  let n = Array.length r in
  let rec go lo hi =
    if lo > hi then false
    else
      let mid = (lo + hi) / 2 in
      let a, b = r.(mid) in
      if v < a then go lo (mid - 1)
      else if v > b then go (mid + 1) hi
      else true
  in
  go 0 (n - 1)

let cardinal (r : t) =
  Array.fold_left (fun acc (lo, hi) -> acc + hi - lo + 1) 0 r

let min_elt (r : t) =
  if is_empty r then invalid_arg "Ranges.min_elt: empty" else fst r.(0)

let max_elt (r : t) =
  if is_empty r then invalid_arg "Ranges.max_elt: empty"
  else snd r.(Array.length r - 1)

let inter (a : t) (b : t) : t =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a and nb = Array.length b in
  while !i < na && !j < nb do
    let alo, ahi = a.(!i) and blo, bhi = b.(!j) in
    let lo = max alo blo and hi = min ahi bhi in
    if lo <= hi then out := (lo, hi) :: !out;
    if ahi < bhi then incr i else incr j
  done;
  Array.of_list (List.rev !out)

let union (a : t) (b : t) : t =
  normalize (Array.to_list a @ Array.to_list b)

let diff (a : t) (b : t) : t =
  (* a \ b by sweeping a's intervals against b's. *)
  let out = ref [] in
  let j = ref 0 in
  let nb = Array.length b in
  Array.iter
    (fun (alo, ahi) ->
      let cur = ref alo in
      while !j < nb && snd b.(!j) < alo do incr j done;
      let k = ref !j in
      while !k < nb && fst b.(!k) <= ahi do
        let blo, bhi = b.(!k) in
        if blo > !cur then out := (!cur, min ahi (blo - 1)) :: !out;
        cur := max !cur (bhi + 1);
        if bhi <= ahi then incr k else k := nb
      done;
      if !cur <= ahi then out := (!cur, ahi) :: !out)
    a;
  normalize (List.rev !out)

let complement ~size (r : t) = diff (interval 0 (size - 1)) r

let disjoint a b = is_empty (inter a b)

let subset a b =
  (* a ⊆ b iff a \ b = ∅ *)
  is_empty (diff a b)

let equal (a : t) (b : t) = a = b

let iter f (r : t) =
  Array.iter
    (fun (lo, hi) ->
      for v = lo to hi do
        f v
      done)
    r

let fold f init (r : t) =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) r;
  !acc

let to_list (r : t) = List.rev (fold (fun acc v -> v :: acc) [] r)
let intervals (r : t) = Array.to_list r
let num_intervals (r : t) = Array.length r
let interval_lo (r : t) k = fst r.(k)
let interval_hi (r : t) k = snd r.(k)

let pp ppf (r : t) =
  let pp_iv ppf (lo, hi) =
    if lo = hi then Fmt.int ppf lo else Fmt.pf ppf "%d-%d" lo hi
  in
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any ",") pp_iv) r
