(* Wall-clock timing for the experiment harness.

   Stopwatches are domain-safe: the in-flight start timestamp lives in
   domain-local storage (each domain times its own section), and
   completed intervals accumulate into a striped lock-free sum
   ({!Stripe.fsum}), so Parallel workers can share one stopwatch without
   losing or tearing samples. *)

let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let result = f () in
  (result, now_s () -. t0)

type stopwatch = {
  running : float Domain.DLS.key; (* this domain's start time; nan = idle *)
  acc : Stripe.fsum;
  count : Stripe.counter;
}

let stopwatch () =
  {
    running = Domain.DLS.new_key (fun () -> nan);
    acc = Stripe.fsum ();
    count = Stripe.counter ();
  }

let start sw = Domain.DLS.set sw.running (now_s ())

let stop sw =
  let t0 = Domain.DLS.get sw.running in
  if Float.is_nan t0 then invalid_arg "Timing.stop: not started";
  Domain.DLS.set sw.running nan;
  Stripe.fadd sw.acc (now_s () -. t0);
  Stripe.incr sw.count

let elapsed sw =
  let base = Stripe.ftotal sw.acc in
  let t0 = Domain.DLS.get sw.running in
  if Float.is_nan t0 then base else base +. (now_s () -. t0)

let samples sw = Stripe.total sw.count
