(** Chunked parallel folds over index ranges on OCaml 5 domains (the
    reproduction of the paper's parallel polynomial evaluation).  Chunk
    workers must only read shared state. *)

val default_domains : unit -> int
(** Worker count from the [EDB_DOMAINS] environment variable, clamped to
    [Domain.recommended_domain_count ()] (oversubscribing domains only
    adds GC-barrier stalls); 1 (fully sequential) when unset or
    invalid. *)

val fold :
  domains:int ->
  n:int ->
  chunk:(lo:int -> hi:int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [fold ~domains ~n ~chunk ~combine ~init] splits [\[0, n)] into
    contiguous chunks ([hi] exclusive), evaluates them on separate domains
    (the first in the calling domain), and combines left to right from
    [init].  [domains <= 1] runs sequentially. *)
