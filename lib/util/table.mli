(** Plain-text table rendering for the benchmark and experiment output. *)

type align = Left | Right
type t

val create : title:string -> headers:string list -> ?aligns:align list -> unit -> t
(** Column alignment defaults to [Right] for every column.  Raises if
    [aligns] is given with a different length than [headers]. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the number of cells differs from the number
    of headers. *)

val addf_cell : ('a, unit, string) format -> 'a
(** [Printf.sprintf] re-export for terse cell construction. *)

val cell_float : ?prec:int -> float -> string
val cell_int : int -> string

(** {2 Accessors} *)

val title : t -> string
val headers : t -> string list

val rows : t -> string list list
(** Rows in insertion order. *)

val to_json : t -> Json.t
(** [{title; headers; rows}] — the machine-readable twin of {!render},
    used for the bench harness's [BENCH_<name>.json] artifacts. *)

val render : t -> string
(** Title, rule, header, rule, rows — aligned with two-space gutters. *)

val print : t -> unit

val to_csv : t -> string
(** RFC-4180-style CSV of header plus rows. *)
