(* Tests for the workload harness: hitter selection, the Sec. 6.2 metrics,
   the method abstraction, and the experiment runner. *)

open Edb_util
open Edb_storage
open Edb_workload

let schema2 () =
  Schema.create
    [
      Schema.attr "a" (Domain.int_bins ~lo:0 ~hi:4 ~width:1);
      Schema.attr "b" (Domain.int_bins ~lo:0 ~hi:4 ~width:1);
    ]

(* A relation with known group counts: cell (i, j) occurs i + 5j times for
   a few chosen cells; most of the 25 cells are empty. *)
let known_rel () =
  let rows = ref [] in
  List.iter
    (fun ((i, j), count) ->
      for _ = 1 to count do
        rows := [| i; j |] :: !rows
      done)
    [ ((0, 0), 30); ((1, 0), 20); ((2, 1), 10); ((3, 1), 2); ((4, 2), 1) ];
  Relation.of_rows (schema2 ()) !rows

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_rel_error_formula () =
  Alcotest.(check (float 1e-9)) "exact" 0. (Metrics.rel_error ~truth:10. ~est:10.);
  Alcotest.(check (float 1e-9)) "both zero" 0. (Metrics.rel_error ~truth:0. ~est:0.);
  Alcotest.(check (float 1e-9)) "missed value" 1. (Metrics.rel_error ~truth:5. ~est:0.);
  Alcotest.(check (float 1e-9)) "phantom value" 1. (Metrics.rel_error ~truth:0. ~est:5.);
  Alcotest.(check (float 1e-9)) "half" (1. /. 3.)
    (Metrics.rel_error ~truth:10. ~est:5.)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let rel_error_props =
  let nonneg = QCheck.(map Float.abs (float_bound_exclusive 1e6)) in
  [
    prop "bounded in [0,1]" QCheck.(pair nonneg nonneg) (fun (t, e) ->
        let err = Metrics.rel_error ~truth:t ~est:e in
        err >= 0. && err <= 1.);
    prop "symmetric" QCheck.(pair nonneg nonneg) (fun (t, e) ->
        Float.abs
          (Metrics.rel_error ~truth:t ~est:e -. Metrics.rel_error ~truth:e ~est:t)
        < 1e-12);
  ]

let test_f_measure () =
  (* 3 of 4 light hitters detected; 1 phantom among 4 nulls. *)
  let c =
    Metrics.classify
      ~light_estimates:[ 1.; 2.; 0.; 3. ]
      ~null_estimates:[ 0.; 0.; 5.; 0. ]
  in
  Alcotest.(check (float 1e-9)) "precision" 0.75 (Metrics.precision c);
  Alcotest.(check (float 1e-9)) "recall" 0.75 (Metrics.recall c);
  Alcotest.(check (float 1e-9)) "F" 0.75 (Metrics.f_measure c);
  (* Degenerate cases. *)
  let none = Metrics.classify ~light_estimates:[ 0.; 0. ] ~null_estimates:[ 0. ] in
  Alcotest.(check (float 1e-9)) "no positives -> F 0" 0. (Metrics.f_measure none);
  let perfect =
    Metrics.classify ~light_estimates:[ 1.; 1. ] ~null_estimates:[ 0.; 0. ]
  in
  Alcotest.(check (float 1e-9)) "perfect F" 1. (Metrics.f_measure perfect)

(* ------------------------------------------------------------------ *)
(* Hitters                                                             *)
(* ------------------------------------------------------------------ *)

let test_heavy_light () =
  let rel = known_rel () in
  let heavy = Hitters.heavy rel ~attrs:[ 0; 1 ] ~k:2 in
  Alcotest.(check (list (pair (list int) int)))
    "heavy" [ ([ 0; 0 ], 30); ([ 1; 0 ], 20) ] heavy;
  let light = Hitters.light rel ~attrs:[ 0; 1 ] ~k:2 in
  Alcotest.(check (list (pair (list int) int)))
    "light" [ ([ 4; 2 ], 1); ([ 3; 1 ], 2) ] light

let test_nonexistent () =
  let rel = known_rel () in
  let rng = Prng.create ~seed:3 () in
  let nulls = Hitters.nonexistent rng rel ~attrs:[ 0; 1 ] ~k:10 in
  Alcotest.(check int) "count" 10 (List.length nulls);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare nulls));
  List.iter
    (fun vs ->
      let pred = Hitters.to_predicate ~arity:2 ~attrs:[ 0; 1 ] vs in
      Alcotest.(check int) "truly absent" 0 (Exec.count rel pred))
    nulls

let test_nonexistent_exhaustion () =
  let rel = known_rel () in
  let rng = Prng.create ~seed:4 () in
  (* 25 cells, 5 occupied: only 20 empty combinations exist. *)
  try
    ignore (Hitters.nonexistent rng rel ~attrs:[ 0; 1 ] ~k:21);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Methods + Runner                                                    *)
(* ------------------------------------------------------------------ *)

let test_exact_method_zero_error () =
  let rel = known_rel () in
  let w =
    Hitters.standard (Prng.create ~seed:5 ()) rel ~attrs:[ 0; 1 ]
      ~num_hitters:3 ~num_nulls:5
  in
  let r =
    Runner.run_errors (Methods.exact rel) ~arity:2 ~attrs:[ 0; 1 ]
      ~queries:w.heavy
  in
  Alcotest.(check (float 1e-12)) "exact has zero error" 0. r.avg_error;
  Alcotest.(check string) "name" "Exact" r.method_name

let test_constant_method_error () =
  (* A method that always answers 0 has error 1 on every non-empty query. *)
  let rel = known_rel () in
  let zero = Methods.of_fn ~name:"Zero" (fun _ -> 0.) in
  let w =
    Hitters.standard (Prng.create ~seed:6 ()) rel ~attrs:[ 0; 1 ]
      ~num_hitters:3 ~num_nulls:5
  in
  let r = Runner.run_errors zero ~arity:2 ~attrs:[ 0; 1 ] ~queries:w.heavy in
  Alcotest.(check (float 1e-12)) "all wrong" 1. r.avg_error;
  let f = Runner.run_f zero ~arity:2 ~attrs:[ 0; 1 ] ~light:w.light ~nulls:w.nulls in
  Alcotest.(check (float 1e-12)) "F = 0" 0. f.f_measure

let test_error_differences () =
  let results =
    [
      { Runner.method_name = "A"; avg_error = 0.5; errors = [||];
        avg_seconds = 0.; max_seconds = 0. };
      { Runner.method_name = "Ref"; avg_error = 0.2; errors = [||];
        avg_seconds = 0.; max_seconds = 0. };
      { Runner.method_name = "B"; avg_error = 0.1; errors = [||];
        avg_seconds = 0.; max_seconds = 0. };
    ]
  in
  let diffs = Runner.error_differences ~reference:"Ref" results in
  Alcotest.(check (list (pair string (float 1e-9))))
    "diffs" [ ("A", 0.3); ("B", -0.1) ] diffs;
  Alcotest.check_raises "missing reference"
    (Invalid_argument "Runner.error_differences: no method Nope") (fun () ->
      ignore (Runner.error_differences ~reference:"Nope" results))

(* The full pipeline with a real summary: exact beats the always-zero
   method and the summary sits in between or better. *)
let test_runner_with_summary () =
  let rel = known_rel () in
  let summary = Entropydb_core.Summary.build rel ~joints:[] in
  let w =
    Hitters.standard (Prng.create ~seed:8 ()) rel ~attrs:[ 0; 1 ]
      ~num_hitters:3 ~num_nulls:5
  in
  let methods =
    [ Methods.exact rel; Methods.of_summary summary;
      Methods.of_fn ~name:"Zero" (fun _ -> 0.) ]
  in
  let rs = Runner.run_errors_all methods ~arity:2 ~attrs:[ 0; 1 ] ~queries:w.heavy in
  match rs with
  | [ exact; summ; zero ] ->
      Alcotest.(check bool) "exact best" true (exact.avg_error <= summ.avg_error);
      Alcotest.(check bool) "summary beats zero" true
        (summ.avg_error < zero.avg_error)
  | _ -> Alcotest.fail "wrong result arity"

let test_to_predicate () =
  let p = Hitters.to_predicate ~arity:3 ~attrs:[ 0; 2 ] [ 1; 3 ] in
  Alcotest.(check bool) "matches" true (Predicate.matches_row p [| 1; 9; 3 |]);
  Alcotest.(check bool) "rejects" false (Predicate.matches_row p [| 1; 9; 2 |])

(* run_standard's workload is a pure function of (seed, attrs): repeat
   runs agree bitwise, other attribute sets and consumed streams do not
   interfere, and a different seed actually changes the nulls. *)
let test_run_standard_deterministic () =
  let rel = known_rel () in
  let methods = [ Methods.exact rel; Methods.of_fn ~name:"Zero" (fun _ -> 0.) ] in
  let run () =
    Runner.run_standard ~seed:42 rel methods ~attrs:[ 0; 1 ] ~num_hitters:3
      ~num_nulls:5
  in
  let strip (r : Runner.standard_report) =
    (* Timing fields are wall-clock; compare everything else. *)
    let errs (e : Runner.error_result) = (e.method_name, e.errors) in
    ( r.report_attrs,
      r.workload,
      List.map errs r.heavy,
      List.map errs r.light,
      r.f )
  in
  let a = run () in
  Alcotest.(check bool) "repeat run identical" true (strip a = strip (run ()));
  (* Consuming other workload streams in between must not perturb it. *)
  ignore
    (Runner.run_standard ~seed:42 rel methods ~attrs:[ 1 ] ~num_hitters:2
       ~num_nulls:1);
  ignore
    (Hitters.standard
       (Prng.create ~seed:42 ())
       rel ~attrs:[ 0; 1 ] ~num_hitters:2 ~num_nulls:2);
  Alcotest.(check bool) "unperturbed by other streams" true
    (strip a = strip (run ()));
  let b =
    Runner.run_standard ~seed:43 rel methods ~attrs:[ 0; 1 ] ~num_hitters:3
      ~num_nulls:5
  in
  (* Hitters are data-derived either way; the random part is the nulls. *)
  Alcotest.(check bool) "seed matters" true
    (a.workload.Hitters.nulls <> b.workload.Hitters.nulls)

let test_runner_timing_fields () =
  let rel = known_rel () in
  let w =
    Hitters.standard (Prng.create ~seed:9 ()) rel ~attrs:[ 0; 1 ]
      ~num_hitters:3 ~num_nulls:3
  in
  let r =
    Runner.run_errors (Methods.exact rel) ~arity:2 ~attrs:[ 0; 1 ]
      ~queries:w.heavy
  in
  Alcotest.(check bool) "avg <= max" true (r.avg_seconds <= r.max_seconds +. 1e-12);
  Alcotest.(check bool) "times non-negative" true (r.avg_seconds >= 0.);
  Alcotest.(check int) "one error per query" (List.length w.heavy)
    (Array.length r.errors)

let () =
  Alcotest.run "entropydb-workload"
    [
      ( "metrics",
        Alcotest.test_case "rel_error formula" `Quick test_rel_error_formula
        :: Alcotest.test_case "F measure" `Quick test_f_measure
        :: rel_error_props );
      ( "hitters",
        [
          Alcotest.test_case "heavy/light" `Quick test_heavy_light;
          Alcotest.test_case "nonexistent" `Quick test_nonexistent;
          Alcotest.test_case "nonexistent exhaustion" `Quick
            test_nonexistent_exhaustion;
          Alcotest.test_case "to_predicate" `Quick test_to_predicate;
        ] );
      ( "runner",
        [
          Alcotest.test_case "exact method zero error" `Quick
            test_exact_method_zero_error;
          Alcotest.test_case "constant method" `Quick test_constant_method_error;
          Alcotest.test_case "error differences" `Quick test_error_differences;
          Alcotest.test_case "summary in pipeline" `Quick
            test_runner_with_summary;
          Alcotest.test_case "run_standard deterministic" `Quick
            test_run_standard_deterministic;
          Alcotest.test_case "timing fields" `Quick test_runner_timing_fields;
        ] );
    ]
