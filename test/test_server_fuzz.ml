(* Protocol-fuzz and chaos battery for the pipelined (v2) server.

   Three layers of hostility:
   - qcheck properties over the tagged framing (pure, no sockets):
     round-trips, v1 passthrough, and malformed-tag negatives;
   - adversarial bytes on a live socket: torn frames, interleaved
     v1/v2 requests, bad tags, oversized lines, and random garbage —
     malformed input must yield ERR (or a clean close), never a hang,
     a crash, or a corrupted subsequent exchange;
   - a chaos run: concurrent clients mixing pipelined traffic with
     mid-request disconnects, slow-loris writers, unread responses, and
     garbage, with every completed answer checked bitwise against the
     in-process evaluation, and zero leaked catalog pins at the end —
     plus deadline expiry during a coalesced batch. *)

open Edb_util
open Edb_storage
open Entropydb_core
open Edb_server

(* ------------------------------------------------------------------ *)
(* A tiny summary on disk (mirrors test_server.ml)                     *)
(* ------------------------------------------------------------------ *)

let make_schema sizes =
  Schema.create
    (List.mapi
       (fun i n ->
         Schema.attr
           (Printf.sprintf "a%d" i)
           (Domain.int_bins ~lo:0 ~hi:(n - 1) ~width:1))
       sizes)

let small_relation ~seed sizes rows =
  let schema = make_schema sizes in
  let rng = Prng.create ~seed () in
  let b = Relation.builder ~capacity:rows schema in
  for _ = 1 to rows do
    Relation.add_row b
      (Array.init (List.length sizes) (fun i ->
           Prng.int rng (Schema.domain_size schema i)))
  done;
  Relation.build b

let small_summary ~seed () =
  let rel = small_relation ~seed [ 6; 5; 4 ] 400 in
  let joints =
    [
      Predicate.of_alist ~arity:3
        [ (0, Ranges.interval 0 2); (1, Ranges.interval 1 3) ];
    ]
  in
  Summary.build
    ~solver_config:{ Solver.default_config with log_every = 0 }
    rel ~joints

let temp_dir () =
  let path = Filename.temp_file "edb-test-fuzz" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let saved_summary dir name summary =
  let path = Filename.concat dir (name ^ ".summary") in
  Serialize.save summary path;
  path

let with_server ?(workers = 8) ?(queue_depth = 8) ?(request_deadline = 10.)
    ?(domains = 0) ?(max_inflight = 64)
    ?(max_line_bytes = Server.default_config.max_line_bytes) ?catalog dir f =
  let socket = Filename.concat dir "edb.sock" in
  let server =
    Server.create ?catalog
      {
        Server.default_config with
        unix_socket = Some socket;
        workers;
        queue_depth;
        domains;
        max_inflight;
        max_line_bytes;
        request_deadline;
        idle_timeout = 10.;
      }
  in
  Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server)
    (fun () -> f server socket)

(* ------------------------------------------------------------------ *)
(* Raw-socket helpers (bypassing Client, for hostile byte sequences)   *)
(* ------------------------------------------------------------------ *)

type raw = { fd : Unix.file_descr; ic : in_channel }

let raw_connect ?(timeout = 10.) socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
   with Unix.Unix_error _ -> ());
  { fd; ic = Unix.in_channel_of_descr fd }

let raw_close r = try Unix.close r.fd with Unix.Unix_error _ | Sys_error _ -> ()

(* Best-effort write: the server may legitimately have closed on us. *)
let raw_send r s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      off := !off + Unix.write r.fd b !off (n - !off)
    done;
    true
  with Unix.Unix_error _ | Sys_error _ -> false

type raw_line = Line of string | Eof | Timeout

let raw_line r =
  match input_line r.ic with
  | line -> Line line
  | exception End_of_file -> Eof
  | exception Sys_blocked_io -> Timeout
  | exception Sys_error _ -> Eof
  | exception Unix.Unix_error _ -> Eof

let expect_line what want r =
  match raw_line r with
  | Line l -> Alcotest.(check string) what want l
  | Eof -> Alcotest.failf "%s: unexpected EOF" what
  | Timeout -> Alcotest.failf "%s: timed out" what

(* Read one complete response (tagged or not); payload lines dropped. *)
let skim_response r =
  match raw_line r with
  | (Eof | Timeout) as x -> x
  | Line header -> (
      match Protocol.parse_tagged_header header with
      | Error _ -> Line header (* malformed is the caller's business *)
      | Ok (_, Protocol.Error_line _) -> Line header
      | Ok (_, Protocol.Payload k) ->
          let rec burn i =
            if i = 0 then Line header
            else
              match raw_line r with
              | Line _ -> burn (i - 1)
              | (Eof | Timeout) as x -> x
          in
          burn k)

(* ------------------------------------------------------------------ *)
(* qcheck: tagged framing                                              *)
(* ------------------------------------------------------------------ *)

let tag_gen =
  QCheck.Gen.(
    let tag_char =
      oneof
        [
          char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9';
          oneofl [ '_'; '-'; '.' ];
        ]
    in
    string_size ~gen:tag_char (int_range 1 32))

let word_gen =
  QCheck.Gen.(
    let word_char =
      oneof [ char_range 'a' 'z'; char_range '0' '9'; oneofl [ '-'; '_' ] ]
    in
    string_size ~gen:word_char (int_range 1 10))

let request_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.List;
        return Protocol.Stats;
        map (fun v -> Protocol.Hello v) word_gen;
        map2
          (fun name sql -> Protocol.Query { name; sql })
          word_gen
          (map (fun w -> "SELECT COUNT(*) FROM f WHERE a0 = 1 -- " ^ w) word_gen);
      ])

let response_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun lines -> Protocol.Ok lines) (list_size (int_range 0 4) word_gen);
        map2
          (fun code message -> Protocol.Err { code; message })
          word_gen word_gen;
      ])

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let tagged_request_roundtrip =
  prop "tagged request round-trip"
    (QCheck.make
       ~print:(fun (id, r) -> Protocol.print_tagged_request id r)
       QCheck.Gen.(pair tag_gen request_gen))
    (fun (id, r) ->
      Protocol.valid_tag id
      && Protocol.split_tag (Protocol.print_tagged_request id r)
         = Ok (Some id, Protocol.print_request r))

let tagged_response_roundtrip =
  prop "tagged response-header round-trip"
    (QCheck.make
       ~print:(fun (id, r) ->
         String.concat "\\n" (Protocol.print_tagged_response (Some id) r))
       QCheck.Gen.(pair tag_gen response_gen))
    (fun (id, r) ->
      match Protocol.print_tagged_response (Some id) r with
      | [] -> false
      | header :: payload -> (
          (* Payload lines stay untagged; only the header carries the id. *)
          List.length payload = List.length (List.tl (("x" :: payload)))
          &&
          match (Protocol.parse_tagged_header header, r) with
          | Ok (Some id', Protocol.Payload k), Protocol.Ok lines ->
              id' = id && k = List.length lines
          | Ok (Some id', Protocol.Error_line { code; message }), Protocol.Err e
            ->
              id' = id && code = e.code && message = e.message
          | _ -> false))

let untagged_passthrough =
  prop "untagged lines pass through (v1)"
    (QCheck.make ~print:Protocol.print_request
       (QCheck.Gen.map
          (fun r -> r)
          request_gen))
    (fun r ->
      let line = Protocol.print_request r in
      Protocol.split_tag line = Ok (None, line)
      &&
      match Protocol.print_response (Protocol.Ok [ "x" ]) with
      | header :: _ ->
          Protocol.parse_tagged_header header = Ok (None, Protocol.Payload 1)
      | [] -> false)

let test_tag_negatives () =
  let bad s =
    match Protocol.split_tag s with
    | Error _ -> ()
    | Ok (tag, rest) ->
        Alcotest.failf "split %S as (%s, %S)" s
          (Option.value tag ~default:"<none>")
          rest
  in
  bad "@";
  bad "@ PING";
  bad "@!x PING";
  bad "@x! PING";
  bad "@@x PING";
  bad ("@" ^ String.make 33 'a' ^ " PING");
  bad "@id";
  bad "@id   ";
  (* Tab is a separator, like space. *)
  (match Protocol.split_tag "@id\tPING" with
  | Ok (Some "id", "PING") -> ()
  | _ -> Alcotest.fail "tab-separated tag should split");
  (* Boundary: a 32-char tag is the longest legal one. *)
  (match Protocol.split_tag ("@" ^ String.make 32 'a' ^ " PING") with
  | Ok (Some t, "PING") -> Alcotest.(check int) "32-char tag" 32 (String.length t)
  | _ -> Alcotest.fail "32-char tag rejected");
  Alcotest.check_raises "print_tagged_request rejects bad id"
    (Invalid_argument "Protocol.print_tagged_request: bad id") (fun () ->
      ignore (Protocol.print_tagged_request "no spaces" Protocol.Ping));
  match Protocol.parse_tagged_header "@!! OK 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed response tag accepted"

(* ------------------------------------------------------------------ *)
(* Adversarial bytes on a live socket                                  *)
(* ------------------------------------------------------------------ *)

let sql_probe = "SELECT COUNT(*) FROM f WHERE a0 IN [0,2]"

let setup_catalog dir =
  let summary = small_summary ~seed:211 () in
  let path = saved_summary dir "s" summary in
  let catalog = Catalog.create () in
  (match Catalog.load catalog ~name:"s" ~path with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let arity = Schema.arity (Summary.schema summary) in
  let expected =
    Summary.estimate summary
      (Predicate.of_alist ~arity [ (0, Ranges.interval 0 2) ])
  in
  (catalog, expected)

let read_estimate r =
  match raw_line r with
  | Line header -> (
      match Protocol.parse_tagged_header header with
      | Ok (_, Protocol.Payload k) ->
          let payload = List.init k (fun _ -> raw_line r) in
          List.find_map
            (function
              | Line l -> (
                  match String.split_on_char ' ' l with
                  | [ "estimate"; v ] -> float_of_string_opt v
                  | _ -> None)
              | Eof | Timeout -> None)
            payload
      | _ -> None)
  | Eof | Timeout -> None

let check_estimate what expected r =
  match read_estimate r with
  | Some v ->
      Alcotest.(check bool) what true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float expected))
  | None -> Alcotest.failf "%s: no estimate" what

let test_torn_frames () =
  let dir = temp_dir () in
  let catalog, expected = setup_catalog dir in
  with_server ~catalog dir (fun _ socket ->
      let r = raw_connect socket in
      (* An untagged request torn into four writes. *)
      List.iter
        (fun piece ->
          Alcotest.(check bool) "send" true (raw_send r piece);
          Thread.delay 0.01)
        [ "QUE"; "RY s "; sql_probe; "\n" ];
      check_estimate "torn v1 frame answers exactly" expected r;
      (* A tagged frame torn mid-tag and mid-SQL. *)
      List.iter
        (fun piece ->
          Alcotest.(check bool) "send" true (raw_send r piece);
          Thread.delay 0.01)
        [ "@a"; "b7 QUERY s "; String.sub sql_probe 0 10;
          String.sub sql_probe 10 (String.length sql_probe - 10); "\n" ];
      (match raw_line r with
      | Line header -> (
          match Protocol.parse_tagged_header header with
          | Ok (Some "ab7", Protocol.Payload k) ->
              for _ = 1 to k do ignore (raw_line r) done
          | _ -> Alcotest.failf "bad tagged header %S" header)
      | Eof | Timeout -> Alcotest.fail "torn tagged frame: no response");
      raw_close r)

let test_interleaved_versions () =
  let dir = temp_dir () in
  let catalog, _ = setup_catalog dir in
  with_server ~catalog dir (fun _ socket ->
      let r = raw_connect socket in
      (* v2, v1, v2 on one connection, one write: responses come back in
         order, tags echoed exactly where they were sent. *)
      Alcotest.(check bool) "send" true
        (raw_send r "@a PING\nPING\n@b HELLO EDB/2\n");
      expect_line "tagged ping header" "@a OK 1" r;
      expect_line "tagged ping payload" "pong" r;
      expect_line "untagged ping header" "OK 1" r;
      expect_line "untagged ping payload" "pong" r;
      expect_line "tagged hello header" "@b OK 1" r;
      expect_line "tagged hello payload" "EDB/2 entropydb-server" r;
      (* v1 HELLO still accepted on the same connection (downgrade). *)
      Alcotest.(check bool) "send" true (raw_send r "HELLO EDB/1\n");
      expect_line "v1 hello header" "OK 1" r;
      expect_line "v1 hello payload" "EDB/1 entropydb-server" r;
      raw_close r)

let test_bad_tags_on_wire () =
  let dir = temp_dir () in
  let catalog, expected = setup_catalog dir in
  with_server ~catalog dir (fun _ socket ->
      let r = raw_connect socket in
      List.iter
        (fun line ->
          Alcotest.(check bool) "send" true (raw_send r (line ^ "\n"));
          match raw_line r with
          | Line l ->
              Alcotest.(check bool)
                (Printf.sprintf "%S answers untagged ERR, got %S" line l)
                true
                (String.length l >= 9 && String.sub l 0 9 = "ERR proto")
          | Eof -> Alcotest.failf "%S: connection dropped" line
          | Timeout -> Alcotest.failf "%S: no response (hang)" line)
        [
          "@";
          "@ PING";
          "@!bad PING";
          "@" ^ String.make 33 'x' ^ " PING";
          "@noreq";
        ];
      (* The connection survives every malformed frame. *)
      Alcotest.(check bool) "send" true
        (raw_send r (Printf.sprintf "@ok QUERY s %s\n" sql_probe));
      check_estimate "still serves exactly after bad tags" expected r;
      raw_close r)

let test_oversized_line () =
  let dir = temp_dir () in
  let catalog, _ = setup_catalog dir in
  with_server ~catalog ~max_line_bytes:1024 dir (fun _ socket ->
      let r = raw_connect socket in
      (* 4 KiB with no newline: the server must answer ERR proto and
         close, not buffer forever or die. *)
      ignore (raw_send r (String.make 4096 'x'));
      (match raw_line r with
      | Line l ->
          Alcotest.(check bool) ("oversized gets ERR proto: " ^ l) true
            (String.length l >= 9 && String.sub l 0 9 = "ERR proto")
      | Eof -> Alcotest.fail "oversized line: closed without ERR"
      | Timeout -> Alcotest.fail "oversized line: no response (hang)");
      (match raw_line r with
      | Eof -> ()
      | Line l -> Alcotest.failf "expected close after oversized, got %S" l
      | Timeout -> Alcotest.fail "expected close after oversized, got hang");
      raw_close r;
      (* And the server is still healthy. *)
      let r2 = raw_connect socket in
      Alcotest.(check bool) "send" true (raw_send r2 "PING\n");
      expect_line "healthy after oversized" "OK 1" r2;
      expect_line "pong" "pong" r2;
      raw_close r2)

let test_garbage_fuzz () =
  let dir = temp_dir () in
  let catalog, expected = setup_catalog dir in
  with_server ~catalog dir (fun _ socket ->
      let rng = Prng.create ~seed:4242 () in
      let garbage_byte () =
        match Prng.int rng 6 with
        | 0 -> '\n'
        | 1 -> '@'
        | 2 -> ' '
        | 3 -> Char.chr (Prng.int rng 256)
        | 4 -> Char.chr (32 + Prng.int rng 95)
        | _ -> [ 'Q'; 'U'; 'E'; 'R'; 'Y'; 'P'; 'I'; 'N'; 'G' ]
               |> fun l -> List.nth l (Prng.int rng (List.length l))
      in
      for _round = 1 to 40 do
        (* Short receive timeout: blank-line garbage legitimately gets
           no response at all, and waiting proves nothing. *)
        let r = raw_connect ~timeout:0.2 socket in
        let len = 1 + Prng.int rng 200 in
        let s = String.init len (fun _ -> garbage_byte ()) in
        ignore (raw_send r (s ^ "\n"));
        (* Drain whatever comes back — ERR lines, OK payloads, a close,
           or nothing; the only forbidden outcomes are a hang or a
           crash. *)
        let rec burn budget =
          if budget > 0 then
            match skim_response r with
            | Line _ -> burn (budget - 1)
            | Eof | Timeout -> ()
        in
        burn 8;
        raw_close r
      done;
      (* After the storm: exact service on a fresh connection. *)
      let r = raw_connect socket in
      Alcotest.(check bool) "send" true
        (raw_send r (Printf.sprintf "QUERY s %s\n" sql_probe));
      check_estimate "exact after garbage storm" expected r;
      raw_close r;
      let st = Catalog.stats catalog in
      Alcotest.(check int) "no leaked pins" 0 st.Catalog.pinned)

(* ------------------------------------------------------------------ *)
(* Chaos: concurrent hostile clients                                   *)
(* ------------------------------------------------------------------ *)

let test_chaos () =
  let dir = temp_dir () in
  let summary = small_summary ~seed:231 () in
  let path = saved_summary dir "s" summary in
  let catalog = Catalog.create () in
  (match Catalog.load catalog ~name:"s" ~path with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let arity = Schema.arity (Summary.schema summary) in
  let pool =
    Array.init 8 (fun k ->
        let lo = k mod 3 and hi = 2 + (k mod 3) in
        let sql =
          Printf.sprintf "SELECT COUNT(*) FROM f WHERE a0 IN [%d,%d]" lo hi
        in
        let q = Predicate.of_alist ~arity [ (0, Ranges.interval lo hi) ] in
        (sql, Summary.estimate summary q))
  in
  with_server ~workers:8 ~queue_depth:8 ~catalog dir (fun server socket ->
      let wrong = Atomic.make 0 and hung = Atomic.make 0 in
      let chaos_thread tid =
        let rng = Prng.create ~seed:(1000 + tid) () in
        for _round = 1 to 8 do
          match Prng.int rng 6 with
          | 0 -> (
              (* Pipelined window, fully verified. *)
              match Client.connect ~timeout:10. (Client.Unix_socket socket) with
              | Error _ -> () (* busy under churn is legitimate *)
              | Ok c ->
                  let reqs =
                    List.init 8 (fun i ->
                        let sql, _ = pool.((tid + i) mod Array.length pool) in
                        Protocol.Query { name = "s"; sql })
                  in
                  (match Client.pipelined c reqs with
                  | Error _ -> Atomic.incr hung
                  | Ok responses ->
                      List.iteri
                        (fun i resp ->
                          let _, expected =
                            pool.((tid + i) mod Array.length pool)
                          in
                          match resp with
                          | Protocol.Err { code; _ }
                            when code = Protocol.err_busy ->
                              ()
                          | Protocol.Err _ -> Atomic.incr wrong
                          | Protocol.Ok payload -> (
                              match Client.estimate_of_payload payload with
                              | Some v
                                when Int64.equal (Int64.bits_of_float v)
                                       (Int64.bits_of_float expected) ->
                                  ()
                              | _ -> Atomic.incr wrong))
                        responses);
                  ignore (Client.quit c))
          | 1 -> (
              (* Mid-request disconnect: a torn frame, then vanish. *)
              match raw_connect socket with
              | r ->
                  ignore (raw_send r "@t1 QUERY s SELECT COU");
                  raw_close r
              | exception Unix.Unix_error _ -> ())
          | 2 -> (
              (* Slow loris: one byte at a time, then expect the exact
                 answer anyway. *)
              match raw_connect socket with
              | r ->
                  let sql, expected = pool.(tid mod Array.length pool) in
                  let line = Printf.sprintf "@slow QUERY s %s\n" sql in
                  let ok =
                    String.for_all
                      (fun ch ->
                        Thread.yield ();
                        raw_send r (String.make 1 ch))
                      line
                  in
                  (if ok then
                     match read_estimate r with
                     | Some v
                       when Int64.equal (Int64.bits_of_float v)
                              (Int64.bits_of_float expected) ->
                         ()
                     | Some _ -> Atomic.incr wrong
                     | None -> () (* rejected/closed under churn: fine *));
                  raw_close r
              | exception Unix.Unix_error _ -> ())
          | 3 -> (
              (* Garbage, then a real query on the same connection. *)
              match raw_connect socket with
              | r ->
                  let sql, expected = pool.(tid mod Array.length pool) in
                  ignore (raw_send r "%%% not a request\n");
                  (match skim_response r with
                  | Line _ -> (
                      ignore (raw_send r (Printf.sprintf "QUERY s %s\n" sql));
                      match read_estimate r with
                      | Some v
                        when Int64.equal (Int64.bits_of_float v)
                               (Int64.bits_of_float expected) ->
                          ()
                      | Some _ -> Atomic.incr wrong
                      | None -> ())
                  | Eof | Timeout -> ());
                  raw_close r
              | exception Unix.Unix_error _ -> ())
          | 4 -> (
              (* Pipeline and leave without reading: the server's writes
                 hit a closed peer; it must just reap the connection. *)
              match raw_connect socket with
              | r ->
                  let sql, _ = pool.(tid mod Array.length pool) in
                  ignore
                    (raw_send r
                       (String.concat ""
                          (List.init 8 (fun i ->
                               Printf.sprintf "@x%d QUERY s %s\n" i sql))));
                  raw_close r
              | exception Unix.Unix_error _ -> ())
          | _ -> (
              (* Plain lockstep client, verified. *)
              match Client.connect ~timeout:10. (Client.Unix_socket socket) with
              | Error _ -> ()
              | Ok c ->
                  let sql, expected = pool.(tid mod Array.length pool) in
                  (match Client.query c ~name:"s" ~sql with
                  | Error m
                    when String.length m >= 4 && String.sub m 0 4 = "busy" ->
                      ()
                  | Error _ -> Atomic.incr hung
                  | Ok payload -> (
                      match Client.estimate_of_payload payload with
                      | Some v
                        when Int64.equal (Int64.bits_of_float v)
                               (Int64.bits_of_float expected) ->
                          ()
                      | _ -> Atomic.incr wrong));
                  ignore (Client.quit c))
        done
      in
      let threads = List.init 6 (fun i -> Thread.create chaos_thread i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "0 wrong answers under chaos" 0 (Atomic.get wrong);
      Alcotest.(check int) "0 hung/failed verified exchanges" 0
        (Atomic.get hung);
      (* No connection leaked a catalog pin. *)
      let st = Catalog.stats catalog in
      Alcotest.(check int) "0 leaked pins" 0 st.Catalog.pinned;
      (* And the server still answers, exactly. *)
      let r = raw_connect socket in
      let sql, expected = pool.(0) in
      Alcotest.(check bool) "send" true
        (raw_send r (Printf.sprintf "QUERY s %s\n" sql));
      (match read_estimate r with
      | Some v ->
          Alcotest.(check bool) "exact after chaos" true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float expected))
      | None -> Alcotest.fail "no answer after chaos");
      raw_close r;
      ignore server);
  (* with_server's finally ran stop+wait: drain must have been clean
     (wait returned) and the socket unlinked. *)
  Alcotest.(check bool) "socket unlinked after drain" true
    (not (Sys.file_exists (Filename.concat dir "edb.sock")))

(* Deadline expiry during a coalesced batch: all waiters of the shared
   evaluation must see the same ERR timeout — no waiter hangs, none gets
   a half-answer. *)
let test_deadline_in_batch () =
  let dir = temp_dir () in
  let summary = small_summary ~seed:241 () in
  let path = saved_summary dir "s" summary in
  let catalog = Catalog.create () in
  (match Catalog.load catalog ~name:"s" ~path with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  with_server ~request_deadline:1e-9 ~domains:1 ~catalog dir
    (fun server socket ->
      match Client.connect ~timeout:10. (Client.Unix_socket socket) with
      | Error m -> Alcotest.fail m
      | Ok c ->
          let reqs =
            List.init 8 (fun _ ->
                Protocol.Query
                  { name = "s"; sql = "SELECT COUNT(*) FROM f WHERE a0 = 1" })
          in
          (match Client.pipelined c reqs with
          | Error m -> Alcotest.fail m
          | Ok responses ->
              Alcotest.(check int) "all eight answered" 8
                (List.length responses);
              List.iter
                (fun resp ->
                  match resp with
                  | Protocol.Err { code; _ } ->
                      Alcotest.(check string) "timeout code"
                        Protocol.err_timeout code
                  | Protocol.Ok _ -> Alcotest.fail "expected ERR timeout")
                responses);
          ignore (Client.quit c);
          let timeouts =
            (Metrics.snapshot (Server.metrics server)).Metrics.timeouts
          in
          Alcotest.(check bool) "timeout counted" true (timeouts >= 1))

(* ------------------------------------------------------------------ *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "server-fuzz"
    [
      ( "tagged-framing",
        [
          tagged_request_roundtrip;
          tagged_response_roundtrip;
          untagged_passthrough;
          Alcotest.test_case "tag negatives" `Quick test_tag_negatives;
        ] );
      ( "adversarial-bytes",
        [
          Alcotest.test_case "torn frames" `Quick test_torn_frames;
          Alcotest.test_case "interleaved v1/v2" `Quick
            test_interleaved_versions;
          Alcotest.test_case "bad tags on the wire" `Quick
            test_bad_tags_on_wire;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "garbage storm" `Quick test_garbage_fuzz;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hostile concurrent clients" `Quick test_chaos;
          Alcotest.test_case "deadline inside a coalesced batch" `Quick
            test_deadline_in_batch;
        ] );
    ]
