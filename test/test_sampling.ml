(* Tests for the sampling baselines: sizes and weights, stratified
   allocation invariants (qcheck), per-stratum coverage, and statistical
   unbiasedness of the Horvitz–Thompson estimators. *)

open Edb_util
open Edb_storage
open Edb_sampling

let schema2 () =
  Schema.create
    [
      Schema.attr "g" (Domain.int_bins ~lo:0 ~hi:4 ~width:1);
      Schema.attr "x" (Domain.int_bins ~lo:0 ~hi:9 ~width:1);
    ]

(* Skewed relation: stratum g has roughly 4^g rows, giving tiny and huge
   strata. *)
let skewed_relation rows seed =
  let rng = Prng.create ~seed () in
  let b = Relation.builder (schema2 ()) in
  let weights = Array.init 5 (fun g -> 4. ** float_of_int g) in
  let dist = Prng.Categorical.create weights in
  for _ = 1 to rows do
    Relation.add_row b [| Prng.Categorical.sample dist rng; Prng.int rng 10 |]
  done;
  Relation.build b

(* ------------------------------------------------------------------ *)
(* Uniform                                                             *)
(* ------------------------------------------------------------------ *)

let test_uniform_size_and_weight () =
  let rel = skewed_relation 10_000 1 in
  let s = Uniform.create (Prng.create ~seed:2 ()) ~rate:0.01 rel in
  Alcotest.(check int) "size" 100 (Sample.size s);
  Alcotest.(check int) "source" 10_000 (Sample.source_cardinality s);
  Alcotest.(check (float 1e-9)) "total weight = n" 10_000.
    (Sample.estimate_count s (Predicate.tautology 2))

let test_uniform_rejects_bad_rate () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Uniform.create: rate must be in (0, 1]") (fun () ->
      ignore (Uniform.create (Prng.create ()) ~rate:0. rel))

let test_uniform_unbiased () =
  (* Average of many independent sample estimates approaches the truth. *)
  let rel = skewed_relation 5_000 3 in
  let pred = Predicate.point ~arity:2 [ (0, 3) ] in
  let truth = float_of_int (Exec.count rel pred) in
  let rng = Prng.create ~seed:4 () in
  let reps = 300 in
  let estimates =
    Array.init reps (fun _ ->
        Sample.estimate_count (Uniform.create rng ~rate:0.02 rel) pred)
  in
  let mean = Floatx.mean estimates in
  (* 4-sigma tolerance on the mean of means. *)
  let se = Floatx.stddev estimates /. sqrt (float_of_int reps) in
  if Float.abs (mean -. truth) > (4. *. se) +. 1e-6 then
    Alcotest.failf "biased: mean %.2f vs truth %.2f (se %.2f)" mean truth se

(* ------------------------------------------------------------------ *)
(* Stratified allocation (qcheck invariants)                           *)
(* ------------------------------------------------------------------ *)

(* Sizes may include empty strata, and budgets/floors reach down to 0 —
   the degenerate corners the allocator must survive. *)
let sizes_arb =
  QCheck.(
    make
      ~print:Print.(pair (list int) (pair int int) |> fun p -> p)
      Gen.(
        pair
          (list_size (int_range 1 12) (int_range 0 500))
          (pair (int_range 0 300) (int_range 0 10))))

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name sizes_arb f)

let allocation_props =
  [
    prop "never exceeds stratum size" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        Array.for_all2 (fun a s -> a <= s) alloc sizes);
    prop "sums to exactly min(budget, total)" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        let total = Array.fold_left ( + ) 0 sizes in
        Array.fold_left ( + ) 0 alloc = min budget total);
    prop "non-negative" (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        Array.for_all (fun a -> a >= 0) alloc);
    prop "small strata fully covered when budget allows"
      (fun (sizes, (budget, floor_)) ->
        let sizes = Array.of_list sizes in
        let alloc =
          Stratified.allocate ~budget ~floor_per_stratum:floor_ sizes
        in
        let n = Array.length sizes in
        if n * floor_ <= budget then
          Array.for_all2 (fun a s -> a >= min s floor_) alloc sizes
        else true);
  ]

(* ------------------------------------------------------------------ *)
(* Stratified sampling                                                 *)
(* ------------------------------------------------------------------ *)

let test_stratified_covers_small_strata () =
  let rel = skewed_relation 10_000 5 in
  let s =
    Stratified.create (Prng.create ~seed:6 ()) ~rate:0.01 ~attrs:[ 0 ] rel
  in
  (* Every existing stratum value must appear in the sample — the whole
     point of stratification (a 1% uniform sample would likely miss
     stratum 0, which has ~30 rows). *)
  for g = 0 to 4 do
    let truth = Exec.count rel (Predicate.point ~arity:2 [ (0, g) ]) in
    if truth > 0 then begin
      let est =
        Sample.estimate_count s (Predicate.point ~arity:2 [ (0, g) ])
      in
      if est <= 0. then Alcotest.failf "stratum %d missing from sample" g
    end
  done

let test_stratified_per_stratum_totals () =
  (* Within each stratum, the weighted sample total equals the stratum size
     exactly (weights are size/alloc). *)
  let rel = skewed_relation 8_000 7 in
  let s =
    Stratified.create (Prng.create ~seed:8 ()) ~rate:0.02 ~attrs:[ 0 ] rel
  in
  for g = 0 to 4 do
    let pred = Predicate.point ~arity:2 [ (0, g) ] in
    let truth = float_of_int (Exec.count rel pred) in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "stratum %d total" g)
      truth
      (Sample.estimate_count s pred)
  done

let test_stratified_group_estimate () =
  let rel = skewed_relation 8_000 9 in
  let s =
    Stratified.create (Prng.create ~seed:10 ()) ~rate:0.02 ~attrs:[ 0 ] rel
  in
  let groups = Sample.estimate_group_count s ~attrs:[ 0 ] (Predicate.tautology 2) in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. groups in
  Alcotest.(check (float 1e-6)) "weighted group total = n" 8_000. total

let test_stratified_rejects_empty_attrs () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "no attrs"
    (Invalid_argument "Stratified.create: no stratification attrs") (fun () ->
      ignore (Stratified.create (Prng.create ()) ~rate:0.1 ~attrs:[] rel))

let test_sample_weights_length_guard () =
  let rel = skewed_relation 100 1 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Sample.create: weights/rows mismatch") (fun () ->
      ignore
        (Sample.create ~data:rel ~weights:[| 1. |] ~source_cardinality:100
           ~description:"bad" ()))

(* ------------------------------------------------------------------ *)
(* Horvitz–Thompson variance (differential against a naive             *)
(* reimplementation of the per-stratum FPC formula)                    *)
(* ------------------------------------------------------------------ *)

(* Independent recomputation for single-stratum (uniform) designs: count
   matches by brute force over the sampled rows, then apply
   N²(1−k/N)·p̃(1−p̃)/max(k−1,1) with the endpoint clamp the library
   documents. *)
let naive_count_variance s pred =
  let strata = Sample.strata s in
  let data = Sample.data s in
  assert (Array.length strata = 1);
  let matched = Array.make (Array.length strata) 0 in
  Relation.iteri
    (fun _ row -> if Predicate.matches_row pred row then
        matched.(0) <- matched.(0) + 1)
    data;
  Array.to_list strata
  |> List.mapi (fun h (st : Sample.stratum) ->
         let n = float_of_int st.population and k = float_of_int st.drawn in
         if st.population = 0 || st.drawn >= st.population then 0.
         else if st.drawn = 0 then 0.25 *. n *. n
         else begin
           let p = float_of_int matched.(h) /. k in
           let lo = 1. /. (2. *. k) in
           let p = Float.min (1. -. lo) (Float.max lo p) in
           n *. n *. (1. -. (k /. n)) *. p *. (1. -. p)
           /. Float.max 1. (k -. 1.)
         end)
  |> List.fold_left ( +. ) 0.

let test_uniform_variance_differential () =
  let rel = skewed_relation 5_000 21 in
  let s = Uniform.create (Prng.create ~seed:22 ()) ~rate:0.05 rel in
  let preds =
    [
      Predicate.tautology 2;
      Predicate.point ~arity:2 [ (0, 3) ];
      Predicate.point ~arity:2 [ (0, 0) ];
      (* likely missed: ~30 rows at 5% *)
      Predicate.of_alist ~arity:2 [ (1, Ranges.interval 2 7) ];
      Predicate.point ~arity:2 [ (0, 1); (1, 9) ];
    ]
  in
  List.iter
    (fun pred ->
      let est, var = Sample.estimate_with_variance s pred in
      Alcotest.(check (float 0.))
        "estimate bitwise = estimate_count"
        (Sample.estimate_count s pred)
        est;
      Alcotest.(check (float 1e-6))
        "variance matches naive recomputation"
        (naive_count_variance s pred)
        var;
      Alcotest.(check bool) "variance non-negative" true (var >= 0.))
    preds

let test_variance_floor_on_missed_values () =
  (* A rare value absent from the sample must still report positive
     variance: zero would claim certainty about a count the sample never
     observed (the planner would then mis-route). *)
  let rel = skewed_relation 5_000 23 in
  let s = Uniform.create (Prng.create ~seed:24 ()) ~rate:0.01 rel in
  let pred = Predicate.point ~arity:2 [ (0, 0); (1, 7) ] in
  let est, var = Sample.estimate_with_variance s pred in
  if est = 0. then
    Alcotest.(check bool) "missed value still has variance" true (var > 0.)
  else Alcotest.(check bool) "variance positive" true (var > 0.)

let test_census_variance_zero () =
  (* rate 1.0 draws every row: a census has no sampling error. *)
  let rel = skewed_relation 500 25 in
  let s = Uniform.create (Prng.create ~seed:26 ()) ~rate:1.0 rel in
  let pred = Predicate.point ~arity:2 [ (0, 2) ] in
  let est, var = Sample.estimate_with_variance s pred in
  Alcotest.(check (float 1e-9))
    "census estimate exact"
    (float_of_int (Exec.count rel pred))
    est;
  Alcotest.(check (float 0.)) "census variance zero" 0. var;
  let sum_est, sum_var = Sample.estimate_sum_with_variance s ~attr:1 pred in
  Alcotest.(check (float 1e-6)) "census sum exact" (Exec.sum rel ~attr:1 pred)
    sum_est;
  Alcotest.(check (float 0.)) "census sum variance zero" 0. sum_var

let test_stratified_variance_census_strata () =
  (* Small strata are drawn completely (floor ≥ size): their contribution
     to the variance must be zero, and overall variance is finite and
     non-negative on every predicate. *)
  let rel = skewed_relation 8_000 27 in
  let s =
    Stratified.create (Prng.create ~seed:28 ()) ~rate:0.02 ~attrs:[ 0 ] rel
  in
  (* Stratum 0 has ~30 rows: with floor 4 it may or may not be a census,
     but its per-stratum total is exact either way; the per-stratum
     predicate's variance comes only from within-stratum sampling. *)
  for g = 0 to 4 do
    let pred = Predicate.point ~arity:2 [ (0, g) ] in
    let est, var = Sample.estimate_with_variance s pred in
    Alcotest.(check (float 0.))
      "stratified estimate bitwise = estimate_count"
      (Sample.estimate_count s pred)
      est;
    Alcotest.(check bool) "variance finite and non-negative" true
      (Float.is_finite var && var >= 0.)
  done;
  (* The whole-table count is exact by construction (per-stratum totals
     are size/alloc-weighted), and census strata contribute 0 variance. *)
  let strata = Sample.strata s in
  let census =
    Array.for_all (fun (st : Sample.stratum) -> st.drawn = st.population) strata
  in
  if census then begin
    let _, var = Sample.estimate_with_variance s (Predicate.tautology 2) in
    Alcotest.(check (float 0.)) "all-census variance zero" 0. var
  end

let test_stratified_group_variance_totals () =
  let rel = skewed_relation 6_000 29 in
  let s =
    Stratified.create (Prng.create ~seed:30 ()) ~rate:0.05 ~attrs:[ 0 ] rel
  in
  let groups = Sample.estimate_group_with_variance s ~attrs:[ 0 ] (Predicate.tautology 2) in
  List.iter
    (fun (key, est, var) ->
      match key with
      | [ g ] ->
          let pred = Predicate.point ~arity:2 [ (0, g) ] in
          let est', var' = Sample.estimate_with_variance s pred in
          Alcotest.(check (float 1e-9)) "group est = point est" est' est;
          Alcotest.(check (float 1e-9)) "group var = point var" var' var
      | _ -> Alcotest.fail "unexpected key arity")
    groups

let () =
  Alcotest.run "entropydb-sampling"
    [
      ( "uniform",
        [
          Alcotest.test_case "size and weight" `Quick
            test_uniform_size_and_weight;
          Alcotest.test_case "rejects bad rate" `Quick
            test_uniform_rejects_bad_rate;
          Alcotest.test_case "unbiased (statistical)" `Slow
            test_uniform_unbiased;
        ] );
      ("allocation", allocation_props);
      ( "stratified",
        [
          Alcotest.test_case "covers small strata" `Quick
            test_stratified_covers_small_strata;
          Alcotest.test_case "per-stratum totals exact" `Quick
            test_stratified_per_stratum_totals;
          Alcotest.test_case "group estimates" `Quick
            test_stratified_group_estimate;
          Alcotest.test_case "rejects empty attrs" `Quick
            test_stratified_rejects_empty_attrs;
        ] );
      ( "sample",
        [
          Alcotest.test_case "weights length guard" `Quick
            test_sample_weights_length_guard;
        ] );
      ( "variance",
        [
          Alcotest.test_case "uniform differential" `Quick
            test_uniform_variance_differential;
          Alcotest.test_case "floor on missed values" `Quick
            test_variance_floor_on_missed_values;
          Alcotest.test_case "census is exact" `Quick test_census_variance_zero;
          Alcotest.test_case "stratified census strata" `Quick
            test_stratified_variance_census_strata;
          Alcotest.test_case "grouped = pointwise" `Quick
            test_stratified_group_variance_totals;
        ] );
    ]
